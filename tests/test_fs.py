"""Tests for the mini filesystem and the tar archiver."""

from __future__ import annotations

import io
import tarfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.block import CountingDevice, MemoryBlockDevice
from repro.common.errors import StorageError
from repro.fs import FileSystem, tar_paths

BS = 1024


def make_fs(blocks=1024, inodes=128, counting=False):
    inner = MemoryBlockDevice(BS, blocks)
    device = CountingDevice(inner) if counting else inner
    return FileSystem.format(device, inode_count=inodes), device


class TestFormatMount:
    def test_format_then_mount(self):
        fs, device = make_fs()
        remounted = FileSystem(device)
        assert remounted.listdir("/") == []

    def test_mount_garbage_rejected(self):
        with pytest.raises(StorageError):
            FileSystem(MemoryBlockDevice(BS, 64))

    def test_too_small_device(self):
        with pytest.raises(StorageError):
            FileSystem.format(MemoryBlockDevice(BS, 2), inode_count=1024)


class TestFiles:
    def test_write_read(self):
        fs, _ = make_fs()
        fs.write_file("a.txt", b"hello")
        assert fs.read_file("a.txt") == b"hello"

    def test_overwrite_shrink_and_grow(self):
        fs, _ = make_fs()
        fs.write_file("f", b"x" * 5000)
        fs.write_file("f", b"y" * 10)
        assert fs.read_file("f") == b"y" * 10
        fs.write_file("f", b"z" * 9000)
        assert fs.read_file("f") == b"z" * 9000

    def test_empty_file(self):
        fs, _ = make_fs()
        fs.write_file("empty", b"")
        assert fs.read_file("empty") == b""
        assert fs.stat("empty").size == 0

    def test_file_spanning_indirect_blocks(self):
        fs, _ = make_fs(blocks=512)
        big = bytes(range(256)) * 80  # 20 KiB > 12 direct KiB blocks
        fs.write_file("big", big)
        assert fs.read_file("big") == big

    def test_missing_file(self):
        fs, _ = make_fs()
        with pytest.raises(StorageError):
            fs.read_file("nope")

    def test_unlink_frees_space(self):
        fs, _ = make_fs(blocks=64)
        fs.write_file("a", b"q" * 20000)
        fs.unlink("a")
        assert not fs.exists("a")
        fs.write_file("b", b"r" * 20000)  # would fail if blocks leaked
        assert fs.read_file("b") == b"r" * 20000

    def test_unlink_directory_rejected(self):
        fs, _ = make_fs()
        fs.mkdir("d")
        with pytest.raises(StorageError):
            fs.unlink("d")

    def test_out_of_inodes(self):
        fs, _ = make_fs(inodes=3)  # root + 2
        fs.write_file("a", b"1")
        fs.write_file("b", b"2")
        with pytest.raises(StorageError):
            fs.write_file("c", b"3")


class TestDirectories:
    def test_mkdir_listdir(self):
        fs, _ = make_fs()
        fs.mkdir("docs")
        fs.write_file("docs/one", b"1")
        assert fs.listdir("docs") == ["one"]
        assert fs.listdir("/") == ["docs"]

    def test_makedirs(self):
        fs, _ = make_fs()
        fs.makedirs("a/b/c")
        assert fs.stat("a/b/c").is_dir
        fs.makedirs("a/b/c")  # idempotent

    def test_mkdir_existing_rejected(self):
        fs, _ = make_fs()
        fs.mkdir("d")
        with pytest.raises(StorageError):
            fs.mkdir("d")

    def test_mkdir_missing_parent(self):
        fs, _ = make_fs()
        with pytest.raises(StorageError):
            fs.mkdir("no/such/parent")

    def test_walk(self):
        fs, _ = make_fs()
        fs.makedirs("x/y")
        fs.write_file("x/a", b"")
        fs.write_file("x/y/b", b"")
        fs.write_file("top", b"")
        assert fs.walk("/") == ["top", "x/a", "x/y/b"]
        assert fs.walk("x") == ["x/a", "x/y/b"]

    def test_stat(self):
        fs, _ = make_fs()
        fs.write_file("f", b"12345")
        stat = fs.stat("f")
        assert stat.is_file and not stat.is_dir
        assert stat.size == 5

    def test_many_entries_in_directory(self):
        fs, _ = make_fs(inodes=300)
        fs.mkdir("d")
        for i in range(200):
            fs.write_file(f"d/file{i:03d}", bytes([i % 250]))
        assert len(fs.listdir("d")) == 200
        assert fs.read_file("d/file123") == bytes([123])


class TestMetadataWriteLocality:
    def test_partial_rewrite_touches_fewer_blocks(self):
        """Rewriting a file with identical content produces identical
        blocks — the property that makes PRINS shine on re-tars."""
        fs, device = make_fs(counting=True)
        payload = b"stable content " * 500
        fs.write_file("f", payload)
        image_before = device.inner.snapshot()
        fs.write_file("f", payload)  # identical rewrite
        assert device.inner.snapshot() == image_before


class TestTar:
    def _populated(self):
        fs, _ = make_fs()
        fs.makedirs("d1")
        fs.makedirs("d2")
        fs.write_file("d1/a.txt", b"alpha " * 100)
        fs.write_file("d1/b.txt", b"beta " * 321)
        fs.write_file("d2/c.bin", bytes(range(256)) * 5)
        return fs

    def test_archive_readable_by_stdlib(self):
        fs = self._populated()
        tar_paths(fs, ["d1", "d2"], "out.tar")
        archive = tarfile.open(fileobj=io.BytesIO(fs.read_file("out.tar")))
        assert set(archive.getnames()) == {
            "d1", "d2", "d1/a.txt", "d1/b.txt", "d2/c.bin",
        }
        assert archive.extractfile("d1/b.txt").read() == b"beta " * 321

    def test_single_file_archive(self):
        fs = self._populated()
        tar_paths(fs, ["d1/a.txt"], "one.tar")
        archive = tarfile.open(fileobj=io.BytesIO(fs.read_file("one.tar")))
        assert archive.getnames() == ["d1/a.txt"]

    def test_deterministic(self):
        fs = self._populated()
        size1 = tar_paths(fs, ["d1"], "t1.tar")
        size2 = tar_paths(fs, ["d1"], "t2.tar")
        assert size1 == size2
        assert fs.read_file("t1.tar") == fs.read_file("t2.tar")

    def test_size_is_512_aligned(self):
        fs = self._populated()
        size = tar_paths(fs, ["d1"], "t.tar")
        assert size % 512 == 0


class TestFsProperty:
    @settings(max_examples=15, deadline=None)
    @given(
        files=st.dictionaries(
            st.text(alphabet="abcdefgh", min_size=1, max_size=6),
            st.binary(max_size=3000),
            max_size=8,
        )
    )
    def test_write_read_many(self, files):
        fs, _ = make_fs()
        for name, data in files.items():
            fs.write_file(name, data)
        for name, data in files.items():
            assert fs.read_file(name) == data
        assert sorted(fs.listdir("/")) == sorted(files)
