"""Tests for persistent trace files."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.block import MemoryBlockDevice
from repro.workloads.trace import BlockWriteTrace, replay_trace
from repro.workloads.tracefile import TraceFileError, load_trace, save_trace


def make_trace(entries):
    trace = BlockWriteTrace(block_size=128, num_blocks=32)
    for lba, data in entries:
        trace.append(lba, data)
    return trace


class TestTraceFile:
    def test_roundtrip(self, tmp_path):
        trace = make_trace([(1, b"a" * 128), (5, b"b" * 128), (1, b"c" * 128)])
        path = tmp_path / "t.prtr"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.writes == trace.writes
        assert loaded.block_size == 128
        assert loaded.num_blocks == 32

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.prtr"
        save_trace(make_trace([]), path)
        assert load_trace(path).writes == []

    def test_compression_helps_on_sparse_blocks(self, tmp_path):
        sparse = bytes(100) + b"\x01" * 28
        trace = make_trace([(0, sparse)] * 50)
        path = tmp_path / "sparse.prtr"
        size = save_trace(trace, path)
        assert size < 50 * 128 / 2

    def test_replay_loaded_trace(self, tmp_path):
        trace = make_trace([(2, bytes([i]) * 128) for i in range(10)])
        path = tmp_path / "r.prtr"
        save_trace(trace, path)
        device = MemoryBlockDevice(128, 32)
        replay_trace(load_trace(path), device)
        assert device.read_block(2) == bytes([9]) * 128

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.prtr"
        path.write_bytes(b"NOPE" + bytes(100))
        with pytest.raises(TraceFileError, match="not a PRINS trace"):
            load_trace(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "short.prtr"
        path.write_bytes(b"PR")
        with pytest.raises(TraceFileError, match="truncated"):
            load_trace(path)

    def test_truncated_records(self, tmp_path):
        trace = make_trace([(0, b"z" * 128)])
        path = tmp_path / "cut.prtr"
        save_trace(trace, path)
        raw = path.read_bytes()
        path.write_bytes(raw[:-5])
        with pytest.raises(TraceFileError, match="truncated"):
            load_trace(path)

    def test_corrupt_payload(self, tmp_path):
        trace = make_trace([(0, b"z" * 128)])
        path = tmp_path / "corrupt.prtr"
        save_trace(trace, path)
        raw = bytearray(path.read_bytes())
        raw[-3] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(TraceFileError):
            load_trace(path)

    def test_wrong_block_size_entry_rejected_at_save(self, tmp_path):
        trace = BlockWriteTrace(block_size=128, num_blocks=32)
        trace.writes.append((0, b"short"))
        with pytest.raises(TraceFileError):
            save_trace(trace, tmp_path / "x.prtr")

    @settings(max_examples=15, deadline=None)
    @given(
        entries=st.lists(
            st.tuples(st.integers(0, 31), st.binary(min_size=128, max_size=128)),
            max_size=20,
        )
    )
    def test_roundtrip_property(self, entries, tmp_path_factory):
        trace = make_trace(entries)
        path = tmp_path_factory.mktemp("traces") / "p.prtr"
        save_trace(trace, path)
        assert load_trace(path).writes == trace.writes
