"""Tests for LBA-sharded multi-primary (repro.engine.shard).

The headline invariant: sharding is pure address arithmetic over shared
devices, so the primary volume, the replica images, and the shipped
payload bytes are all byte/count-identical to an unsharded run of the
same workload — only the internal ownership of LBAs changes.
"""

from __future__ import annotations

import random

import pytest

from repro.api import ReplicationConfig, open_cluster, open_primary
from repro.block import MemoryBlockDevice
from repro.common.errors import ConfigurationError
from repro.engine import (
    AggregateAccountant,
    PrimaryEngine,
    ShardMap,
    ShardView,
    ShardedEngine,
    StorageCluster,
)
from repro.engine.resilience import LinkHealth, ResilienceConfig

BS = 512
N = 32


class TestShardMap:
    @pytest.mark.parametrize("policy", ["hash", "range"])
    @pytest.mark.parametrize("shards", [1, 2, 3, 4])
    def test_bijection(self, policy, shards):
        shard_map = ShardMap(shards, N, policy)
        seen = set()
        for lba in range(N):
            shard = shard_map.shard_of(lba)
            local = shard_map.local_of(lba)
            assert 0 <= shard < shards
            assert 0 <= local < shard_map.blocks_in(shard)
            assert shard_map.global_of(shard, local) == lba
            seen.add((shard, local))
        assert len(seen) == N  # injective

    @pytest.mark.parametrize("policy", ["hash", "range"])
    def test_blocks_in_partitions_the_space(self, policy):
        shard_map = ShardMap(3, N, policy)
        assert sum(shard_map.blocks_in(s) for s in range(3)) == N

    def test_hash_interleaves(self):
        shard_map = ShardMap(4, N)
        assert [shard_map.shard_of(lba) for lba in range(6)] == [
            0, 1, 2, 3, 0, 1,
        ]

    def test_range_is_contiguous(self):
        shard_map = ShardMap(4, 10, "range")
        assert [shard_map.shard_of(lba) for lba in range(10)] == [
            0, 0, 0, 1, 1, 1, 2, 2, 2, 3,
        ]

    def test_split_preserves_within_shard_order(self):
        shard_map = ShardMap(2, N)
        writes = [(0, b"a"), (1, b"b"), (2, b"c"), (0, b"d")]
        split = shard_map.split(writes)
        assert split[0] == [(0, b"a"), (1, b"c"), (0, b"d")]
        assert split[1] == [(0, b"b")]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ShardMap(0, N)
        with pytest.raises(ConfigurationError):
            ShardMap(5, 4)
        with pytest.raises(ConfigurationError):
            ShardMap(2, N, "modulo")


class TestShardView:
    def test_translates_to_shared_base(self):
        base = MemoryBlockDevice(BS, N)
        shard_map = ShardMap(2, N)
        views = [ShardView(base, shard_map, s) for s in range(2)]
        views[0].write_block(0, bytes([1]) * BS)  # global LBA 0
        views[1].write_block(0, bytes([2]) * BS)  # global LBA 1
        views[0].write_block(1, bytes([3]) * BS)  # global LBA 2
        assert base.read_block(0) == bytes([1]) * BS
        assert base.read_block(1) == bytes([2]) * BS
        assert base.read_block(2) == bytes([3]) * BS
        assert views[1].read_block(0) == bytes([2]) * BS

    def test_close_leaves_base_open(self):
        base = MemoryBlockDevice(BS, N)
        view = ShardView(base, ShardMap(2, N), 0)
        view.close()
        assert view.closed
        assert not base.closed
        base.write_block(0, bytes(BS))  # still usable

    def test_shard_bounds_checked(self):
        base = MemoryBlockDevice(BS, N)
        with pytest.raises(ConfigurationError):
            ShardView(base, ShardMap(2, N), 2)


def _workload(engine, seed=17, writes=120):
    rng = random.Random(seed)
    for _ in range(writes):
        lba = rng.randrange(N)
        engine.write_block(lba, bytes(rng.randrange(256) for _ in range(BS)))
    engine.write_many(
        [(lba, bytes(rng.randrange(256) for _ in range(BS))) for lba in range(8)]
    )
    engine.drain()


def _open(shards, read_policy="primary", **overrides):
    config = ReplicationConfig(
        block_size=BS, num_blocks=N, replicas=2, **overrides
    )
    return open_primary(config, shards=shards, read_policy=read_policy)


class TestShardedEngineIdentity:
    def test_default_is_plain_engine(self):
        with _open(shards=1) as stack:
            assert isinstance(stack.engine, PrimaryEngine)
            assert not isinstance(stack.engine, ShardedEngine)

    @pytest.mark.parametrize("shards", [2, 4])
    def test_images_and_payload_match_unsharded(self, shards):
        with _open(shards=1) as flat:
            _workload(flat.engine)
            flat_primary = flat.device.snapshot()
            flat_replicas = [d.snapshot() for d in flat.replica_devices]
            flat_payload = flat.engine.accountant.payload_bytes
        with _open(shards=shards) as stack:
            assert isinstance(stack.engine, ShardedEngine)
            _workload(stack.engine)
            assert stack.device.snapshot() == flat_primary
            assert [
                d.snapshot() for d in stack.replica_devices
            ] == flat_replicas
            assert stack.engine.accountant.payload_bytes == flat_payload

    @pytest.mark.parametrize("shards", [2, 4])
    def test_routed_sharded_reads_match(self, shards):
        with _open(shards=shards, read_policy="replica") as stack:
            _workload(stack.engine)
            for lba in range(N):
                assert stack.engine.read_block(lba) == stack.device.read_block(
                    lba
                )
            snap = stack.engine.router_snapshot()
            assert snap["reads_replica"] == N

    def test_erasure_images_match_unsharded(self):
        def build(shards):
            return open_primary(
                ReplicationConfig(
                    block_size=BS,
                    num_blocks=N,
                    redundancy="erasure",
                    k=2,
                    n=4,
                ),
                shards=shards,
            )

        with build(1) as flat:
            _workload(flat.engine)
            flat_fragments = [d.snapshot() for d in flat.replica_devices]
        with build(2) as stack:
            _workload(stack.engine)
            assert [
                d.snapshot() for d in stack.replica_devices
            ] == flat_fragments


class TestShardedEngineOps:
    def test_write_many_splits_across_shards(self):
        with _open(shards=2) as stack:
            stack.engine.write_many(
                [(lba, bytes([lba + 1]) * BS) for lba in range(6)]
            )
            stack.engine.drain()
            for lba in range(6):
                assert stack.device.read_block(lba) == bytes([lba + 1]) * BS
            # hash interleave: LBAs 0,2,4 vs 1,3,5 — an even split
            per_shard = [
                e.accountant.writes_replicated for e in stack.engine.shards
            ]
            assert per_shard[0] == per_shard[1] > 0

    def test_aggregate_accountant_sums(self):
        with _open(shards=2) as stack:
            _workload(stack.engine)
            agg = stack.engine.accountant
            assert isinstance(agg, AggregateAccountant)
            assert agg.payload_bytes == sum(
                e.accountant.payload_bytes for e in stack.engine.shards
            )
            assert agg.data_bytes > 0
            assert agg.reduction_vs_data > 0
            stack.engine.verify_traffic_conservation()

    def test_aggregate_rejects_non_numeric(self):
        with _open(shards=2) as stack:
            with pytest.raises(AttributeError):
                stack.engine.accountant.no_such_counter

    def test_fail_heal_fans_out(self):
        config = ReplicationConfig(
            block_size=BS, num_blocks=N, replicas=2, resilient=True
        )
        with open_primary(config, shards=2) as stack:
            _workload(stack.engine)
            stack.engine.fail_link(0)
            assert stack.engine.link_health()[0] is LinkHealth.DOWN
            assert stack.engine.link_health()[1] is LinkHealth.HEALTHY
            stack.engine.write_block(0, bytes([9]) * BS)
            stack.engine.drain()
            assert stack.engine.backlog_depth(0) > 0
            outcomes = stack.engine.heal_link(0)
            assert len(outcomes) == 2  # one per shard
            assert stack.engine.link_health()[0] is LinkHealth.HEALTHY
            assert stack.engine.backlog_depth(0) == 0
            assert stack.replica_devices[0].snapshot() == (
                stack.device.snapshot()
            )

    def test_mismatched_engine_count_rejected(self):
        with _open(shards=2) as stack:
            with pytest.raises(ConfigurationError):
                ShardedEngine(
                    list(stack.engine.shards), ShardMap(3, N), stack.device
                )

    def test_accountant_kwarg_rejected_when_sharded(self):
        from repro.engine.accounting import TrafficAccountant

        config = ReplicationConfig(block_size=BS, num_blocks=N, shards=2)
        with pytest.raises(ConfigurationError):
            open_primary(config, accountant=TrafficAccountant())


class TestShardedCluster:
    def _cluster(self, shards, read_policy="primary"):
        config = ReplicationConfig(
            block_size=BS,
            num_blocks=N,
            nodes=4,
            replicas_per_node=2,
            resilient=True,
        )
        return open_cluster(config, shards=shards, read_policy=read_policy)

    def _drive(self, cluster, seed=23, writes=100):
        rng = random.Random(seed)
        for _ in range(writes):
            cluster.write(
                rng.randrange(4),
                rng.randrange(N),
                bytes(rng.randrange(256) for _ in range(BS)),
            )
        cluster.drain()

    def test_sharded_cluster_images_match_unsharded(self):
        flat = self._cluster(shards=1)
        self._drive(flat)
        assert flat.verify() == {}
        flat_images = [n.primary_device.snapshot() for n in flat.nodes]
        flat.close()

        sharded = self._cluster(shards=2, read_policy="replica")
        assert isinstance(sharded.nodes[0].engine, ShardedEngine)
        self._drive(sharded)
        assert sharded.verify() == {}
        assert [
            n.primary_device.snapshot() for n in sharded.nodes
        ] == flat_images
        sharded.verify_traffic_conservation()
        sharded.close()

    def test_failover_read_with_shards(self):
        cluster = self._cluster(shards=2)
        cluster.write(0, 5, bytes([0xAB]) * BS)
        cluster.fail_node(0)
        assert cluster.read(0, 5) == bytes([0xAB]) * BS
        outcomes = cluster.heal_node(0)
        assert all(len(v) == 2 for v in outcomes.values())  # per shard
        cluster.close()

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ReplicationConfig(block_size=BS, num_blocks=N, shards=0)
        with pytest.raises(ConfigurationError):
            ReplicationConfig(block_size=BS, num_blocks=4, shards=8)
        with pytest.raises(ConfigurationError):
            ReplicationConfig(block_size=BS, num_blocks=N, read_policy="x")
