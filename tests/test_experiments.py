"""Tests for the experiment harness and figure runners (tiny scales)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments.figures import SMALL, Scale, get_scale, run_experiment
from repro.experiments.harness import (
    capture_fsmicro_trace,
    capture_tpcc_trace,
    measure_strategies,
)
from repro.experiments.testbed import testbed_table as render_testbed_table
from repro.workloads.fsmicro import FsMicroConfig
from repro.workloads.tpcc import TpccConfig

TINY_TPCC = TpccConfig(
    warehouses=1, districts_per_warehouse=2, customers_per_district=5, items=50
)


@pytest.fixture(scope="module")
def tpcc_capture():
    return capture_tpcc_trace(4096, config=TINY_TPCC, transactions=40)


class TestHarness:
    def test_capture_excludes_population(self, tpcc_capture):
        assert tpcc_capture.trace.write_count > 0
        # the base image already contains the populated database
        assert any(byte != 0 for byte in tpcc_capture.base_image[:4096])

    def test_measure_all_strategies_consistent(self, tpcc_capture):
        results = measure_strategies(tpcc_capture)
        assert set(results) == {"traditional", "compressed", "prins"}
        assert all(m.consistent for m in results.values())

    def test_prins_smallest_traditional_largest(self, tpcc_capture):
        results = measure_strategies(tpcc_capture)
        assert (
            results["prins"].payload_bytes
            < results["compressed"].payload_bytes
            < results["traditional"].payload_bytes
        )

    def test_traditional_payload_equals_blocks_shipped(self, tpcc_capture):
        results = measure_strategies(tpcc_capture)
        trace = tpcc_capture.trace
        expected_floor = trace.write_count * trace.block_size
        assert results["traditional"].payload_bytes >= expected_floor

    def test_fsmicro_capture(self):
        capture = capture_fsmicro_trace(
            2048,
            config=FsMicroConfig(files_per_directory=2, file_size=2048, rounds=1),
        )
        assert capture.workload_name == "fsmicro"
        assert capture.trace.write_count > 0
        results = measure_strategies(capture)
        assert results["prins"].payload_bytes < results["traditional"].payload_bytes

    def test_prins_codec_option(self, tpcc_capture):
        rle = measure_strategies(tpcc_capture, strategies=["prins"])
        zlib_variant = measure_strategies(
            tpcc_capture, strategies=["prins"], prins_codec="rle+zlib"
        )
        assert rle["prins"].payload_bytes > 0
        assert zlib_variant["prins"].payload_bytes > 0


class TestScales:
    def test_get_scale_by_name(self):
        assert get_scale("small") is SMALL
        assert get_scale(SMALL) is SMALL
        with pytest.raises(ValueError):
            get_scale("huge")

    def test_paper_scale_matches_paper_parameters(self):
        paper = get_scale("paper")
        assert paper.tpcc_oracle.warehouses == 5
        assert paper.tpcc_postgres.warehouses == 10
        assert paper.tpcw.items == 10_000
        assert paper.tpcw.emulated_browsers == 30
        assert paper.fsmicro.directories == 5
        assert paper.fsmicro.rounds == 5
        assert paper.block_sizes == (4096, 8192, 16384, 32768, 65536)


TINY_SCALE = Scale(
    name="tiny",
    block_sizes=(4096,),
    tpcc_transactions=30,
    tpcc_oracle=TINY_TPCC,
    tpcc_postgres=dataclasses.replace(TINY_TPCC, seed=2007),
    tpcw_interactions=60,
    tpcw=dataclasses.replace(
        __import__("repro.workloads.tpcw", fromlist=["TpcwConfig"]).TpcwConfig(),
        items=100,
        initial_customers=10,
    ),
    fsmicro=FsMicroConfig(files_per_directory=2, file_size=2048, rounds=1),
)


class TestFigureRunners:
    @pytest.mark.parametrize("figure", ["fig4", "fig5", "fig6", "fig7"])
    def test_traffic_figures_run(self, figure):
        result = run_experiment(figure, scale=TINY_SCALE)
        assert result.experiment_id == figure
        assert len(result.rows) == 1  # one block size in the tiny scale
        # prins column strictly below traditional column
        for row in result.rows:
            assert row[4] < row[2]

    @pytest.mark.parametrize("figure", ["fig8", "fig9", "fig10"])
    def test_queueing_figures_run(self, figure):
        payloads = {"traditional": 8192.0, "compressed": 2700.0, "prins": 400.0}
        from repro.experiments.figures import run_fig8, run_fig9, run_fig10

        runner = {"fig8": run_fig8, "fig9": run_fig9, "fig10": run_fig10}[figure]
        result = runner(payloads=payloads)
        assert result.comparisons
        assert all(c.within_tolerance for c in result.comparisons), result.render()

    def test_unknown_experiment(self):
        with pytest.raises(ValueError):
            run_experiment("fig99")

    def test_testbed_table_mentions_all_substrates(self):
        table = render_testbed_table()
        for fragment in ("PRINS-engine", "Oracle", "Ext2", "TPC-C", "zlib", "T1/T3"):
            assert fragment in table
