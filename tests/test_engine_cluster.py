"""Tests for the multi-node storage cluster."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.engine import ClusterConfig, StorageCluster
from repro.engine.cluster import round_robin_placement


def small_config(**overrides):
    defaults = dict(
        nodes=4, replicas_per_node=2, block_size=512, blocks_per_node=16
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


class TestClusterConfig:
    def test_population_is_nodes_times_replicas(self):
        # Sec. 3.3: "a fixed population size being the product of total
        # number of nodes and number of replicas"
        assert small_config(nodes=10, replicas_per_node=4).population == 40

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            small_config(nodes=1)
        with pytest.raises(ConfigurationError):
            small_config(replicas_per_node=0)
        with pytest.raises(ConfigurationError):
            small_config(replicas_per_node=4)  # == nodes

    def test_old_block_cache_validation(self):
        with pytest.raises(ConfigurationError):
            small_config(old_block_cache=0)
        with pytest.raises(ConfigurationError):
            small_config(old_block_cache=-1)
        assert small_config(old_block_cache=8).old_block_cache == 8
        assert small_config().old_block_cache is None


class TestClusterOldBlockCache:
    def test_default_engines_have_no_cache(self):
        cluster = StorageCluster(small_config())
        assert all(n.engine.old_block_cache is None for n in cluster.nodes)

    def test_configured_cache_serves_rewrites(self):
        config = small_config(old_block_cache=8)
        cluster = StorageCluster(config)
        node = cluster.nodes[0]
        node.engine.write_block(1, b"\x01" * config.block_size)
        node.engine.write_block(1, b"\x02" * config.block_size)
        snap = node.engine.old_block_cache.snapshot()
        assert snap["capacity"] == 8
        assert snap["misses"] == 1
        assert snap["hits"] == 1
        assert cluster.verify() == {}  # replicas converged despite cache


class TestPlacement:
    def test_round_robin_successors(self):
        placement = round_robin_placement(small_config())
        assert placement[0] == [1, 2]
        assert placement[3] == [0, 1]  # wraps around

    def test_self_replication_rejected(self):
        with pytest.raises(ConfigurationError):
            StorageCluster(small_config(), placement={0: [0, 1], 1: [2, 3], 2: [3, 0], 3: [1, 2]})

    def test_duplicate_replica_rejected(self):
        with pytest.raises(ConfigurationError):
            StorageCluster(
                small_config(),
                placement={0: [1, 1], 1: [2, 3], 2: [3, 0], 3: [0, 1]},
            )

    def test_unknown_replica_rejected(self):
        with pytest.raises(ConfigurationError):
            StorageCluster(
                small_config(),
                placement={0: [1, 9], 1: [2, 3], 2: [3, 0], 3: [0, 1]},
            )


class TestClusterDataPath:
    def test_all_pairs_consistent_after_writes(self, rng):
        cluster = StorageCluster(small_config())
        for _ in range(120):
            node = int(rng.integers(0, 4))
            lba = int(rng.integers(0, 16))
            cluster.write(node, lba, rng.integers(0, 256, 512, dtype="u1").tobytes())
        assert cluster.verify() == {}

    def test_replica_serves_primary_data(self):
        cluster = StorageCluster(small_config())
        cluster.write(2, 5, b"q" * 512)
        assert cluster.read(2, 5) == b"q" * 512
        assert cluster.read_from_replica(2, 5) == b"q" * 512

    def test_unwritten_replica_reads_zero(self):
        cluster = StorageCluster(small_config())
        assert cluster.read_from_replica(1, 3) == bytes(512)

    def test_traffic_charged_per_replica(self):
        cluster = StorageCluster(small_config(strategy="traditional"))
        cluster.write(0, 0, b"z" * 512)
        accountant = cluster.nodes[0].engine.accountant
        assert accountant.writes_replicated == 2  # two replicas

    def test_prins_cluster_cheaper_than_traditional(self, rng):
        def run(strategy):
            cluster = StorageCluster(small_config(strategy=strategy))
            write_rng = __import__("numpy").random.default_rng(6)
            # overwrite a warm working set with partial changes
            for node in range(4):
                for lba in range(16):
                    cluster.write(node, lba, write_rng.integers(0, 256, 512, dtype="u1").tobytes())
            for node_obj in cluster.nodes:  # measure steady state, not load
                node_obj.engine.accountant.reset()
            for _ in range(100):
                node = int(write_rng.integers(0, 4))
                lba = int(write_rng.integers(0, 16))
                block = bytearray(cluster.read(node, lba))
                block[0:50] = write_rng.integers(0, 256, 50, dtype="u1").tobytes()
                cluster.write(node, lba, bytes(block))
            assert cluster.verify() == {}
            return cluster.total_payload_bytes

        assert run("prins") * 3 < run("traditional")

    def test_mean_payload_feeds_queueing_model(self, rng):
        cluster = StorageCluster(small_config())
        for _ in range(20):
            cluster.write(
                int(rng.integers(0, 4)),
                int(rng.integers(0, 16)),
                rng.integers(0, 256, 512, dtype="u1").tobytes(),
            )
        mean_payload = cluster.mean_payload_per_write()
        assert mean_payload > 0
        from repro.queueing import ReplicationNetworkModel, StrategyTraffic, T1

        model = ReplicationNetworkModel(
            StrategyTraffic("prins", mean_payload), T1
        )
        assert model.response_time(cluster.config.population) > 0


class TestFailoverReadDrains:
    """read_from_replica must quiesce in-flight fan-out before serving.

    Regression: under ``fanout="pipelined"`` in threads mode a write can
    still be mid-flight toward the replica set when the primary is
    declared down; a failover read that raced it could observe the
    replica's pre-write (torn) image.  ``read_from_replica`` now drains
    the primary's pipeline first.
    """

    def test_threads_failover_read_sees_last_write(self):
        from repro.engine import ResilienceConfig, SchedulerConfig

        config = small_config()
        cluster = StorageCluster(
            config,
            resilience=ResilienceConfig(),
            scheduler=SchedulerConfig(
                workers="threads", window=4, link_latency_s=0.02
            ),
        )
        try:
            data = bytes([0x5A]) * config.block_size
            cluster.write(0, 3, data)  # ack still in flight toward replicas
            cluster.fail_node(0)  # primary declared down immediately after
            assert cluster.read(0, 3) == data
        finally:
            cluster.close()

    def test_batched_failover_read_sees_buffered_write(self):
        from repro.engine import BatchConfig, ResilienceConfig

        config = small_config()
        cluster = StorageCluster(
            config,
            resilience=ResilienceConfig(),
            batch=BatchConfig(max_records=64),
        )
        try:
            data = bytes([0xC3]) * config.block_size
            cluster.write(0, 7, data)  # parked in node 0's batch window
            cluster.fail_node(0)
            assert cluster.read(0, 7) == data
        finally:
            cluster.close()
