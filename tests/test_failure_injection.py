"""Failure-injection tests: storage faults against every resilience layer.

Each test injects a concrete fault (hard I/O error, silent corruption,
whole-device death, flaky network) and asserts the layer built to survive
it actually does: RAID reconstruction and rebuild, checksum detection,
replication retry, journal escalation, CDP recovery of corrupted blocks.
"""

from __future__ import annotations

import pytest

from repro.block import (
    ChecksumDevice,
    FaultyDevice,
    InjectedIoError,
    MemoryBlockDevice,
)
from repro.block.verify import ChecksumMismatchError
from repro.common.rng import make_rng
from repro.engine import (
    DirectLink,
    PrimaryEngine,
    ReplicaEngine,
    make_strategy,
    verify_consistency,
)
from repro.raid import Raid5Array

BS = 256
N = 16


class TestFaultyDevice:
    def test_targeted_read_failure(self):
        device = FaultyDevice(MemoryBlockDevice(BS, N))
        device.write_block(3, b"x" * BS)
        device.fail_reads(3)
        with pytest.raises(InjectedIoError):
            device.read_block(3)
        device.heal()
        assert device.read_block(3) == b"x" * BS

    def test_targeted_write_failure(self):
        device = FaultyDevice(MemoryBlockDevice(BS, N))
        device.fail_writes(5)
        with pytest.raises(InjectedIoError):
            device.write_block(5, bytes(BS))
        assert device.errors_injected == 1

    def test_kill_fails_everything(self):
        device = FaultyDevice(MemoryBlockDevice(BS, N))
        device.kill()
        with pytest.raises(InjectedIoError):
            device.read_block(0)
        with pytest.raises(InjectedIoError):
            device.write_block(0, bytes(BS))

    def test_probabilistic_errors(self):
        device = FaultyDevice(
            MemoryBlockDevice(BS, N),
            error_probability=0.5,
            rng=make_rng(1, "faults"),
        )
        failures = 0
        for _ in range(100):
            try:
                device.read_block(0)
            except InjectedIoError:
                failures += 1
        assert 25 < failures < 75

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            FaultyDevice(MemoryBlockDevice(BS, N), error_probability=1.5)

    def test_corrupt_next_write_is_one_shot(self):
        """An in-flight (firmware/DMA) corruption: the write 'succeeds' but
        the stored bits differ; the following write stores cleanly."""
        device = FaultyDevice(MemoryBlockDevice(BS, N))
        device.corrupt_next_write(7)
        payload = b"y" * BS
        device.write_block(7, payload)  # no exception — the fault is silent
        assert device.read_block(7) != payload
        assert device.corruptions_injected == 1
        device.write_block(7, payload)  # one-shot: this one lands intact
        assert device.read_block(7) == payload
        assert device.corruptions_injected == 1

    def test_heal_cancels_pending_but_not_latent_corruption(self):
        """heal() clears *pending* faults; bits already rotten on the medium
        stay rotten (only a scrub/resync layer above can repair them)."""
        device = FaultyDevice(MemoryBlockDevice(BS, N))
        clean = b"z" * BS
        device.write_block(1, clean)
        device.corrupt_block(1)  # latent: already stored
        device.corrupt_next_write(2)  # pending: not yet fired
        device.heal()
        assert device.read_block(1) != clean  # latent survives heal
        device.write_block(2, clean)
        assert device.read_block(2) == clean  # pending was cancelled


class TestRaidUnderFaults:
    def test_silent_corruption_caught_by_scrub(self):
        members = [FaultyDevice(MemoryBlockDevice(BS, 8)) for _ in range(4)]
        array = Raid5Array(members)
        for lba in range(array.num_blocks):
            array.write_block(lba, bytes([lba + 1]) * BS)
        members[1].corrupt_block(2)  # flip bits behind the array's back
        bad_stripes = array.scrub()
        assert bad_stripes == [2]

    def test_dead_member_survived_via_fail_and_rebuild(self):
        members = [FaultyDevice(MemoryBlockDevice(BS, 8)) for _ in range(4)]
        array = Raid5Array(members)
        for lba in range(array.num_blocks):
            array.write_block(lba, bytes([lba + 1]) * BS)
        members[2].kill()
        array.fail_disk(2)  # operator marks it failed
        for lba in range(array.num_blocks):  # degraded reads all succeed
            assert array.read_block(lba) == bytes([lba + 1]) * BS
        array.replace_disk(2, MemoryBlockDevice(BS, 8))
        assert array.scrub() == []

    def test_write_to_degraded_array_survives_rebuild(self):
        members = [FaultyDevice(MemoryBlockDevice(BS, 8)) for _ in range(4)]
        array = Raid5Array(members)
        members[0].kill()
        array.fail_disk(0)
        array.write_block(1, b"w" * BS)  # some placements live on disk 0
        array.write_block(7, b"v" * BS)
        array.replace_disk(0, MemoryBlockDevice(BS, 8))
        assert array.read_block(1) == b"w" * BS
        assert array.read_block(7) == b"v" * BS


class TestChecksumUnderFaults:
    def test_corruption_detected_on_read(self):
        inner = MemoryBlockDevice(BS, N)
        faulty = FaultyDevice(inner)
        checked = ChecksumDevice(faulty)
        checked.write_block(4, b"good" * 64)
        faulty.corrupt_block(4)
        with pytest.raises(ChecksumMismatchError):
            checked.read_block(4)


class TestReplicationUnderFaults:
    def test_replica_crc_catches_corrupted_old_block(self):
        """If the replica's base image rots, backward parity produces a
        wrong block — the record CRC must refuse to apply it."""
        from repro.common.errors import ReplicationError

        strategy = make_strategy("prins")
        primary = MemoryBlockDevice(BS, N)
        replica_inner = MemoryBlockDevice(BS, N)
        replica = ReplicaEngine(replica_inner, strategy)
        engine = PrimaryEngine(primary, strategy, [DirectLink(replica)])
        engine.write_block(0, b"v1" * 128)
        # rot the replica's copy of block 0
        replica_inner.write_block(0, b"rot" * 85 + b"!")
        with pytest.raises(ReplicationError, match="CRC"):
            engine.write_block(0, b"v2" * 128)

    def test_primary_write_failure_propagates(self):
        strategy = make_strategy("prins")
        faulty_primary = FaultyDevice(MemoryBlockDevice(BS, N))
        replica = ReplicaEngine(MemoryBlockDevice(BS, N), strategy)
        engine = PrimaryEngine(faulty_primary, strategy, [DirectLink(replica)])
        faulty_primary.fail_writes(2)
        with pytest.raises(InjectedIoError):
            engine.write_block(2, bytes(BS))
        # nothing was shipped for the failed write
        assert engine.accountant.writes_replicated == 0

    def test_raid_primary_with_corruption_detected_before_shipping(self):
        """Silent corruption on the primary makes the shipped delta wrong;
        the replica CRC rejects it rather than silently diverging."""
        from repro.common.errors import ReplicationError

        strategy = make_strategy("prins")
        primary = FaultyDevice(MemoryBlockDevice(BS, N))
        replica_inner = MemoryBlockDevice(BS, N)
        replica = ReplicaEngine(replica_inner, strategy)
        engine = PrimaryEngine(primary, strategy, [DirectLink(replica)])
        engine.write_block(0, b"A" * BS)
        primary.corrupt_block(0)  # primary's A_old is now wrong
        with pytest.raises(ReplicationError, match="CRC"):
            engine.write_block(0, b"B" * BS)
        # the replica still holds the last good version
        assert replica_inner.read_block(0) == b"A" * BS

    def test_full_recovery_story(self):
        """Corrupt replica -> detect -> digest-sync -> consistent again."""
        from repro.engine import digest_sync

        strategy = make_strategy("prins")
        primary = MemoryBlockDevice(BS, N)
        replica_inner = MemoryBlockDevice(BS, N)
        replica = ReplicaEngine(replica_inner, strategy)
        engine = PrimaryEngine(primary, strategy, [DirectLink(replica)])
        for lba in range(N):
            engine.write_block(lba, bytes([lba + 1]) * BS)
        FaultyDevice(replica_inner).corrupt_block(5)
        assert verify_consistency(primary, replica_inner) == [5]
        report = digest_sync(primary, replica_inner)
        assert report.blocks_copied == 1
        assert verify_consistency(primary, replica_inner) == []
