"""Tests for repro.common.units."""

from __future__ import annotations

import pytest

from repro.common.units import GiB, KiB, MiB, format_bytes, parse_size


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("8KB", 8 * KiB),
            ("8kb", 8 * KiB),
            ("8KiB", 8 * KiB),
            ("64K", 64 * KiB),
            ("1MB", MiB),
            ("1.5MB", MiB + 512 * KiB),
            ("2GiB", 2 * GiB),
            ("512", 512),
            ("512B", 512),
            (" 4 KB ", 4 * KiB),
        ],
    )
    def test_valid(self, text, expected):
        assert parse_size(text) == expected

    def test_int_passthrough(self):
        assert parse_size(4096) == 4096

    @pytest.mark.parametrize("text", ["", "abc", "12QB", "KB", "1.2.3MB"])
    def test_invalid(self, text):
        with pytest.raises(ValueError):
            parse_size(text)

    def test_fractional_bytes_rejected(self):
        with pytest.raises(ValueError, match="whole number"):
            parse_size("1.0001KB")


class TestFormatBytes:
    def test_bytes(self):
        assert format_bytes(123) == "123 B"

    def test_kib(self):
        assert format_bytes(51200) == "50.0 KiB"

    def test_mib(self):
        assert format_bytes(3 * MiB) == "3.0 MiB"

    def test_gib(self):
        assert format_bytes(int(2.5 * GiB)) == "2.5 GiB"

    def test_roundtrip_consistency(self):
        # format then parse returns the same magnitude (within rounding)
        n = 7 * MiB
        assert parse_size(format_bytes(n).replace(" ", "")) == n
