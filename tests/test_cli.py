"""Tests for the ``prins`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in ("fig4", "fig8", "fig10", "overhead"):
            assert experiment_id in out

    def test_testbed(self, capsys):
        assert main(["testbed"]) == 0
        assert "PRINS-engine" in capsys.readouterr().out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "prins" in out
        assert "traditional" in out
        assert "A_old cache" not in out  # default: cache off

    def test_demo_old_block_cache(self, capsys):
        assert main([
            "demo", "--transactions", "40", "--old-block-cache", "64",
        ]) == 0
        out = capsys.readouterr().out
        # the hit-rate tag appears only on delta-computing strategies
        prins_line = next(l for l in out.splitlines() if "prins" in l)
        trad_line = next(l for l in out.splitlines() if "traditional" in l)
        assert "A_old cache hit rate" in prins_line
        assert "A_old cache" not in trad_line

    def test_trace_capture_and_replay(self, capsys, tmp_path):
        path = str(tmp_path / "w.prtr")
        assert main([
            "trace", "capture", path, "--workload", "fsmicro",
            "--block-size", "2048",
        ]) == 0
        assert "captured" in capsys.readouterr().out
        assert main(["trace", "replay", path]) == 0
        out = capsys.readouterr().out
        assert "prins" in out and "traditional" in out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])
