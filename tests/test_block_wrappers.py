"""Tests for the device wrappers: counting, checksum, cache."""

from __future__ import annotations

import pytest

from repro.block import (
    CachedDevice,
    ChecksumDevice,
    CountingDevice,
    MemoryBlockDevice,
)
from repro.block.verify import ChecksumMismatchError


class TestCountingDevice:
    def test_counts_reads_and_writes(self):
        dev = CountingDevice(MemoryBlockDevice(512, 8))
        dev.write_block(0, b"a" * 512)
        dev.write_block(0, b"b" * 512)
        dev.read_block(0)
        c = dev.counters
        assert c.writes == 2
        assert c.reads == 1
        assert c.bytes_written == 1024
        assert c.bytes_read == 512
        assert c.total_ops == 3

    def test_unique_lbas(self):
        dev = CountingDevice(MemoryBlockDevice(512, 8))
        for lba in (0, 1, 0, 2):
            dev.write_block(lba, bytes(512))
        assert dev.counters.unique_lbas_written == {0, 1, 2}

    def test_reset(self):
        dev = CountingDevice(MemoryBlockDevice(512, 8))
        dev.write_block(0, bytes(512))
        dev.counters.reset()
        assert dev.counters.writes == 0
        assert dev.counters.unique_lbas_written == set()

    def test_passthrough_contents(self):
        inner = MemoryBlockDevice(512, 8)
        dev = CountingDevice(inner)
        dev.write_block(3, b"z" * 512)
        assert inner.read_block(3) == b"z" * 512


class TestChecksumDevice:
    def test_clean_read_passes(self):
        dev = ChecksumDevice(MemoryBlockDevice(512, 8))
        dev.write_block(0, b"ok" * 256)
        assert dev.read_block(0) == b"ok" * 256

    def test_detects_underlying_corruption(self):
        inner = MemoryBlockDevice(512, 8)
        dev = ChecksumDevice(inner)
        dev.write_block(0, b"g" * 512)
        inner.write_block(0, b"h" * 512)  # corrupt behind the wrapper's back
        with pytest.raises(ChecksumMismatchError):
            dev.read_block(0)

    def test_untracked_blocks_not_checked(self):
        inner = MemoryBlockDevice(512, 8)
        inner.write_block(5, b"pre" * 170 + b"xx")
        dev = ChecksumDevice(inner)
        dev.read_block(5)  # never written through wrapper: no check

    def test_verify_all(self):
        dev = ChecksumDevice(MemoryBlockDevice(512, 8))
        for lba in range(4):
            dev.write_block(lba, bytes([lba]) * 512)
        assert dev.verify_all() == 4


class TestCachedDevice:
    def test_hit_after_miss(self):
        dev = CachedDevice(MemoryBlockDevice(512, 8), capacity_blocks=4)
        dev.read_block(0)
        dev.read_block(0)
        assert dev.misses == 1
        assert dev.hits == 1
        assert dev.hit_rate == 0.5

    def test_write_through(self):
        inner = MemoryBlockDevice(512, 8)
        dev = CachedDevice(inner, capacity_blocks=4)
        dev.write_block(0, b"w" * 512)
        assert inner.read_block(0) == b"w" * 512  # inner is truth immediately

    def test_eviction_respects_capacity(self):
        dev = CachedDevice(MemoryBlockDevice(512, 16), capacity_blocks=2)
        for lba in range(5):
            dev.read_block(lba)
        dev.read_block(4)  # most recent: hit
        assert dev.hits == 1
        dev.read_block(0)  # evicted long ago: miss
        assert dev.misses == 6

    def test_invalidate(self):
        dev = CachedDevice(MemoryBlockDevice(512, 8), capacity_blocks=4)
        dev.read_block(0)
        dev.invalidate()
        dev.read_block(0)
        assert dev.misses == 2

    def test_cache_serves_correct_contents(self):
        dev = CachedDevice(MemoryBlockDevice(512, 8), capacity_blocks=2)
        dev.write_block(0, b"1" * 512)
        assert dev.read_block(0) == b"1" * 512
        dev.write_block(0, b"2" * 512)
        assert dev.read_block(0) == b"2" * 512

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            CachedDevice(MemoryBlockDevice(512, 8), capacity_blocks=0)
