"""API-surface snapshot: the public facade must not drift silently.

Pins the exported names of :mod:`repro.api`, the fields of
:class:`~repro.api.ReplicationConfig`, and the engine-package exports the
facade is built on.  A failing test here means a (possibly accidental)
public-API change: update the snapshot *deliberately*, in the same commit
that documents the change.
"""

from __future__ import annotations

import dataclasses
import inspect

import repro
import repro.api as api
import repro.engine as engine

#: the complete public surface of repro.api
API_EXPORTS = {
    "ObservabilityConfig",
    "PrimaryStack",
    "ReplicationConfig",
    "open_cluster",
    "open_primary",
}

#: every ReplicationConfig field, in declaration order
CONFIG_FIELDS = (
    "strategy",
    "codec",
    "block_size",
    "num_blocks",
    "replicas",
    "nodes",
    "replicas_per_node",
    "redundancy",
    "k",
    "n",
    "batch_records",
    "batch_bytes",
    "old_block_cache",
    "fanout",
    "window",
    "link_latency_s",
    "per_link_latency_s",
    "latency_jitter",
    "transport",
    "workers",
    "worker_count",
    "ring_slots",
    "read_policy",
    "shards",
    "resilient",
    "max_attempts",
    "backlog_capacity_bytes",
    "resync",
    "verify_acks",
    "telemetry",
    "observability",
    "seed",
)

#: engine exports the redesign added (scheduler + unified work protocol)
ENGINE_SCHEDULER_EXPORTS = {
    "FanoutScheduler",
    "LatencyLink",
    "ReplicaChannel",
    "SchedulerConfig",
    "ShipWork",
    "SimClock",
    "ConservationError",
    "ReplicaTraffic",
}


#: engine exports the read-scaling tier added (router + sharding)
ENGINE_SCALEOUT_EXPORTS = {
    "AggregateAccountant",
    "READ_POLICIES",
    "ReadRouter",
    "ShardMap",
    "ShardView",
    "ShardedEngine",
}


#: engine exports the concurrency tier added (process codec workers)
ENGINE_CONCURRENCY_EXPORTS = {
    "CodecWorkerPool",
    "WORKER_BACKENDS",
}


#: iscsi exports the asyncio transport tier added
ISCSI_AIO_EXPORTS = {
    "AsyncInitiator",
    "AsyncTargetServer",
    "AsyncTcpTransport",
    "EventLoopThread",
}


def test_api_all_is_exact():
    assert set(api.__all__) == API_EXPORTS
    for name in API_EXPORTS:
        assert hasattr(api, name), f"repro.api.{name} missing"


def test_api_reexported_from_repro():
    for name in API_EXPORTS:
        assert name in repro.__all__, f"repro.{name} not re-exported"
        assert getattr(repro, name) is getattr(api, name)


def test_replication_config_fields_are_pinned():
    fields = tuple(f.name for f in dataclasses.fields(api.ReplicationConfig))
    assert fields == CONFIG_FIELDS


def test_replication_config_is_frozen():
    params = dataclasses.fields(api.ReplicationConfig)
    assert api.ReplicationConfig.__dataclass_params__.frozen
    assert all(f.init for f in params)


def test_engine_exports_scheduler_surface():
    missing = ENGINE_SCHEDULER_EXPORTS - set(engine.__all__)
    assert not missing, f"engine exports missing: {sorted(missing)}"


def test_engine_exports_scaleout_surface():
    missing = ENGINE_SCALEOUT_EXPORTS - set(engine.__all__)
    assert not missing, f"engine exports missing: {sorted(missing)}"


def test_engine_exports_concurrency_surface():
    missing = ENGINE_CONCURRENCY_EXPORTS - set(engine.__all__)
    assert not missing, f"engine exports missing: {sorted(missing)}"


def test_iscsi_exports_aio_surface():
    import repro.iscsi as iscsi

    missing = ISCSI_AIO_EXPORTS - set(iscsi.__all__)
    assert not missing, f"iscsi exports missing: {sorted(missing)}"
    for name in ISCSI_AIO_EXPORTS:
        assert hasattr(iscsi, name), f"repro.iscsi.{name} missing"


def test_scheduler_mode_is_init_only():
    """The deprecated kwarg is accepted but is not a persisted field."""
    import warnings

    field_names = {f.name for f in dataclasses.fields(api.ReplicationConfig)}
    assert "scheduler_mode" not in field_names
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        config = api.ReplicationConfig(scheduler_mode="threads")
    assert config.workers == "threads"
    assert "scheduler_mode" not in config.to_dict()


def test_open_primary_signature_is_stable():
    signature = inspect.signature(api.open_primary)
    assert list(signature.parameters) == [
        "config",
        "shards",
        "read_policy",
        "initial_image",
        "link_factory",
        "telemetry_name",
        "accountant",
        "resilience",
    ]


def test_open_cluster_signature_is_stable():
    signature = inspect.signature(api.open_cluster)
    assert list(signature.parameters) == [
        "config",
        "shards",
        "read_policy",
        "placement",
        "link_factory",
        "resilience",
    ]


def test_link_protocol_surface():
    """submit() is the protocol; ship/ship_batch remain as deprecated shims."""
    from repro.engine.links import ReplicaLink

    assert callable(ReplicaLink.submit)
    assert callable(ReplicaLink.ship)  # deprecated, but present
    assert callable(ReplicaLink.ship_batch)  # deprecated, but present
    assert "deprecated" in (ReplicaLink.ship.__doc__ or "").lower()
    assert "deprecated" in (ReplicaLink.ship_batch.__doc__ or "").lower()
