"""Tests for the zero-copy hot path: A_old cache, write_many, batch apply.

Covers the PR-4 engine surface: the bounded LRU ``old_block_cache`` that
replaces read-before-write device I/O, the vectorized ``write_many``
window (which must be observationally identical to sequential
``write_block`` calls), the replica's scatter/XOR apply, and the
``write_block_from`` device contract the replica writes through.
"""

from __future__ import annotations

import pytest

from repro.block import BlockCache, MemoryBlockDevice
from repro.common.errors import BlockSizeError
from repro.engine import DirectLink, PrimaryEngine, ReplicaEngine, make_strategy
from repro.engine.batch import BatchConfig
from repro.obs.telemetry import Telemetry

BLOCK_SIZE = 512


class CountingDevice(MemoryBlockDevice):
    """Memory device that counts block reads (both read paths)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.reads = 0

    def _read(self, lba):
        self.reads += 1
        return super()._read(lba)

    def read_block_into(self, lba, out):
        self.reads += 1
        super().read_block_into(lba, out)


def _engine(
    primary,
    replica_dev,
    *,
    cache=None,
    batch=None,
    telemetry=None,
    strategy_name="prins",
):
    strategy = make_strategy(strategy_name)
    kwargs = {}
    if batch is not None:
        kwargs["batch"] = batch
    if telemetry is not None:
        kwargs["telemetry"] = telemetry
    return PrimaryEngine(
        primary,
        strategy,
        [DirectLink(ReplicaEngine(replica_dev, strategy))],
        old_block_cache=cache,
        **kwargs,
    )


def _patterns(n, seed=1):
    return [bytes([(seed * 37 + i * 11 + j) % 256 for j in range(BLOCK_SIZE)]) for i in range(n)]


class TestOldBlockCache:
    def test_cache_eliminates_read_before_write(self):
        primary = CountingDevice(BLOCK_SIZE, 8)
        replica = MemoryBlockDevice(BLOCK_SIZE, 8)
        engine = _engine(primary, replica, cache=8)
        blocks = _patterns(4)
        for data in blocks:
            engine.write_block(3, data)
        # first write misses (cold read), later writes hit the cache
        assert primary.reads == 1
        snap = engine.old_block_cache.snapshot()
        assert snap["misses"] == 1
        assert snap["hits"] == 3
        assert replica.read_block(3) == blocks[-1]

    def test_uncached_engine_reads_every_write(self):
        primary = CountingDevice(BLOCK_SIZE, 8)
        replica = MemoryBlockDevice(BLOCK_SIZE, 8)
        engine = _engine(primary, replica, cache=None)
        for data in _patterns(4):
            engine.write_block(3, data)
        assert primary.reads == 4
        assert engine.old_block_cache is None

    def test_cache_disabled_for_strategies_without_old_reads(self):
        primary = CountingDevice(BLOCK_SIZE, 8)
        replica = MemoryBlockDevice(BLOCK_SIZE, 8)
        engine = _engine(primary, replica, cache=8, strategy_name="traditional")
        for data in _patterns(2):
            engine.write_block(0, data)
        assert engine.old_block_cache is None
        assert primary.reads == 0

    def test_bounded_cache_evicts_and_stays_correct(self):
        primary = CountingDevice(BLOCK_SIZE, 8)
        replica = MemoryBlockDevice(BLOCK_SIZE, 8)
        engine = _engine(primary, replica, cache=2)
        blocks = _patterns(6)
        for i, data in enumerate(blocks):
            engine.write_block(i % 4, data)  # 4 LBAs through a 2-slot cache
        for i in range(4):
            expected = blocks[[j for j in range(6) if j % 4 == i][-1]]
            assert replica.read_block(i) == expected
            assert primary.read_block(i) == expected
        assert engine.old_block_cache.snapshot()["evictions"] > 0

    def test_cache_hit_lands_on_write_delta_span(self):
        tel = Telemetry(detail=True)
        primary = MemoryBlockDevice(BLOCK_SIZE, 4)
        replica = MemoryBlockDevice(BLOCK_SIZE, 4)
        engine = _engine(primary, replica, cache=4, telemetry=tel)
        for data in _patterns(2):
            engine.write_block(1, data)
        deltas = [
            r
            for r in tel.snapshot()["traces"]
            if r["name"] == "write.delta" and "cache_hit" in r.get("attrs", {})
        ]
        assert [d["attrs"]["cache_hit"] for d in deltas] == [False, True]

    def test_cache_counters_reach_metrics_registry(self):
        tel = Telemetry()
        primary = MemoryBlockDevice(BLOCK_SIZE, 4)
        replica = MemoryBlockDevice(BLOCK_SIZE, 4)
        engine = _engine(primary, replica, cache=4, telemetry=tel)
        for data in _patterns(3):
            engine.write_block(0, data)
        counters = tel.snapshot()["metrics"]["counters"]
        assert counters["cache.old_block.misses"] == 1
        assert counters["cache.old_block.hits"] == 2

    def test_snapshot_includes_cache(self):
        primary = MemoryBlockDevice(BLOCK_SIZE, 4)
        replica = MemoryBlockDevice(BLOCK_SIZE, 4)
        engine = _engine(primary, replica, cache=4)
        engine.write_block(0, _patterns(1)[0])
        snap = engine.telemetry_snapshot()
        assert snap["old_block_cache"]["capacity"] == 4
        assert snap["old_block_cache"]["size"] == 1


class TestWriteMany:
    @pytest.mark.parametrize("batched", [False, True], ids=["direct", "batched"])
    @pytest.mark.parametrize("cache", [None, 8], ids=["nocache", "cache"])
    def test_equivalent_to_sequential_writes(self, batched, cache):
        blocks = _patterns(6)
        writes = [(i % 4, blocks[i]) for i in range(6)]  # includes repeats
        images = []
        payloads = []
        for use_many in (False, True):
            primary = MemoryBlockDevice(BLOCK_SIZE, 8)
            replica = MemoryBlockDevice(BLOCK_SIZE, 8)
            batch = (
                BatchConfig(max_records=16, max_bytes=1 << 20) if batched else None
            )
            engine = _engine(primary, replica, cache=cache, batch=batch)
            if use_many:
                engine.write_many(writes)
            else:
                for lba, data in writes:
                    engine.write_block(lba, data)
            if batched:
                engine.flush_batch()
            images.append((primary.snapshot(), replica.snapshot()))
            payloads.append(engine.accountant.snapshot()["payload_bytes"])
        assert images[0] == images[1]
        assert payloads[0] == payloads[1]
        assert images[0][0] == images[0][1]  # replica converged

    def test_same_lba_twice_in_one_window(self):
        primary = MemoryBlockDevice(BLOCK_SIZE, 4)
        replica = MemoryBlockDevice(BLOCK_SIZE, 4)
        engine = _engine(
            primary,
            replica,
            cache=4,
            batch=BatchConfig(max_records=16, max_bytes=1 << 20),
        )
        first, second = _patterns(2)
        engine.write_many([(1, first), (1, second)])
        engine.flush_batch()
        assert primary.read_block(1) == second
        assert replica.read_block(1) == second

    def test_unchanged_write_in_window_is_skipped(self):
        primary = MemoryBlockDevice(BLOCK_SIZE, 4)
        replica = MemoryBlockDevice(BLOCK_SIZE, 4)
        engine = _engine(primary, replica, cache=4)
        data = _patterns(1)[0]
        engine.write_block(2, data)
        before = engine.accountant.snapshot()["payload_bytes"]
        engine.write_many([(2, data)])  # rewrite same contents: zero delta
        after = engine.accountant.snapshot()["payload_bytes"]
        assert after == before
        assert engine.accountant.snapshot()["writes_total"] == 2

    def test_empty_window_is_noop(self):
        primary = MemoryBlockDevice(BLOCK_SIZE, 4)
        replica = MemoryBlockDevice(BLOCK_SIZE, 4)
        engine = _engine(primary, replica)
        engine.write_many([])
        assert engine.accountant.snapshot()["writes_total"] == 0

    def test_validates_block_size(self):
        primary = MemoryBlockDevice(BLOCK_SIZE, 4)
        replica = MemoryBlockDevice(BLOCK_SIZE, 4)
        engine = _engine(primary, replica)
        with pytest.raises(BlockSizeError):
            engine.write_many([(0, b"short")])


class TestReplicaBatchApply:
    def test_redelivered_batch_acks_duplicates(self):
        strategy = make_strategy("prins")
        primary = MemoryBlockDevice(BLOCK_SIZE, 4)
        replica_dev = MemoryBlockDevice(BLOCK_SIZE, 4)
        replica = ReplicaEngine(replica_dev, strategy)
        engine = PrimaryEngine(
            primary,
            strategy,
            [DirectLink(replica)],
            batch=BatchConfig(max_records=16, max_bytes=1 << 20),
        )
        blocks = _patterns(3)
        engine.write_many(list(enumerate(blocks)))
        result = engine.flush_batch()
        assert result is not None
        applied_once = replica.records_applied
        # redeliver the same wire batch: every record acks as duplicate
        from repro.engine.batch import unpack_batch_ack

        ack = replica.receive_batch(result.batch.pack())
        _, applied, duplicates = unpack_batch_ack(ack)
        assert applied == 0
        assert duplicates == len(blocks)
        assert replica.records_applied == applied_once
        assert replica_dev.snapshot() == primary.snapshot()


class TestWriteBlockFrom:
    def test_copies_and_does_not_alias(self):
        dev = MemoryBlockDevice(BLOCK_SIZE, 2)
        scratch = bytearray(_patterns(1)[0])
        dev.write_block_from(1, scratch)
        assert dev.read_block(1) == bytes(scratch)
        scratch[0] ^= 0xFF  # mutating the scratch must not change the device
        assert dev.read_block(1) != bytes(scratch)

    def test_accepts_memoryview(self):
        dev = MemoryBlockDevice(BLOCK_SIZE, 2)
        data = _patterns(1)[0]
        dev.write_block_from(0, memoryview(bytearray(data)))
        assert dev.read_block(0) == data

    def test_size_validated(self):
        dev = MemoryBlockDevice(BLOCK_SIZE, 2)
        with pytest.raises(BlockSizeError):
            dev.write_block_from(0, bytearray(BLOCK_SIZE - 1))

    def test_base_class_default_path(self):
        from repro.block.device import BlockDevice

        class MinimalDevice(BlockDevice):
            def __init__(self):
                super().__init__(16, 2)
                self.store = {}

            def _read(self, lba):
                return self.store.get(lba, bytes(16))

            def _write(self, lba, data):
                self.store[lba] = data

        dev = MinimalDevice()
        scratch = bytearray(b"\x42" * 16)
        dev.write_block_from(0, scratch)
        scratch[0] = 0
        assert dev.read_block(0) == b"\x42" * 16  # default path snapshots
