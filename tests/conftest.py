"""Shared fixtures for the PRINS reproduction test suite."""

from __future__ import annotations

import os

import pytest

from repro.block import MemoryBlockDevice
from repro.common.rng import make_rng


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    """Dump live flight recorders when a test fails (CI black-box artifact).

    Active only when ``PRINS_FLIGHTREC_DIR`` is set (the CI pytest step
    sets it); each failing test writes every live non-empty
    :class:`~repro.obs.FlightRecorder` to that directory, named by the
    sanitized test node id, and the workflow uploads the directory as an
    artifact.
    """
    outcome = yield
    directory = os.environ.get("PRINS_FLIGHTREC_DIR")
    if not directory:
        return
    report = outcome.get_result()
    if report.when != "call" or not report.failed:
        return
    from repro.obs import FlightRecorder

    stem = "".join(
        c if c.isalnum() or c in "-._" else "_" for c in item.nodeid
    )
    os.makedirs(directory, exist_ok=True)
    FlightRecorder.dump_all(directory, stem)

BLOCK_SIZE = 512
NUM_BLOCKS = 64


@pytest.fixture
def rng():
    """A deterministic RNG, fresh per test."""
    return make_rng(1234, "tests")


@pytest.fixture
def device():
    """A small in-memory block device."""
    return MemoryBlockDevice(BLOCK_SIZE, NUM_BLOCKS)


@pytest.fixture
def random_block(rng):
    """One block of random (incompressible) bytes."""
    return rng.integers(0, 256, BLOCK_SIZE, dtype="u1").tobytes()


def make_block(rng, size=BLOCK_SIZE):
    """Helper: random block of ``size`` bytes."""
    return rng.integers(0, 256, size, dtype="u1").tobytes()


@pytest.fixture
def engine_stack(request):
    """Factory for a primary/replica pair wired with a given strategy."""
    from repro.engine import DirectLink, PrimaryEngine, ReplicaEngine, make_strategy

    def build(strategy_name="prins", block_size=BLOCK_SIZE, num_blocks=NUM_BLOCKS):
        primary_dev = MemoryBlockDevice(block_size, num_blocks)
        replica_dev = MemoryBlockDevice(block_size, num_blocks)
        strategy = make_strategy(strategy_name)
        replica = ReplicaEngine(replica_dev, strategy)
        engine = PrimaryEngine(primary_dev, strategy, [DirectLink(replica)])
        return engine, primary_dev, replica_dev, replica

    return build
