"""Tests for repro.common.buffers: XOR, zero tests, run detection."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.buffers import (
    count_nonzero,
    is_zero,
    nonzero_fraction,
    nonzero_runs,
    nonzero_spans,
    xor_blocks_pairwise,
    xor_bytes,
    xor_into,
    xor_reduce_blocks,
)


class TestXorBytes:
    def test_basic(self):
        assert xor_bytes(b"\x0f\xf0", b"\xff\xff") == b"\xf0\x0f"

    def test_identity_with_zeros(self):
        data = bytes(range(256))
        assert xor_bytes(data, bytes(256)) == data

    def test_self_cancels(self):
        data = b"hello world" * 20
        assert is_zero(xor_bytes(data, data))

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="length mismatch"):
            xor_bytes(b"abc", b"ab")

    def test_empty(self):
        assert xor_bytes(b"", b"") == b""

    def test_large_buffers_use_numpy_path(self):
        a = bytes(range(256)) * 64  # 16 KiB, above the numpy cutoff
        b = bytes(reversed(range(256))) * 64
        expected = bytes(x ^ y for x, y in zip(a, b))
        assert xor_bytes(a, b) == expected

    @given(st.binary(min_size=0, max_size=2048))
    def test_involution(self, data):
        """XOR is its own inverse: (a ^ b) ^ b == a."""
        key = bytes((i * 37) % 256 for i in range(len(data)))
        assert xor_bytes(xor_bytes(data, key), key) == data

    @given(st.binary(min_size=1, max_size=512), st.binary(min_size=1, max_size=512))
    def test_commutative(self, a, b):
        n = min(len(a), len(b))
        assert xor_bytes(a[:n], b[:n]) == xor_bytes(b[:n], a[:n])


class TestXorInto:
    def test_in_place(self):
        target = bytearray(b"\x01\x02\x03")
        xor_into(target, b"\x01\x02\x03")
        assert target == bytearray(3)

    def test_matches_xor_bytes(self):
        a = bytes(range(200))
        b = bytes(reversed(range(200)))
        target = bytearray(a)
        xor_into(target, b)
        assert bytes(target) == xor_bytes(a, b)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            xor_into(bytearray(3), b"ab")


class TestZeroPredicates:
    def test_is_zero_true(self):
        assert is_zero(bytes(1000))

    def test_is_zero_false(self):
        assert not is_zero(bytes(999) + b"\x01")

    def test_is_zero_empty(self):
        assert is_zero(b"")

    def test_count_nonzero(self):
        assert count_nonzero(b"\x00\x01\x00\x02\x00") == 2

    def test_nonzero_fraction(self):
        assert nonzero_fraction(b"\x00\x01\x00\x01") == 0.5

    def test_nonzero_fraction_empty(self):
        assert nonzero_fraction(b"") == 0.0


class TestNonzeroRuns:
    def test_empty(self):
        assert nonzero_runs(b"") == []

    def test_all_zero(self):
        assert nonzero_runs(bytes(100)) == []

    def test_single_run(self):
        assert nonzero_runs(b"\x00\x00\x01\x02\x00") == [(2, 2)]

    def test_run_at_start_and_end(self):
        assert nonzero_runs(b"\x01\x00\x00\x02") == [(0, 1), (3, 1)]

    def test_adjacent_runs_merge(self):
        # no zero gap between them -> one run
        assert nonzero_runs(b"\x01\x02\x03") == [(0, 3)]

    @given(st.binary(min_size=0, max_size=1024))
    def test_runs_reconstruct_buffer(self, data):
        """Runs cover exactly the nonzero bytes."""
        rebuilt = bytearray(len(data))
        for offset, length in nonzero_runs(data):
            rebuilt[offset : offset + length] = data[offset : offset + length]
        assert bytes(rebuilt) == data

    @given(st.binary(min_size=0, max_size=1024))
    def test_runs_are_separated_and_nonzero(self, data):
        runs = nonzero_runs(data)
        previous_end = -2
        for offset, length in runs:
            assert length > 0
            assert offset > previous_end + 1  # separated by >= one zero
            segment = data[offset : offset + length]
            assert segment[0] != 0 and segment[-1] != 0
            previous_end = offset + length - 1


class TestBufferProtocolInputs:
    """Every helper must accept bytes, bytearray, and memoryview alike."""

    DATA = bytes(500) + b"\x07\x09" + bytes(500) + b"\xff" * 30 + bytes(100)

    @pytest.mark.parametrize("wrap", [bytes, bytearray, memoryview])
    def test_xor_bytes_any_buffer(self, wrap):
        a, b = self.DATA, self.DATA[::-1]
        assert xor_bytes(wrap(a), wrap(b)) == xor_bytes(a, b)

    @pytest.mark.parametrize("wrap", [bytes, bytearray, memoryview])
    def test_zero_predicates_any_buffer(self, wrap):
        assert not is_zero(wrap(self.DATA))
        assert is_zero(wrap(bytes(1000)))
        assert count_nonzero(wrap(self.DATA)) == count_nonzero(self.DATA)
        assert nonzero_fraction(wrap(self.DATA)) == nonzero_fraction(self.DATA)

    @pytest.mark.parametrize("wrap", [bytes, bytearray, memoryview])
    def test_runs_any_buffer(self, wrap):
        assert nonzero_runs(wrap(self.DATA), 4) == nonzero_runs(self.DATA, 4)

    def test_xor_into_writable_memoryview(self):
        target = bytearray(self.DATA)
        xor_into(memoryview(target), self.DATA)
        assert is_zero(target)


class TestXorBlocksPairwise:
    def test_matches_per_pair_xor_across_paths(self):
        # sizes straddling the int/numpy cutoff and the stacking threshold
        for size in (16, 511, 512, 4096, 8192, 8193, 65536):
            lhs = [bytes([i % 251] * size) for i in range(5)]
            rhs = [bytes([(i * 7 + 3) % 251] * size) for i in range(5)]
            expect = [xor_bytes(a, b) for a, b in zip(lhs, rhs)]
            assert xor_blocks_pairwise(lhs, rhs) == expect

    def test_empty_sequences(self):
        assert xor_blocks_pairwise([], []) == []

    def test_zero_size_blocks(self):
        assert xor_blocks_pairwise([b"", b""], [b"", b""]) == [b"", b""]

    def test_count_mismatch_raises(self):
        with pytest.raises(ValueError):
            xor_blocks_pairwise([b"ab"], [b"ab", b"cd"])

    def test_length_mismatch_raises_even_with_zero_size_first(self):
        # regression: a zero-size first block must not bypass the
        # per-element length validation of the remaining blocks
        with pytest.raises(ValueError):
            xor_blocks_pairwise([b"", b"ab"], [b"", b"ab"])
        with pytest.raises(ValueError):
            xor_blocks_pairwise([b"ab", b"ab"], [b"ab", b"a"])

    def test_skip_zero_marks_identical_pairs_none(self):
        blocks = [b"\x01" * 4096, b"\x02" * 4096, b"\x03" * 4096]
        same = [blocks[0], b"\x00" * 4096, blocks[2]]
        out = xor_blocks_pairwise(blocks, same, skip_zero=True)
        assert out[0] is None
        assert out[1] == b"\x02" * 4096
        assert out[2] is None

    def test_skip_zero_small_and_large_paths_agree(self):
        for size in (8, 600, 65536):
            lhs = [b"\x05" * size, b"\x09" * size]
            rhs = [b"\x05" * size, b"\x00" * size]
            assert xor_blocks_pairwise(lhs, rhs, skip_zero=True) == [
                None,
                b"\x09" * size,
            ]

    @given(st.lists(st.binary(min_size=33, max_size=33), min_size=0, max_size=6))
    def test_matches_map_property(self, blocks):
        mirrored = list(reversed(blocks))
        assert xor_blocks_pairwise(blocks, mirrored) == [
            xor_bytes(a, b) for a, b in zip(blocks, mirrored)
        ]


class TestXorReduceBlocks:
    def test_single_block_copies(self):
        block = bytearray(b"\x11" * 64)
        out = xor_reduce_blocks([block])
        assert out == bytes(block)
        block[0] = 0  # result must not alias the input
        assert out[0] == 0x11

    def test_fold_matches_sequential(self):
        blocks = [bytes([i + 1] * 700) for i in range(5)]
        acc = blocks[0]
        for b in blocks[1:]:
            acc = xor_bytes(acc, b)
        assert xor_reduce_blocks(blocks) == acc

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            xor_reduce_blocks([b"abc", b"ab"])


class TestNonzeroSpans:
    def test_matches_runs(self):
        data = bytes(100) + b"\x01\x02" + bytes(3) + b"\x03" + bytes(200)
        starts, ends = nonzero_spans(data)
        assert [(int(s), int(e - s)) for s, e in zip(starts, ends)] == (
            nonzero_runs(data)
        )

    def test_edges_start_and_end_nonzero(self):
        starts, ends = nonzero_spans(b"\x01" + bytes(10) + b"\x02")
        assert list(starts) == [0, 11]
        assert list(ends) == [1, 12]

    def test_merge_gap_coalesces(self):
        data = bytearray(50)
        data[10] = 1
        data[14] = 2  # gap of 3 zeros
        starts, ends = nonzero_spans(bytes(data), merge_gap=3)
        assert list(starts) == [10] and list(ends) == [15]
        starts, ends = nonzero_spans(bytes(data), merge_gap=2)
        assert list(starts) == [10, 14]

    def test_negative_merge_gap_raises(self):
        with pytest.raises(ValueError):
            nonzero_spans(b"\x01", merge_gap=-1)

    def test_empty_buffer(self):
        starts, ends = nonzero_spans(b"")
        assert starts.size == 0 and ends.size == 0

    @given(st.binary(min_size=0, max_size=300), st.integers(0, 5))
    def test_spans_reconstruct_buffer(self, data, gap):
        starts, ends = nonzero_spans(data, merge_gap=gap)
        rebuilt = bytearray(len(data))
        for s, e in zip(starts.tolist(), ends.tolist()):
            rebuilt[s:e] = data[s:e]
        assert bytes(rebuilt) == data
