"""Tests for repro.common.buffers: XOR, zero tests, run detection."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.buffers import (
    count_nonzero,
    is_zero,
    nonzero_fraction,
    nonzero_runs,
    xor_bytes,
    xor_into,
)


class TestXorBytes:
    def test_basic(self):
        assert xor_bytes(b"\x0f\xf0", b"\xff\xff") == b"\xf0\x0f"

    def test_identity_with_zeros(self):
        data = bytes(range(256))
        assert xor_bytes(data, bytes(256)) == data

    def test_self_cancels(self):
        data = b"hello world" * 20
        assert is_zero(xor_bytes(data, data))

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="length mismatch"):
            xor_bytes(b"abc", b"ab")

    def test_empty(self):
        assert xor_bytes(b"", b"") == b""

    def test_large_buffers_use_numpy_path(self):
        a = bytes(range(256)) * 64  # 16 KiB, above the numpy cutoff
        b = bytes(reversed(range(256))) * 64
        expected = bytes(x ^ y for x, y in zip(a, b))
        assert xor_bytes(a, b) == expected

    @given(st.binary(min_size=0, max_size=2048))
    def test_involution(self, data):
        """XOR is its own inverse: (a ^ b) ^ b == a."""
        key = bytes((i * 37) % 256 for i in range(len(data)))
        assert xor_bytes(xor_bytes(data, key), key) == data

    @given(st.binary(min_size=1, max_size=512), st.binary(min_size=1, max_size=512))
    def test_commutative(self, a, b):
        n = min(len(a), len(b))
        assert xor_bytes(a[:n], b[:n]) == xor_bytes(b[:n], a[:n])


class TestXorInto:
    def test_in_place(self):
        target = bytearray(b"\x01\x02\x03")
        xor_into(target, b"\x01\x02\x03")
        assert target == bytearray(3)

    def test_matches_xor_bytes(self):
        a = bytes(range(200))
        b = bytes(reversed(range(200)))
        target = bytearray(a)
        xor_into(target, b)
        assert bytes(target) == xor_bytes(a, b)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            xor_into(bytearray(3), b"ab")


class TestZeroPredicates:
    def test_is_zero_true(self):
        assert is_zero(bytes(1000))

    def test_is_zero_false(self):
        assert not is_zero(bytes(999) + b"\x01")

    def test_is_zero_empty(self):
        assert is_zero(b"")

    def test_count_nonzero(self):
        assert count_nonzero(b"\x00\x01\x00\x02\x00") == 2

    def test_nonzero_fraction(self):
        assert nonzero_fraction(b"\x00\x01\x00\x01") == 0.5

    def test_nonzero_fraction_empty(self):
        assert nonzero_fraction(b"") == 0.0


class TestNonzeroRuns:
    def test_empty(self):
        assert nonzero_runs(b"") == []

    def test_all_zero(self):
        assert nonzero_runs(bytes(100)) == []

    def test_single_run(self):
        assert nonzero_runs(b"\x00\x00\x01\x02\x00") == [(2, 2)]

    def test_run_at_start_and_end(self):
        assert nonzero_runs(b"\x01\x00\x00\x02") == [(0, 1), (3, 1)]

    def test_adjacent_runs_merge(self):
        # no zero gap between them -> one run
        assert nonzero_runs(b"\x01\x02\x03") == [(0, 3)]

    @given(st.binary(min_size=0, max_size=1024))
    def test_runs_reconstruct_buffer(self, data):
        """Runs cover exactly the nonzero bytes."""
        rebuilt = bytearray(len(data))
        for offset, length in nonzero_runs(data):
            rebuilt[offset : offset + length] = data[offset : offset + length]
        assert bytes(rebuilt) == data

    @given(st.binary(min_size=0, max_size=1024))
    def test_runs_are_separated_and_nonzero(self, data):
        runs = nonzero_runs(data)
        previous_end = -2
        for offset, length in runs:
            assert length > 0
            assert offset > previous_end + 1  # separated by >= one zero
            segment = data[offset : offset + length]
            assert segment[0] != 0 and segment[-1] != 0
            previous_end = offset + length - 1
