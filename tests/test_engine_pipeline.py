"""Tests for asynchronous (pipelined) replication."""

from __future__ import annotations

import threading
import time

import pytest

from repro.block import MemoryBlockDevice
from repro.common.errors import ReplicationError
from repro.engine import (
    AsyncPrimaryEngine,
    AsyncReplicator,
    DirectLink,
    ReplicaEngine,
    ReplicationRecord,
    ShipWork,
    make_strategy,
    verify_consistency,
)
from repro.engine.links import ReplicaLink

BS = 512
N = 32


class _FlakyLink(ReplicaLink):
    """Fails the first ``failures`` ship attempts, then succeeds."""

    def __init__(self, inner: ReplicaLink, failures: int) -> None:
        self._inner = inner
        self._failures = failures
        self.attempts = 0

    def ship(self, lba: int, record: ReplicationRecord) -> bytes:
        self.attempts += 1
        if self.attempts <= self._failures:
            raise ConnectionError("transient network blip")
        return self._inner.submit(ShipWork.for_record(lba, record))


class _SlowLink(ReplicaLink):
    """Adds a small delay per ship, to exercise queue backpressure."""

    def __init__(self, inner: ReplicaLink, delay: float = 0.002) -> None:
        self._inner = inner
        self._delay = delay

    def ship(self, lba: int, record: ReplicationRecord) -> bytes:
        time.sleep(self._delay)
        return self._inner.submit(ShipWork.for_record(lba, record))


def _stack(strategy_name="prins", link_wrapper=None, **replicator_kwargs):
    strategy = make_strategy(strategy_name)
    primary = MemoryBlockDevice(BS, N)
    replica = MemoryBlockDevice(BS, N)
    link: ReplicaLink = DirectLink(ReplicaEngine(replica, strategy))
    if link_wrapper is not None:
        link = link_wrapper(link)
    return strategy, primary, replica, link


class TestAsyncReplicator:
    def test_ships_in_order_and_drains(self):
        strategy, _, replica, link = _stack("traditional")
        replicator = AsyncReplicator(link)
        for seq in range(1, 21):
            frame = strategy.encode_update(bytes([seq]) * BS, bytes(BS))
            replicator.submit(
                seq % N, ReplicationRecord.for_block(seq, bytes([seq]) * BS, frame)
            )
        replicator.drain()
        assert replicator.stats.shipped == 20
        assert replicator.stats.failed == 0
        replicator.close()

    def test_retries_transient_failures(self):
        strategy, _, replica, link = _stack(
            "traditional", link_wrapper=lambda l: _FlakyLink(l, failures=2)
        )
        replicator = AsyncReplicator(link, max_retries=3)
        frame = strategy.encode_update(b"r" * BS, bytes(BS))
        replicator.submit(0, ReplicationRecord.for_block(1, b"r" * BS, frame))
        replicator.drain()
        assert replicator.stats.shipped == 1
        assert replicator.stats.retried == 2
        assert replica.read_block(0) == b"r" * BS
        replicator.close()

    def test_permanent_failure_surfaces_on_drain(self):
        strategy, _, _, link = _stack(
            "traditional", link_wrapper=lambda l: _FlakyLink(l, failures=99)
        )
        replicator = AsyncReplicator(link, max_retries=1)
        frame = strategy.encode_update(b"x" * BS, bytes(BS))
        replicator.submit(0, ReplicationRecord.for_block(1, b"x" * BS, frame))
        with pytest.raises(ReplicationError, match="failed to replicate"):
            replicator.drain()
        assert replicator.stats.failed == 1

    def test_submit_after_close_rejected(self):
        _, _, _, link = _stack("traditional")
        replicator = AsyncReplicator(link)
        replicator.close()
        with pytest.raises(ReplicationError):
            replicator.submit(0, ReplicationRecord(1, 0, b""))

    def test_invalid_config(self):
        _, _, _, link = _stack("traditional")
        with pytest.raises(ValueError):
            AsyncReplicator(link, queue_depth=0)
        with pytest.raises(ValueError):
            AsyncReplicator(link, max_retries=-1)

    def test_drain_from_many_submitting_threads(self):
        strategy, _, replica, link = _stack("traditional")
        replicator = AsyncReplicator(link, queue_depth=16)
        counter = {"seq": 0}
        lock = threading.Lock()

        def submit_batch():
            for _ in range(25):
                with lock:
                    counter["seq"] += 1
                    seq = counter["seq"]
                frame = strategy.encode_update(bytes([seq % 250 + 1]) * BS, bytes(BS))
                replicator.submit(
                    seq % N,
                    ReplicationRecord.for_block(seq, bytes([seq % 250 + 1]) * BS, frame),
                )

        threads = [threading.Thread(target=submit_batch) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        replicator.drain()
        assert replicator.stats.shipped == 100
        replicator.close()


class TestAsyncPrimaryEngine:
    def test_consistency_after_drain(self, rng):
        strategy, primary, replica, link = _stack("prins")
        engine = AsyncPrimaryEngine(primary, strategy, [link])
        for _ in range(150):
            lba = int(rng.integers(0, N))
            engine.write_block(lba, rng.integers(0, 256, BS, dtype="u1").tobytes())
        engine.drain()
        assert verify_consistency(primary, replica) == []

    def test_write_does_not_wait_for_slow_link(self):
        strategy, primary, replica, link = _stack(
            "traditional", link_wrapper=_SlowLink
        )
        engine = AsyncPrimaryEngine(primary, strategy, [link], queue_depth=64)
        start = time.perf_counter()
        for lba in range(30):
            engine.write_block(lba % N, bytes([lba + 1]) * BS)
        submit_elapsed = time.perf_counter() - start
        engine.drain()
        total_elapsed = time.perf_counter() - start
        # submissions must be much faster than the full drain (pipelining)
        assert submit_elapsed < total_elapsed / 2
        assert verify_consistency(primary, replica) == []

    def test_accounting_matches_sync_engine(self, rng):
        """Async pipelining must not change what is charged to the wire."""
        from repro.engine import PrimaryEngine

        writes = [
            (int(rng.integers(0, N)), rng.integers(0, 256, BS, dtype="u1").tobytes())
            for _ in range(60)
        ]
        strategy = make_strategy("prins")
        sync_primary = MemoryBlockDevice(BS, N)
        sync_replica = MemoryBlockDevice(BS, N)
        sync_engine = PrimaryEngine(
            sync_primary, strategy,
            [DirectLink(ReplicaEngine(sync_replica, strategy))],
        )
        for lba, data in writes:
            sync_engine.write_block(lba, data)

        async_primary = MemoryBlockDevice(BS, N)
        async_replica = MemoryBlockDevice(BS, N)
        async_engine = AsyncPrimaryEngine(
            async_primary, strategy,
            [DirectLink(ReplicaEngine(async_replica, strategy))],
        )
        for lba, data in writes:
            async_engine.write_block(lba, data)
        async_engine.drain()
        assert (
            async_engine.accountant.payload_bytes
            == sync_engine.accountant.payload_bytes
        )

    def test_context_manager(self):
        strategy, primary, replica, link = _stack("traditional")
        with AsyncPrimaryEngine(primary, strategy, [link]) as engine:
            engine.write_block(0, b"c" * BS)
        assert replica.read_block(0) == b"c" * BS
