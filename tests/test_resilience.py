"""Tests for the fault-tolerance layer (engine/resilience.py).

Covers, bottom-up: fault injection (FaultyLink / FlakyTransport), retry
schedules and their determinism under a fixed seed, circuit-breaker
open/half-open/close transitions, backlog drain ordering and idempotent
re-apply at the replica, backlog-overflow → digest_sync escalation, wire
accounting for every recovery path, and the cluster-level end-to-end
degradation story the ISSUE acceptance criteria demand.
"""

from __future__ import annotations

import pytest

from repro.block import MemoryBlockDevice
from repro.common.errors import (
    ConfigurationError,
    PartialReplicationError,
    ReplicationError,
    RetriesExhaustedError,
    SyncError,
)
from repro.common.rng import make_rng
from repro.engine import (
    CircuitBreaker,
    ClusterConfig,
    DirectLink,
    FaultyLink,
    InjectedLinkError,
    LinkHealth,
    PrimaryEngine,
    ReplicaEngine,
    ResilienceConfig,
    ResilientLink,
    RetryPolicy,
    ShipWork,
    StorageCluster,
    make_strategy,
    verify_consistency,
)
from repro.engine.replica import ACK_APPLIED, ACK_DUPLICATE
from repro.engine.resilience import GuardedLink
from repro.iscsi.transport import (
    FlakyTransport,
    InjectedTransportError,
    transport_pair,
)

BS = 512
N = 16


def _pair(strategy_name: str = "prins"):
    """A (replica_engine, replica_device, base_link) triple."""
    strategy = make_strategy(strategy_name)
    replica_dev = MemoryBlockDevice(BS, N)
    replica = ReplicaEngine(replica_dev, strategy)
    return replica, replica_dev, DirectLink(replica)


def _engine(links, strategy_name: str = "prins", **kwargs):
    strategy = make_strategy(strategy_name)
    primary_dev = MemoryBlockDevice(BS, N)
    engine = PrimaryEngine(primary_dev, strategy, links, **kwargs)
    return engine, primary_dev


def block(rng, size: int = BS) -> bytes:
    return rng.integers(0, 256, size, dtype="u1").tobytes()


# ---------------------------------------------------------------------------
# FaultyLink — the injection wrapper everything else is tested through
# ---------------------------------------------------------------------------


class TestFaultyLink:
    def test_passthrough_when_healthy(self):
        replica, replica_dev, base = _pair()
        engine, primary = _engine([FaultyLink(base)])
        engine.write_block(0, b"a" * BS)
        assert replica_dev.read_block(0) == b"a" * BS

    def test_drop_raises_without_delivering(self):
        replica, replica_dev, base = _pair()
        link = FaultyLink(base)
        link.fail_next(1, "drop")
        engine, _ = _engine([link])
        with pytest.raises(PartialReplicationError) as excinfo:
            engine.write_block(0, b"b" * BS)
        assert isinstance(excinfo.value.cause, InjectedLinkError)
        assert not excinfo.value.cause.delivered
        assert replica.records_applied == 0

    def test_error_delivers_but_loses_ack(self):
        replica, replica_dev, base = _pair()
        link = FaultyLink(base)
        link.fail_next(1, "error")
        engine, _ = _engine([link])
        with pytest.raises(PartialReplicationError):
            engine.write_block(0, b"c" * BS)
        # the record reached the replica even though the write "failed"
        assert replica.records_applied == 1
        assert replica_dev.read_block(0) == b"c" * BS

    def test_duplicate_is_suppressed_by_replica(self):
        replica, replica_dev, base = _pair()
        link = FaultyLink(base)
        link.fail_next(1, "duplicate")
        engine, primary = _engine([link])
        engine.write_block(0, b"d" * BS)  # no error: dup acked quietly
        assert replica.records_applied == 1
        assert replica.records_duplicate == 1
        assert verify_consistency(primary, replica_dev) == []

    def test_kill_and_heal(self):
        replica, replica_dev, base = _pair()
        link = FaultyLink(base)
        link.kill()
        with pytest.raises(InjectedLinkError):
            link.submit(ShipWork.for_record(0, _record()))
        link.heal()
        engine, _ = _engine([link])
        engine.write_block(1, b"e" * BS)
        assert replica_dev.read_block(1) == b"e" * BS

    def test_probabilistic_faults_deterministic_under_seed(self):
        def run():
            _, _, base = _pair("traditional")
            link = FaultyLink(
                base, drop_probability=0.3, rng=make_rng(9, "flaky")
            )
            outcomes = []
            for seq in range(50):
                try:
                    link.submit(ShipWork.for_record(0, _record(seq + 1)))
                    outcomes.append("ok")
                except InjectedLinkError:
                    outcomes.append("drop")
            return outcomes

        first, second = run(), run()
        assert first == second
        assert 5 < first.count("drop") < 25

    def test_probability_validation(self):
        _, _, base = _pair()
        with pytest.raises(ValueError):
            FaultyLink(base, drop_probability=1.5)
        with pytest.raises(ValueError):
            FaultyLink(base, drop_probability=0.7, error_probability=0.7)
        with pytest.raises(ValueError):
            FaultyLink(base).fail_next(1, "melt")


def _record(seq: int = 1, data: bytes = b"x" * BS):
    # a traditional full-block frame is simplest to apply standalone
    # (ship hand-built records only at replicas built with "traditional")
    from repro.engine.messages import ReplicationRecord

    strategy = make_strategy("traditional")
    frame = strategy.encode_update(data, b"")
    return ReplicationRecord.for_block(seq, data, frame)


# ---------------------------------------------------------------------------
# RetryPolicy / ResilientLink
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    @pytest.mark.parametrize(
        "max_attempts,expected_retries", [(1, 0), (2, 1), (4, 3), (7, 6)]
    )
    def test_schedule_length_matches_budget(self, max_attempts, expected_retries):
        policy = RetryPolicy(max_attempts=max_attempts, jitter=0.0)
        assert len(policy.schedule()) == expected_retries

    def test_exponential_growth_capped(self):
        policy = RetryPolicy(
            max_attempts=8,
            base_delay_s=0.01,
            multiplier=2.0,
            max_delay_s=0.05,
            jitter=0.0,
        )
        schedule = policy.schedule()
        assert schedule[0] == pytest.approx(0.01)
        assert schedule[1] == pytest.approx(0.02)
        assert schedule[2] == pytest.approx(0.04)
        assert all(d == pytest.approx(0.05) for d in schedule[3:])

    def test_jitter_deterministic_under_fixed_seed(self):
        policy = RetryPolicy(max_attempts=6, jitter=0.5)
        a = policy.schedule(make_rng(42, "backoff"))
        b = policy.schedule(make_rng(42, "backoff"))
        c = policy.schedule(make_rng(43, "backoff"))
        assert a == b
        assert a != c
        # jitter only ever shortens the deterministic delay, never extends
        unjittered = policy.schedule()
        assert all(x <= y for x, y in zip(a, unjittered))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_delay_s=-1.0)


class TestResilientLink:
    def test_masks_transient_faults(self):
        replica, replica_dev, base = _pair()
        flaky = FaultyLink(base)
        flaky.fail_next(2, "drop")
        link = ResilientLink(flaky, RetryPolicy(max_attempts=4))
        engine, primary = _engine([link])
        engine.write_block(0, b"r" * BS)  # two drops then success
        assert link.retries == 2
        assert verify_consistency(primary, replica_dev) == []

    def test_attempt_counts_exhausted(self):
        _, _, base = _pair("traditional")
        flaky = FaultyLink(base)
        flaky.fail_next(10, "drop")
        link = ResilientLink(flaky, RetryPolicy(max_attempts=3))
        with pytest.raises(RetriesExhaustedError) as excinfo:
            link.submit(ShipWork.for_record(0, _record()))
        assert excinfo.value.attempts == 3
        assert flaky.ships_attempted == 3
        assert link.giveups == 1

    def test_retry_after_lost_ack_yields_duplicate_ack(self):
        """Delivered-but-unacked + retry = the idempotency story end-to-end."""
        replica, replica_dev, base = _pair("traditional")
        flaky = FaultyLink(base)
        flaky.fail_next(1, "error")  # applied, ack lost
        link = ResilientLink(flaky, RetryPolicy(max_attempts=2))
        ack = link.submit(ShipWork.for_record(0, _record()))
        seq, status = ReplicaEngine.parse_ack(ack)
        assert status == ACK_DUPLICATE  # replica refused to re-apply
        assert replica.records_applied == 1
        assert replica.records_duplicate == 1

    def test_nontransient_errors_propagate_immediately(self):
        class ExplodingLink(DirectLink):
            def ship(self, lba, record):
                raise ReplicationError("CRC mismatch — deterministic")

        link = ResilientLink(ExplodingLink(None), RetryPolicy(max_attempts=5))
        with pytest.raises(ReplicationError, match="CRC"):
            link.submit(ShipWork.for_record(0, _record()))
        assert link.retries == 0  # no retry budget wasted on a hard error

    def test_backoff_is_simulated_not_slept(self):
        _, _, base = _pair("traditional")
        flaky = FaultyLink(base)
        flaky.fail_next(3, "drop")
        link = ResilientLink(
            flaky,
            RetryPolicy(
                max_attempts=4, base_delay_s=10.0, max_delay_s=40.0, jitter=0.0
            ),
        )
        # would sleep 70 s if the backoff were real
        link.submit(ShipWork.for_record(0, _record()))
        assert link.simulated_backoff_s == pytest.approx(70.0)

    def test_slow_ship_counts_as_timeout(self):
        _, _, base = _pair("traditional")
        flaky = FaultyLink(base, delay_s=0.5)
        flaky.fail_next(1, "delay")
        link = ResilientLink(
            flaky,
            RetryPolicy(max_attempts=2, attempt_budget_s=0.1),
        )
        # 1st attempt over budget, 2nd clean
        ack = link.submit(ShipWork.for_record(0, _record()))
        assert link.retries == 1
        _, status = ReplicaEngine.parse_ack(ack)
        assert status == ACK_DUPLICATE  # the slow ship did deliver

    def test_on_retry_callback_charges_wire_bytes(self):
        charged: list[int] = []
        _, _, base = _pair("traditional")
        flaky = FaultyLink(base)
        flaky.fail_next(2, "drop")
        link = ResilientLink(
            flaky, RetryPolicy(max_attempts=3), on_retry=charged.append
        )
        record = _record()
        link.submit(ShipWork.for_record(0, record))
        wire = len(record.pack()) + link.pdu_overhead
        assert charged == [wire, wire]


# ---------------------------------------------------------------------------
# CircuitBreaker
# ---------------------------------------------------------------------------


class TestCircuitBreaker:
    def test_healthy_to_degraded_to_down(self):
        breaker = CircuitBreaker(degraded_after=2, down_after=4)
        for _ in range(1):
            breaker.record_failure()
        assert breaker.state is LinkHealth.HEALTHY
        breaker.record_failure()
        assert breaker.state is LinkHealth.DEGRADED
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is LinkHealth.DOWN
        assert breaker.transitions == [
            (LinkHealth.HEALTHY, LinkHealth.DEGRADED),
            (LinkHealth.DEGRADED, LinkHealth.DOWN),
        ]

    def test_success_resets_to_healthy(self):
        breaker = CircuitBreaker(degraded_after=1, down_after=3)
        breaker.record_failure()
        assert breaker.state is LinkHealth.DEGRADED
        breaker.record_success()
        assert breaker.state is LinkHealth.HEALTHY
        assert breaker.consecutive_failures == 0

    def test_open_circuit_suppresses_until_probe(self):
        breaker = CircuitBreaker(degraded_after=1, down_after=1, probe_interval=3)
        breaker.record_failure()
        assert breaker.state is LinkHealth.DOWN
        attempts = [breaker.should_attempt() for _ in range(6)]
        # every probe_interval-th call is the half-open probe
        assert attempts == [False, False, True, False, False, True]

    def test_half_open_probe_success_closes(self):
        breaker = CircuitBreaker(degraded_after=1, down_after=1, probe_interval=1)
        breaker.record_failure()
        assert breaker.should_attempt()  # half-open probe
        assert breaker.half_open
        breaker.record_success()
        assert breaker.state is LinkHealth.HEALTHY
        assert not breaker.half_open

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker(degraded_after=1, down_after=1, probe_interval=2)
        breaker.record_failure()
        assert not breaker.should_attempt()
        assert breaker.should_attempt()  # probe
        breaker.record_failure()  # probe failed
        assert breaker.state is LinkHealth.DOWN
        assert not breaker.should_attempt()  # countdown restarted

    def test_force_down(self):
        breaker = CircuitBreaker()
        breaker.force_down()
        assert breaker.state is LinkHealth.DOWN

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(degraded_after=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(degraded_after=3, down_after=2)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(probe_interval=0)


# ---------------------------------------------------------------------------
# Fault-tolerant PrimaryEngine: backlog, drain, escalation
# ---------------------------------------------------------------------------


def _resilient_stack(
    flaky_kwargs=None,
    config: ResilienceConfig | None = None,
    strategy_name: str = "prins",
):
    replica, replica_dev, base = _pair(strategy_name)
    flaky = FaultyLink(base, **(flaky_kwargs or {}))
    engine, primary = _engine(
        [flaky],
        strategy_name,
        resilience=config or ResilienceConfig(),
    )
    return engine, primary, replica, replica_dev, flaky


class TestGuardedEngine:
    def test_transient_fault_degrades_instead_of_raising(self):
        engine, primary, replica, replica_dev, flaky = _resilient_stack(
            config=ResilienceConfig(retry=RetryPolicy(max_attempts=1))
        )
        flaky.fail_next(1, "drop")
        engine.write_block(0, b"a" * BS)  # no raise
        assert engine.link_health() == [LinkHealth.DEGRADED]
        assert engine.backlog_depth(0) == 1
        assert engine.accountant.writes_journaled == 1
        assert engine.accountant.journaled_records == 1

    def test_backlog_drains_in_order_on_next_write(self, rng):
        engine, primary, replica, replica_dev, flaky = _resilient_stack(
            config=ResilienceConfig(retry=RetryPolicy(max_attempts=1))
        )
        engine.write_block(3, block(rng))
        flaky.fail_next(2, "drop")  # two writes fail -> journaled in order
        for _ in range(2):
            data = bytearray(engine.read_block(3))
            data[0:30] = block(rng, 30)
            engine.write_block(3, bytes(data))
        assert engine.backlog_depth(0) == 2
        # next healthy write drains the backlog first, then ships itself
        data = bytearray(engine.read_block(3))
        data[100:130] = block(rng, 30)
        engine.write_block(3, bytes(data))
        assert engine.backlog_depth(0) == 0
        assert verify_consistency(primary, replica_dev) == []
        assert engine.accountant.backlog_records_replayed == 2
        assert engine.accountant.backlog_replay_bytes > 0

    def test_ordering_preserved_when_drain_fails_midway(self, rng):
        """Ship-then-pop: a drain interrupted by a fresh fault loses nothing."""
        engine, primary, replica, replica_dev, flaky = _resilient_stack(
            config=ResilienceConfig(
                retry=RetryPolicy(max_attempts=1), down_after=100
            )
        )
        engine.write_block(5, block(rng))
        flaky.fail_next(3, "drop")
        for _ in range(3):
            data = bytearray(engine.read_block(5))
            data[0:20] = block(rng, 20)
            engine.write_block(5, bytes(data))
        assert engine.backlog_depth(0) == 3
        # drain attempt that dies after one replayed record
        flaky.fail_next(1, "drop")  # hits the second replayed record? no —
        # the first replay ship fails, so all 3 stay + the new write joins
        data = bytearray(engine.read_block(5))
        data[50:70] = block(rng, 20)
        engine.write_block(5, bytes(data))
        assert engine.backlog_depth(0) == 4
        # healthy write finally drains everything, in order
        engine.write_block(6, block(rng))
        assert engine.backlog_depth(0) == 0
        assert verify_consistency(primary, replica_dev) == []

    def test_duplicate_replay_acked_as_duplicate(self, rng):
        """A record applied-but-unacked is journaled; its replay must be
        suppressed by the replica, not re-XORed into corruption."""
        engine, primary, replica, replica_dev, flaky = _resilient_stack(
            config=ResilienceConfig(retry=RetryPolicy(max_attempts=1))
        )
        engine.write_block(2, block(rng))
        flaky.fail_next(1, "error")  # delivered, ack lost -> journaled anyway
        data = bytearray(engine.read_block(2))
        data[0:40] = block(rng, 40)
        engine.write_block(2, bytes(data))
        assert engine.backlog_depth(0) == 1
        engine.write_block(7, block(rng))  # drains: replay is a duplicate
        assert replica.records_duplicate >= 1
        assert verify_consistency(primary, replica_dev) == []

    def test_down_link_stops_burning_retries(self):
        engine, primary, replica, replica_dev, flaky = _resilient_stack(
            config=ResilienceConfig(
                retry=RetryPolicy(max_attempts=2),
                down_after=2,
                probe_interval=100,
            )
        )
        flaky.kill()
        for lba in range(6):
            engine.write_block(lba, bytes([lba + 1]) * BS)
        assert engine.link_health() == [LinkHealth.DOWN]
        # 2 failed fan-outs x 2 attempts each; the other 4 writes were
        # suppressed by the open circuit (no wire attempts at all)
        assert flaky.ships_attempted == 4
        assert engine.backlog_depth(0) == 6

    def test_half_open_probe_recovers_automatically(self, rng):
        engine, primary, replica, replica_dev, flaky = _resilient_stack(
            config=ResilienceConfig(
                retry=RetryPolicy(max_attempts=1),
                down_after=1,
                probe_interval=2,
            )
        )
        flaky.kill()
        engine.write_block(0, block(rng))  # fails -> DOWN
        flaky.heal()
        engine.write_block(1, block(rng))  # suppressed (journaled)
        assert engine.link_health() == [LinkHealth.DOWN]
        engine.write_block(2, block(rng))  # probe: drains backlog + ships
        assert engine.link_health() == [LinkHealth.HEALTHY]
        assert engine.backlog_depth(0) == 0
        assert verify_consistency(primary, replica_dev) == []

    def test_heal_replays_backlog(self, rng):
        engine, primary, replica, replica_dev, flaky = _resilient_stack()
        engine.fail_link(0)
        writes = {lba: block(rng) for lba in range(8)}
        for lba, data in writes.items():
            engine.write_block(lba, data)
        assert engine.link_health() == [LinkHealth.DOWN]
        assert verify_consistency(primary, replica_dev) != []
        outcome = engine.heal_link(0)
        assert outcome.mode == "replay"
        assert outcome.records_replayed == 8
        assert outcome.bytes_replayed > 0
        assert engine.link_health() == [LinkHealth.HEALTHY]
        assert verify_consistency(primary, replica_dev) == []

    def test_backlog_overflow_escalates_to_digest_sync(self, rng):
        engine, primary, replica, replica_dev, flaky = _resilient_stack(
            config=ResilienceConfig(
                backlog_capacity_bytes=1500, resync="digest"
            )
        )
        engine.fail_link(0)
        for lba in range(N):
            engine.write_block(lba, block(rng))  # overflow the tiny backlog
        assert engine.guards[0].needs_resync
        outcome = engine.heal_link(0)
        assert outcome.mode == "digest"
        assert outcome.tiers == ("digest",)
        assert outcome.sync_report is not None
        assert outcome.sync_report.blocks_copied > 0
        assert engine.accountant.resyncs == 1
        assert engine.accountant.resync_bytes == outcome.sync_report.wire_bytes
        assert verify_consistency(primary, replica_dev) == []

    def test_backlog_overflow_defaults_to_reconcile_tier(self, rng):
        engine, primary, replica, replica_dev, flaky = _resilient_stack(
            config=ResilienceConfig(backlog_capacity_bytes=1500)
        )
        engine.fail_link(0)
        for lba in range(N):
            engine.write_block(lba, block(rng))  # overflow the tiny backlog
        assert engine.guards[0].needs_resync
        outcome = engine.heal_link(0)
        assert outcome.mode == "reconcile"
        assert outcome.tiers == ("reconcile",)
        assert outcome.reconcile is not None
        assert outcome.reconcile.records_shipped > 0
        assert engine.accountant.reconciles == 1
        assert (
            engine.accountant.reconcile_bytes
            == outcome.reconcile.wire_bytes
        )
        assert verify_consistency(primary, replica_dev) == []

    def test_overflow_without_sync_device_raises_sync_error(self):
        class OpaqueLink(DirectLink):
            def sync_device(self):
                return None  # a real WAN link: no local device handle

        strategy = make_strategy("prins")
        replica_dev = MemoryBlockDevice(BS, N)
        replica = ReplicaEngine(replica_dev, strategy)
        engine, _ = _engine(
            [OpaqueLink(replica)],
            resilience=ResilienceConfig(backlog_capacity_bytes=600),
        )
        engine.fail_link(0)
        for lba in range(N):
            engine.write_block(lba, bytes([lba + 1]) * BS)
        with pytest.raises(SyncError, match="out-of-band"):
            engine.heal_link(0)

    def test_wire_accounting_splits_recovery_paths(self, rng):
        """Each recovery path lands in its own counter, so benchmarks can
        weigh backlog replay against digest resync (Dimakis' question)."""
        engine, primary, replica, replica_dev, flaky = _resilient_stack(
            config=ResilienceConfig(retry=RetryPolicy(max_attempts=3))
        )
        acct = engine.accountant
        # 1. retries
        flaky.fail_next(1, "drop")
        engine.write_block(0, block(rng))
        assert acct.retries == 1 and acct.retry_bytes > 0
        # 2. backlog replay
        engine.fail_link(0)
        engine.write_block(1, block(rng))
        engine.heal_link(0)
        assert acct.backlog_records_replayed == 1
        assert acct.backlog_replay_bytes > 0
        # 3. digest resync
        small = _resilient_stack(
            config=ResilienceConfig(
                backlog_capacity_bytes=400, resync="digest"
            )
        )
        engine2 = small[0]
        engine2.fail_link(0)
        for lba in range(N):
            engine2.write_block(lba, block(rng))
        engine2.heal_link(0)
        assert engine2.accountant.resync_bytes > 0
        assert (
            engine2.accountant.recovery_bytes
            >= engine2.accountant.resync_bytes
        )
        # 4. set reconciliation (the default overflow tier)
        tiny = _resilient_stack(
            config=ResilienceConfig(backlog_capacity_bytes=400)
        )
        engine3 = tiny[0]
        engine3.fail_link(0)
        for lba in range(N):
            engine3.write_block(lba, block(rng))
        engine3.heal_link(0)
        assert engine3.accountant.resync_bytes == 0
        assert engine3.accountant.reconcile_bytes > 0
        assert (
            engine3.accountant.recovery_bytes
            >= engine3.accountant.reconcile_bytes
        )

    def test_strict_engine_rejects_health_api(self):
        engine, _ = _engine([_pair()[2]])
        with pytest.raises(ConfigurationError):
            engine.fail_link(0)
        with pytest.raises(ConfigurationError):
            engine.heal_all()
        assert engine.link_health() == [LinkHealth.HEALTHY]


# ---------------------------------------------------------------------------
# Strict fan-out: typed partial-failure reporting (satellite)
# ---------------------------------------------------------------------------


class TestPartialReplication:
    def test_partial_error_carries_progress(self):
        r1, d1, l1 = _pair()
        r2, d2, l2 = _pair()
        bad = FaultyLink(l2)
        bad.kill()
        engine, primary = _engine([l1, bad])
        with pytest.raises(PartialReplicationError) as excinfo:
            engine.write_block(0, b"p" * BS)
        err = excinfo.value
        assert err.succeeded == (0,)
        assert err.failed_index == 1
        assert err.total_links == 2
        assert err.lba == 0
        # the first replica really does hold the data
        assert d1.read_block(0) == b"p" * BS

    def test_partial_progress_is_charged_to_accountant(self):
        _, _, l1 = _pair()
        bad = FaultyLink(_pair()[2])
        bad.kill()
        engine, _ = _engine([l1, bad])
        with pytest.raises(PartialReplicationError):
            engine.write_block(0, b"q" * BS)
        acct = engine.accountant
        assert acct.writes_total == 1
        assert acct.data_bytes == BS
        assert acct.writes_replicated == 1  # the one acked copy
        assert acct.payload_bytes > 0

    def test_zero_progress_failure_counts_as_failed_write(self):
        bad = FaultyLink(_pair()[2])
        bad.kill()
        engine, _ = _engine([bad])
        with pytest.raises(PartialReplicationError):
            engine.write_block(0, b"z" * BS)
        acct = engine.accountant
        assert acct.writes_failed == 1
        assert acct.writes_replicated == 0
        assert acct.data_bytes == BS


# ---------------------------------------------------------------------------
# FlakyTransport (PDU-level injection)
# ---------------------------------------------------------------------------


class TestFlakyTransport:
    def test_forced_error_raises(self):
        a, b = transport_pair()
        flaky = FlakyTransport(a)
        flaky.fail_next(1, "error")
        from repro.iscsi.pdu import Opcode, Pdu

        with pytest.raises(InjectedTransportError):
            flaky.send(Pdu(opcode=Opcode.NOP_OUT, itt=1))
        assert flaky.errors == 1

    def test_drop_loses_pdu_silently(self):
        a, b = transport_pair()
        flaky = FlakyTransport(a)
        flaky.fail_next(1, "drop")
        from repro.iscsi.pdu import Opcode, Pdu

        flaky.send(Pdu(opcode=Opcode.NOP_OUT, itt=1))  # "succeeds" at the sender
        with pytest.raises(TimeoutError):
            b.receive(timeout=0.05)
        flaky.send(Pdu(opcode=Opcode.NOP_OUT, itt=2))  # next one goes through
        assert b.receive(timeout=1.0).itt == 2

    def test_duplicate_delivers_twice(self):
        a, b = transport_pair()
        flaky = FlakyTransport(a)
        flaky.fail_next(1, "duplicate")
        from repro.iscsi.pdu import Opcode, Pdu

        flaky.send(Pdu(opcode=Opcode.NOP_OUT, itt=7))
        assert b.receive(timeout=1.0).itt == 7
        assert b.receive(timeout=1.0).itt == 7

    def test_kill_heal(self):
        a, b = transport_pair()
        flaky = FlakyTransport(a)
        flaky.kill()
        from repro.iscsi.pdu import Opcode, Pdu

        flaky.send(Pdu(opcode=Opcode.NOP_OUT, itt=1))
        assert flaky.drops == 1
        flaky.heal()
        flaky.send(Pdu(opcode=Opcode.NOP_OUT, itt=2))
        assert b.receive(timeout=1.0).itt == 2

    def test_validation(self):
        a, _ = transport_pair()
        with pytest.raises(ValueError):
            FlakyTransport(a, drop_probability=-0.1)
        with pytest.raises(ValueError):
            FlakyTransport(a, drop_probability=0.6, error_probability=0.6)


# ---------------------------------------------------------------------------
# Cluster-level degradation (tentpole end-to-end + acceptance criteria)
# ---------------------------------------------------------------------------


def _flaky_cluster(
    nodes: int = 4,
    fail_fraction: float = 0.3,
    seed: int = 11,
    config: ResilienceConfig | None = None,
    **cluster_overrides,
):
    cluster_config = ClusterConfig(
        nodes=nodes,
        replicas_per_node=2,
        block_size=BS,
        blocks_per_node=N,
        **cluster_overrides,
    )
    faulty: dict[tuple[int, int], FaultyLink] = {}

    def factory(primary_id, replica_id, link):
        wrapped = FaultyLink(
            link,
            drop_probability=fail_fraction * 2 / 3,
            error_probability=fail_fraction / 3,
            rng=make_rng(seed, "flaky", primary_id, replica_id),
        )
        faulty[(primary_id, replica_id)] = wrapped
        return wrapped

    cluster = StorageCluster(
        cluster_config,
        resilience=config or ResilienceConfig(),
        link_factory=factory,
    )
    return cluster, faulty


class TestClusterDegradedMode:
    def test_acceptance_200_writes_through_30pct_faulty_links(self):
        """ISSUE acceptance: 4 nodes, 30% ship failures, 200 writes, no
        raise; verify() empty after heal; retry+resync counters nonzero;
        deterministic under the fixed seed."""
        cluster, _ = _flaky_cluster(nodes=4, fail_fraction=0.3, seed=11)
        rng = make_rng(2026, "acceptance")
        for _ in range(200):
            cluster.write(
                int(rng.integers(0, 4)), int(rng.integers(0, N)), block(rng)
            )
        # graceful degradation: nothing raised; now converge and verify
        cluster.heal_all()
        assert cluster.verify() == {}
        assert cluster.total_retry_bytes > 0
        assert cluster.total_resync_bytes > 0
        assert cluster.total_recovery_bytes == (
            cluster.total_retry_bytes + cluster.total_resync_bytes
        )

    def test_acceptance_run_is_deterministic(self):
        def run():
            cluster, _ = _flaky_cluster(nodes=4, fail_fraction=0.3, seed=11)
            rng = make_rng(2026, "acceptance")
            for _ in range(200):
                cluster.write(
                    int(rng.integers(0, 4)), int(rng.integers(0, N)), block(rng)
                )
            cluster.heal_all()
            return (
                cluster.total_retry_bytes,
                cluster.total_resync_bytes,
                cluster.total_payload_bytes,
            )

        assert run() == run()

    def test_fail_node_journals_then_heal_drains(self, rng):
        cluster, _ = _flaky_cluster(fail_fraction=0.0)
        cluster.fail_node(1)
        for _ in range(40):
            node = int(rng.integers(0, 4))
            if node in cluster.down_nodes:
                continue
            cluster.write(node, int(rng.integers(0, N)), block(rng))
        report = cluster.verify_detailed()
        assert report.consistent  # lag is pending, not divergence
        assert all(
            replica_id == 1 for (_, replica_id) in report.pending
        ) and report.pending
        health = cluster.health()
        assert all(
            state is LinkHealth.DOWN
            for (_, replica_id), state in health.items()
            if replica_id == 1
        )
        outcomes = cluster.heal_node(1)
        assert any(o.mode == "replay" for o in outcomes.values())
        assert cluster.verify() == {}

    def test_read_failover_to_next_replica(self):
        cluster, _ = _flaky_cluster(fail_fraction=0.0)
        cluster.write(0, 5, b"f" * BS)  # replicas of node 0: nodes 1 and 2
        cluster.fail_node(1)
        assert cluster.read_from_replica(0, 5) == b"f" * BS  # served by 2
        cluster.fail_node(2)
        with pytest.raises(ReplicationError, match="no replica can serve"):
            cluster.read_from_replica(0, 5)

    def test_degraded_read_routing(self):
        cluster, _ = _flaky_cluster(fail_fraction=0.0)
        cluster.write(0, 3, b"g" * BS)
        cluster.fail_node(0)
        # a read addressed to the down node is served by its replica set
        assert cluster.read(0, 3) == b"g" * BS
        with pytest.raises(ReplicationError, match="down"):
            cluster.write(0, 3, b"h" * BS)
        cluster.heal_node(0)
        cluster.write(0, 3, b"h" * BS)
        assert cluster.read(0, 3) == b"h" * BS

    def test_strict_cluster_rejects_fault_api(self):
        cluster = StorageCluster(
            ClusterConfig(nodes=4, replicas_per_node=2, block_size=BS,
                          blocks_per_node=N)
        )
        with pytest.raises(ConfigurationError):
            cluster.fail_node(1)
        with pytest.raises(ConfigurationError):
            cluster.heal_all()

    def test_unknown_node_rejected(self):
        cluster, _ = _flaky_cluster()
        with pytest.raises(ConfigurationError):
            cluster.fail_node(99)


# ---------------------------------------------------------------------------
# Journal overflow: graceful degradation instead of write-path failure
# ---------------------------------------------------------------------------


class TestJournalOverflowDegradation:
    """Satellite: an overflowing journal must degrade the *replica*, never
    the primary's write path (JournalOverflowError stays internal)."""

    def test_overflow_never_raises_into_write_path(self, rng):
        engine, primary, replica, replica_dev, flaky = _resilient_stack(
            config=ResilienceConfig(backlog_capacity_bytes=1200)
        )
        engine.fail_link(0)
        for lba in range(N):  # far past capacity: no raise at any point
            engine.write_block(lba, block(rng))
        guard = engine.guards[0]
        assert guard.resync_required
        assert guard.needs_resync
        assert engine.link_health() == [LinkHealth.DOWN]
        # local writes kept succeeding the whole time
        assert engine.accountant.writes_total == N

    def test_down_mode_is_backlog_free(self, rng):
        """After overflow the guard counts writes but stops buffering:
        every journaled byte is immediately dropped (ledger closed) and
        the LBA remembered for reconcile-group invalidation."""
        engine, primary, replica, replica_dev, flaky = _resilient_stack(
            config=ResilienceConfig(backlog_capacity_bytes=1200)
        )
        engine.fail_link(0)
        for lba in range(N):
            engine.write_block(lba, block(rng))
        guard = engine.guards[0]
        assert guard.backlog.entry_count == 0  # nothing buffered
        journaled_before = engine.accountant.journaled_bytes
        dropped_before = engine.accountant.dropped_bytes
        engine.write_block(3, block(rng))
        delta_journaled = engine.accountant.journaled_bytes - journaled_before
        delta_dropped = engine.accountant.dropped_bytes - dropped_before
        assert delta_journaled == delta_dropped > 0
        assert guard.backlog.entry_count == 0
        # the ledger balances mid-outage, before any heal
        engine.verify_traffic_conservation()

    def test_racing_drain_overflow_degrades_not_raises(self, rng):
        """A JournalOverflowError surfacing from a backlog drain (the
        TOCTOU window concurrent writers can hit) must convert to
        resync-required degradation, not propagate to the caller."""
        from repro.engine.journal import JournalOverflowError

        engine, primary, replica, replica_dev, flaky = _resilient_stack(
            config=ResilienceConfig(retry=RetryPolicy(max_attempts=1))
        )
        flaky.fail_next(1, "drop")
        engine.write_block(0, block(rng))  # journals one record
        guard = engine.guards[0]
        assert guard.backlog.entry_count == 1

        def exploding_replay(link):
            raise JournalOverflowError("overflowed under a racing writer")

        guard.backlog.replay = exploding_replay
        engine.write_block(1, block(rng))  # drain blows up -> no raise
        del guard.backlog.replay
        assert guard.resync_required
        assert engine.link_health() == [LinkHealth.DOWN]
        outcome = engine.heal_link(0)
        assert outcome.mode == "reconcile"
        assert verify_consistency(primary, replica_dev) == []
        engine.verify_traffic_conservation()

    def test_overflow_then_heal_converges_and_balances(self, rng):
        engine, primary, replica, replica_dev, flaky = _resilient_stack(
            config=ResilienceConfig(backlog_capacity_bytes=1200)
        )
        engine.fail_link(0)
        for lba in range(N):
            engine.write_block(lba, block(rng))
        outcome = engine.heal_link(0)
        assert outcome.mode == "reconcile"
        assert not engine.guards[0].needs_resync
        assert engine.link_health() == [LinkHealth.HEALTHY]
        assert verify_consistency(primary, replica_dev) == []
        engine.verify_traffic_conservation()


# ---------------------------------------------------------------------------
# The reconcile tier inside the heal ladder (tentpole integration)
# ---------------------------------------------------------------------------


class TestReconcileTier:
    def test_stall_falls_back_to_digest_sweep(self, rng, monkeypatch):
        """Sketches that never decode (every key hashes to bit 0) must walk
        reconcile -> digest and still converge byte-identically."""
        import repro.engine.reconcile as reconcile_mod

        monkeypatch.setattr(
            reconcile_mod, "_bit_of", lambda lba, crc, nbits, salt: 0
        )
        engine, primary, replica, replica_dev, flaky = _resilient_stack(
            config=ResilienceConfig(backlog_capacity_bytes=1200)
        )
        engine.fail_link(0)
        for lba in range(N):
            engine.write_block(lba, block(rng))
        outcome = engine.heal_link(0)
        assert outcome.mode == "digest"
        assert outcome.tiers == ("reconcile", "digest")
        assert outcome.sync_report is not None
        assert verify_consistency(primary, replica_dev) == []
        # both tiers' wire bytes are on the ledger, and it balances
        assert engine.accountant.reconcile_bytes > 0
        assert engine.accountant.resync_bytes > 0
        engine.verify_traffic_conservation()

    def test_fault_mid_reconcile_resumes_idempotently(self, rng):
        """A link fault mid-reconcile propagates out of heal() with the
        session retained; the guard stays resync-required (never HEALTHY
        with divergent blocks) and the next heal resumes and converges."""
        engine, primary, replica, replica_dev, flaky = _resilient_stack(
            config=ResilienceConfig(
                backlog_capacity_bytes=1200,
                retry=RetryPolicy(max_attempts=1),
            )
        )
        engine.fail_link(0)
        for lba in range(N):
            engine.write_block(lba, block(rng))
        flaky.fail_next(1, "drop")  # one attempt per record: ship fails
        with pytest.raises(ReplicationError):
            engine.heal_link(0)
        guard = engine.guards[0]
        assert guard.needs_resync  # divergence is still advertised
        assert engine.link_health() != [LinkHealth.HEALTHY]
        assert verify_consistency(primary, replica_dev) != []
        outcome = engine.heal_link(0)  # resume: fault cleared
        assert outcome.mode == "reconcile"
        assert outcome.reconcile.groups_verified == (
            outcome.reconcile.groups_total
        )
        assert not guard.needs_resync
        assert verify_consistency(primary, replica_dev) == []
        engine.verify_traffic_conservation()

    def test_write_during_suspended_reconcile_is_reconciled(self, rng):
        """Writes landing between a faulted heal and its resume must
        invalidate their groups: the resumed session may not trust a
        previously verified group that went stale."""
        engine, primary, replica, replica_dev, flaky = _resilient_stack(
            config=ResilienceConfig(
                backlog_capacity_bytes=1200,
                retry=RetryPolicy(max_attempts=1),
            )
        )
        engine.fail_link(0)
        for lba in range(N):
            engine.write_block(lba, block(rng))
        flaky.fail_next(1, "drop")
        with pytest.raises(ReplicationError):
            engine.heal_link(0)
        # mid-suspension writes: suppressed, counted, remembered
        late = {lba: block(rng) for lba in (0, N - 1)}
        for lba, data in late.items():
            engine.write_block(lba, data)
        outcome = engine.heal_link(0)
        assert outcome.mode == "reconcile"
        assert verify_consistency(primary, replica_dev) == []
        for lba, data in late.items():
            assert replica_dev.read_block(lba) == data
        engine.verify_traffic_conservation()

    def test_reconcile_outcome_snapshot_reaches_telemetry(self, rng):
        engine, primary, replica, replica_dev, flaky = _resilient_stack(
            config=ResilienceConfig(backlog_capacity_bytes=1200)
        )
        engine.fail_link(0)
        for lba in range(N):
            engine.write_block(lba, block(rng))
        engine.heal_link(0)
        snap = engine.accountant.snapshot()["resilience"]
        assert snap["reconciles"] == 1
        assert snap["reconcile_bytes"] == (
            snap["reconcile_sketch_bytes"]
            + snap["reconcile_digest_bytes"]
            + snap["reconcile_diff_bytes"]
        )
        assert snap["reconcile_bytes"] > 0

    def test_digest_mode_never_builds_a_session(self, rng):
        engine, primary, replica, replica_dev, flaky = _resilient_stack(
            config=ResilienceConfig(
                backlog_capacity_bytes=1200, resync="digest"
            )
        )
        engine.fail_link(0)
        for lba in range(N):
            engine.write_block(lba, block(rng))
        outcome = engine.heal_link(0)
        assert outcome.mode == "digest"
        assert outcome.tiers == ("digest",)
        assert engine.accountant.reconciles == 0
        assert engine.accountant.reconcile_bytes == 0

    def test_resync_mode_validated(self):
        with pytest.raises(ConfigurationError, match="resync"):
            ResilienceConfig(resync="rsync")


# ---------------------------------------------------------------------------
# Faults injected mid-heal (satellite: FlakyTransport / FaultyLink)
# ---------------------------------------------------------------------------


def _iscsi_resilient_stack(config=None, timeout: float = 0.25):
    """A resilient engine over in-process iSCSI with a FlakyTransport in
    the middle (initiator side), so PDU-level faults hit the heal path."""
    import threading

    from repro.engine import InitiatorLink
    from repro.iscsi import Initiator, Target

    strategy = make_strategy("prins")
    replica_dev = MemoryBlockDevice(BS, N)
    replica = ReplicaEngine(replica_dev, strategy)
    target = Target(replica_dev, replication_handler=replica.receive)
    t_end, i_end = transport_pair()
    threading.Thread(target=target.serve, args=(t_end,), daemon=True).start()
    flaky = FlakyTransport(i_end)
    link = InitiatorLink(Initiator(flaky, timeout=timeout))
    primary_dev = MemoryBlockDevice(BS, N)
    engine = PrimaryEngine(
        primary_dev,
        strategy,
        [link],
        resilience=config or ResilienceConfig(),
    )
    return engine, primary_dev, replica_dev, flaky


class TestHealUnderFlakyTransport:
    """Satellite: PDU-level faults injected *during* heal.  Replay rides
    the real wire, so FlakyTransport can hit it; the digest/reconcile
    tiers need a sync device, which iSCSI links do not expose — their
    mid-heal faults are exercised via FaultyLink in TestReconcileTier."""

    def test_drop_mid_replay_then_second_heal_converges(self, rng):
        engine, primary_dev, replica_dev, flaky = _iscsi_resilient_stack(
            config=ResilienceConfig(retry=RetryPolicy(max_attempts=1))
        )
        engine.fail_link(0)
        writes = {lba: block(rng) for lba in range(6)}
        for lba, data in writes.items():
            engine.write_block(lba, data)
        flaky.fail_next(1, "drop")  # the ack never comes: replay faults
        with pytest.raises((ReplicationError, TimeoutError)):
            engine.heal_link(0)
        assert verify_consistency(primary_dev, replica_dev) != []
        outcome = engine.heal_link(0)  # backlog retained: replay resumes
        assert outcome.mode == "replay"
        assert verify_consistency(primary_dev, replica_dev) == []

    def test_error_mid_replay_is_absorbed_by_retries(self, rng):
        engine, primary_dev, replica_dev, flaky = _iscsi_resilient_stack(
            config=ResilienceConfig(retry=RetryPolicy(max_attempts=3))
        )
        engine.fail_link(0)
        for lba in range(6):
            engine.write_block(lba, block(rng))
        flaky.fail_next(1, "error")
        outcome = engine.heal_link(0)  # retry layer eats the PDU error
        assert outcome.mode == "replay"
        assert outcome.records_replayed == 6
        assert verify_consistency(primary_dev, replica_dev) == []

    def test_duplicate_mid_replay_is_idempotent(self, rng):
        """A duplicated PDU delivers the same record twice; the replica's
        seq check must ack the duplicate without reapplying (a PRINS XOR
        delta applied twice would cancel itself)."""
        engine, primary_dev, replica_dev, flaky = _iscsi_resilient_stack()
        engine.fail_link(0)
        for lba in range(6):
            engine.write_block(lba, block(rng))
        flaky.fail_next(1, "duplicate")
        try:
            outcome = engine.heal_link(0)
            assert outcome.mode == "replay"
        except ReplicationError:
            # the duplicate's stray response can poison the next exchange;
            # the backlog retains whatever did not ack, so heal resumes
            outcome = engine.heal_link(0)
        assert verify_consistency(primary_dev, replica_dev) == []


# ---------------------------------------------------------------------------
# Heal-time wire bytes obey the conservation law (satellite)
# ---------------------------------------------------------------------------


class TestHealCycleConservation:
    def test_every_recovery_path_balances(self, rng):
        """One engine pushed through retry, replay, reconcile and digest
        recovery; the per-replica ledger must balance after each heal."""
        engine, primary, replica, replica_dev, flaky = _resilient_stack(
            config=ResilienceConfig(
                retry=RetryPolicy(max_attempts=2),
                backlog_capacity_bytes=1500,
            )
        )
        # retry path
        flaky.fail_next(1, "drop")
        engine.write_block(0, block(rng))
        engine.verify_traffic_conservation()
        # replay path
        engine.fail_link(0)
        engine.write_block(1, block(rng))
        engine.heal_link(0)
        engine.verify_traffic_conservation()
        # reconcile path (overflow the backlog first)
        engine.fail_link(0)
        for lba in range(N):
            engine.write_block(lba, block(rng))
        assert engine.heal_link(0).mode == "reconcile"
        outstanding = engine.verify_traffic_conservation()
        assert all(v == 0 for v in outstanding.values())
        # digest path: force a stale replica block behind the sketch's back
        replica_dev.write_block(2, block(rng))
        engine.guards[0].resync_required = True
        assert engine.heal_link(0).mode == "reconcile"
        assert verify_consistency(primary, replica_dev) == []
        engine.verify_traffic_conservation()

    def test_cluster_wide_conservation_after_heal_cycles(self):
        cluster, _ = _flaky_cluster(nodes=4, fail_fraction=0.3, seed=11)
        rng = make_rng(2026, "conservation")
        for _ in range(120):
            cluster.write(
                int(rng.integers(0, 4)), int(rng.integers(0, N)), block(rng)
            )
        cluster.heal_all()
        outstanding = cluster.verify_traffic_conservation()
        assert set(outstanding) == {0, 1, 2, 3}
        for per_replica in outstanding.values():
            assert all(v == 0 for v in per_replica.values())

    def test_overflowed_cluster_heals_through_reconcile(self, rng):
        cluster, faulty = _flaky_cluster(
            fail_fraction=0.0,
            config=ResilienceConfig(backlog_capacity_bytes=1500),
        )
        cluster.fail_node(1)
        for _ in range(80):
            node = int(rng.integers(0, 4))
            if node in cluster.down_nodes:
                continue
            cluster.write(node, int(rng.integers(0, N)), block(rng))
        outcomes = cluster.heal_node(1)
        assert any(o.mode in ("reconcile", "replay") for o in outcomes.values())
        assert cluster.verify() == {}
        assert cluster.total_resync_bytes >= 0
        cluster.verify_traffic_conservation()


# ---------------------------------------------------------------------------
# Stress (excluded from tier-1: run with `pytest -m stress`)
# ---------------------------------------------------------------------------


@pytest.mark.stress
class TestStress:
    def test_six_node_soak_converges_after_heal(self):
        """500 writes through probabilistically faulty links on a 6-node
        cluster, with mid-run node failures and heals; after heal_all the
        whole cluster must converge to byte-identical replicas."""
        cluster, faulty = _flaky_cluster(
            nodes=6,
            fail_fraction=0.25,
            seed=5,
            config=ResilienceConfig(
                retry=RetryPolicy(max_attempts=2),
                down_after=2,
                probe_interval=3,
                backlog_capacity_bytes=64 * 1024,
            ),
        )
        def heal_with_retries(fn, attempts=50):
            # Replay during heal still rides the (faulty) wire; a transient
            # failure mid-drain retains the unshipped tail, so retrying the
            # heal resumes where it stopped and converges quickly.
            for _ in range(attempts):
                try:
                    return fn()
                except ReplicationError:
                    continue
            return fn()

        rng = make_rng(77, "soak")
        for step in range(500):
            if step == 150:
                cluster.fail_node(2)
            if step == 300:
                heal_with_retries(lambda: cluster.heal_node(2))
            if step == 350:
                cluster.fail_node(5)
            node = int(rng.integers(0, 6))
            if node in cluster.down_nodes:
                node = (node + 1) % 6
            cluster.write(node, int(rng.integers(0, N)), block(rng))
        report = cluster.verify_detailed()
        assert report.consistent  # any mismatch must be explained backlog
        heal_with_retries(cluster.heal_all)
        assert cluster.verify() == {}
        assert cluster.total_retry_bytes > 0
        assert cluster.total_resync_bytes > 0

    def test_heal_ladder_soak_under_flaky_transport(self):
        """Repeated outage/overflow/heal cycles with probabilistic PDU
        faults riding every replay: each converged heal must leave the
        replica byte-identical, and a faulted heal must never report
        healthy with divergent blocks."""
        engine, primary_dev, replica_dev, flaky = _iscsi_resilient_stack(
            config=ResilienceConfig(
                retry=RetryPolicy(max_attempts=3),
                backlog_capacity_bytes=64 * 1024,
            )
        )
        flaky._drop_p = 0.1
        flaky._error_p = 0.05
        flaky._duplicate_p = 0.05
        rng = make_rng(99, "heal-soak")
        for cycle in range(6):
            engine.fail_link(0)
            for _ in range(24):  # replay-tier heals (iSCSI has no
                # sync device, so overflow would need out-of-band resync)
                engine.write_block(int(rng.integers(0, N)), block(rng))
            for _ in range(60):
                try:
                    engine.heal_link(0)
                except (ReplicationError, TimeoutError, SyncError):
                    assert engine.guards[0].needs_resync or (
                        engine.guards[0].backlog_depth > 0
                    )
                    continue
                break
            assert verify_consistency(primary_dev, replica_dev) == [], cycle
        engine.verify_traffic_conservation()
