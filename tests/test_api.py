"""Tests for the repro.api front door and the Link.submit deprecation shims."""

from __future__ import annotations

import json
import random
import warnings

import pytest

from repro.api import ReplicationConfig, open_cluster, open_primary
from repro.block import MemoryBlockDevice
from repro.common.errors import ConfigurationError
from repro.engine import (
    DirectLink,
    PrimaryEngine,
    ReplicaEngine,
    ShipWork,
    make_strategy,
)
from repro.engine.links import reset_deprecation_warnings
from repro.obs.telemetry import NULL_TELEMETRY

BS = 512
N = 32


def _writes(engine, count=40, seed=3):
    rng = random.Random(seed)
    for _ in range(count):
        engine.write_block(
            rng.randrange(N), bytes(rng.randrange(256) for _ in range(BS))
        )


class TestReplicationConfig:
    def test_defaults_are_paper_baseline(self):
        config = ReplicationConfig()
        assert config.strategy == "prins"
        assert config.fanout == "sequential"
        assert config.batch_records is None
        assert config.resilient is False
        assert config.telemetry is False

    def test_dict_round_trip_is_lossless(self):
        config = ReplicationConfig(
            strategy="compressed",
            codec="zlib",
            replicas=3,
            batch_records=16,
            old_block_cache=64,
            fanout="pipelined",
            window=4,
            per_link_latency_s=(0.001, 0.002, 0.004),
            resilient=True,
            telemetry=True,
            seed=9,
        )
        rebuilt = ReplicationConfig.from_dict(config.to_dict())
        assert rebuilt == config

    def test_round_trip_survives_json(self):
        config = ReplicationConfig(per_link_latency_s=(0.5,), window=2)
        over_the_wire = json.loads(json.dumps(config.to_dict()))
        assert ReplicationConfig.from_dict(over_the_wire) == config

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            ReplicationConfig.from_dict({"strategy": "prins", "bogus": 1})

    def test_invalid_fanout_rejected(self):
        with pytest.raises(ConfigurationError):
            ReplicationConfig(fanout="multicast")

    def test_traditional_with_codec_rejected(self):
        with pytest.raises(ConfigurationError):
            ReplicationConfig(strategy="traditional", codec="zlib")

    def test_derived_configs(self):
        config = ReplicationConfig(
            batch_records=8, resilient=True, fanout="pipelined", window=3
        )
        assert config.batch_config().max_records == 8
        assert config.resilience_config() is not None
        assert config.scheduler_config().window == 3
        sequential = ReplicationConfig()
        assert sequential.batch_config() is None
        assert sequential.resilience_config() is None
        assert sequential.scheduler_config() is None

    def test_scheduler_config_carries_seed(self):
        config = ReplicationConfig(fanout="pipelined", seed=77)
        assert config.scheduler_config().seed == 77


class TestConcurrencyConfig:
    """The unified transport/workers surface added by the GIL-escape tier."""

    def test_round_trip_with_concurrency_fields(self):
        config = ReplicationConfig(
            transport="asyncio",
            workers="process",
            worker_count=3,
            ring_slots=4,
            fanout="pipelined",
        )
        over_the_wire = json.loads(json.dumps(config.to_dict()))
        assert ReplicationConfig.from_dict(over_the_wire) == config

    def test_legacy_scheduler_mode_dict_still_loads(self):
        reset_deprecation_warnings()
        with pytest.warns(DeprecationWarning):
            config = ReplicationConfig.from_dict({"scheduler_mode": "threads"})
        assert config.workers == "threads"
        assert "scheduler_mode" not in config.to_dict()
        reset_deprecation_warnings()

    def test_scheduler_mode_kwarg_maps_and_warns_once(self):
        reset_deprecation_warnings()
        with pytest.warns(DeprecationWarning):
            config = ReplicationConfig(scheduler_mode="sim")
        assert config.workers == "inline"
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ReplicationConfig(scheduler_mode="threads")  # warned already
        with pytest.raises(ConfigurationError):
            ReplicationConfig(scheduler_mode="bogus")
        reset_deprecation_warnings()

    def test_cross_field_validation(self):
        with pytest.raises(ConfigurationError):
            ReplicationConfig(transport="carrier-pigeon")
        with pytest.raises(ConfigurationError):
            ReplicationConfig(workers="fibers")
        with pytest.raises(ConfigurationError):
            ReplicationConfig(worker_count=2)  # needs workers="process"
        with pytest.raises(ConfigurationError):
            ReplicationConfig(ring_slots=4)  # needs workers="process"
        with pytest.raises(ConfigurationError):
            ReplicationConfig(workers="process", ring_slots=1)
        with pytest.raises(ConfigurationError):
            ReplicationConfig(transport="tcp", resilient=True)
        with pytest.raises(ConfigurationError):
            ReplicationConfig(transport="tcp", redundancy="erasure")
        with pytest.raises(ConfigurationError):
            ReplicationConfig(transport="asyncio", shards=2)

    def test_scheduler_config_carries_worker_fields(self):
        config = ReplicationConfig(
            fanout="pipelined", workers="process", worker_count=2, ring_slots=4
        )
        derived = config.scheduler_config()
        assert derived.workers == "process"
        assert derived.worker_count == 2
        assert derived.ring_slots == 4

    def test_cluster_rejects_networked_transport(self):
        with pytest.raises(ConfigurationError):
            open_cluster(ReplicationConfig(transport="tcp", nodes=2))

    @pytest.mark.parametrize("transport", ["tcp", "asyncio"])
    def test_networked_facade_matches_inline(self, transport):
        """tcp/asyncio stacks: replica images and ledger match inline."""

        def run(tier):
            config = ReplicationConfig(
                block_size=BS, num_blocks=N, replicas=2, transport=tier
            )
            with open_primary(config) as stack:
                _writes(stack.engine)
                stack.drain()
                assert stack.verify()
                return (
                    [d.snapshot() for d in stack.replica_devices],
                    stack.engine.accountant.snapshot(),
                )

        assert run(transport) == run("inline")

    def test_networked_stack_closes_servers(self):
        config = ReplicationConfig(block_size=BS, num_blocks=N, transport="tcp")
        stack = open_primary(config)
        assert len(stack.servers) == 1
        _writes(stack.engine, count=4)
        stack.close()
        assert stack.servers == []
        stack.close()  # idempotent

    def test_process_pool_owned_by_stack(self):
        config = ReplicationConfig(
            block_size=BS, num_blocks=N, workers="process", worker_count=1
        )
        stack = open_primary(config)
        assert stack.codec_pool is not None
        assert stack.engine.codec_pool is stack.codec_pool
        _writes(stack.engine, count=4)
        assert stack.verify()
        stack.close()
        assert stack.codec_pool is None


class TestOpenPrimary:
    def test_facade_matches_hand_wiring(self):
        """open_primary must produce bit-identical traffic to manual setup."""
        image_rng = random.Random(1)
        image_device = MemoryBlockDevice(BS, N)
        for lba in range(N):
            image_device.write_block(
                lba, bytes(image_rng.randrange(256) for _ in range(BS))
            )
        image = image_device.snapshot()

        strategy = make_strategy("prins")
        manual_primary = MemoryBlockDevice(BS, N)
        manual_primary.load(image)
        manual_replica = MemoryBlockDevice(BS, N)
        manual_replica.load(image)
        manual = PrimaryEngine(
            manual_primary,
            strategy,
            [DirectLink(ReplicaEngine(manual_replica, strategy))],
        )
        _writes(manual)

        config = ReplicationConfig(block_size=BS, num_blocks=N)
        with open_primary(config, initial_image=image) as stack:
            _writes(stack.engine)
            assert (
                stack.engine.accountant.payload_bytes
                == manual.accountant.payload_bytes
            )
            assert stack.device.snapshot() == manual_primary.snapshot()
            assert (
                stack.replica_devices[0].snapshot()
                == manual_replica.snapshot()
            )

    def test_stack_verify_and_drain(self):
        config = ReplicationConfig(
            block_size=BS, num_blocks=N, replicas=2, fanout="pipelined"
        )
        with open_primary(config) as stack:
            _writes(stack.engine)
            stack.drain()
            assert stack.verify()

    def test_link_factory_decorates_channels(self):
        seen = []

        def factory(index, link):
            seen.append(index)
            return link

        config = ReplicationConfig(block_size=BS, num_blocks=N, replicas=3)
        open_primary(config, link_factory=factory)
        assert seen == [0, 1, 2]

    def test_telemetry_off_by_default(self):
        stack = open_primary(ReplicationConfig(block_size=BS, num_blocks=N))
        assert stack.telemetry is NULL_TELEMETRY

    def test_telemetry_toggle_installs_live_registry(self):
        stack = open_primary(
            ReplicationConfig(block_size=BS, num_blocks=N, telemetry=True)
        )
        assert stack.telemetry.enabled
        stack.engine.write_block(0, b"x" * BS)
        assert "api.primary" in stack.telemetry.snapshot()["sources"]


class TestOpenCluster:
    def test_cluster_shape_from_config(self):
        cluster = open_cluster(
            ReplicationConfig(
                block_size=BS, num_blocks=N, nodes=5, replicas_per_node=2
            )
        )
        assert cluster.config.nodes == 5
        assert cluster.config.population == 10

    def test_resilient_pipelined_cluster_round_trip(self):
        config = ReplicationConfig(
            block_size=BS,
            num_blocks=N,
            nodes=3,
            replicas_per_node=1,
            resilient=True,
            fanout="pipelined",
            window=2,
            link_latency_s=0.002,
        )
        cluster = open_cluster(config)
        rng = random.Random(4)
        for _ in range(30):
            cluster.write(
                rng.randrange(3),
                rng.randrange(N),
                bytes(rng.randrange(256) for _ in range(BS)),
            )
        cluster.drain()
        assert cluster.verify() == {}
        cluster.fail_node(1)
        cluster.write(0, 0, b"q" * BS)
        cluster.drain()
        cluster.heal_node(1)
        cluster.drain()
        assert cluster.verify() == {}
        for node in cluster.nodes:
            node.engine.verify_traffic_conservation()

    def test_codec_flows_into_cluster_strategy(self):
        cluster = open_cluster(
            ReplicationConfig(
                block_size=BS, num_blocks=N, nodes=2, replicas_per_node=1,
                codec="zlib",
            )
        )
        assert cluster.config.codec == "zlib"


class TestDeprecationShims:
    def _link(self):
        strategy = make_strategy("prins")
        device = MemoryBlockDevice(BS, N)
        return DirectLink(ReplicaEngine(device, strategy)), strategy

    def _record(self, strategy):
        engine = PrimaryEngine(
            MemoryBlockDevice(BS, N), strategy, links=None
        )
        del engine
        # build a record through a throwaway engine write
        device = MemoryBlockDevice(BS, N)
        sink = ReplicaEngine(MemoryBlockDevice(BS, N), strategy)
        captured = []

        class Capture(DirectLink):
            def _submit_record(self, lba, record):
                captured.append((lba, record))
                return super()._submit_record(lba, record)

        engine = PrimaryEngine(device, strategy, [Capture(sink)])
        engine.write_block(0, b"m" * BS)
        return captured[0]

    def test_ship_warns_once_per_process(self):
        reset_deprecation_warnings()
        link, strategy = self._link()
        lba, record = self._record(strategy)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            link.ship(lba, record)
            link.ship(lba, record)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "submit" in str(deprecations[0].message)

    def test_ship_shim_delivers_via_submit(self):
        """ship() and submit() produce identical acks on identical links."""
        reset_deprecation_warnings()
        old_link, strategy = self._link()
        new_link, _ = self._link()
        lba, record = self._record(strategy)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            old_ack = old_link.ship(lba, record)
        new_ack = new_link.submit(ShipWork.for_record(lba, record))
        assert old_ack == new_ack

    def test_legacy_ship_override_still_routes(self):
        """Old subclasses that only override ship() keep working."""
        reset_deprecation_warnings()
        calls = []

        class LegacyLink(DirectLink):
            def ship(self, lba, record):
                calls.append(lba)
                return super()._submit_record(lba, record)

        strategy = make_strategy("prins")
        replica_device = MemoryBlockDevice(BS, N)
        link = LegacyLink(ReplicaEngine(replica_device, strategy))
        engine = PrimaryEngine(MemoryBlockDevice(BS, N), strategy, [link])
        engine.write_block(5, b"y" * BS)
        assert calls == [5]
        assert replica_device.read_block(5) == b"y" * BS

    def test_internal_paths_do_not_warn(self):
        """The hot paths must never touch the deprecated shims."""
        reset_deprecation_warnings()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            config = ReplicationConfig(
                block_size=BS, num_blocks=N, replicas=2,
                resilient=True, batch_records=4, fanout="pipelined",
            )
            with open_primary(config) as stack:
                _writes(stack.engine, count=20)
                stack.drain()
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]

    def test_routed_sharded_paths_do_not_warn(self):
        """The read-routing and multi-primary paths stay shim-free too."""
        reset_deprecation_warnings()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            config = ReplicationConfig(
                block_size=BS, num_blocks=N, replicas=2,
                resilient=True, fanout="pipelined",
                shards=2, read_policy="replica",
            )
            with open_primary(config) as stack:
                _writes(stack.engine, count=20)
                stack.drain()
                for lba in range(N):
                    stack.engine.read_block(lba)
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]

    def test_guarded_link_shims_removed(self):
        """GuardedLink's own ship overrides are gone; submit is the path.

        (The base ReplicaLink shims remain for external callers — only
        the GuardedLink-specific overrides, which had no callers left,
        were removed.)
        """
        from repro.engine import GuardedLink

        assert "ship" not in GuardedLink.__dict__
        assert "ship_batch" not in GuardedLink.__dict__
        assert "submit" in GuardedLink.__dict__
