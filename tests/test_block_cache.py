"""Tests for the bounded LRU block cache serving A_old reads."""

from __future__ import annotations

import pytest

from repro.block import BlockCache


class TestBlockCacheBasics:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            BlockCache(0)
        with pytest.raises(ValueError):
            BlockCache(-3)

    def test_miss_then_hit(self):
        cache = BlockCache(4)
        assert cache.get(7) is None
        cache.put(7, b"seven")
        assert cache.get(7) == b"seven"
        snap = cache.snapshot()
        assert snap["hits"] == 1
        assert snap["misses"] == 1
        assert snap["evictions"] == 0

    def test_put_overwrites(self):
        cache = BlockCache(2)
        cache.put(1, b"a")
        cache.put(1, b"b")
        assert cache.get(1) == b"b"
        assert len(cache) == 1

    def test_contains_and_len(self):
        cache = BlockCache(2)
        cache.put(5, b"x")
        assert 5 in cache
        assert 6 not in cache
        assert len(cache) == 1

    def test_repr_mentions_occupancy(self):
        cache = BlockCache(3)
        cache.put(1, b"x")
        assert "capacity=3" in repr(cache)
        assert "size=1" in repr(cache)


class TestBlockCacheLru:
    def test_evicts_least_recently_used(self):
        cache = BlockCache(2)
        cache.put(1, b"a")
        cache.put(2, b"b")
        cache.get(1)  # 1 becomes most recently used
        cache.put(3, b"c")  # evicts 2
        assert 2 not in cache
        assert cache.get(1) == b"a"
        assert cache.get(3) == b"c"
        assert cache.snapshot()["evictions"] == 1

    def test_put_refreshes_recency(self):
        cache = BlockCache(2)
        cache.put(1, b"a")
        cache.put(2, b"b")
        cache.put(1, b"a2")  # re-put refreshes 1
        cache.put(3, b"c")  # evicts 2, not 1
        assert 1 in cache and 3 in cache and 2 not in cache

    def test_capacity_one(self):
        cache = BlockCache(1)
        cache.put(1, b"a")
        cache.put(2, b"b")
        assert 1 not in cache
        assert cache.get(2) == b"b"


class TestBlockCacheInvalidate:
    def test_invalidate_single(self):
        cache = BlockCache(4)
        cache.put(1, b"a")
        cache.put(2, b"b")
        cache.invalidate(1)
        assert 1 not in cache
        assert 2 in cache

    def test_invalidate_missing_is_noop(self):
        cache = BlockCache(4)
        cache.put(1, b"a")
        cache.invalidate(9)
        assert 1 in cache

    def test_invalidate_all(self):
        cache = BlockCache(4)
        cache.put(1, b"a")
        cache.put(2, b"b")
        cache.invalidate()
        assert len(cache) == 0


class TestBlockCacheSnapshot:
    def test_snapshot_fields(self):
        cache = BlockCache(8)
        cache.put(1, b"a")
        cache.get(1)
        cache.get(2)
        snap = cache.snapshot()
        assert snap["capacity"] == 8
        assert snap["size"] == 1
        assert snap["hits"] == 1
        assert snap["misses"] == 1
        assert snap["evictions"] == 0
        assert snap["hit_rate"] == pytest.approx(0.5)

    def test_hit_rate_zero_without_lookups(self):
        assert BlockCache(2).snapshot()["hit_rate"] == 0.0
