"""Edge cases and error-path coverage across subsystems."""

from __future__ import annotations

import pytest

from repro.block import FileBlockDevice, MemoryBlockDevice
from repro.common.errors import (
    BlockRangeError,
    BlockSizeError,
    CodecError,
    ConfigurationError,
    ProtocolError,
    RecoveryError,
    ReplicationError,
    ReproError,
    StorageError,
    SyncError,
)


class TestErrorHierarchy:
    """Every library error must be catchable as ReproError."""

    @pytest.mark.parametrize(
        "exc_cls",
        [
            BlockRangeError,
            BlockSizeError,
            CodecError,
            ConfigurationError,
            ProtocolError,
            RecoveryError,
            ReplicationError,
            StorageError,
            SyncError,
        ],
    )
    def test_subclasses_base(self, exc_cls):
        assert issubclass(exc_cls, ReproError)

    def test_block_errors_are_storage_errors(self):
        assert issubclass(BlockRangeError, StorageError)
        assert issubclass(BlockSizeError, StorageError)

    def test_error_messages_carry_context(self):
        error = BlockRangeError(99, 10)
        assert "99" in str(error) and "10" in str(error)
        assert error.lba == 99


class TestFileDeviceEdges:
    def test_reopen_with_larger_geometry_extends(self, tmp_path):
        path = tmp_path / "grow.img"
        with FileBlockDevice(path, 128, 4) as dev:
            dev.write_block(0, b"a" * 128)
        with FileBlockDevice(path, 128, 8) as dev:
            assert dev.read_block(0) == b"a" * 128
            assert dev.read_block(7) == bytes(128)  # extended region zeroed
        assert path.stat().st_size == 128 * 8


class TestBufferPoolPinning:
    def test_nested_pins_require_matching_unpins(self):
        from repro.minidb import BufferPool

        pool = BufferPool(MemoryBlockDevice(256, 16), capacity=1)
        pool.new_page(0)
        pool.pin(0)
        pool.pin(0)
        pool.unpin(0)
        # still pinned once: allocating more pages must not evict page 0
        pool.new_page(1)
        pool.new_page(2)
        pool.mark_dirty(0)  # would raise if 0 had been evicted
        pool.unpin(0)

    def test_unpin_without_pin_is_noop(self):
        from repro.minidb import BufferPool

        pool = BufferPool(MemoryBlockDevice(256, 16), capacity=2)
        pool.unpin(5)  # never pinned: silently ignored


class TestFsPartialBlockPreservation:
    def test_shrinking_rewrite_preserves_unrelated_neighbor_files(self):
        from repro.fs import FileSystem

        fs = FileSystem.format(MemoryBlockDevice(512, 256), inode_count=16)
        fs.write_file("a", b"A" * 700)  # spans two blocks
        fs.write_file("b", b"B" * 700)
        fs.write_file("a", b"a" * 600)  # shrink within same block count
        assert fs.read_file("a") == b"a" * 600
        assert fs.read_file("b") == b"B" * 700

    def test_deep_path_resolution_through_file_fails(self):
        from repro.common.errors import StorageError
        from repro.fs import FileSystem

        fs = FileSystem.format(MemoryBlockDevice(512, 256), inode_count=16)
        fs.write_file("plain", b"data")
        with pytest.raises(StorageError):
            fs.write_file("plain/child", b"x")  # file used as directory


class TestHarnessConstants:
    def test_paper_block_sizes(self):
        from repro.experiments.harness import PAPER_BLOCK_SIZES

        assert PAPER_BLOCK_SIZES == (4096, 8192, 16384, 32768, 65536)
        assert 8192 in PAPER_BLOCK_SIZES  # the paper's "typical" size
        assert 65536 in PAPER_BLOCK_SIZES  # the 2-orders-of-magnitude point


class TestInitiatorLinkInProcess:
    def test_engine_over_inprocess_iscsi(self):
        """Full protocol path without sockets (queue-pair transport)."""
        import threading

        from repro.engine import (
            InitiatorLink,
            PrimaryEngine,
            ReplicaEngine,
            make_strategy,
            verify_consistency,
        )
        from repro.iscsi import Initiator, Target, transport_pair

        strategy = make_strategy("prins")
        replica_dev = MemoryBlockDevice(256, 16)
        replica = ReplicaEngine(replica_dev, strategy)
        target = Target(replica_dev, replication_handler=replica.receive)
        t_end, i_end = transport_pair()
        thread = threading.Thread(target=target.serve, args=(t_end,), daemon=True)
        thread.start()
        primary_dev = MemoryBlockDevice(256, 16)
        engine = PrimaryEngine(
            primary_dev, strategy, [InitiatorLink(Initiator(i_end, timeout=5))]
        )
        for lba in range(16):
            engine.write_block(lba, bytes([lba + 1]) * 256)
        assert verify_consistency(primary_dev, replica_dev) == []
