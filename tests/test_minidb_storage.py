"""Tests for buffer pool, heap files, and the B-tree."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.block import CountingDevice, MemoryBlockDevice
from repro.common.errors import StorageError
from repro.minidb import BTree, BufferPool, HeapFile
from repro.minidb.heap import Rid

BS = 512


def make_pool(capacity=8, blocks=128, counting=False):
    inner = MemoryBlockDevice(BS, blocks)
    device = CountingDevice(inner) if counting else inner
    pool = BufferPool(device, capacity=capacity)
    counter = iter(range(blocks))
    return pool, device, lambda: next(counter)


class TestBufferPool:
    def test_fetch_uninitialized_block_fails(self):
        pool, _, _ = make_pool()
        with pytest.raises(StorageError):
            pool.fetch(0)

    def test_new_page_then_fetch_hits_cache(self):
        pool, _, alloc = make_pool()
        page_id = alloc()
        pool.new_page(page_id)
        pool.fetch(page_id)
        assert pool.hits == 1

    def test_flush_writes_dirty_pages(self):
        pool, device, alloc = make_pool(counting=True)
        page_id = alloc()
        page = pool.new_page(page_id)
        page.insert(b"data")
        pool.mark_dirty(page_id)
        writes_before = device.counters.writes
        assert pool.flush() == 1
        assert device.counters.writes == writes_before + 1
        assert pool.dirty_count == 0

    def test_flush_idempotent(self):
        pool, _, alloc = make_pool()
        pool.new_page(alloc())
        pool.flush()
        assert pool.flush() == 0

    def test_eviction_writes_back_dirty_page(self):
        pool, device, alloc = make_pool(capacity=2, counting=True)
        first = alloc()
        page = pool.new_page(first)
        page.insert(b"persisted")
        pool.mark_dirty(first)
        for _ in range(3):  # force eviction of `first`
            pool.new_page(alloc())
        assert pool.evictions >= 1
        # refetch: contents must have survived via write-back
        fetched = pool.fetch(first)
        assert fetched.read(0) == b"persisted"

    def test_pinned_page_not_evicted(self):
        pool, _, alloc = make_pool(capacity=2)
        pinned_id = alloc()
        pinned_page = pool.new_page(pinned_id)
        pool.pin(pinned_id)
        for _ in range(4):
            pool.new_page(alloc())
        # mutate through the original reference and verify it is still live
        pinned_page.insert(b"still-here")
        pool.mark_dirty(pinned_id)  # must not raise: page is resident
        pool.unpin(pinned_id)
        assert pool.fetch(pinned_id).read(0) == b"still-here"

    def test_mark_dirty_nonresident_rejected(self):
        pool, _, alloc = make_pool(capacity=1)
        a, b = alloc(), alloc()
        pool.new_page(a)
        pool.new_page(b)  # evicts a
        with pytest.raises(StorageError):
            pool.mark_dirty(a)

    def test_pin_nonresident_rejected(self):
        pool, _, _ = make_pool()
        with pytest.raises(StorageError):
            pool.pin(42)


class TestHeapFile:
    def _heap(self, **kwargs):
        pool, device, alloc = make_pool(**kwargs)
        return HeapFile(pool, alloc), pool

    def test_insert_read(self):
        heap, _ = self._heap()
        rid = heap.insert(b"record-1")
        assert heap.read(rid) == b"record-1"

    def test_grows_across_pages(self):
        heap, _ = self._heap()
        rids = [heap.insert(bytes([i % 250 + 1]) * 100) for i in range(30)]
        pages = {rid.page_id for rid in rids}
        assert len(pages) > 1
        for i, rid in enumerate(rids):
            assert heap.read(rid) == bytes([i % 250 + 1]) * 100

    def test_update_in_place_keeps_rid(self):
        heap, _ = self._heap()
        rid = heap.insert(b"a" * 50)
        assert heap.update(rid, b"b" * 50) == rid
        assert heap.read(rid) == b"b" * 50

    def test_update_grow_moves_record(self):
        heap, _ = self._heap()
        rid = heap.insert(b"small")
        new_rid = heap.update(rid, b"much bigger record" * 3)
        assert heap.read(new_rid) == b"much bigger record" * 3

    def test_delete(self):
        heap, _ = self._heap()
        rid = heap.insert(b"gone")
        heap.delete(rid)
        with pytest.raises(StorageError):
            heap.read(rid)

    def test_scan_returns_live_records(self):
        heap, _ = self._heap()
        keep = heap.insert(b"keep")
        victim = heap.insert(b"remove")
        heap.delete(victim)
        scanned = dict(heap.scan())
        assert scanned == {keep: b"keep"}
        assert len(heap) == 1

    def test_oversized_record_rejected(self):
        heap, _ = self._heap()
        with pytest.raises(StorageError):
            heap.insert(b"x" * BS)

    def test_survives_flush_cycle(self):
        heap, pool = self._heap(capacity=2)
        rids = [heap.insert(bytes([i + 1]) * 80) for i in range(20)]
        pool.flush()
        for i, rid in enumerate(rids):
            assert heap.read(rid) == bytes([i + 1]) * 80


class TestBTree:
    def _tree(self, max_entries=None, blocks=512):
        pool, _, alloc = make_pool(capacity=32, blocks=blocks)
        return BTree(pool, alloc, max_entries=max_entries)

    def test_insert_search(self):
        tree = self._tree()
        tree.insert(5, Rid(1, 2))
        assert tree.search(5) == Rid(1, 2)
        assert tree.search(6) is None

    def test_overwrite(self):
        tree = self._tree()
        tree.insert(5, Rid(1, 2))
        tree.insert(5, Rid(3, 4))
        assert tree.search(5) == Rid(3, 4)
        assert len(tree) == 1

    def test_splits_with_sequential_keys(self):
        tree = self._tree(max_entries=8)
        for key in range(200):
            tree.insert(key, Rid(key, 0))
        for key in range(200):
            assert tree.search(key) == Rid(key, 0)
        assert len(tree) == 200

    def test_splits_with_reverse_keys(self):
        tree = self._tree(max_entries=8)
        for key in reversed(range(150)):
            tree.insert(key, Rid(key, 1))
        for key in range(150):
            assert tree.search(key) == Rid(key, 1)

    def test_range_scan_sorted(self):
        tree = self._tree(max_entries=6)
        import random

        keys = list(range(0, 300, 3))
        random.Random(4).shuffle(keys)
        for key in keys:
            tree.insert(key, Rid(key, 0))
        result = [k for k, _ in tree.range_scan(30, 90)]
        assert result == list(range(30, 91, 3))

    def test_range_scan_open_ended(self):
        tree = self._tree(max_entries=6)
        for key in range(20):
            tree.insert(key, Rid(key, 0))
        assert [k for k, _ in tree.range_scan()] == list(range(20))

    def test_delete(self):
        tree = self._tree(max_entries=8)
        for key in range(50):
            tree.insert(key, Rid(key, 0))
        assert tree.delete(25)
        assert tree.search(25) is None
        assert not tree.delete(25)
        assert len(tree) == 49

    def test_negative_keys(self):
        tree = self._tree()
        tree.insert(-100, Rid(0, 0))
        tree.insert(100, Rid(1, 1))
        assert tree.search(-100) == Rid(0, 0)
        assert [k for k, _ in tree.range_scan()] == [-100, 100]

    @settings(max_examples=20, deadline=None)
    @given(
        operations=st.lists(
            st.tuples(st.sampled_from(["put", "del"]), st.integers(0, 400)),
            max_size=120,
        )
    )
    def test_model_based_property(self, operations):
        """B-tree agrees with a dict under arbitrary insert/delete mixes."""
        tree = self._tree(max_entries=6, blocks=2048)
        model: dict[int, Rid] = {}
        for op, key in operations:
            if op == "put":
                rid = Rid(key, key % 7)
                tree.insert(key, rid)
                model[key] = rid
            else:
                assert tree.delete(key) == (key in model)
                model.pop(key, None)
        assert len(tree) == len(model)
        for key, rid in model.items():
            assert tree.search(key) == rid
        assert [k for k, _ in tree.items()] == sorted(model)
