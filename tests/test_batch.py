"""Batched delta shipping: wire format, merging, engine wiring, recovery.

Covers the `repro.engine.batch` subsystem end to end: ShipBatch
pack/unpack with digest verification, ShipBatcher window policy and
same-LBA XOR merging, PrimaryEngine flush semantics (strict and
guarded), the multi-segment iSCSI PDU path, accounting, telemetry
counters, and the CLI flag.
"""

from __future__ import annotations

import zlib

import numpy as np
import pytest

from repro.block import MemoryBlockDevice
from repro.common.errors import ConfigurationError, ReplicationError
from repro.common.rng import make_rng
from repro.engine import (
    BatchConfig,
    BatchEntry,
    DirectLink,
    FaultyLink,
    PrimaryEngine,
    PrinsStrategy,
    ReplicaEngine,
    ReplicationRecord,
    ResilienceConfig,
    ShipBatch,
    ShipBatcher,
    make_strategy,
    verify_consistency,
)
from repro.engine.batch import (
    BATCH_OVERHEAD,
    SEGMENT_OVERHEAD,
    pack_batch_ack,
    unpack_batch_ack,
)

BS = 256
N = 32


def _record(seq: int, frame: bytes = b"\x00\x01\x02") -> ReplicationRecord:
    return ReplicationRecord(seq=seq, block_crc=zlib.crc32(frame), frame=frame)


def _rand_block(rng, size: int = BS) -> bytes:
    return bytes(rng.integers(0, 256, size, dtype=np.uint8))


def _build(batch=None, resilience=None, strategy_name="prins"):
    primary = MemoryBlockDevice(BS, N)
    replica_dev = MemoryBlockDevice(BS, N)
    strategy = make_strategy(strategy_name)
    replica = ReplicaEngine(replica_dev, strategy)
    engine = PrimaryEngine(
        primary,
        strategy,
        [DirectLink(replica)],
        batch=batch,
        resilience=resilience,
    )
    return engine, replica_dev, replica


# ---------------------------------------------------------------------------
# Wire format
# ---------------------------------------------------------------------------


class TestWireFormat:
    def test_round_trip(self):
        entries = tuple(
            BatchEntry(lba=i * 7, record=_record(i + 1, bytes([i]) * 5))
            for i in range(4)
        )
        batch = ShipBatch(entries=entries, merged_writes=3)
        raw = batch.pack()
        back = ShipBatch.unpack(raw)
        assert back.entries == entries
        assert back.merged_writes == 3
        assert back.record_count == 4
        assert back.last_seq == 4

    def test_pack_is_cached(self):
        batch = ShipBatch(entries=(BatchEntry(0, _record(1)),))
        assert batch.pack() is batch.pack()

    def test_digest_corruption_detected(self):
        batch = ShipBatch(entries=(BatchEntry(3, _record(9)),))
        raw = bytearray(batch.pack())
        raw[-1] ^= 0xFF  # flip a bit in the last segment byte
        with pytest.raises(ReplicationError, match="digest"):
            ShipBatch.unpack(bytes(raw))

    def test_truncated_batch_detected(self):
        batch = ShipBatch(entries=(BatchEntry(3, _record(9)),))
        with pytest.raises(ReplicationError):
            ShipBatch.unpack(batch.pack()[: BATCH_OVERHEAD + 2])

    def test_empty_batch_cannot_pack(self):
        with pytest.raises(ReplicationError):
            ShipBatch(entries=()).pack()

    def test_overheads(self):
        rec = _record(1, b"xyz")
        batch = ShipBatch(entries=(BatchEntry(0, rec),))
        assert len(batch.pack()) == (
            BATCH_OVERHEAD + SEGMENT_OVERHEAD + len(rec.pack())
        )

    def test_batch_ack_round_trip(self):
        raw = pack_batch_ack(77, 5, 2)
        assert unpack_batch_ack(raw) == (77, 5, 2)
        with pytest.raises(ReplicationError):
            unpack_batch_ack(raw + b"x")

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            BatchConfig(max_records=0)
        with pytest.raises(ConfigurationError):
            BatchConfig(max_bytes=0)
        with pytest.raises(ConfigurationError):
            BatchConfig(max_records=1 << 16)


# ---------------------------------------------------------------------------
# Batcher window + merging
# ---------------------------------------------------------------------------


class TestShipBatcher:
    def test_count_window_triggers(self):
        b = ShipBatcher(BatchConfig(max_records=3), PrinsStrategy())
        assert not b.add(0, 1, 0, b"\x01" * BS, BS)
        assert not b.add(1, 2, 0, b"\x01" * BS, BS)
        assert b.add(2, 3, 0, b"\x01" * BS, BS)

    def test_byte_window_triggers(self):
        b = ShipBatcher(
            BatchConfig(max_records=100, max_bytes=2 * BS), PrinsStrategy()
        )
        assert not b.add(0, 1, 0, b"\x01" * BS, BS)
        assert b.add(1, 2, 0, b"\x01" * BS, BS)

    def test_same_lba_counts_once_toward_count_window(self):
        b = ShipBatcher(BatchConfig(max_records=2), PrinsStrategy())
        assert not b.add(5, 1, 0, b"\x01" * BS, BS)
        assert not b.add(5, 2, 0, b"\x02" * BS, BS)  # same LBA: merges
        assert len(b) == 1
        assert b.add(6, 3, 0, b"\x01" * BS, BS)

    def test_xor_merge_composes_deltas(self):
        rng = make_rng(7, "merge")
        strategy = PrinsStrategy()
        old = _rand_block(rng)
        mid = _rand_block(rng)
        new = _rand_block(rng)
        d1 = strategy.make_update(mid, old)
        d2 = strategy.make_update(new, mid)
        b = ShipBatcher(BatchConfig(max_records=8), strategy)
        b.add(0, 1, zlib.crc32(mid), d1, BS)
        b.add(0, 2, zlib.crc32(new), d2, BS)
        result = b.drain()
        assert result.merged_writes == 1
        assert result.logical_writes == 2
        assert result.batch is not None and result.batch.record_count == 1
        record = result.batch.entries[0].record
        assert record.seq == 2  # newest seq wins
        # the merged delta applies against the ORIGINAL block
        applied = strategy.apply_update(record.frame, old)
        assert applied == new
        record.verify(applied)

    def test_cancelling_overwrites_elide_entirely(self):
        rng = make_rng(8, "elide")
        strategy = PrinsStrategy()
        old = _rand_block(rng)
        mid = _rand_block(rng)
        d1 = strategy.make_update(mid, old)
        d2 = strategy.make_update(old, mid)  # write back the original
        b = ShipBatcher(BatchConfig(max_records=8), strategy)
        b.add(0, 1, zlib.crc32(mid), d1, BS)
        b.add(0, 2, zlib.crc32(old), d2, BS)
        result = b.drain()
        assert result.batch is None
        assert result.elided_records == 1
        assert result.merged_writes == 1
        assert result.logical_writes == 2

    def test_full_block_strategy_merges_last_writer_wins(self):
        strategy = make_strategy("traditional")
        b = ShipBatcher(BatchConfig(max_records=8), strategy)
        first, last = b"\x01" * BS, b"\x02" * BS
        b.add(0, 1, zlib.crc32(first), first, BS)
        b.add(0, 2, zlib.crc32(last), last, BS)
        result = b.drain()
        assert result.batch is not None
        record = result.batch.entries[0].record
        assert strategy.apply_update(record.frame, None) == last

    def test_drain_resets_window(self):
        b = ShipBatcher(BatchConfig(max_records=8), PrinsStrategy())
        b.add(0, 1, 0, b"\x01" * BS, BS)
        b.drain()
        assert len(b) == 0
        assert b.pending_bytes == 0
        assert b.drain().logical_writes == 0


# ---------------------------------------------------------------------------
# Engine wiring
# ---------------------------------------------------------------------------


class TestEngineBatching:
    def _writes(self, count: int, lbas: int, seed: int = 3):
        rng = make_rng(seed, "writes")
        return [
            (int(rng.integers(0, lbas)), _rand_block(rng)) for _ in range(count)
        ]

    def test_batched_replica_matches_unbatched(self):
        writes = self._writes(200, 6)
        plain, plain_dev, _ = _build()
        batched, batched_dev, _ = _build(batch=BatchConfig(max_records=8))
        for lba, data in writes:
            plain.write_block(lba, data)
            batched.write_block(lba, data)
        batched.flush_batch()
        assert verify_consistency(plain.device, plain_dev) == []
        assert verify_consistency(batched.device, batched_dev) == []
        assert plain_dev.snapshot() == batched_dev.snapshot()

    def test_batching_ships_fewer_pdus_and_bytes(self):
        writes = self._writes(200, 6)
        plain, _, _ = _build()
        batched, _, _ = _build(batch=BatchConfig(max_records=8))
        for lba, data in writes:
            plain.write_block(lba, data)
            batched.write_block(lba, data)
        batched.flush_batch()
        a, b = plain.accountant, batched.accountant
        assert b.pdus_shipped < a.pdus_shipped
        assert b.pdu_bytes <= a.pdu_bytes
        assert b.writes_merged > 0
        assert b.batches_shipped == b.pdus_shipped
        assert a.writes_total == b.writes_total == 200

    def test_flush_on_window_boundary(self):
        engine, replica_dev, _ = _build(batch=BatchConfig(max_records=4))
        rng = make_rng(11, "w")
        for lba in range(4):  # distinct LBAs: fills the window exactly
            engine.write_block(lba, _rand_block(rng))
        # window auto-flushed: replica already has all four blocks
        assert engine.pending_batch_writes == 0
        assert verify_consistency(engine.device, replica_dev) == []

    def test_flush_batch_is_noop_when_unbatched_or_empty(self):
        engine, _, _ = _build()
        assert engine.flush_batch() is None
        engine2, _, _ = _build(batch=BatchConfig(max_records=4))
        assert engine2.flush_batch() is None

    def test_close_flushes_pending(self):
        engine, replica_dev, _ = _build(batch=BatchConfig(max_records=100))
        rng = make_rng(12, "w")
        image = {}
        for lba in range(3):
            data = _rand_block(rng)
            image[lba] = data
            engine.write_block(lba, data)
        assert engine.pending_batch_writes == 3
        engine.close()
        for lba, data in image.items():
            assert replica_dev.read_block(lba) == data

    def test_accounting_totals_conserved(self):
        engine, _, _ = _build(batch=BatchConfig(max_records=8))
        writes = self._writes(50, 4, seed=9)
        for lba, data in writes:
            engine.write_block(lba, data)
        engine.flush_batch()
        acct = engine.accountant
        assert (
            acct.writes_replicated + acct.writes_skipped == acct.writes_total
        )
        assert acct.data_bytes == 50 * BS
        assert acct.batched_payload_bytes == acct.payload_bytes
        assert acct.batched_pdu_bytes == acct.pdu_bytes
        snap = acct.snapshot()
        assert snap["batching"]["batches_shipped"] == acct.batches_shipped
        assert snap["batching"]["writes_merged"] == acct.writes_merged

    def test_telemetry_counters_emitted(self):
        from repro.obs import Telemetry

        telemetry = Telemetry()
        primary = MemoryBlockDevice(BS, N)
        replica_dev = MemoryBlockDevice(BS, N)
        strategy = PrinsStrategy()
        engine = PrimaryEngine(
            primary,
            strategy,
            [DirectLink(ReplicaEngine(replica_dev, strategy))],
            batch=BatchConfig(max_records=4),
            telemetry=telemetry,
        )
        rng = make_rng(13, "w")
        for i in range(8):  # LBAs 0,0,1,1,2,2,3,3: window fills with merges
            engine.write_block(i // 2, _rand_block(rng))
        engine.flush_batch()
        counters = telemetry.registry.snapshot()["counters"]
        assert counters["batch.flushes"] >= 2
        assert counters["batch.records"] >= 4
        assert counters["batch.merged_writes"] >= 1
        snap = engine.telemetry_snapshot()
        assert snap["batch"]["pending_records"] == 0

    def test_raid_primary_batches_free_deltas(self):
        from repro.raid import Raid5Array

        raid = Raid5Array([MemoryBlockDevice(BS, N) for _ in range(4)])
        replica_dev = MemoryBlockDevice(BS, raid.num_blocks)
        strategy = PrinsStrategy()
        engine = PrimaryEngine(
            raid,
            strategy,
            [DirectLink(ReplicaEngine(replica_dev, strategy))],
            batch=BatchConfig(max_records=4),
        )
        rng = make_rng(14, "w")
        for _ in range(20):
            engine.write_block(int(rng.integers(0, 8)), _rand_block(rng))
        engine.flush_batch()
        assert verify_consistency(raid, replica_dev) == []


# ---------------------------------------------------------------------------
# Resilience: failed batches re-journal constituents individually
# ---------------------------------------------------------------------------


class TestBatchResilience:
    def test_failed_batch_journals_each_record(self):
        primary = MemoryBlockDevice(BS, N)
        replica_dev = MemoryBlockDevice(BS, N)
        strategy = PrinsStrategy()
        replica = ReplicaEngine(replica_dev, strategy)
        faulty = FaultyLink(DirectLink(replica))
        engine = PrimaryEngine(
            primary,
            strategy,
            [faulty],
            batch=BatchConfig(max_records=4),
            resilience=ResilienceConfig(),
        )
        rng = make_rng(15, "w")
        faulty.kill()
        for lba in range(4):  # exactly one window; flush fails
            engine.write_block(lba, _rand_block(rng))
        guard = engine.guards[0]
        # the batch was disaggregated: one journal entry per record
        assert guard.backlog_depth == 4
        assert engine.accountant.writes_journaled == 4
        faulty.heal()
        outcome = engine.heal_link(0)
        assert outcome.mode == "replay"
        assert outcome.records_replayed == 4
        assert verify_consistency(primary, replica_dev) == []

    def test_transient_fault_then_recovery_converges(self):
        primary = MemoryBlockDevice(BS, N)
        replica_dev = MemoryBlockDevice(BS, N)
        strategy = PrinsStrategy()
        replica = ReplicaEngine(replica_dev, strategy)
        faulty = FaultyLink(DirectLink(replica))
        engine = PrimaryEngine(
            primary,
            strategy,
            [faulty],
            batch=BatchConfig(max_records=2),
            resilience=ResilienceConfig(),
        )
        rng = make_rng(16, "w")
        for lba in range(2):
            engine.write_block(lba, _rand_block(rng))  # healthy flush
        faulty.fail_next(8, kind="drop")  # exhaust the retry budget
        for lba in range(2, 4):
            engine.write_block(lba, _rand_block(rng))  # journaled flush
        assert engine.guards[0].backlog_depth == 2
        faulty.heal()
        engine.heal_link(0)
        for lba in range(4, 6):
            engine.write_block(lba, _rand_block(rng))  # back to batches
        engine.flush_batch()
        assert verify_consistency(primary, replica_dev) == []

    def test_batch_ack_error_lost_then_duplicate_suppressed(self):
        primary = MemoryBlockDevice(BS, N)
        replica_dev = MemoryBlockDevice(BS, N)
        strategy = PrinsStrategy()
        replica = ReplicaEngine(replica_dev, strategy)
        faulty = FaultyLink(DirectLink(replica))
        engine = PrimaryEngine(
            primary,
            strategy,
            [faulty],
            batch=BatchConfig(max_records=2),
            resilience=ResilienceConfig(),
        )
        rng = make_rng(17, "w")
        faulty.fail_next(1, kind="error")  # applied, ack lost; retried
        engine.write_block(0, _rand_block(rng))
        engine.write_block(1, _rand_block(rng))
        # retry redelivered the batch; replica suppressed both segments
        assert replica.records_duplicate == 2
        assert verify_consistency(primary, replica_dev) == []


# ---------------------------------------------------------------------------
# iSCSI transport path
# ---------------------------------------------------------------------------


class TestBatchOverIscsi:
    def test_single_pdu_carries_whole_batch(self):
        from repro.engine import InitiatorLink
        from repro.iscsi.initiator import Initiator
        from repro.iscsi.target import Target
        from repro.iscsi.transport import transport_pair

        replica_dev = MemoryBlockDevice(BS, N)
        strategy = PrinsStrategy()
        replica = ReplicaEngine(replica_dev, strategy)
        target = Target(
            replica_dev,
            replication_handler=replica.receive,
            batch_handler=replica.receive_batch,
        )
        client, server = transport_pair()
        import threading

        thread = threading.Thread(target=target.serve, args=(server,), daemon=True)
        thread.start()
        initiator = Initiator(client)
        primary = MemoryBlockDevice(BS, N)
        engine = PrimaryEngine(
            primary,
            strategy,
            [InitiatorLink(initiator)],
            batch=BatchConfig(max_records=8),
        )
        rng = make_rng(18, "w")
        pdus_before = client.pdus_sent
        for lba in range(8):
            engine.write_block(lba, _rand_block(rng))
        # the window auto-flushed once: exactly one REPL_BATCH_OUT PDU
        assert client.pdus_sent - pdus_before == 1
        assert verify_consistency(primary, replica_dev) == []
        engine.close()
        thread.join(timeout=5)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCli:
    def test_demo_batch_window_flag(self, capsys):
        from repro.cli import main

        assert main(["demo", "--batch-window", "16"]) == 0
        out = capsys.readouterr().out
        assert "PDUs" in out
        assert "merged" in out
