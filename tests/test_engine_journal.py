"""Tests for catch-up journaling of disconnected replicas."""

from __future__ import annotations

import pytest

from repro.block import MemoryBlockDevice
from repro.engine import (
    DirectLink,
    JournalingLink,
    PrimaryEngine,
    ReplicaEngine,
    ReplicationJournal,
    ReplicationRecord,
    digest_sync,
    make_strategy,
    verify_consistency,
)
from repro.engine.journal import JournalOverflowError

BS = 512
N = 16


def _stack(strategy_name="prins", journal=None):
    strategy = make_strategy(strategy_name)
    primary = MemoryBlockDevice(BS, N)
    replica = MemoryBlockDevice(BS, N)
    link = JournalingLink(
        DirectLink(ReplicaEngine(replica, strategy)), journal
    )
    engine = PrimaryEngine(primary, strategy, [link])
    return engine, primary, replica, link


class TestReplicationJournal:
    def test_append_and_counters(self):
        journal = ReplicationJournal(capacity_bytes=10_000)
        journal.append(0, ReplicationRecord(1, 0, b"frame"))
        assert journal.entry_count == 1
        assert journal.stored_bytes == len(b"frame") + 24
        assert not journal.overflowed

    def test_overflow_evicts_oldest_and_flags(self):
        journal = ReplicationJournal(capacity_bytes=80)
        for seq in range(5):
            journal.append(0, ReplicationRecord(seq, 0, b"x" * 40))
        assert journal.overflowed
        assert journal.stored_bytes <= 80

    def test_replay_refused_after_overflow(self):
        journal = ReplicationJournal(capacity_bytes=60)
        for seq in range(3):
            journal.append(0, ReplicationRecord(seq, 0, b"y" * 40))
        with pytest.raises(JournalOverflowError):
            journal.replay(DirectLink(None))  # link never reached

    def test_clear_resets_overflow(self):
        journal = ReplicationJournal(capacity_bytes=60)
        for seq in range(3):
            journal.append(0, ReplicationRecord(seq, 0, b"y" * 40))
        journal.clear()
        assert not journal.overflowed
        assert journal.entry_count == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ReplicationJournal(capacity_bytes=0)


class TestJournalingLink:
    def test_connected_passthrough(self):
        engine, primary, replica, _link = _stack()
        engine.write_block(0, b"a" * BS)
        assert replica.read_block(0) == b"a" * BS

    def test_disconnect_journal_reconnect_replay(self):
        engine, primary, replica, link = _stack()
        engine.write_block(0, b"a" * BS)
        link.disconnect()
        engine.write_block(1, b"b" * BS)
        engine.write_block(0, b"c" * BS)
        engine.write_block(0, b"d" * BS)  # multiple deltas on one block
        assert replica.read_block(1) == bytes(BS)  # replica lagging
        replayed = link.reconnect()
        assert replayed == 3
        assert verify_consistency(primary, replica) == []

    def test_prins_deltas_replay_in_order(self, rng):
        """Out-of-order XOR deltas would corrupt; order must be preserved."""
        engine, primary, replica, link = _stack("prins")
        engine.write_block(3, rng.integers(0, 256, BS, dtype="u1").tobytes())
        link.disconnect()
        for _ in range(10):  # chained partial overwrites of one block
            block = bytearray(engine.read_block(3))
            start = int(rng.integers(0, BS - 30))
            block[start : start + 30] = rng.integers(0, 256, 30, dtype="u1").tobytes()
            engine.write_block(3, bytes(block))
        link.reconnect()
        assert verify_consistency(primary, replica) == []

    def test_overflow_falls_back_to_digest_sync(self):
        journal = ReplicationJournal(capacity_bytes=200)
        engine, primary, replica, link = _stack("prins", journal=journal)
        link.disconnect()
        for lba in range(N):
            engine.write_block(lba, bytes([lba + 1]) * BS)  # overflow journal
        assert journal.overflowed
        with pytest.raises(JournalOverflowError):
            link.reconnect()
        # escalation path: digest sync repairs the replica
        report = digest_sync(primary, replica)
        assert report.blocks_copied == N
        assert verify_consistency(primary, replica) == []
        journal.clear()

    def test_journal_stores_deltas_not_blocks(self, rng):
        """The PRINS advantage extends to the catch-up buffer."""
        journal = ReplicationJournal(capacity_bytes=10**9)
        engine, primary, replica, link = _stack("prins", journal=journal)
        for lba in range(N):
            engine.write_block(lba, rng.integers(0, 256, BS, dtype="u1").tobytes())
        link.disconnect()
        for lba in range(N):  # small edits while away
            block = bytearray(engine.read_block(lba))
            block[10:20] = b"\x42" * 10
            engine.write_block(lba, bytes(block))
        assert journal.stored_bytes < N * BS / 4
        link.reconnect()
        assert verify_consistency(primary, replica) == []
