"""Tests for the iSCSI substrate: PDUs, transports, initiator/target."""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.block import MemoryBlockDevice
from repro.common.errors import ProtocolError
from repro.iscsi import (
    Initiator,
    Opcode,
    Pdu,
    Target,
    TargetServer,
    TcpTransport,
    transport_pair,
)
from repro.iscsi.pdu import BHS_SIZE, ScsiOp, Status
from repro.iscsi.transport import TransportClosedError

BS = 512


class TestPdu:
    def test_pack_unpack_roundtrip(self):
        pdu = Pdu(
            opcode=Opcode.SCSI_COMMAND,
            flags=int(ScsiOp.WRITE),
            itt=7,
            lba=123456789,
            transfer_length=4,
            seq=99,
            data=b"payload",
        )
        parsed = Pdu.unpack(pdu.pack())
        assert parsed == pdu

    def test_wire_size(self):
        pdu = Pdu(opcode=Opcode.NOP_OUT, data=b"x" * 100)
        assert pdu.wire_size == BHS_SIZE + 100
        assert len(pdu.pack()) == pdu.wire_size

    def test_header_is_48_bytes(self):
        assert BHS_SIZE == 48  # matches real iSCSI BHS

    def test_unknown_opcode(self):
        raw = bytearray(Pdu(opcode=Opcode.NOP_OUT).pack())
        raw[0] = 0xEE
        with pytest.raises(ProtocolError, match="unknown opcode"):
            Pdu.unpack(bytes(raw))

    def test_data_length_mismatch(self):
        raw = Pdu(opcode=Opcode.NOP_OUT, data=b"abc").pack()
        with pytest.raises(ProtocolError):
            Pdu.unpack(raw[:-1])

    @settings(max_examples=30, deadline=None)
    @given(
        lba=st.integers(0, 2**63 - 1),
        itt=st.integers(0, 2**32 - 1),
        data=st.binary(max_size=256),
    )
    def test_roundtrip_property(self, lba, itt, data):
        pdu = Pdu(opcode=Opcode.REPL_DATA_OUT, lba=lba, itt=itt, data=data)
        assert Pdu.unpack(pdu.pack()) == pdu


class TestInProcessTransport:
    def test_send_receive(self):
        a, b = transport_pair()
        a.send(Pdu(opcode=Opcode.NOP_OUT, data=b"hi"))
        received = b.receive(timeout=1)
        assert received.data == b"hi"

    def test_byte_accounting_symmetric(self):
        a, b = transport_pair()
        pdu = Pdu(opcode=Opcode.NOP_OUT, data=b"x" * 10)
        a.send(pdu)
        b.receive(timeout=1)
        assert a.bytes_sent == pdu.wire_size
        assert b.bytes_received == pdu.wire_size

    def test_close_wakes_peer(self):
        a, b = transport_pair()
        a.close()
        with pytest.raises(TransportClosedError):
            b.receive(timeout=1)

    def test_send_after_close_rejected(self):
        a, _ = transport_pair()
        a.close()
        with pytest.raises(TransportClosedError):
            a.send(Pdu(opcode=Opcode.NOP_OUT))

    def test_receive_timeout(self):
        _, b = transport_pair()
        with pytest.raises(TimeoutError):
            b.receive(timeout=0.05)


def _serve(target, transport):
    thread = threading.Thread(target=target.serve, args=(transport,), daemon=True)
    thread.start()
    return thread


class TestSession:
    def _connect(self, device=None, handler=None):
        device = device or MemoryBlockDevice(BS, 16)
        t_end, i_end = transport_pair()
        target = Target(device, replication_handler=handler)
        thread = _serve(target, t_end)
        return Initiator(i_end, timeout=5), device, thread

    def test_login_negotiates_geometry(self):
        initiator, _, _ = self._connect()
        params = initiator.login()
        assert params["BlockSize"] == str(BS)
        assert initiator.block_size == BS
        assert initiator.num_blocks == 16

    def test_login_wrong_target_name_rejected(self):
        initiator, _, _ = self._connect()
        from repro.common.errors import LoginError

        with pytest.raises(LoginError):
            initiator.login("iqn.wrong:name")

    def test_io_before_login_fails(self):
        initiator, _, _ = self._connect()
        with pytest.raises(ProtocolError):
            initiator.read(0)

    def test_write_read(self):
        initiator, device, _ = self._connect()
        initiator.login()
        initiator.write(3, b"d" * BS)
        assert initiator.read(3) == b"d" * BS
        assert device.read_block(3) == b"d" * BS

    def test_multi_block_transfer(self):
        initiator, _, _ = self._connect()
        initiator.login()
        payload = bytes(range(256)) * 2 * 3
        initiator.write(2, payload)
        assert initiator.read(2, count=3) == payload

    def test_out_of_range_lba_returns_error_status(self):
        initiator, _, _ = self._connect()
        initiator.login()
        with pytest.raises(ProtocolError, match="status"):
            initiator.read(99)

    def test_nop_echo(self):
        initiator, _, _ = self._connect()
        initiator.login()
        assert initiator.ping(b"ping!") == b"ping!"

    def test_replication_frame_dispatched(self):
        seen = []

        def handler(lba, frame):
            seen.append((lba, frame))
            return b"ack-payload"

        initiator, _, _ = self._connect(handler=handler)
        initiator.login()
        ack = initiator.send_replication_frame(9, b"FRAME")
        assert ack == b"ack-payload"
        assert seen == [(9, b"FRAME")]

    def test_replication_without_handler_rejected_with_status(self):
        initiator, _, _ = self._connect()
        initiator.login()
        with pytest.raises(ProtocolError, match="status"):
            initiator.send_replication_frame(0, b"x")

    def test_logout_closes_session(self):
        initiator, _, thread = self._connect()
        initiator.login()
        initiator.logout()
        thread.join(timeout=2)
        assert not thread.is_alive()
        assert not initiator.logged_in


class TestTcp:
    def test_full_session_over_sockets(self):
        device = MemoryBlockDevice(BS, 16)
        with TargetServer(device) as server:
            host, port = server.address
            initiator = Initiator(TcpTransport.connect(host, port), timeout=5)
            initiator.login()
            initiator.write(1, b"t" * BS)
            assert initiator.read(1) == b"t" * BS
            assert initiator.transport.bytes_sent > 0
            initiator.logout()

    def test_multiple_concurrent_sessions(self):
        device = MemoryBlockDevice(BS, 16)
        with TargetServer(device) as server:
            host, port = server.address
            initiators = [
                Initiator(TcpTransport.connect(host, port), timeout=5)
                for _ in range(3)
            ]
            for i, initiator in enumerate(initiators):
                initiator.login()
                initiator.write(i, bytes([i]) * BS)
            for i, initiator in enumerate(initiators):
                assert initiator.read(i) == bytes([i]) * BS
                initiator.logout()

    def test_itt_matching_enforced(self):
        """Responses must carry the request's task tag."""
        device = MemoryBlockDevice(BS, 16)
        with TargetServer(device) as server:
            host, port = server.address
            initiator = Initiator(TcpTransport.connect(host, port), timeout=5)
            initiator.login()
            # normal operation keeps tags in sync; just exercise several ops
            for lba in range(5):
                initiator.write(lba, bytes([lba + 1]) * BS)
                assert initiator.read(lba) == bytes([lba + 1]) * BS
            initiator.logout()


class TestStatusCodes:
    def test_handle_returns_invalid_lba_status(self):
        target = Target(MemoryBlockDevice(BS, 4))
        login = Pdu(opcode=Opcode.LOGIN_REQUEST, itt=1)
        target.handle(login)
        bad_read = Pdu(
            opcode=Opcode.SCSI_COMMAND,
            flags=int(ScsiOp.READ),
            lba=100,
            transfer_length=1,
            itt=2,
        )
        response = target.handle(bad_read)
        assert response.status == Status.INVALID_LBA
