"""Tests for schema / row serialization."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError, StorageError
from repro.minidb import Column, ColumnType, Schema


def sample_schema():
    return Schema([
        Column("id", ColumnType.INT),
        Column("score", ColumnType.FLOAT),
        Column("code", ColumnType.CHAR, 8),
        Column("note", ColumnType.VARCHAR, 100),
    ])


class TestSchema:
    def test_roundtrip(self):
        schema = sample_schema()
        row = (42, 3.25, "AB12", "hello world")
        assert schema.decode(schema.encode(row)) == row

    def test_char_padding_stripped(self):
        schema = Schema([Column("c", ColumnType.CHAR, 10)])
        assert schema.decode(schema.encode(("hi",))) == ("hi",)

    def test_negative_int(self):
        schema = Schema([Column("n", ColumnType.INT)])
        assert schema.decode(schema.encode((-12345,))) == (-12345,)

    def test_char_too_wide(self):
        schema = Schema([Column("c", ColumnType.CHAR, 3)])
        with pytest.raises(StorageError):
            schema.encode(("toolong",))

    def test_varchar_too_wide(self):
        schema = Schema([Column("v", ColumnType.VARCHAR, 3)])
        with pytest.raises(StorageError):
            schema.encode(("toolong",))

    def test_wrong_arity(self):
        with pytest.raises(StorageError):
            sample_schema().encode((1, 2.0))

    def test_column_index(self):
        schema = sample_schema()
        assert schema.column_index("code") == 2
        with pytest.raises(ConfigurationError):
            schema.column_index("nope")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            Schema([Column("a", ColumnType.INT), Column("a", ColumnType.INT)])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            Schema([])

    def test_string_column_needs_width(self):
        with pytest.raises(ConfigurationError):
            Column("c", ColumnType.CHAR)

    def test_max_row_size_bounds_encoding(self):
        schema = sample_schema()
        row = (1, 1.0, "XXXXXXXX", "y" * 100)
        assert len(schema.encode(row)) <= schema.max_row_size()

    def test_unicode_varchar(self):
        schema = Schema([Column("v", ColumnType.VARCHAR, 40)])
        assert schema.decode(schema.encode(("héllo wörld",))) == ("héllo wörld",)

    def test_trailing_bytes_detected(self):
        schema = Schema([Column("n", ColumnType.INT)])
        with pytest.raises(StorageError):
            schema.decode(schema.encode((1,)) + b"\x00")

    @settings(max_examples=40, deadline=None)
    @given(
        number=st.integers(-(2**62), 2**62),
        value=st.floats(allow_nan=False, allow_infinity=False, width=64),
        code=st.text(
            alphabet=st.characters(min_codepoint=33, max_codepoint=126), max_size=8
        ),
        note=st.text(
            alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=100
        ),
    )
    def test_roundtrip_property(self, number, value, code, note):
        schema = sample_schema()
        row = (number, value, code.strip() or "x", note)
        decoded = schema.decode(schema.encode(row))
        assert decoded[0] == row[0]
        assert decoded[1] == pytest.approx(row[1], nan_ok=False)
        assert decoded[2] == row[2]
        assert decoded[3] == row[3]
