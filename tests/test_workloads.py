"""Tests for content models, traces, and the three workload drivers."""

from __future__ import annotations

import zlib

import pytest

from repro.block import MemoryBlockDevice
from repro.common.buffers import nonzero_fraction
from repro.common.rng import make_rng
from repro.fs import FileSystem
from repro.minidb import Database
from repro.parity import forward_parity
from repro.workloads import (
    FsMicroBenchmark,
    FsMicroConfig,
    TextGenerator,
    TpccConfig,
    TpccWorkload,
    TpcwConfig,
    TpcwWorkload,
    TraceDevice,
    mutate_fraction,
    random_bytes,
    replay_trace,
)
from repro.workloads.content import astring


class TestContent:
    def test_text_is_compressible(self, rng):
        text = TextGenerator(rng).paragraph(8000)
        assert len(zlib.compress(text)) < len(text) / 2

    def test_astring_is_poorly_compressible(self, rng):
        data = astring(rng, 8000).encode()
        assert len(zlib.compress(data)) > len(data) / 2

    def test_astring_alphanumeric(self, rng):
        assert astring(rng, 500).isalnum()

    def test_astring_validation(self, rng):
        with pytest.raises(ValueError):
            astring(rng, -1)

    def test_paragraph_exact_size(self, rng):
        assert len(TextGenerator(rng).paragraph(1234)) == 1234

    def test_random_bytes_incompressible(self, rng):
        data = random_bytes(rng, 4000)
        assert len(zlib.compress(data)) > len(data) * 0.95

    def test_mutate_fraction_changes_requested_amount(self, rng):
        data = random_bytes(rng, 10000)
        mutated = mutate_fraction(data, 0.10, rng)
        delta = forward_parity(mutated, data)
        assert 0.05 <= nonzero_fraction(delta) <= 0.15
        assert len(mutated) == len(data)

    def test_mutate_zero_fraction_is_identity(self, rng):
        data = random_bytes(rng, 100)
        assert mutate_fraction(data, 0.0, rng) == data

    def test_mutate_validation(self, rng):
        with pytest.raises(ValueError):
            mutate_fraction(b"x", 1.5, rng)
        with pytest.raises(ValueError):
            mutate_fraction(b"x", 0.5, rng, runs=0)

    def test_mutate_clusters_changes(self, rng):
        """Changes land in `runs` contiguous spans, not scattered."""
        data = bytes(10000)
        mutated = mutate_fraction(data, 0.05, rng, runs=2)
        from repro.common.buffers import nonzero_runs

        delta = forward_parity(mutated, data)
        assert len(nonzero_runs(delta)) <= 60  # few clusters (text has spaces)


class TestTrace:
    def test_trace_records_writes(self):
        device = TraceDevice(MemoryBlockDevice(256, 8))
        device.write_block(1, b"a" * 256)
        device.write_block(2, b"b" * 256)
        device.write_block(1, b"c" * 256)
        trace = device.trace
        assert trace.write_count == 3
        assert trace.bytes_written == 768
        assert trace.unique_lbas == 2
        assert trace.writes[0] == (1, b"a" * 256)

    def test_replay_reproduces_image(self):
        source = TraceDevice(MemoryBlockDevice(256, 8))
        for lba in (3, 1, 3):
            source.write_block(lba, bytes([lba + 10]) * 256)
        target = MemoryBlockDevice(256, 8)
        assert replay_trace(source.trace, target) == 3
        for lba in range(8):
            assert target.read_block(lba) == source.inner.read_block(lba)

    def test_replay_block_size_mismatch(self):
        device = TraceDevice(MemoryBlockDevice(256, 8))
        with pytest.raises(ValueError):
            replay_trace(device.trace, MemoryBlockDevice(512, 8))


def small_tpcc(device):
    db = Database(device, pool_capacity=256)
    workload = TpccWorkload(
        db, TpccConfig(warehouses=1, customers_per_district=5, items=50)
    )
    return workload, db


class TestTpcc:
    def test_populate_builds_all_tables(self):
        workload, _ = small_tpcc(MemoryBlockDevice(4096, 2048))
        workload.populate()
        cfg = workload.config
        assert len(workload.warehouse) == cfg.warehouses
        assert len(workload.item) == cfg.items
        assert len(workload.stock) == cfg.warehouses * cfg.items
        assert (
            len(workload.customer)
            == cfg.warehouses * cfg.districts_per_warehouse * cfg.customers_per_district
        )

    def test_mix_roughly_matches_spec(self):
        workload, _ = small_tpcc(MemoryBlockDevice(4096, 4096))
        workload.populate()
        workload.run(150)
        counts = workload.transaction_counts
        assert workload.transactions_run == 150
        assert counts["new_order"] > counts["order_status"]
        assert counts["payment"] > counts["delivery"]

    def test_new_order_advances_district_counter(self):
        workload, _ = small_tpcc(MemoryBlockDevice(4096, 2048))
        workload.populate()
        before = workload.district.get(workload._district_key(1, 1))[4]
        for _ in range(30):
            workload._tx_new_order()
        # at least some orders landed in district (1,1)
        totals = sum(
            workload.district.get(workload._district_key(1, d))[4] - 1
            for d in range(1, 11)
        )
        assert totals == 30
        assert workload.district.get(workload._district_key(1, 1))[4] >= before

    def test_payment_moves_money(self):
        workload, _ = small_tpcc(MemoryBlockDevice(4096, 2048))
        workload.populate()
        ytd_before = workload.warehouse.get(1)[6]
        workload._tx_payment()
        assert workload.warehouse.get(1)[6] > ytd_before

    def test_delivery_consumes_new_orders(self):
        workload, _ = small_tpcc(MemoryBlockDevice(4096, 4096))
        workload.populate()
        for _ in range(20):
            workload._tx_new_order()
        pending_before = len(workload.new_order)
        assert pending_before > 0
        for _ in range(40):
            workload._tx_delivery()
        assert len(workload.new_order) < pending_before

    def test_deterministic_given_seed(self):
        device_a = TraceDevice(MemoryBlockDevice(4096, 2048))
        workload_a, _ = small_tpcc(device_a)
        workload_a.populate()
        workload_a.run(30)
        device_b = TraceDevice(MemoryBlockDevice(4096, 2048))
        workload_b, _ = small_tpcc(device_b)
        workload_b.populate()
        workload_b.run(30)
        assert device_a.trace.writes == device_b.trace.writes


class TestTpcw:
    def _workload(self):
        db = Database(MemoryBlockDevice(4096, 4096), pool_capacity=256)
        return TpcwWorkload(
            db, TpcwConfig(items=100, initial_customers=10, commit_interval=5)
        )

    def test_populate(self):
        workload = self._workload()
        workload.populate()
        assert len(workload.item) == 100
        assert len(workload.customer) == 10

    def test_interactions_run(self):
        workload = self._workload()
        workload.populate()
        workload.run(120)
        assert workload.interactions_run == 120
        assert sum(workload.interaction_counts.values()) == 120

    def test_buy_confirm_writes_order_chain(self):
        workload = self._workload()
        workload.populate()
        workload._ix_cart_update(0)
        workload._ix_cart_update(0)
        workload._ix_buy_confirm(0)
        assert len(workload.orders) == 1
        assert len(workload.order_line) == 2
        assert len(workload.cc_xacts) == 1
        assert len(workload.address) == 1
        assert len(workload.cart_line) == 0  # cart cleared

    def test_admin_update_changes_item(self):
        workload = self._workload()
        workload.populate()
        before = {i: workload.item.get(i)[6] for i in range(1, 101)}
        for _ in range(5):
            workload._ix_admin_update(0)
        after = {i: workload.item.get(i)[6] for i in range(1, 101)}
        assert before != after


class TestFsMicro:
    def _benchmark(self):
        device = MemoryBlockDevice(2048, 4096)
        fs = FileSystem.format(device, inode_count=256)
        return FsMicroBenchmark(
            fs, FsMicroConfig(files_per_directory=3, file_size=4096, rounds=2)
        )

    def test_populate_creates_tree_and_archive(self):
        benchmark = self._benchmark()
        benchmark.populate()
        assert len(benchmark.fs.walk("/")) == 5 * 3 + 1  # files + archive.tar
        assert benchmark.fs.exists("archive.tar")
        assert benchmark.archive_bytes > 0

    def test_rounds_edit_and_retar(self):
        benchmark = self._benchmark()
        benchmark.populate()
        archive_before = benchmark.fs.read_file("archive.tar")
        benchmark.run()
        assert benchmark.rounds_run == 2
        archive_after = benchmark.fs.read_file("archive.tar")
        assert archive_after != archive_before  # edits visible in archive
        assert len(archive_after) == len(archive_before)  # sizes preserved

    def test_run_round_requires_populate(self):
        benchmark = self._benchmark()
        with pytest.raises(RuntimeError):
            benchmark.run_round()
