"""Tests for conflict-aware replica read routing (repro.engine.router).

The router's contract: a routed read always returns exactly the bytes a
primary-served read would have returned, while conflict-free reads are
offloaded to healthy replicas (round-robin or least-loaded) and
everything else — dirty LBAs, degraded replicas, batch-buffered
payloads, short fragment sets — falls back to the primary.
"""

from __future__ import annotations

import random

import pytest

from repro.block import MemoryBlockDevice
from repro.common.errors import ConfigurationError
from repro.engine import (
    DirectLink,
    PrimaryEngine,
    ReadRouter,
    ReplicaEngine,
    ResilienceConfig,
    SchedulerConfig,
    make_strategy,
)
from repro.engine.batch import BatchConfig
from repro.engine.resilience import LinkHealth
from repro.engine.stripe import StripeConfig

BS = 512
N = 32


def _stack(
    replicas=3,
    read_policy="replica",
    resilience=None,
    stripe=None,
    **engine_kwargs,
):
    strategy = make_strategy("prins")
    primary = MemoryBlockDevice(BS, N)
    if stripe is not None:
        fragment = BS // stripe.k
        replica_devices = [
            MemoryBlockDevice(fragment, N) for _ in range(stripe.n)
        ]
    else:
        replica_devices = [MemoryBlockDevice(BS, N) for _ in range(replicas)]
    links = [
        DirectLink(ReplicaEngine(device, strategy))
        for device in replica_devices
    ]
    engine = PrimaryEngine(
        primary,
        strategy,
        links,
        read_policy=read_policy,
        resilience=resilience,
        stripe=stripe,
        **engine_kwargs,
    )
    return engine, primary, replica_devices


def _fill(engine, seed=3):
    rng = random.Random(seed)
    for lba in range(N):
        engine.write_block(lba, bytes(rng.randrange(256) for _ in range(BS)))
    engine.drain()


class TestPolicyValidation:
    def test_primary_policy_builds_no_router(self):
        engine, _, _ = _stack(read_policy="primary")
        assert engine.router is None
        assert engine.read_policy == "primary"

    def test_router_rejects_primary_policy(self):
        engine, _, _ = _stack(read_policy="primary")
        with pytest.raises(ConfigurationError):
            ReadRouter(engine, "primary")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            _stack(read_policy="chaos")

    def test_replica_policy_builds_router(self):
        engine, _, _ = _stack(read_policy="replica")
        assert engine.router is not None
        assert engine.read_policy == "replica"


class TestRoundRobin:
    def test_reads_match_primary_bytes(self):
        engine, primary, _ = _stack()
        _fill(engine)
        for lba in range(N):
            assert engine.read_block(lba) == primary.read_block(lba)

    def test_quiescent_reads_spread_round_robin(self):
        engine, _, _ = _stack(replicas=3)
        _fill(engine)
        for lba in range(12):
            engine.read_block(lba)
        router = engine.router
        assert router.reads_replica == 12
        assert router.reads_primary == 0
        assert router.reads_conflict == 0

    def test_snapshot_shape(self):
        engine, _, _ = _stack()
        _fill(engine)
        engine.read_block(0)
        snap = engine.router.snapshot()
        assert snap == {
            "policy": "replica",
            "reads_primary": 0,
            "reads_replica": 1,
            "reads_conflict": 0,
        }


class TestConflictFallback:
    def test_inflight_lba_reads_from_primary(self):
        engine, primary, _ = _stack(
            replicas=2,
            scheduler=SchedulerConfig(window=4, link_latency_s=0.01),
        )
        _fill(engine)
        data = bytes(7 for _ in range(BS))
        engine.write_block(5, data)  # unacked: dirty on every channel
        assert engine.scheduler.lba_in_flight(5, 0)
        assert engine.read_block(5) == data  # served by the primary
        router = engine.router
        assert router.reads_conflict == 1
        assert router.reads_primary == 1
        engine.drain()
        assert not engine.scheduler.lba_in_flight(5, 0)
        assert engine.read_block(5) == data  # now routable
        assert router.reads_replica == 1

    def test_clean_lbas_still_route_while_another_is_dirty(self):
        engine, _, _ = _stack(
            replicas=2,
            scheduler=SchedulerConfig(window=4, link_latency_s=0.01),
        )
        _fill(engine)
        engine.write_block(5, bytes(BS))
        before = engine.router.reads_replica
        engine.read_block(6)  # different LBA: no conflict
        assert engine.router.reads_replica == before + 1
        engine.drain()

    def test_batch_buffered_lba_reads_from_primary(self):
        engine, _, _ = _stack(
            replicas=2, batch=BatchConfig(max_records=8)
        )
        _fill(engine)
        data = bytes(9 for _ in range(BS))
        engine.write_block(3, data)  # parked in the batch window
        assert engine.read_block(3) == data
        assert engine.router.reads_primary == 1
        engine.flush_batch()
        assert engine.read_block(3) == data
        assert engine.router.reads_replica == 1


class TestHealthFallback:
    def test_down_replica_is_never_routed_to(self):
        engine, primary, _ = _stack(
            replicas=2, resilience=ResilienceConfig()
        )
        _fill(engine)
        engine.fail_link(0)
        stale = bytes(1 for _ in range(BS))
        engine.write_block(4, stale)  # journals toward link 0
        for _ in range(6):
            assert engine.read_block(4) == stale
        assert engine.link_health()[0] is LinkHealth.DOWN
        engine.heal_link(0)
        assert engine.read_block(4) == stale

    def test_all_replicas_down_falls_back_to_primary(self):
        engine, primary, _ = _stack(
            replicas=2, resilience=ResilienceConfig()
        )
        _fill(engine)
        engine.fail_link(0)
        engine.fail_link(1)
        before = engine.router.reads_primary
        assert engine.read_block(2) == primary.read_block(2)
        assert engine.router.reads_primary == before + 1
        # no healthy replica existed, so this is not a "conflict"
        assert engine.router.reads_conflict == 0


class TestLeastLoaded:
    def test_policy_accepted_and_correct(self):
        engine, primary, _ = _stack(replicas=3, read_policy="least_loaded")
        _fill(engine)
        for lba in range(N):
            assert engine.read_block(lba) == primary.read_block(lba)
        assert engine.router.reads_replica == N

    def test_prefers_unloaded_channel(self):
        engine, _, _ = _stack(
            replicas=2,
            read_policy="least_loaded",
            scheduler=SchedulerConfig(window=4, link_latency_s=0.01),
        )
        _fill(engine)
        router = engine.router
        assert router._channel_load(0) == router._channel_load(1) == 0
        engine.write_block(1, bytes(BS))
        assert router._channel_load(0) > 0  # in-flight toward both
        engine.drain()


class TestErasureRouting:
    def test_routed_striped_reads_match_primary(self):
        stripe = StripeConfig(k=2, n=4)
        engine, primary, _ = _stack(stripe=stripe)
        _fill(engine)
        for lba in range(N):
            assert engine.read_block(lba) == primary.read_block(lba)
        assert engine.router.reads_replica == N

    def test_holder_rotation_spreads_fragment_load(self):
        stripe = StripeConfig(k=2, n=4)
        engine, _, devices = _stack(stripe=stripe)
        _fill(engine)

        reads = [0] * len(devices)
        originals = [d.read_block for d in devices]

        def counting(index):
            def _read(lba):
                reads[index] += 1
                return originals[index](lba)

            return _read

        for index, device in enumerate(devices):
            device.read_block = counting(index)
        for _ in range(8):
            engine.read_block(0)
        # any-k rotation touches every holder, not a fixed k-prefix
        assert all(count > 0 for count in reads)

    def test_inflight_striped_lba_reads_from_primary(self):
        stripe = StripeConfig(k=2, n=4)
        engine, _, _ = _stack(
            stripe=stripe,
            scheduler=SchedulerConfig(window=4, link_latency_s=0.01),
        )
        _fill(engine)
        data = bytes(11 for _ in range(BS))
        engine.write_block(7, data)
        assert engine.read_block(7) == data
        assert engine.router.reads_conflict == 1
        assert engine.router.reads_primary == 1
        engine.drain()


class TestTelemetryExport:
    def test_router_section_in_engine_snapshot(self):
        from repro.obs.telemetry import Telemetry

        tel = Telemetry(detail=True)
        engine, _, _ = _stack(telemetry=tel, telemetry_name="t")
        _fill(engine)
        engine.read_block(0)
        snap = engine.telemetry_snapshot()
        assert snap["router"]["reads_replica"] == 1
        metrics = tel.snapshot()["metrics"]["counters"]
        assert metrics["router.reads_replica"] == 1
        assert "read.route" in tel.snapshot()["spans"]
