"""Tests for the RAID arrays: geometry, parity, degradation, rebuild."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.block import MemoryBlockDevice
from repro.common.errors import ConfigurationError, RaidDegradedError
from repro.raid import (
    Raid0Array,
    Raid1Array,
    Raid4Array,
    Raid5Array,
    StripeGeometry,
    stripe_parity,
    verify_stripe,
)
from repro.raid.parity import reconstruct_block

BS = 256


def disks(n, blocks=8):
    return [MemoryBlockDevice(BS, blocks) for _ in range(n)]


def block(tag, size=BS):
    return bytes([tag % 256]) * size


class TestStripeGeometry:
    def test_locate_and_inverse(self):
        geo = StripeGeometry(num_data_disks=4, blocks_per_disk=10)
        for lba in range(geo.logical_blocks):
            stripe, col = geo.locate(lba)
            assert geo.lba_of(stripe, col) == lba

    def test_stripe_lbas(self):
        geo = StripeGeometry(3, 5)
        assert geo.stripe_lbas(1) == [3, 4, 5]

    def test_out_of_range(self):
        geo = StripeGeometry(3, 5)
        with pytest.raises(ValueError):
            geo.locate(15)
        with pytest.raises(ValueError):
            geo.lba_of(5, 0)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            StripeGeometry(0, 5)


class TestParityHelpers:
    def test_stripe_parity_and_verify(self):
        blocks = [block(i) for i in range(1, 5)]
        parity = stripe_parity(blocks)
        assert verify_stripe(blocks, parity)
        assert not verify_stripe(blocks, block(0xEE))

    def test_reconstruct(self):
        blocks = [block(i) for i in (3, 7, 11)]
        parity = stripe_parity(blocks)
        survivors = blocks[:1] + blocks[2:] + [parity]
        assert reconstruct_block(survivors) == blocks[1]

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            stripe_parity([])


class TestRaid0:
    def test_capacity_is_sum(self):
        arr = Raid0Array(disks(4))
        assert arr.num_blocks == 4 * 8

    def test_round_trip(self):
        arr = Raid0Array(disks(3))
        for lba in range(arr.num_blocks):
            arr.write_block(lba, block(lba))
        for lba in range(arr.num_blocks):
            assert arr.read_block(lba) == block(lba)

    def test_no_fault_tolerance(self):
        arr = Raid0Array(disks(2))
        with pytest.raises(RaidDegradedError):
            arr.fail_disk(0)

    def test_min_disks(self):
        with pytest.raises(ConfigurationError):
            Raid0Array(disks(1))


class TestRaid1:
    def test_survives_n_minus_1_failures(self):
        arr = Raid1Array(disks(3))
        arr.write_block(2, block(9))
        arr.fail_disk(0)
        arr.fail_disk(1)
        assert arr.read_block(2) == block(9)

    def test_write_while_degraded_then_rebuild(self):
        arr = Raid1Array(disks(2))
        arr.fail_disk(0)
        arr.write_block(1, block(5))
        arr.replace_disk(0, MemoryBlockDevice(BS, 8))
        assert not arr.degraded
        arr.fail_disk(1)  # now read from the rebuilt member
        assert arr.read_block(1) == block(5)

    def test_replace_unfailed_rejected(self):
        arr = Raid1Array(disks(2))
        with pytest.raises(ConfigurationError):
            arr.replace_disk(0, MemoryBlockDevice(BS, 8))

    def test_geometry_mismatch_rejected(self):
        members = disks(2)
        members.append(MemoryBlockDevice(BS, 16))
        with pytest.raises(ConfigurationError):
            Raid1Array(members)


@pytest.mark.parametrize("cls", [Raid4Array, Raid5Array], ids=["raid4", "raid5"])
class TestParityArrays:
    def test_capacity_excludes_parity(self, cls):
        arr = cls(disks(5))
        assert arr.num_blocks == 4 * 8

    def test_round_trip_all_blocks(self, cls):
        arr = cls(disks(4))
        for lba in range(arr.num_blocks):
            arr.write_block(lba, block(lba + 1))
        for lba in range(arr.num_blocks):
            assert arr.read_block(lba) == block(lba + 1)

    def test_scrub_clean_after_writes(self, cls):
        arr = cls(disks(5))
        for lba in range(0, arr.num_blocks, 3):
            arr.write_block(lba, block(lba + 1))
        assert arr.scrub() == []

    def test_write_with_delta_returns_forward_parity(self, cls):
        arr = cls(disks(4))
        arr.write_block(3, block(0xAA))
        delta = arr.write_block_with_delta(3, block(0xAB))
        assert delta == bytes([0xAA ^ 0xAB]) * BS

    def test_degraded_read_reconstructs(self, cls):
        arr = cls(disks(4))
        for lba in range(arr.num_blocks):
            arr.write_block(lba, block(lba + 1))
        arr.fail_disk(1)
        for lba in range(arr.num_blocks):
            assert arr.read_block(lba) == block(lba + 1)

    def test_write_while_degraded_preserved_after_rebuild(self, cls):
        arr = cls(disks(4))
        for lba in range(arr.num_blocks):
            arr.write_block(lba, block(lba + 1))
        arr.fail_disk(2)
        arr.write_block(5, block(0x77))  # write hitting various placements
        arr.write_block(6, block(0x78))
        arr.replace_disk(2, MemoryBlockDevice(BS, 8))
        assert arr.scrub() == []
        assert arr.read_block(5) == block(0x77)
        assert arr.read_block(6) == block(0x78)

    def test_second_failure_rejected(self, cls):
        arr = cls(disks(4))
        arr.fail_disk(0)
        with pytest.raises(RaidDegradedError):
            arr.fail_disk(1)

    def test_scrub_degraded_rejected(self, cls):
        arr = cls(disks(4))
        arr.fail_disk(0)
        with pytest.raises(RaidDegradedError):
            arr.scrub()

    def test_min_disks(self, cls):
        with pytest.raises(ConfigurationError):
            cls(disks(2))

    @settings(max_examples=15, deadline=None)
    @given(
        writes=st.lists(
            st.tuples(st.integers(0, 23), st.binary(min_size=BS, max_size=BS)),
            max_size=25,
        ),
        victim=st.integers(0, 3),
    )
    def test_any_single_disk_is_recoverable(self, cls, writes, victim):
        """Property: after any write set, any one member can fail and the
        full logical image survives."""
        arr = cls(disks(4))
        shadow = {}
        for lba, data in writes:
            arr.write_block(lba, data)
            shadow[lba] = data
        arr.fail_disk(victim)
        for lba, data in shadow.items():
            assert arr.read_block(lba) == data


class TestRaid5Rotation:
    def test_parity_rotates(self):
        arr = Raid5Array(disks(4))
        placements = {arr.parity_disk(stripe) for stripe in range(4)}
        assert placements == {0, 1, 2, 3}

    def test_data_disks_skip_parity(self):
        arr = Raid5Array(disks(4))
        for stripe in range(8):
            parity = arr.parity_disk(stripe)
            cols = [arr.data_disk(stripe, c) for c in range(3)]
            assert parity not in cols
            assert sorted(cols + [parity]) == [0, 1, 2, 3]


class TestRaid4FixedParity:
    def test_parity_always_last(self):
        arr = Raid4Array(disks(5))
        assert all(arr.parity_disk(s) == 4 for s in range(8))
