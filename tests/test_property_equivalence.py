"""Cross-cutting property tests: all roads lead to the same replica image.

The deep invariant of the whole system is *equivalence*: whatever
strategy, codec, device backing, or connectivity history is used, after
the dust settles the replica must hold exactly the primary's bytes.
Hypothesis drives random write schedules through structurally different
stacks and asserts the images match.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.block import MemoryBlockDevice
from repro.engine import (
    DirectLink,
    JournalingLink,
    PrimaryEngine,
    PrinsStrategy,
    ReplicaEngine,
    make_strategy,
    verify_consistency,
)
from repro.raid import Raid4Array, Raid5Array
from repro.workloads.trace import BlockWriteTrace, replay_trace

BS = 128
N = 8

write_lists = st.lists(
    st.tuples(st.integers(0, N - 1), st.binary(min_size=BS, max_size=BS)),
    max_size=40,
)


def _image(device: MemoryBlockDevice) -> bytes:
    return device.snapshot()


@settings(max_examples=25, deadline=None)
@given(writes=write_lists)
def test_all_strategies_produce_identical_replicas(writes):
    images = []
    for name in ("traditional", "compressed", "prins"):
        primary = MemoryBlockDevice(BS, N)
        replica = MemoryBlockDevice(BS, N)
        strategy = make_strategy(name)
        engine = PrimaryEngine(
            primary, strategy, [DirectLink(ReplicaEngine(replica, strategy))]
        )
        for lba, data in writes:
            engine.write_block(lba, data)
        assert verify_consistency(primary, replica) == []
        images.append(_image(replica))
    assert images[0] == images[1] == images[2]


@settings(max_examples=25, deadline=None)
@given(writes=write_lists, codec=st.sampled_from(["zero-rle", "sparse", "zlib", "rle+zlib"]))
def test_prins_codec_choice_is_invisible(writes, codec):
    primary = MemoryBlockDevice(BS, N)
    replica = MemoryBlockDevice(BS, N)
    strategy = PrinsStrategy(codec=codec)
    engine = PrimaryEngine(
        primary, strategy, [DirectLink(ReplicaEngine(replica, strategy))]
    )
    for lba, data in writes:
        engine.write_block(lba, data)
    assert verify_consistency(primary, replica) == []


@settings(max_examples=15, deadline=None)
@given(writes=write_lists, raid_cls=st.sampled_from([Raid4Array, Raid5Array]))
def test_raid_backed_primary_equals_flat_primary(writes, raid_cls):
    """The free RAID delta must equal the computed one, write for write."""
    flat_primary = MemoryBlockDevice(BS, 3 * N)
    flat_replica = MemoryBlockDevice(BS, 3 * N)
    strategy = make_strategy("prins")
    flat_engine = PrimaryEngine(
        flat_primary, strategy,
        [DirectLink(ReplicaEngine(flat_replica, strategy))],
    )
    array = raid_cls([MemoryBlockDevice(BS, N) for _ in range(4)])
    raid_replica = MemoryBlockDevice(BS, array.num_blocks)
    raid_engine = PrimaryEngine(
        array, strategy, [DirectLink(ReplicaEngine(raid_replica, strategy))]
    )
    for lba, data in writes:
        flat_engine.write_block(lba, data)
        raid_engine.write_block(lba, data)
    assert _image(flat_replica) == _image(raid_replica)
    # and the wire cost was identical: same deltas either way
    assert (
        flat_engine.accountant.payload_bytes
        == raid_engine.accountant.payload_bytes
    )


@settings(max_examples=20, deadline=None)
@given(
    writes=write_lists,
    disconnect_at=st.integers(0, 39),
    reconnect_after=st.integers(0, 39),
)
def test_journaled_outage_equals_always_connected(
    writes, disconnect_at, reconnect_after
):
    """A disconnect/replay cycle must be invisible in the final image."""
    strategy = make_strategy("prins")
    steady_primary = MemoryBlockDevice(BS, N)
    steady_replica = MemoryBlockDevice(BS, N)
    steady_engine = PrimaryEngine(
        steady_primary, strategy,
        [DirectLink(ReplicaEngine(steady_replica, strategy))],
    )
    flaky_primary = MemoryBlockDevice(BS, N)
    flaky_replica = MemoryBlockDevice(BS, N)
    link = JournalingLink(DirectLink(ReplicaEngine(flaky_replica, strategy)))
    flaky_engine = PrimaryEngine(flaky_primary, strategy, [link])

    down_at = min(disconnect_at, len(writes))
    up_at = min(down_at + reconnect_after, len(writes))
    for index, (lba, data) in enumerate(writes):
        if index == down_at:
            link.disconnect()
        if index == up_at and not link.connected:
            link.reconnect()
        steady_engine.write_block(lba, data)
        flaky_engine.write_block(lba, data)
    if not link.connected:
        link.reconnect()
    assert _image(flaky_replica) == _image(steady_replica)


@settings(max_examples=20, deadline=None)
@given(writes=write_lists)
def test_trace_replay_is_faithful(writes):
    """Recording a write stream and replaying it reproduces the image."""
    original = MemoryBlockDevice(BS, N)
    trace = BlockWriteTrace(block_size=BS, num_blocks=N)
    for lba, data in writes:
        original.write_block(lba, data)
        trace.append(lba, data)
    replayed = MemoryBlockDevice(BS, N)
    replay_trace(trace, replayed)
    assert _image(original) == _image(replayed)


@settings(max_examples=25, deadline=None)
@given(writes=write_lists, cache=st.sampled_from([None, 2, N]))
def test_write_many_equals_sequential_writes(writes, cache):
    """The vectorized window path is observationally identical.

    ``write_many`` must leave the same primary image, the same replica
    image, and the same replicated payload accounting as issuing the
    writes one at a time — for any interleaving of LBAs (including
    same-window rewrites) and any A_old cache size.
    """
    images = []
    payloads = []
    for use_many in (False, True):
        primary = MemoryBlockDevice(BS, N)
        replica = MemoryBlockDevice(BS, N)
        strategy = make_strategy("prins")
        engine = PrimaryEngine(
            primary,
            strategy,
            [DirectLink(ReplicaEngine(replica, strategy))],
            old_block_cache=cache,
        )
        if use_many:
            engine.write_many(writes)
        else:
            for lba, data in writes:
                engine.write_block(lba, data)
        assert verify_consistency(primary, replica) == []
        images.append((_image(primary), _image(replica)))
        payloads.append(engine.accountant.snapshot()["payload_bytes"])
    assert images[0] == images[1]
    assert payloads[0] == payloads[1]


@settings(max_examples=25, deadline=None)
@given(writes=write_lists)
def test_buffer_protocol_writes_equal_bytes_writes(writes):
    """Writing bytearray/memoryview payloads equals writing bytes."""
    images = []
    for wrap in (lambda d: d, lambda d: memoryview(bytearray(d))):
        primary = MemoryBlockDevice(BS, N)
        replica = MemoryBlockDevice(BS, N)
        strategy = PrinsStrategy()
        engine = PrimaryEngine(
            primary, strategy, [DirectLink(ReplicaEngine(replica, strategy))]
        )
        for lba, data in writes:
            engine.write_block(lba, wrap(data))
        assert verify_consistency(primary, replica) == []
        images.append(_image(replica))
    assert images[0] == images[1]
