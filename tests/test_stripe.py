"""Unit tests for the k-of-n striping codec layer.

Covers the GF(256) arithmetic, the MDS (any-k-of-n) property of the
systematized-Vandermonde generator, the GF(2)-linearity that lets PRINS
deltas ride the code, the incremental parity CRC tracker, the read-only
fragment views, and the survivor-driven repair primitive.
"""

from __future__ import annotations

import itertools
import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.block import MemoryBlockDevice
from repro.common.errors import ConfigurationError, ReplicationError, SyncError
from repro.common.rng import make_rng
from repro.engine.stripe import (
    FragmentView,
    ParityCrcTracker,
    StripeCodec,
    StripeConfig,
    _gf_inv,
    _gf_mul,
    _invert_matrix,
    repair_from_survivors,
    stripe_full_sync,
    verify_fragments,
)


def _random_block(size: int, seed: int = 7) -> bytes:
    rng = make_rng(seed, "stripe-test")
    return rng.integers(0, 256, size, dtype="u1").tobytes()


# -- GF(256) arithmetic -------------------------------------------------------


def test_gf_mul_agrees_with_slow_reference():
    def slow_mul(a, b):
        result = 0
        while b:
            if b & 1:
                result ^= a
            a <<= 1
            if a & 0x100:
                a ^= 0x11D
            b >>= 1
        return result

    rng = make_rng(3, "gf")
    for _ in range(200):
        a = int(rng.integers(0, 256))
        b = int(rng.integers(0, 256))
        assert _gf_mul(a, b) == slow_mul(a, b)


def test_gf_inverse_roundtrip():
    for a in range(1, 256):
        assert _gf_mul(a, _gf_inv(a)) == 1
    with pytest.raises(ZeroDivisionError):
        _gf_inv(0)


def test_matrix_inversion_roundtrip():
    rng = make_rng(11, "matrix")
    matrix = [[int(v) for v in rng.integers(0, 256, 4)] for _ in range(4)]
    matrix[0][0] |= 1  # nudge away from the measure-zero singular case
    try:
        inverse = _invert_matrix(matrix)
    except ReplicationError:
        pytest.skip("random matrix happened to be singular")
    for i in range(4):
        for j in range(4):
            acc = 0
            for t in range(4):
                acc ^= _gf_mul(matrix[i][t], inverse[t][j])
            assert acc == (1 if i == j else 0)


# -- configuration ------------------------------------------------------------


def test_stripe_config_validation():
    with pytest.raises(ConfigurationError):
        StripeConfig(k=1, n=3)
    with pytest.raises(ConfigurationError):
        StripeConfig(k=4, n=4)
    with pytest.raises(ConfigurationError):
        StripeConfig(k=2, n=256)
    config = StripeConfig(k=4, n=6)
    assert config.m == 2
    assert config.storage_overhead == pytest.approx(1.5)


def test_codec_requires_divisible_block_size():
    with pytest.raises(ConfigurationError):
        StripeCodec(StripeConfig(k=3, n=5), 128)


def test_split_rejects_wrong_length():
    codec = StripeCodec(StripeConfig(k=4, n=6), 64)
    with pytest.raises(ReplicationError):
        codec.split(b"\x00" * 63)


# -- the MDS property: any k of n fragments reassemble ------------------------


@pytest.mark.parametrize("k,n", [(2, 3), (4, 6), (3, 7), (5, 8)])
def test_any_k_of_n_fragments_reassemble(k, n):
    codec = StripeCodec(StripeConfig(k=k, n=n), 8 * k)
    block = _random_block(8 * k, seed=k * 100 + n)
    fragments = codec.encode(block)
    assert len(fragments) == n
    assert all(len(f) == codec.fragment_size for f in fragments)
    for subset in itertools.combinations(range(n), k):
        chosen = {i: fragments[i] for i in subset}
        assert codec.reassemble(chosen) == block, f"subset {subset} failed"


@pytest.mark.parametrize("k,n", [(2, 4), (4, 6)])
def test_decode_missing_recomputes_every_fragment(k, n):
    codec = StripeCodec(StripeConfig(k=k, n=n), 16 * k)
    block = _random_block(16 * k)
    fragments = codec.encode(block)
    for missing in range(n):
        survivors = {i: fragments[i] for i in range(n) if i != missing}
        assert codec.decode_missing(missing, survivors) == fragments[missing]


def test_reassemble_needs_k_fragments():
    codec = StripeCodec(StripeConfig(k=4, n=6), 64)
    fragments = codec.encode(_random_block(64))
    with pytest.raises(ReplicationError):
        codec.reassemble({0: fragments[0], 5: fragments[5]})
    with pytest.raises(ReplicationError):
        codec.reassemble({0: fragments[0], 1: b"", 2: fragments[2], 3: fragments[3]})


@settings(max_examples=30, deadline=None)
@given(
    data=st.binary(min_size=48, max_size=48),
    drop=st.sets(st.integers(0, 5), max_size=2),
)
def test_reassembly_survives_any_m_losses(data, drop):
    """Hypothesis: any <= m missing fragments never lose data (k=4, n=6)."""
    codec = StripeCodec(StripeConfig(k=4, n=6), 48)
    fragments = codec.encode(data)
    available = {i: fragments[i] for i in range(6) if i not in drop}
    assert codec.reassemble(available) == data


# -- GF(2) linearity: the PRINS delta identity rides the code -----------------


def test_fragment_deltas_equal_delta_fragments():
    """encode(a) XOR encode(b) == encode(a XOR b), fragment for fragment.

    This is the load-bearing identity of the tier: a stripe-encoded PRINS
    parity delta, XOR-applied to each holder's stored fragment, lands the
    holder exactly on the new block's fragment.
    """
    codec = StripeCodec(StripeConfig(k=4, n=6), 64)
    a = _random_block(64, seed=1)
    b = _random_block(64, seed=2)
    delta = bytes(x ^ y for x, y in zip(a, b))
    enc_a, enc_b, enc_d = codec.encode(a), codec.encode(b), codec.encode(delta)
    for j in range(codec.n):
        xored = bytes(x ^ y for x, y in zip(enc_a[j], enc_b[j]))
        assert xored == enc_d[j], f"fragment {j} is not linear"


def test_xor_code_parity_is_plain_xor_of_slices():
    """m == 1 must degenerate to the RAID-5 all-ones XOR row."""
    codec = StripeCodec(StripeConfig(k=4, n=5), 64)
    block = _random_block(64)
    slices = codec.split(block)
    expected = bytes(
        s0 ^ s1 ^ s2 ^ s3 for s0, s1, s2, s3 in zip(*slices)
    )
    assert codec.parity_fragment(block, 0) == expected


# -- incremental parity CRC tracking ------------------------------------------


def test_parity_crc_tracker_follows_xor_deltas():
    codec = StripeCodec(StripeConfig(k=4, n=6), 64)
    device = MemoryBlockDevice(64, 4)
    tracker = ParityCrcTracker(codec, device)
    rng = make_rng(5, "crc")
    current = {lba: bytes(64) for lba in range(4)}
    for step in range(20):
        lba = int(rng.integers(0, 4))
        new = rng.integers(0, 256, 64, dtype="u1").tobytes()
        delta = bytes(x ^ y for x, y in zip(new, current[lba]))
        for j in range(codec.m):
            parity_delta = codec.parity_fragment(delta, j)
            tracked = tracker.advance(lba, j, parity_delta)
            actual = zlib.crc32(codec.parity_fragment(new, j))
            assert tracked == actual, f"step {step} lba {lba} parity {j}"
        current[lba] = new


def test_parity_crc_tracker_seeds_from_preloaded_device():
    codec = StripeCodec(StripeConfig(k=2, n=4), 32)
    device = MemoryBlockDevice(32, 3)
    device.write_block(1, _random_block(32))
    tracker = ParityCrcTracker(codec, device)
    for lba in range(3):
        block = device.read_block(lba)
        for j in range(codec.m):
            assert tracker.current(lba, j) == zlib.crc32(
                codec.parity_fragment(block, j)
            )


# -- fragment views -----------------------------------------------------------


def test_fragment_view_derives_and_rejects_writes():
    codec = StripeCodec(StripeConfig(k=4, n=6), 64)
    source = MemoryBlockDevice(64, 4)
    source.write_block(2, _random_block(64))
    for index in range(codec.n):
        view = FragmentView(source, codec, index)
        assert view.block_size == codec.fragment_size
        assert view.num_blocks == source.num_blocks
        assert view.fragment_index == index
        for lba in range(4):
            assert view.read_block(lba) == codec.fragment_of(
                source.read_block(lba), index
            )
        with pytest.raises(SyncError):
            view.write_block(0, bytes(codec.fragment_size))


def test_fragment_view_validates_geometry():
    codec = StripeCodec(StripeConfig(k=4, n=6), 64)
    with pytest.raises(ConfigurationError):
        FragmentView(MemoryBlockDevice(64, 4), codec, 6)
    with pytest.raises(ConfigurationError):
        FragmentView(MemoryBlockDevice(128, 4), codec, 0)


# -- full sync, verification, repair ------------------------------------------


def _synced_group(codec, num_blocks=6, seed=9):
    source = MemoryBlockDevice(codec.block_size, num_blocks)
    rng = make_rng(seed, "group")
    for lba in range(num_blocks):
        source.write_block(
            lba, rng.integers(0, 256, codec.block_size, dtype="u1").tobytes()
        )
    holders = [
        MemoryBlockDevice(codec.fragment_size, num_blocks)
        for _ in range(codec.n)
    ]
    stripe_full_sync(codec, source, holders)
    return source, holders


def test_full_sync_then_verify_clean():
    codec = StripeCodec(StripeConfig(k=4, n=6), 64)
    source, holders = _synced_group(codec)
    assert verify_fragments(codec, source, holders) == {}


def test_verify_reports_corrupt_holder():
    codec = StripeCodec(StripeConfig(k=4, n=6), 64)
    source, holders = _synced_group(codec)
    holders[5].write_block(3, bytes(codec.fragment_size))
    assert verify_fragments(codec, source, holders) == {5: [3]}


@pytest.mark.parametrize("failed", [0, 3, 4, 5])
def test_repair_rebuilds_lost_fragment_at_volume_over_k(failed):
    codec = StripeCodec(StripeConfig(k=4, n=6), 64)
    source, holders = _synced_group(codec)
    lost = holders[failed].snapshot()
    replacement = MemoryBlockDevice(codec.fragment_size, source.num_blocks)
    report = repair_from_survivors(codec, holders, failed, replacement)
    assert replacement.snapshot() == lost
    assert report.fragment_index == failed
    assert failed not in report.survivors
    assert report.written_bytes == source.num_blocks * codec.fragment_size
    assert report.read_bytes == source.num_blocks * codec.k * codec.fragment_size
    # regenerating win: the replacement receives volume/k, not volume
    assert report.written_bytes * codec.k == source.num_blocks * codec.block_size


def test_repair_defaults_to_overwriting_the_failed_holder():
    codec = StripeCodec(StripeConfig(k=2, n=4), 32)
    source, holders = _synced_group(codec)
    want = holders[1].snapshot()
    holders[1].load(bytes(len(want)))  # disk replaced, zeroed
    repair_from_survivors(codec, holders, 1)
    assert holders[1].snapshot() == want


def test_repair_charges_the_accountant():
    from repro.engine.accounting import TrafficAccountant

    codec = StripeCodec(StripeConfig(k=4, n=6), 64)
    source, holders = _synced_group(codec)
    accountant = TrafficAccountant()
    report = repair_from_survivors(codec, holders, 2, accountant=accountant)
    assert accountant.repairs == 1
    assert accountant.repair_read_bytes == report.read_bytes
    assert accountant.repair_write_bytes == report.written_bytes
    accountant.verify_conservation()


def test_holder_count_is_validated():
    codec = StripeCodec(StripeConfig(k=4, n=6), 64)
    source, holders = _synced_group(codec)
    with pytest.raises(ConfigurationError):
        repair_from_survivors(codec, holders[:-1], 0)
    with pytest.raises(ConfigurationError):
        stripe_full_sync(codec, source, holders[:-1])


def test_parity_rows_are_nontrivial_for_rs_codes():
    """m >= 2 parity rows must differ (distinct evaluation points)."""
    codec = StripeCodec(StripeConfig(k=4, n=7), 64)
    assert len(set(codec.parity_rows)) == codec.m
    for row in codec.parity_rows:
        assert all(c != 0 for c in row)


def test_numpy_paths_leave_inputs_untouched():
    codec = StripeCodec(StripeConfig(k=4, n=6), 64)
    block = bytearray(_random_block(64))
    before = bytes(block)
    codec.encode(block)
    assert bytes(block) == before
    arr = np.frombuffer(before, dtype=np.uint8).copy()
    codec.encode(arr.tobytes())
    assert arr.tobytes() == before
