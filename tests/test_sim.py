"""Tests for the discrete-event simulator and its MVA agreement."""

from __future__ import annotations

import pytest

from repro.queueing import solve_mva
from repro.sim import Router, Simulator, simulate_closed_network
from repro.sim.network import Link


class TestSimulatorCore:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("late"))
        sim.schedule(1.0, lambda: order.append("early"))
        sim.run(until=3.0)
        assert order == ["early", "late"]
        assert sim.now == 3.0

    def test_ties_fire_in_insertion_order(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(1.0, lambda: order.append("b"))
        sim.run_all()
        assert order == ["a", "b"]

    def test_cancel(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append(1))
        event.cancel()
        sim.run(until=2.0)
        assert fired == []

    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(1))
        sim.run(until=1.0)
        assert fired == []
        sim.run(until=10.0)
        assert fired == [1]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_callbacks_can_schedule(self):
        sim = Simulator()
        times = []

        def periodic():
            times.append(sim.now)
            if len(times) < 3:
                sim.schedule(1.0, periodic)

        sim.schedule(1.0, periodic)
        sim.run_all()
        assert times == [1.0, 2.0, 3.0]


class TestRouter:
    def test_fifo_service(self):
        sim = Simulator()
        router = Router(sim, lambda: 1.0)
        done = []
        router.submit(lambda: done.append(("a", sim.now)))
        router.submit(lambda: done.append(("b", sim.now)))
        sim.run_all()
        assert done == [("a", 1.0), ("b", 2.0)]

    def test_busy_time_accumulates(self):
        sim = Simulator()
        router = Router(sim, lambda: 0.5)
        for _ in range(4):
            router.submit(lambda: None)
        sim.run_all()
        assert router.jobs_served == 4
        assert router.busy_time == pytest.approx(2.0)

    def test_mean_queue_length(self):
        sim = Simulator()
        router = Router(sim, lambda: 1.0)
        router.submit(lambda: None)
        router.submit(lambda: None)
        sim.run_all()
        # job 1 in system [0,1], job 2 in [0,2]: integral = 3 over horizon 2
        assert router.mean_queue_length(2.0) == pytest.approx(1.5)

    def test_link_pure_delay(self):
        sim = Simulator()
        link = Link(sim, latency=0.25)
        arrivals = []
        link.submit(lambda: arrivals.append(sim.now))
        link.submit(lambda: arrivals.append(sim.now))  # no queueing
        sim.run_all()
        assert arrivals == [0.25, 0.25]
        assert link.jobs_carried == 2

    def test_link_negative_latency(self):
        with pytest.raises(ValueError):
            Link(Simulator(), latency=-1)


class TestClosedNetworkSim:
    def test_matches_mva_light_load(self):
        service, think = 0.05, 0.5
        sim_result = simulate_closed_network(
            service, think, population=5, routers=2, horizon=2000, seed=1
        )
        mva = solve_mva([service, service], think, 5)
        assert sim_result.mean_response_time == pytest.approx(
            mva.response_time, rel=0.10
        )

    def test_matches_mva_heavy_load(self):
        service, think = 0.058, 0.1
        sim_result = simulate_closed_network(
            service, think, population=60, routers=2, horizon=3000, seed=2
        )
        mva = solve_mva([service, service], think, 60)
        assert sim_result.mean_response_time == pytest.approx(
            mva.response_time, rel=0.10
        )
        assert sim_result.throughput == pytest.approx(mva.throughput, rel=0.05)

    def test_deterministic_service_beats_exponential(self):
        """D/M queues wait less than M/M — the beyond-MVA ablation."""
        kwargs = dict(
            service_time=0.05, think_time=0.1, population=40, horizon=1500
        )
        deterministic = simulate_closed_network(
            deterministic_service=True, seed=3, **kwargs
        )
        exponential = simulate_closed_network(
            deterministic_service=False, seed=3, **kwargs
        )
        assert (
            deterministic.mean_response_time < exponential.mean_response_time
        )

    def test_reproducible_given_seed(self):
        a = simulate_closed_network(0.05, 0.1, 10, horizon=500, seed=7)
        b = simulate_closed_network(0.05, 0.1, 10, horizon=500, seed=7)
        assert a.mean_response_time == b.mean_response_time
        assert a.jobs_completed == b.jobs_completed

    def test_population_validation(self):
        with pytest.raises(ValueError):
            simulate_closed_network(0.05, 0.1, 0)
