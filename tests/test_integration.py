"""End-to-end integration tests: the paper's full stack, assembled.

These tests wire the real layers together the way the paper's testbed
does: application (minidb / miniext) → PRINS primary engine → iSCSI over
TCP → replica engine on another device — and verify both byte-level
consistency and the headline traffic ordering.
"""

from __future__ import annotations

import pytest

from repro.block import MemoryBlockDevice
from repro.cdp import ParityLog, RecoveryPoint, recover_image
from repro.cdp.parity_log import CdpDevice
from repro.engine import (
    DirectLink,
    InitiatorLink,
    PrimaryEngine,
    ReplicaEngine,
    full_sync,
    make_strategy,
    verify_consistency,
)
from repro.fs import FileSystem, tar_paths
from repro.iscsi import Initiator, TargetServer, TcpTransport
from repro.minidb import Column, ColumnType, Database, Schema
from repro.raid import Raid5Array
from repro.workloads import TpccConfig, TpccWorkload

BS = 4096


class TestMinidbOverPrins:
    def test_database_on_replicated_device(self):
        """App → minidb → PrimaryEngine → replica stays byte-identical."""
        primary_dev = MemoryBlockDevice(BS, 512)
        replica_dev = MemoryBlockDevice(BS, 512)
        strategy = make_strategy("prins")
        engine = PrimaryEngine(
            primary_dev,
            strategy,
            [DirectLink(ReplicaEngine(replica_dev, strategy))],
        )
        db = Database(engine, pool_capacity=32)
        table = db.create_table(
            "kv",
            Schema([Column("k", ColumnType.INT), Column("v", ColumnType.VARCHAR, 200)]),
            key="k",
        )
        for i in range(300):
            table.insert((i, f"value-{i}" * 3))
            if i % 20 == 0:
                db.commit()
        for i in range(0, 300, 7):
            table.update_fields(i, v=f"updated-{i}")
        db.commit()
        assert verify_consistency(primary_dev, replica_dev) == []
        assert engine.accountant.payload_bytes < engine.accountant.data_bytes

    def test_failover_to_replica(self):
        """After primary loss, the replica serves the same database."""
        primary_dev = MemoryBlockDevice(BS, 256)
        replica_dev = MemoryBlockDevice(BS, 256)
        strategy = make_strategy("prins")
        engine = PrimaryEngine(
            primary_dev, strategy,
            [DirectLink(ReplicaEngine(replica_dev, strategy))],
        )
        db = Database(engine, pool_capacity=16)
        table = db.create_table(
            "t",
            Schema([Column("k", ColumnType.INT), Column("v", ColumnType.FLOAT)]),
            key="k",
        )
        for i in range(100):
            table.insert((i, float(i * i)))
        db.commit()
        # "failover": rebuild the database state from the replica image only
        recovered_db = Database(replica_dev, pool_capacity=16)
        recovered = recovered_db.create_table(
            "t",
            Schema([Column("k", ColumnType.INT), Column("v", ColumnType.FLOAT)]),
            key="k",
        )
        # replica blocks hold the pages; rebuild access structures by scan
        from repro.minidb.page import SlottedPage

        found = 0
        for lba in range(256):
            raw = replica_dev.read_block(lba)
            try:
                page = SlottedPage(BS, raw)
            except Exception:
                continue
            found += len(page.live_slots())
        assert found >= 100  # heap rows plus index entries survived


class TestTpccOverTcpIscsi:
    def test_tpcc_replicated_over_real_sockets(self):
        """The full paper stack with the wire in the middle."""
        replica_dev = MemoryBlockDevice(BS, 2048)
        strategy = make_strategy("prins")
        replica_engine = ReplicaEngine(replica_dev, strategy)
        with TargetServer(
            replica_dev, replication_handler=replica_engine.receive
        ) as server:
            host, port = server.address
            initiator = Initiator(TcpTransport.connect(host, port), timeout=10)
            primary_dev = MemoryBlockDevice(BS, 2048)
            engine = PrimaryEngine(
                primary_dev, strategy, [InitiatorLink(initiator)]
            )
            db = Database(engine, pool_capacity=128)
            workload = TpccWorkload(
                db,
                TpccConfig(
                    warehouses=1,
                    districts_per_warehouse=2,
                    customers_per_district=5,
                    items=30,
                ),
            )
            workload.populate()
            workload.run(25)
            assert verify_consistency(primary_dev, replica_dev) == []
            wire = initiator.transport.bytes_sent
            data = engine.accountant.data_bytes
            assert 0 < wire < data  # PRINS moved less than the data written
            initiator.logout()


class TestFilesystemOverCompressed:
    def test_fs_on_compressed_replication(self):
        primary_dev = MemoryBlockDevice(1024, 2048)
        replica_dev = MemoryBlockDevice(1024, 2048)
        strategy = make_strategy("compressed")
        engine = PrimaryEngine(
            primary_dev, strategy,
            [DirectLink(ReplicaEngine(replica_dev, strategy))],
        )
        fs = FileSystem.format(engine, inode_count=64)
        fs.makedirs("data")
        fs.write_file("data/report.txt", b"quarterly numbers " * 200)
        tar_paths(fs, ["data"], "backup.tar")
        assert verify_consistency(primary_dev, replica_dev) == []
        # the replica's filesystem is directly mountable
        replica_fs = FileSystem(replica_dev)
        assert replica_fs.read_file("data/report.txt") == b"quarterly numbers " * 200


class TestRaidPrimaryWithCdp:
    def test_raid5_prins_and_point_in_time_recovery(self):
        """RAID-5 primary, PRINS replication, CDP log, full recovery."""
        import itertools

        array = Raid5Array([MemoryBlockDevice(BS, 64) for _ in range(4)])
        log = ParityLog()
        tick = itertools.count()
        logged = CdpDevice(array, log, clock=lambda: next(tick))
        replica_dev = MemoryBlockDevice(BS, array.num_blocks)
        strategy = make_strategy("prins")
        engine = PrimaryEngine(
            logged, strategy,
            [DirectLink(ReplicaEngine(replica_dev, strategy))],
        )
        baseline = MemoryBlockDevice(BS, array.num_blocks)
        writes = []
        import numpy as np

        rng = np.random.default_rng(3)
        for t in range(30):
            lba = int(rng.integers(0, array.num_blocks))
            data = rng.integers(0, 256, BS, dtype="u1").tobytes()
            engine.write_block(lba, data)
            writes.append((lba, data))
        # replica consistent with the array
        assert verify_consistency(logged, replica_dev) == []
        # RAID parity still sound
        assert array.scrub() == []
        # point-in-time recovery to the midpoint matches a shadow replay
        shadow = MemoryBlockDevice(BS, array.num_blocks)
        for lba, data in writes[:16]:
            shadow.write_block(lba, data)
        recovered = recover_image(log, RecoveryPoint(15.0), baseline=baseline)
        assert recovered.snapshot() == shadow.snapshot()


class TestSyncThenIncrementalReplication:
    def test_initial_sync_then_prins(self):
        """The paper's protocol: sync first, then parity-only forever."""
        primary_dev = MemoryBlockDevice(BS, 128)
        import numpy as np

        rng = np.random.default_rng(11)
        for lba in range(128):
            primary_dev.write_block(
                lba, rng.integers(0, 256, BS, dtype="u1").tobytes()
            )
        replica_dev = MemoryBlockDevice(BS, 128)
        report = full_sync(primary_dev, replica_dev)
        assert report.blocks_copied == 128
        strategy = make_strategy("prins")
        engine = PrimaryEngine(
            primary_dev, strategy,
            [DirectLink(ReplicaEngine(replica_dev, strategy))],
        )
        for lba in range(0, 128, 3):
            block = bytearray(engine.read_block(lba))
            block[0:64] = b"\xaa" * 64
            engine.write_block(lba, bytes(block))
        assert verify_consistency(primary_dev, replica_dev) == []
        # incremental phase shipped ~64 changed bytes per write, not 4 KiB
        assert engine.accountant.mean_payload < 256
