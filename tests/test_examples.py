"""Smoke tests: every example script runs to completion.

The examples are part of the public deliverable; each must execute
successfully against the installed package.  They run as subprocesses so
import-time problems are caught too.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "remote_mirror_tcp.py",
    "point_in_time_recovery.py",
    "wan_capacity_planning.py",
    "cluster_wide_pool.py",
    "degraded_mode_recovery.py",
]


def run_example(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=240,
    )


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name):
    result = run_example(name)
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()  # every example reports something


def test_examples_directory_complete():
    """Every example on disk is exercised by this module."""
    on_disk = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    covered = set(FAST_EXAMPLES) | {"tpcc_traffic_study.py"}
    assert on_disk == covered


def test_quickstart_shows_prins_winning():
    result = run_example("quickstart.py")
    assert "prins" in result.stdout
    assert "byte-identical" in result.stdout


def test_degraded_mode_recovery_converges():
    result = run_example("degraded_mode_recovery.py")
    assert "none raised" in result.stdout
    assert "verify() mismatches: {}" in result.stdout
    assert "recovery fully accounted" in result.stdout


def test_traffic_study_smoke():
    """The figure-reproducing example at small scale (the slow one)."""
    result = run_example("tpcc_traffic_study.py", "--scale", "small")
    assert result.returncode == 0, result.stderr
    assert "paper comparisons in band" in result.stdout
