"""Tests for the asyncio transport tier and deterministic target shutdown.

Covers the two halves of the concurrency contract:

* :class:`~repro.iscsi.aio.AsyncTargetServer` — one process, one event
  loop, many sessions as tasks — must serve the same wire bytes as the
  thread-per-session :class:`~repro.iscsi.target.TargetServer`;
* :meth:`TargetServer.close` must be deterministic even with half-open
  connections parked in a blocking ``receive`` (the bugfix regression).
"""

from __future__ import annotations

import asyncio
import socket
import time

import pytest

from repro.block import MemoryBlockDevice
from repro.common.errors import ProtocolError
from repro.iscsi import (
    AsyncInitiator,
    AsyncTargetServer,
    EventLoopThread,
    Initiator,
    TargetServer,
    TcpTransport,
)
from repro.iscsi.aio import run_sessions

BS = 512


class TestAsyncTargetServer:
    def test_blocking_initiator_against_async_target(self):
        device = MemoryBlockDevice(BS, 16)
        server = AsyncTargetServer(device).serve_background()
        try:
            host, port = server.address
            initiator = Initiator(TcpTransport.connect(host, port), timeout=5)
            params = initiator.login()
            assert params["BlockSize"] == str(BS)
            initiator.write(1, b"a" * BS)
            assert initiator.read(1) == b"a" * BS
            assert initiator.ping(b"echo") == b"echo"
            initiator.logout()
        finally:
            server.stop_background()

    def test_replication_handler_dispatch(self):
        device = MemoryBlockDevice(BS, 16)
        seen = []

        def handler(lba, frame):
            seen.append((lba, bytes(frame)))
            return b"ok"

        server = AsyncTargetServer(
            device, replication_handler=handler
        ).serve_background()
        try:
            host, port = server.address
            initiator = Initiator(TcpTransport.connect(host, port), timeout=5)
            initiator.login()
            ack = initiator.send_replication_frame(7, b"frame-bytes")
            assert ack == b"ok"
            assert seen == [(7, b"frame-bytes")]
            initiator.logout()
        finally:
            server.stop_background()

    def test_sixty_four_concurrent_sessions_one_process(self):
        """The acceptance bar: >= 64 live sessions multiplexed on one loop."""
        device = MemoryBlockDevice(BS, 256)
        server = AsyncTargetServer(device).serve_background()
        try:
            host, port = server.address

            def make_script(index: int):
                async def script(session: AsyncInitiator):
                    await session.write(index, bytes([index % 255 + 1]) * BS)
                    data = await session.read(index)
                    return index, data

                return script

            results = asyncio.run(
                run_sessions(host, port, [make_script(i) for i in range(64)])
            )
            assert len(results) == 64
            for index, data in results:
                assert data == bytes([index % 255 + 1]) * BS
            assert device.read_block(5) == bytes([6]) * BS
            assert server.snapshot()["sessions_served"] >= 64
            # clients saw their LOGOUT_RESPONSE, but each server-side
            # task is only discarded by its done-callback a beat later
            deadline = time.monotonic() + 5
            while server.connection_count:
                assert time.monotonic() < deadline, "sessions never drained"
                time.sleep(0.01)
        finally:
            server.stop_background()

    def test_wire_bytes_identical_to_threaded_server(self):
        """Same script, both tiers: client-side byte counters must match."""

        def drive(host, port):
            initiator = Initiator(TcpTransport.connect(host, port), timeout=5)
            initiator.login()
            for lba in range(8):
                initiator.write(lba, bytes([lba + 1]) * BS)
                assert initiator.read(lba) == bytes([lba + 1]) * BS
            initiator.ping(b"done")
            initiator.logout()
            t = initiator.transport
            return (t.bytes_sent, t.bytes_received, t.pdus_sent, t.pdus_received)

        threaded = TargetServer(MemoryBlockDevice(BS, 16)).start()
        try:
            threaded_counts = drive(*threaded.address)
        finally:
            threaded.close()
        aio = AsyncTargetServer(MemoryBlockDevice(BS, 16)).serve_background()
        try:
            aio_counts = drive(*aio.address)
        finally:
            aio.stop_background()
        assert aio_counts == threaded_counts

    def test_shared_loop_thread_hosts_many_servers(self):
        loop_thread = EventLoopThread()
        devices = [MemoryBlockDevice(BS, 8) for _ in range(3)]
        servers = [
            AsyncTargetServer(device).serve_background(loop_thread)
            for device in devices
        ]
        try:
            for index, server in enumerate(servers):
                host, port = server.address
                initiator = Initiator(
                    TcpTransport.connect(host, port), timeout=5
                )
                initiator.login()
                initiator.write(0, bytes([index + 1]) * BS)
                initiator.logout()
            for index, device in enumerate(devices):
                assert device.read_block(0) == bytes([index + 1]) * BS
        finally:
            for server in servers:
                server.stop_background()
            loop_thread.close()

    def test_stop_cancels_parked_sessions(self):
        """A connected-but-idle client must not wedge server shutdown."""
        device = MemoryBlockDevice(BS, 8)
        server = AsyncTargetServer(device).serve_background()
        host, port = server.address
        parked = socket.create_connection((host, port), timeout=5)
        try:
            deadline = time.monotonic() + 5
            while server.connection_count == 0:
                assert time.monotonic() < deadline, "session never registered"
                time.sleep(0.01)
            server.stop_background()
            assert server.connection_count == 0
        finally:
            parked.close()


class TestTargetServerShutdown:
    """Regression: close() must be deterministic with half-open sessions."""

    def test_close_with_half_open_connection(self):
        """A client that logs in and then goes silent leaves a session
        thread parked in receive(); close() must sever and join it."""
        device = MemoryBlockDevice(BS, 8)
        server = TargetServer(device).start()
        host, port = server.address
        initiator = Initiator(TcpTransport.connect(host, port), timeout=5)
        initiator.login()  # session thread now blocked awaiting the next PDU
        assert server.session_count == 1
        start = time.monotonic()
        server.close(timeout=5.0)
        assert time.monotonic() - start < 5.0
        assert server.session_count == 0

    def test_close_refuses_new_sessions(self):
        device = MemoryBlockDevice(BS, 8)
        server = TargetServer(device).start()
        host, port = server.address
        server.close()
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=1)
        with pytest.raises(ProtocolError):
            server.start()

    def test_close_is_idempotent(self):
        server = TargetServer(MemoryBlockDevice(BS, 8)).start()
        server.close()
        server.close()
        server.stop()  # historical alias still works


class TestEventLoopThread:
    def test_run_returns_coroutine_result(self):
        loop_thread = EventLoopThread()
        try:

            async def compute():
                await asyncio.sleep(0)
                return 41 + 1

            assert loop_thread.run(compute()) == 42
        finally:
            loop_thread.close()

    def test_context_manager(self):
        with EventLoopThread() as loop_thread:

            async def one():
                return 1

            assert loop_thread.run(one()) == 1
