"""Tests for the empirical-payload-distribution network simulation."""

from __future__ import annotations

import pytest

from repro.common.rng import make_rng
from repro.queueing import T1, solve_mva
from repro.queueing.params import router_service_time
from repro.sim import (
    EmpiricalServiceSampler,
    simulate_closed_network,
    simulate_empirical_network,
)


class TestEmpiricalSampler:
    def test_constant_payloads_give_constant_service(self):
        sampler = EmpiricalServiceSampler([8192] * 10, T1, make_rng(1, "s"))
        expected = router_service_time(8192, T1)
        assert sampler() == pytest.approx(expected)
        assert sampler.mean_service_time == pytest.approx(expected)
        assert sampler.squared_cv == pytest.approx(0.0)

    def test_heavy_tail_raises_cv(self):
        # 95 tiny payloads and 5 full blocks: PRINS-shaped distribution
        payloads = [100] * 95 + [8192] * 5
        sampler = EmpiricalServiceSampler(payloads, T1, make_rng(2, "s"))
        assert sampler.squared_cv > 1.0  # burstier than exponential

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalServiceSampler([], T1, make_rng(0, "s"))


class TestEmpiricalNetwork:
    def test_constant_payloads_close_to_deterministic_model(self):
        """Zero-variance payloads = D-service closed network; response must
        be at or below the exponential MVA answer."""
        payloads = [4096] * 50
        service = router_service_time(4096, T1)
        result = simulate_empirical_network(
            payloads, T1, population=20, horizon=1500, seed=3
        )
        mva = solve_mva([service, service], 0.1, 20)
        assert result.mean_response_time <= mva.response_time * 1.05
        assert result.jobs_completed > 100

    def test_matches_mean_based_sim_for_narrow_distribution(self):
        payloads = [1000, 1100, 900, 1050, 950] * 20
        mean_payload = sum(payloads) / len(payloads)
        empirical = simulate_empirical_network(
            payloads, T1, population=10, horizon=2000, seed=4
        )
        service = router_service_time(mean_payload, T1)
        exponential = simulate_closed_network(
            service, 0.1, population=10, horizon=2000, seed=4
        )
        # narrow distribution -> less queueing than exponential assumption
        assert empirical.mean_response_time <= exponential.mean_response_time

    def test_heavy_tail_inflates_p99(self):
        """The point of the extension: the tail, invisible to MVA, shows."""
        heavy = [64] * 97 + [65536] * 3  # PRINS with occasional full blocks
        result = simulate_empirical_network(
            heavy, T1, population=30, horizon=2500, seed=5
        )
        assert result.p99_response_time > 2 * result.mean_response_time
        assert result.tail_ratio > 2

    def test_reproducible(self):
        payloads = [500, 5000] * 10
        a = simulate_empirical_network(payloads, T1, 5, horizon=500, seed=9)
        b = simulate_empirical_network(payloads, T1, 5, horizon=500, seed=9)
        assert a.mean_response_time == b.mean_response_time

    def test_population_validation(self):
        with pytest.raises(ValueError):
            simulate_empirical_network([100], T1, 0)

    def test_percentiles_ordered(self):
        payloads = [100, 1000, 10000] * 10
        result = simulate_empirical_network(
            payloads, T1, population=15, horizon=1000, seed=6
        )
        assert (
            result.mean_response_time
            <= result.p95_response_time
            <= result.p99_response_time
        )
