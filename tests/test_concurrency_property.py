"""Property suite: the concurrency tiers are observationally invisible.

The GIL-escape contract is *exact equivalence*: whatever combination of
``transport`` (inline / tcp / asyncio) and ``workers`` (inline / process)
is configured, the primary image, every replica image, the traffic
ledger, and accounting conservation must be byte-for-byte identical to
the plain inline stack — across codec × strategy × fanout.  Hypothesis
drives random write schedules through paired stacks and compares
everything that can be compared.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ReplicationConfig, open_primary

BS = 256
N = 8

write_lists = st.lists(
    st.tuples(st.integers(0, N - 1), st.binary(min_size=BS, max_size=BS)),
    max_size=24,
)

#: (strategy, codec) pairs covering the paper's three bars + pinned codecs
strategy_codecs = st.sampled_from(
    [
        ("prins", None),
        ("prins", "rle+zlib"),
        ("prins", "sparse"),
        ("compressed", "zlib"),
        ("traditional", None),
    ]
)

fanouts = st.sampled_from(["sequential", "pipelined"])


def _run(writes, strategy, codec, fanout, **concurrency):
    """Drive one stack and capture everything observable about it."""
    config = ReplicationConfig(
        block_size=BS,
        num_blocks=N,
        replicas=2,
        strategy=strategy,
        codec=codec,
        fanout=fanout,
        **concurrency,
    )
    with open_primary(config) as stack:
        stack.engine.write_many(writes)
        stack.drain()
        assert stack.verify()
        accountant = stack.engine.accountant
        accountant.verify_conservation()
        wire_bytes = [
            link.initiator.transport.bytes_sent
            + link.initiator.transport.bytes_received
            for link in stack.links
            if hasattr(link, "initiator")
        ]
        return {
            "primary": stack.device.snapshot(),
            "replicas": [d.snapshot() for d in stack.replica_devices],
            "ledger": accountant.snapshot(),
        }, wire_bytes


@settings(max_examples=8, deadline=None)
@given(writes=write_lists, strategy_codec=strategy_codecs, fanout=fanouts)
def test_process_workers_identical_to_inline(writes, strategy_codec, fanout):
    """workers="process": images + full ledger match the inline stack."""
    strategy, codec = strategy_codec
    inline, _ = _run(writes, strategy, codec, fanout)
    process, _ = _run(
        writes,
        strategy,
        codec,
        fanout,
        workers="process",
        worker_count=1,
        ring_slots=4,
    )
    assert process == inline


@settings(max_examples=8, deadline=None)
@given(writes=write_lists, strategy_codec=strategy_codecs, fanout=fanouts)
def test_asyncio_transport_identical_to_inline(writes, strategy_codec, fanout):
    """transport="asyncio": images + full ledger match the inline stack."""
    strategy, codec = strategy_codec
    inline, _ = _run(writes, strategy, codec, fanout)
    asyncio_tier, _ = _run(
        writes, strategy, codec, fanout, transport="asyncio"
    )
    assert asyncio_tier == inline


@settings(max_examples=6, deadline=None)
@given(writes=write_lists, strategy_codec=strategy_codecs)
def test_asyncio_wire_bytes_equal_tcp_wire_bytes(writes, strategy_codec):
    """Both networked tiers move exactly the same PDU bytes per link."""
    strategy, codec = strategy_codec
    tcp_state, tcp_wire = _run(
        writes, strategy, codec, "sequential", transport="tcp"
    )
    aio_state, aio_wire = _run(
        writes, strategy, codec, "sequential", transport="asyncio"
    )
    assert len(tcp_wire) == len(aio_wire) == 2
    assert tcp_wire == aio_wire
    assert aio_state == tcp_state


@settings(max_examples=5, deadline=None)
@given(writes=write_lists)
def test_process_asyncio_combo_identical_to_inline(writes):
    """Both tiers stacked together still change nothing observable."""
    inline, _ = _run(writes, "prins", None, "pipelined")
    combo, _ = _run(
        writes,
        "prins",
        None,
        "pipelined",
        transport="asyncio",
        workers="process",
        worker_count=1,
        ring_slots=4,
    )
    assert combo == inline


@settings(max_examples=6, deadline=None)
@given(writes=write_lists, batch=st.sampled_from([None, 4]))
def test_batched_shipping_survives_the_tiers(writes, batch):
    """REPL_BATCH_OUT amortization is tier-independent too."""
    inline, _ = _run(writes, "prins", None, "sequential", batch_records=batch)
    networked, _ = _run(
        writes, "prins", None, "sequential", batch_records=batch,
        transport="asyncio",
    )
    assert networked == inline
