"""Tests for the pipelined credit-window fan-out scheduler."""

from __future__ import annotations

import random

import pytest

from repro.block import MemoryBlockDevice
from repro.common.errors import ConfigurationError, PartialReplicationError
from repro.engine import (
    DirectLink,
    FanoutScheduler,
    LatencyLink,
    PrimaryEngine,
    ReplicaEngine,
    ResilienceConfig,
    SchedulerConfig,
    ShipWork,
    SimClock,
    make_strategy,
)
from repro.engine.links import ReplicaLink, reset_deprecation_warnings
from repro.obs.telemetry import Telemetry

BS = 512
N = 64


def _stack(
    replicas=3,
    strategy_name="prins",
    link_wrapper=None,
    **engine_kwargs,
):
    strategy = make_strategy(strategy_name)
    primary = MemoryBlockDevice(BS, N)
    replica_devices = [MemoryBlockDevice(BS, N) for _ in range(replicas)]
    links = []
    for index, device in enumerate(replica_devices):
        link = DirectLink(ReplicaEngine(device, strategy))
        if link_wrapper is not None:
            link = link_wrapper(index, link)
        links.append(link)
    engine = PrimaryEngine(primary, strategy, links, **engine_kwargs)
    return engine, primary, replica_devices


def _random_writes(engine, count=60, seed=11):
    rng = random.Random(seed)
    for _ in range(count):
        lba = rng.randrange(N)
        engine.write_block(lba, bytes(rng.randrange(256) for _ in range(BS)))


class TestSchedulerConfig:
    def test_defaults_validate(self):
        config = SchedulerConfig()
        assert config.workers == "inline"
        assert config.execution == "sim"
        assert config.window >= 1

    def test_bad_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            SchedulerConfig(workers="carrier-pigeon")

    def test_deprecated_mode_maps_with_warning(self):
        reset_deprecation_warnings()
        with pytest.warns(DeprecationWarning):
            config = SchedulerConfig(mode="threads")
        assert config.workers == "threads"
        assert config.execution == "threads"
        with pytest.raises(ConfigurationError):
            SchedulerConfig(mode="carrier-pigeon")
        reset_deprecation_warnings()

    def test_process_backend_validates(self):
        config = SchedulerConfig(workers="process", worker_count=2, ring_slots=4)
        assert config.execution == "threads"
        with pytest.raises(ConfigurationError):
            SchedulerConfig(workers="process", worker_count=-1)
        with pytest.raises(ConfigurationError):
            SchedulerConfig(ring_slots=1)

    def test_bad_window_rejected(self):
        with pytest.raises(ConfigurationError):
            SchedulerConfig(window=0)

    def test_per_link_latency_lookup(self):
        config = SchedulerConfig(
            link_latency_s=0.5, per_link_latency_s=(0.1, 0.2)
        )
        assert config.latency_for(0) == 0.1
        assert config.latency_for(1) == 0.2
        assert config.latency_for(2) == 0.5  # falls back to the global


class TestPipelinedSimEquivalence:
    """Pipelined fan-out must be byte- and byte-count-identical."""

    @pytest.mark.parametrize("strategy_name", ["traditional", "prins"])
    def test_images_and_bytes_match_sequential(self, strategy_name):
        seq_engine, seq_primary, seq_reps = _stack(strategy_name=strategy_name)
        _random_writes(seq_engine)
        pip_engine, pip_primary, pip_reps = _stack(
            strategy_name=strategy_name,
            fanout="pipelined",
            scheduler=SchedulerConfig(window=4, link_latency_s=0.01),
        )
        _random_writes(pip_engine)
        pip_engine.drain()
        assert (
            seq_engine.accountant.payload_bytes
            == pip_engine.accountant.payload_bytes
        )
        assert seq_primary.snapshot() == pip_primary.snapshot()
        for seq_dev, pip_dev in zip(seq_reps, pip_reps):
            assert seq_dev.snapshot() == pip_dev.snapshot()

    def test_scheduler_config_implies_pipelined(self):
        engine, _, _ = _stack(scheduler=SchedulerConfig(window=2))
        assert engine.fanout == "pipelined"
        assert engine.scheduler is not None

    def test_sequential_has_no_scheduler(self):
        engine, _, _ = _stack()
        assert engine.fanout == "sequential"
        assert engine.scheduler is None

    def test_unknown_fanout_rejected(self):
        with pytest.raises(ConfigurationError):
            _stack(fanout="broadcast")


class TestCreditWindow:
    def test_window_bounds_inflight(self):
        window = 3
        engine, _, _ = _stack(
            replicas=2,
            scheduler=SchedulerConfig(window=window, link_latency_s=0.01),
        )
        _random_writes(engine, count=40)
        engine.drain()
        for channel in engine.scheduler.channels:
            assert channel.stats.max_inflight <= window
            assert channel.inflight == 0  # fully drained

    def test_makespan_beats_sequential_metering(self):
        """window>1 overlaps ack latency; makespan ≈ N·L/window + L."""
        latency = 0.01
        writes = 32
        engine, _, _ = _stack(
            replicas=1,
            scheduler=SchedulerConfig(window=8, link_latency_s=latency),
        )
        _random_writes(engine, count=writes)
        engine.drain()
        sequential_time = writes * latency
        assert engine.scheduler.now < sequential_time / 2

    def test_queue_backpressure_is_deterministic(self):
        """max_queue=1 forces stalls; the run still completes and verifies."""
        engine, primary, reps = _stack(
            replicas=2,
            scheduler=SchedulerConfig(
                window=1, link_latency_s=0.005, max_queue=1
            ),
        )
        _random_writes(engine, count=30)
        engine.drain()
        assert any(c.stats.stalls > 0 for c in engine.scheduler.channels)
        for dev in reps:
            assert dev.snapshot() == primary.snapshot()


class TestOutOfOrderAcks:
    def test_jittered_acks_compact_to_cumulative_pointer(self):
        engine, primary, reps = _stack(
            replicas=2,
            scheduler=SchedulerConfig(
                window=6, link_latency_s=0.01, latency_jitter=0.8, seed=3
            ),
        )
        _random_writes(engine, count=50)
        engine.drain()
        for channel in engine.scheduler.channels:
            # every ticket acked, pointer fully compacted, no strays
            assert channel.acked_through == channel.stats.sends - 1
            assert channel.ooo_ack_count == 0
        # OOO reordering actually happened under jitter
        assert any(c.stats.max_ooo > 0 for c in engine.scheduler.channels)
        for dev in reps:
            assert dev.snapshot() == primary.snapshot()

    def test_fifo_apply_order_survives_reordering(self):
        """Same-LBA overwrites must land in sequence order at the replica."""
        engine, primary, reps = _stack(
            replicas=1,
            scheduler=SchedulerConfig(
                window=8, link_latency_s=0.01, latency_jitter=0.9, seed=5
            ),
        )
        for round_number in range(20):
            engine.write_block(0, bytes([round_number]) * BS)
        engine.drain()
        assert reps[0].read_block(0) == bytes([19]) * BS


class TestSlowReplicaIsolation:
    def test_fast_replicas_finish_ahead_of_slow(self):
        engine, primary, reps = _stack(
            replicas=3,
            scheduler=SchedulerConfig(
                window=4, per_link_latency_s=(0.001, 0.001, 0.05)
            ),
        )
        _random_writes(engine, count=20)
        engine.drain()
        for dev in reps:
            assert dev.snapshot() == primary.snapshot()
        stats = [c.stats for c in engine.scheduler.channels]
        assert stats[2].acks == stats[0].acks  # all delivered everywhere

    def test_down_replica_does_not_stall_healthy(self):
        """A DOWN guard journals instantly: healthy channels keep their pace."""
        engine, primary, reps = _stack(
            replicas=3,
            resilience=ResilienceConfig(),
            scheduler=SchedulerConfig(window=4, link_latency_s=0.01),
        )
        _random_writes(engine, count=10, seed=1)
        engine.drain()
        healthy_only_start = engine.scheduler.now
        engine.fail_link(2)
        _random_writes(engine, count=10, seed=2)
        engine.drain()
        # the DOWN channel resolved every submission without consuming
        # wire latency: makespan grew only by the healthy channels' time
        makespan = engine.scheduler.now - healthy_only_start
        assert makespan <= 10 * 0.01 + 0.01
        engine.heal_link(2)
        for dev in reps:
            assert dev.snapshot() == primary.snapshot()
        engine.verify_traffic_conservation()


class TestStrictFailures:
    def test_strict_failure_surfaces_at_drain(self):
        class ExplodingLink(ReplicaLink):
            def __init__(self, inner):
                self._inner = inner
                self.calls = 0

            def _submit_record(self, lba, record):
                self.calls += 1
                if self.calls > 5:
                    raise ConnectionError("link died")
                return self._inner.submit(ShipWork.for_record(lba, record))

        engine, _, _ = _stack(
            replicas=2,
            link_wrapper=lambda i, link: ExplodingLink(link)
            if i == 1
            else link,
            scheduler=SchedulerConfig(window=2, link_latency_s=0.001),
        )
        with pytest.raises(PartialReplicationError):
            _random_writes(engine, count=20)
            engine.drain()


class TestThreadMode:
    def test_threaded_matches_sequential_bytes_and_images(self):
        seq_engine, seq_primary, seq_reps = _stack()
        _random_writes(seq_engine)
        engine, primary, reps = _stack(
            scheduler=SchedulerConfig(workers="threads", window=4),
        )
        _random_writes(engine)
        engine.drain()
        engine.close()
        assert (
            engine.accountant.payload_bytes
            == seq_engine.accountant.payload_bytes
        )
        for seq_dev, dev in zip(seq_reps, reps):
            assert dev.snapshot() == seq_dev.snapshot()

    def test_threaded_guarded_conserves_traffic(self):
        engine, primary, reps = _stack(
            replicas=2,
            resilience=ResilienceConfig(),
            scheduler=SchedulerConfig(workers="threads", window=4),
        )
        _random_writes(engine, count=30)
        engine.drain()
        engine.verify_traffic_conservation()
        engine.close()
        for dev in reps:
            assert dev.snapshot() == primary.snapshot()


class TestLatencyLink:
    def test_sim_clock_advances_instead_of_sleeping(self):
        strategy = make_strategy("prins")
        device = MemoryBlockDevice(BS, N)
        clock = SimClock()
        link = LatencyLink(
            DirectLink(ReplicaEngine(device, strategy)), 0.25, clock=clock
        )
        engine = PrimaryEngine(MemoryBlockDevice(BS, N), strategy, [link])
        engine.write_block(0, b"z" * BS)
        assert clock.now == pytest.approx(0.25)
        assert device.read_block(0) == b"z" * BS


class TestSchedulerTelemetry:
    def test_instruments_populate(self):
        telemetry = Telemetry()
        engine, _, _ = _stack(
            replicas=2,
            telemetry=telemetry,
            telemetry_name="sched-test",
            scheduler=SchedulerConfig(
                window=1, link_latency_s=0.002, max_queue=2
            ),
        )
        _random_writes(engine, count=25)
        engine.drain()
        snapshot = telemetry.snapshot()
        counters = snapshot["metrics"]["counters"]
        assert counters["sched.submits"] == 25
        assert "sched.queue_depth" in snapshot["metrics"]["histograms"]

    def test_engine_snapshot_includes_scheduler(self):
        engine, _, _ = _stack(scheduler=SchedulerConfig(window=2))
        _random_writes(engine, count=5)
        engine.drain()
        snap = engine.telemetry_snapshot()
        assert snap["scheduler"]["submitted"] == 5
        assert snap["scheduler"]["outstanding"] == 0
        assert len(snap["scheduler"]["channels"]) == 3


class TestChannelManagement:
    def test_channel_after_submit_rejected(self):
        engine, _, _ = _stack(replicas=1, scheduler=SchedulerConfig(window=2))
        engine.write_block(0, b"a" * BS)
        engine.drain()
        extra = DirectLink(
            ReplicaEngine(MemoryBlockDevice(BS, N), make_strategy("prins"))
        )
        with pytest.raises(ConfigurationError):
            engine.scheduler.add_channel(link=extra)

    def test_links_and_guards_mutually_exclusive(self):
        with pytest.raises(ConfigurationError):
            FanoutScheduler(SchedulerConfig(), links=[], guards=[])
