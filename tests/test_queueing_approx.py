"""Tests for the Schweitzer approximate MVA."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing import solve_mva
from repro.queueing.approx import solve_mva_approximate


class TestApproximateMva:
    def test_matches_exact_at_moderate_population(self):
        exact = solve_mva([0.05, 0.05], 0.1, 30)
        approx = solve_mva_approximate([0.05, 0.05], 0.1, 30)
        assert approx.response_time == pytest.approx(
            exact.response_time, rel=0.05
        )
        assert approx.throughput == pytest.approx(exact.throughput, rel=0.05)

    def test_asymptotically_exact(self):
        exact = solve_mva([0.02, 0.07], 0.1, 1000)
        approx = solve_mva_approximate([0.02, 0.07], 0.1, 1000)
        assert approx.response_time == pytest.approx(
            exact.response_time, rel=0.005
        )

    def test_population_one_known_bias_bounded(self):
        # Schweitzer is weakest at tiny populations; error stays bounded
        exact = solve_mva([0.05], 0.1, 1)
        approx = solve_mva_approximate([0.05], 0.1, 1)
        assert approx.response_time == pytest.approx(
            exact.response_time, rel=0.25
        )

    def test_zero_population(self):
        result = solve_mva_approximate([0.05], 0.1, 0)
        assert result.response_time == 0.0

    def test_no_centers(self):
        result = solve_mva_approximate([], 0.1, 10)
        assert result.response_time == 0.0
        assert result.throughput == pytest.approx(100.0)

    def test_littles_law_holds(self):
        result = solve_mva_approximate([0.03, 0.06], 0.1, 50)
        assert result.throughput * result.cycle_time == pytest.approx(50)

    def test_validation(self):
        with pytest.raises(ValueError):
            solve_mva_approximate([0.05], 0.1, -1)
        with pytest.raises(ValueError):
            solve_mva_approximate([-0.05], 0.1, 1)

    @settings(max_examples=25, deadline=None)
    @given(
        service=st.lists(st.floats(0.005, 0.1), min_size=1, max_size=3),
        population=st.integers(20, 300),
    )
    def test_close_to_exact_property(self, service, population):
        # Schweitzer's worst-case error (~20%) occurs at the knee of the
        # throughput curve, population* = (Z + sum S) / S_max.  Well past
        # the knee — the approximation's intended regime — the error stays
        # under a few percent.
        from hypothesis import assume

        knee = (0.1 + sum(service)) / max(service)
        assume(population >= 3 * knee)
        exact = solve_mva(service, 0.1, population)
        approx = solve_mva_approximate(service, 0.1, population)
        assert approx.response_time == pytest.approx(
            exact.response_time, rel=0.15
        )

    def test_knee_error_bounded(self):
        """At the knee itself the documented ~20% worst case holds."""
        exact = solve_mva([0.015625], 0.1, 10)
        approx = solve_mva_approximate([0.015625], 0.1, 10)
        assert approx.response_time == pytest.approx(
            exact.response_time, rel=0.25
        )

    def test_scales_to_huge_population(self):
        """The point of the approximation: 10^6 customers, instant answer."""
        result = solve_mva_approximate([0.001, 0.001], 0.1, 1_000_000)
        assert result.response_time > 0
        assert result.throughput == pytest.approx(1000.0, rel=0.01)
