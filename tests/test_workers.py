"""Tests for the multiprocess codec worker pool (repro.engine.workers).

The pool must be an *exact* drop-in for inline
:func:`~repro.parity.frame.encode_frames` — byte-identical frames in the
submitted order — while actually moving the codec work off the GIL into
worker processes fed through shared-memory rings.
"""

from __future__ import annotations

import random

import pytest

from repro.common.errors import ConfigurationError, ReplicationError
from repro.engine.workers import (
    CodecWorkerPool,
    available_cores,
    default_worker_count,
    slot_bytes_for,
)
import repro.parity.pipeline  # noqa: F401 -- registers the codec table
from repro.parity.codecs import get_codec
from repro.parity.frame import decode_frame, encode_frames

BS = 4096


def _payloads(count, seed=7, size=BS):
    rng = random.Random(seed)
    out = []
    for index in range(count):
        if index % 3 == 0:
            # sparse delta: long zero runs, the PRINS common case
            block = bytearray(size)
            for _ in range(8):
                block[rng.randrange(size)] = rng.randrange(1, 256)
            out.append(bytes(block))
        else:
            out.append(bytes(rng.randrange(256) for _ in range(size)))
    return out


@pytest.fixture(scope="module")
def pool():
    with CodecWorkerPool(worker_count=2, ring_slots=4, block_size=BS) as p:
        yield p


class TestPoolBasics:
    def test_sizing_helpers(self):
        assert available_cores() >= 1
        assert 1 <= default_worker_count() <= 8
        assert slot_bytes_for(BS) > 2 * BS

    def test_unregistered_codec_rejected(self, pool):
        class Fake:
            codec_id = 250
            name = "fake"

        with pytest.raises(ConfigurationError):
            pool.encode_frames(Fake(), [b"x"])

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigurationError):
            CodecWorkerPool(worker_count=-1)
        with pytest.raises(ConfigurationError):
            CodecWorkerPool(ring_slots=1)


class TestByteIdentity:
    @pytest.mark.parametrize("codec_name", ["zero-rle", "zlib", "rle+zlib"])
    def test_encode_matches_inline(self, pool, codec_name):
        codec = get_codec(codec_name)
        payloads = _payloads(23)
        assert pool.encode_frames(codec, payloads) == encode_frames(
            codec, payloads
        )

    def test_order_preserved_across_sizes(self, pool):
        codec = get_codec("zero-rle")
        payloads = [bytes([i % 256]) * (1 + i * 37) for i in range(40)]
        assert pool.encode_frames(codec, payloads) == encode_frames(
            codec, payloads
        )

    def test_decode_round_trip(self, pool):
        codec = get_codec("zlib")
        payloads = _payloads(11, seed=13)
        frames = encode_frames(codec, payloads)
        assert pool.decode_frames(frames) == payloads
        assert [decode_frame(f) for f in frames] == payloads

    def test_empty_batch(self, pool):
        assert pool.encode_frames(get_codec("zero-rle"), []) == []


class TestFallbacks:
    def test_oversize_payload_falls_back_inline(self, pool):
        codec = get_codec("zero-rle")
        before = pool.snapshot()["inline_fallbacks"]
        payloads = _payloads(6) + [b"\xab" * (8 * BS)]
        assert pool.encode_frames(codec, payloads) == encode_frames(
            codec, payloads
        )
        assert pool.snapshot()["inline_fallbacks"] > before

    def test_dead_worker_raises_not_hangs(self):
        pool = CodecWorkerPool(worker_count=1, ring_slots=2, block_size=BS)
        try:
            codec = get_codec("zero-rle")
            payloads = _payloads(4)
            assert pool.encode_frames(codec, payloads) == encode_frames(
                codec, payloads
            )
            for channel in pool._channels:
                channel.process.terminate()
                channel.process.join(timeout=10)
            with pytest.raises(ReplicationError):
                pool.encode_frames(codec, payloads)
        finally:
            pool.close()

    def test_close_is_idempotent(self):
        pool = CodecWorkerPool(worker_count=1, ring_slots=2, block_size=BS)
        pool.encode_frames(get_codec("zero-rle"), [b"\x00" * 64])
        pool.close()
        pool.close()


class TestSnapshot:
    def test_snapshot_counts_items(self, pool):
        before = pool.snapshot()
        pool.encode_frames(get_codec("zero-rle"), _payloads(5))
        after = pool.snapshot()
        assert after["items"] >= before["items"] + 5
        assert after["workers"] == 2
        assert after["ring_slots"] == 4
