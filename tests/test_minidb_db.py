"""Tests for the Database/Table facade."""

from __future__ import annotations

import pytest

from repro.block import CountingDevice, MemoryBlockDevice
from repro.common.errors import ConfigurationError, StorageError
from repro.minidb import Column, ColumnType, Database, Schema


def make_db(blocks=512, counting=False):
    inner = MemoryBlockDevice(1024, blocks)
    device = CountingDevice(inner) if counting else inner
    return Database(device, pool_capacity=16), device


def people_schema():
    return Schema([
        Column("id", ColumnType.INT),
        Column("name", ColumnType.CHAR, 20),
        Column("balance", ColumnType.FLOAT),
    ])


class TestDatabase:
    def test_create_and_lookup_table(self):
        db, _ = make_db()
        table = db.create_table("people", people_schema(), key="id")
        assert db.table("people") is table
        assert "people" in db.tables

    def test_duplicate_table_rejected(self):
        db, _ = make_db()
        db.create_table("t", people_schema(), key="id")
        with pytest.raises(ConfigurationError):
            db.create_table("t", people_schema(), key="id")

    def test_unknown_table(self):
        db, _ = make_db()
        with pytest.raises(ConfigurationError):
            db.table("missing")

    def test_page_allocator_monotonic(self):
        db, _ = make_db()
        first = db.allocate_page()
        second = db.allocate_page()
        assert second == first + 1

    def test_device_exhaustion(self):
        db, _ = make_db(blocks=4)
        for _ in range(4):
            db.allocate_page()
        with pytest.raises(StorageError):
            db.allocate_page()

    def test_commit_flushes_to_device(self):
        db, device = make_db(counting=True)
        table = db.create_table("people", people_schema(), key="id")
        table.insert((1, "ada", 10.0))
        before = device.counters.writes
        assert db.commit() > 0
        assert device.counters.writes > before

    def test_non_int_key_rejected(self):
        db, _ = make_db()
        with pytest.raises(ConfigurationError):
            db.create_table("bad", people_schema(), key="name")


class TestTableCrud:
    def _table(self):
        db, _ = make_db()
        return db.create_table("people", people_schema(), key="id"), db

    def test_insert_get(self):
        table, _ = self._table()
        table.insert((7, "grace", 1.5))
        assert table.get(7) == (7, "grace", 1.5)
        assert table.get(8) is None

    def test_duplicate_key_rejected_and_rolled_back(self):
        table, _ = self._table()
        table.insert((7, "grace", 1.5))
        with pytest.raises(StorageError):
            table.insert((7, "imposter", 0.0))
        assert table.get(7) == (7, "grace", 1.5)
        assert len(table) == 1  # heap insert was rolled back

    def test_update(self):
        table, _ = self._table()
        table.insert((1, "x", 0.0))
        table.update(1, (1, "x", 99.0))
        assert table.get(1)[2] == 99.0

    def test_update_cannot_change_key(self):
        table, _ = self._table()
        table.insert((1, "x", 0.0))
        with pytest.raises(StorageError):
            table.update(1, (2, "x", 0.0))

    def test_update_missing_key(self):
        table, _ = self._table()
        with pytest.raises(StorageError):
            table.update(404, (404, "x", 0.0))

    def test_update_fields(self):
        table, _ = self._table()
        table.insert((1, "ada", 1.0))
        new_row = table.update_fields(1, balance=2.5)
        assert new_row == (1, "ada", 2.5)
        assert table.get(1) == (1, "ada", 2.5)

    def test_delete(self):
        table, _ = self._table()
        table.insert((1, "a", 0.0))
        assert table.delete(1)
        assert table.get(1) is None
        assert not table.delete(1)

    def test_scan_and_range(self):
        table, _ = self._table()
        for i in range(20):
            table.insert((i, f"p{i}", float(i)))
        assert len(list(table.scan())) == 20
        assert [row[0] for row in table.range(5, 9)] == [5, 6, 7, 8, 9]

    def test_large_volume_with_commits(self):
        table, db = self._table()
        for i in range(2000):
            table.insert((i, f"p{i}", float(i)))
            if i % 100 == 0:
                db.commit()
        db.commit()
        for i in (0, 999, 1999):
            assert table.get(i) == (i, f"p{i}", float(i))

    def test_varchar_growth_moves_record_index_follows(self):
        db, _ = make_db()
        schema = Schema([
            Column("id", ColumnType.INT),
            Column("data", ColumnType.VARCHAR, 400),
        ])
        table = db.create_table("grow", schema, key="id")
        # fill one page with small rows
        for i in range(10):
            table.insert((i, "s"))
        table.update_fields(3, data="L" * 400)  # forces relocation
        assert table.get(3) == (3, "L" * 400)
        for i in range(10):
            if i != 3:
                assert table.get(i) == (i, "s")
