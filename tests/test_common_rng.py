"""Tests for repro.common.rng: deterministic, independent streams."""

from __future__ import annotations

from repro.common.rng import make_rng


class TestMakeRng:
    def test_same_seed_same_sequence(self):
        a = make_rng(42, "x").integers(0, 1000, 20)
        b = make_rng(42, "x").integers(0, 1000, 20)
        assert (a == b).all()

    def test_different_seeds_differ(self):
        a = make_rng(1, "x").integers(0, 10**9, 10)
        b = make_rng(2, "x").integers(0, 10**9, 10)
        assert not (a == b).all()

    def test_different_streams_differ(self):
        a = make_rng(42, "alpha").integers(0, 10**9, 10)
        b = make_rng(42, "beta").integers(0, 10**9, 10)
        assert not (a == b).all()

    def test_string_streams_stable_across_calls(self):
        """String keys hash stably (not via salted built-in hash)."""
        a = make_rng(7, "tpcc").integers(0, 10**9, 5)
        b = make_rng(7, "tpcc").integers(0, 10**9, 5)
        assert (a == b).all()

    def test_int_and_string_streams_compose(self):
        a = make_rng(7, "w", 3).integers(0, 10**9, 5)
        b = make_rng(7, "w", 4).integers(0, 10**9, 5)
        assert not (a == b).all()

    def test_no_seed_is_random(self):
        a = make_rng().integers(0, 10**9, 10)
        b = make_rng().integers(0, 10**9, 10)
        assert not (a == b).all()
