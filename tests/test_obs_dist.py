"""Distributed-tracing tests: causal trees, wire context, flight recorder.

Covers the cross-wire observability pipeline end-to-end: TraceContext
wire mapping and its reserved PDU header bytes, retry spans joining the
originating write's causal tree (no orphan or duplicated trace ids),
multi-node stitching, fault-triggered flight-recorder auto-dumps,
critical-path attribution summing to the observed write latency, the
coarse/fine detail levels, and the ``prins trace``/``prins flightrec``
CLI entry points.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.api import ObservabilityConfig, ReplicationConfig
from repro.cli import main
from repro.common.errors import ConfigurationError, PartialReplicationError
from repro.engine import (
    DirectLink,
    FaultyLink,
    PrimaryEngine,
    ReplicaEngine,
    ResilientLink,
    RetryPolicy,
    make_strategy,
    verify_consistency,
)
from repro.block import MemoryBlockDevice
from repro.common.rng import make_rng
from repro.iscsi.pdu import BHS_SIZE, Opcode, Pdu
from repro.obs import (
    NULL_SPAN,
    NULL_TELEMETRY,
    CriticalPathAnalyzer,
    Telemetry,
    TraceContext,
    context_from_wire,
    context_to_wire,
    save_snapshot,
    stitch_spans,
)

BS = 512
N = 16


def _replica_link(strategy_name: str = "prins"):
    """A (replica_device, base_link) pair."""
    strategy = make_strategy(strategy_name)
    replica_dev = MemoryBlockDevice(BS, N)
    return replica_dev, DirectLink(ReplicaEngine(replica_dev, strategy))


def _engine(links, telemetry, strategy_name: str = "prins", **kwargs):
    strategy = make_strategy(strategy_name)
    primary_dev = MemoryBlockDevice(BS, N)
    engine = PrimaryEngine(
        primary_dev, strategy, links, telemetry=telemetry, **kwargs
    )
    return engine, primary_dev


def _block(rng, size: int = BS) -> bytes:
    return rng.integers(0, 256, size, dtype="u1").tobytes()


# ---------------------------------------------------------------------------
# TraceContext on the wire
# ---------------------------------------------------------------------------


class TestContextWire:
    def test_round_trip(self):
        ctx = TraceContext(trace_id=0xABCDEF, span_id=42)
        assert context_from_wire(*context_to_wire(ctx)) == ctx

    def test_absent_context_is_zeros(self):
        assert context_to_wire(None) == (0, 0)
        assert context_from_wire(0, 0) is None
        assert context_from_wire(7, 0) is None
        assert context_from_wire(0, 7) is None

    def test_pdu_carries_context_fields(self):
        pdu = Pdu(
            opcode=Opcode.SCSI_COMMAND,
            lba=3,
            trace_id=0x1234,
            parent_span=0x5678,
            data=b"x" * 8,
        )
        decoded = Pdu.unpack(pdu.pack())
        assert decoded.trace_id == 0x1234
        assert decoded.parent_span == 0x5678
        assert context_from_wire(decoded.trace_id, decoded.parent_span) == (
            TraceContext(0x1234, 0x5678)
        )

    def test_contextless_pdu_reserved_bytes_are_zero(self):
        """Observability off ⇒ the 16 reserved BHS bytes stay zero."""
        pdu = Pdu(opcode=Opcode.SCSI_COMMAND, lba=3, seq=9, data=b"y" * 4)
        header = pdu.pack()[:BHS_SIZE]
        assert header[BHS_SIZE - 16 :] == b"\x00" * 16


# ---------------------------------------------------------------------------
# Retries join the write's causal tree (satellite acceptance)
# ---------------------------------------------------------------------------


class TestRetryCausalTree:
    def test_retried_write_yields_one_tree_with_retry_children(self):
        telemetry = Telemetry()
        replica_dev, base = _replica_link()
        flaky = FaultyLink(base)
        flaky.fail_next(2, "drop")
        link = ResilientLink(
            flaky, RetryPolicy(max_attempts=4), telemetry=telemetry
        )
        engine, primary_dev = _engine([link], telemetry)

        engine.write_block(0, b"r" * BS)
        assert link.retries == 2
        assert verify_consistency(primary_dev, replica_dev) == []

        spans = telemetry.snapshot()["traces"]
        trace_ids = {span["trace_id"] for span in spans}
        assert len(trace_ids) == 1  # no orphan or duplicated trace ids

        trees = stitch_spans(spans)
        (roots,) = trees.values()
        assert len(roots) == 1  # exactly one causal tree
        root = roots[0]
        assert root["name"] == "write"
        assert root["parent_id"] is None

        retries = [span for span in spans if span["name"] == "link.retry"]
        assert len(retries) == 2
        span_ids = {span["span_id"] for span in spans}
        for retry in retries:
            # children of the tree, not roots of their own
            assert retry["parent_id"] in span_ids
            assert retry["attrs"]["attempt"] in (1, 2)

    def test_separate_writes_get_separate_trees(self):
        telemetry = Telemetry()
        _, base = _replica_link()
        engine, _ = _engine([base], telemetry)
        engine.write_block(0, b"a" * BS)
        engine.write_block(1, b"b" * BS)
        trees = stitch_spans(telemetry.snapshot()["traces"])
        assert len(trees) == 2
        for roots in trees.values():
            assert len(roots) == 1


# ---------------------------------------------------------------------------
# Cross-node stitching
# ---------------------------------------------------------------------------


class TestCrossNodeStitch:
    def test_two_nodes_merge_into_one_tree(self):
        initiator = Telemetry(node="initiator")
        replica = Telemetry(node="replica")
        with initiator.span("write", lba=5) as write_span:
            wire = context_to_wire(write_span.context)
        carried = context_from_wire(*wire)
        with replica.span_in("replica.apply", carried):
            pass

        spans = (
            initiator.snapshot()["traces"] + replica.snapshot()["traces"]
        )
        trees = stitch_spans(spans)
        (roots,) = trees.values()
        assert len(roots) == 1
        root = roots[0]
        assert root["node"] == "initiator"
        (child,) = root["children"]
        assert child["name"] == "replica.apply"
        assert child["node"] == "replica"

    def test_node_labels_offset_span_ids(self):
        a = Telemetry(node="a")
        b = Telemetry(node="b")
        with a.span("x") as sa:
            pass
        with b.span("x") as sb:
            pass
        assert sa.span_id != sb.span_id  # distinct id spaces per node


# ---------------------------------------------------------------------------
# Flight recorder fault dumps
# ---------------------------------------------------------------------------


class TestFaultAutoDump:
    def test_fault_writes_dump_file(self, tmp_path):
        dump_path = str(tmp_path / "dump.json")
        telemetry = Telemetry(flightrec_dump=dump_path)
        telemetry.event("health.transition", link=0, old="healthy", new="down")
        telemetry.fault("link_down", link=0)
        with open(dump_path, encoding="utf-8") as fh:
            payload = json.load(fh)
        assert payload["last_dump_reason"] == "link_down"
        kinds = [event["kind"] for event in payload["events"]]
        assert kinds == [
            "health.transition",
            "fault.link_down",
            "flightrec.dump",
        ]

    def test_partial_replication_triggers_auto_dump(self, tmp_path):
        dump_path = str(tmp_path / "partial.json")
        telemetry = Telemetry(flightrec_dump=dump_path)
        _, base = _replica_link()
        flaky = FaultyLink(base)
        flaky.fail_next(10, "drop")
        engine, _ = _engine([flaky], telemetry)
        with pytest.raises(PartialReplicationError):
            engine.write_block(0, b"z" * BS)
        assert telemetry.flightrec.last_dump_reason == "partial_replication"
        with open(dump_path, encoding="utf-8") as fh:
            payload = json.load(fh)
        kinds = {event["kind"] for event in payload["events"]}
        assert "fault.partial_replication" in kinds


# ---------------------------------------------------------------------------
# Critical-path attribution
# ---------------------------------------------------------------------------


class TestCriticalAttribution:
    def test_stage_durations_sum_to_write_latency(self):
        telemetry = Telemetry(detail=True)
        _, base = _replica_link()
        engine, _ = _engine([base], telemetry)
        rng = make_rng(3, "critical")
        for lba in range(5):
            engine.write_block(lba, _block(rng))

        analyzer = CriticalPathAnalyzer()
        analyzer.add_snapshot(telemetry.snapshot())
        writes = analyzer.attributions()
        assert len(writes) == 5
        for attribution in writes:
            # exclusive-time attribution telescopes: over a sequential
            # tree the stage totals reproduce the root write's latency
            assert attribution.total_ns > 0
            assert 0.95 <= attribution.coverage <= 1.05
            assert attribution.dominant != "none"
        stages = analyzer.stage_summary()
        assert "transport" in stages
        assert "replica" in stages
        for stats in stages.values():
            assert stats["p50_ns"] <= stats["p95_ns"] <= stats["p99_ns"]

    def test_fanout_drag_measured_across_links(self):
        telemetry = Telemetry()
        _, link_a = _replica_link()
        _, link_b = _replica_link()
        engine, _ = _engine([link_a, link_b], telemetry)
        engine.write_block(2, b"d" * BS)
        analyzer = CriticalPathAnalyzer()
        analyzer.add_snapshot(telemetry.snapshot())
        (attribution,) = analyzer.attributions()
        sends = [
            span
            for span in telemetry.snapshot()["traces"]
            if span["name"] == "write.send"
        ]
        assert {span["attrs"]["link"] for span in sends} == {0, 1}
        assert attribution.drag_ns >= 0


# ---------------------------------------------------------------------------
# Config plumbing and detail levels
# ---------------------------------------------------------------------------


class TestObservabilityConfig:
    def test_round_trip_includes_detail(self):
        config = ObservabilityConfig(
            enabled=True, node="n1", detail=True, flightrec_capacity=8
        )
        rebuilt = ObservabilityConfig.from_dict(dataclasses.asdict(config))
        assert rebuilt == config

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            ObservabilityConfig.from_dict({"verbose": True})

    def test_telemetry_instance_honors_detail(self):
        config = ReplicationConfig(
            block_size=BS,
            num_blocks=N,
            observability=ObservabilityConfig(enabled=True, detail=True),
        )
        telemetry = config.telemetry_instance()
        assert telemetry.enabled
        assert telemetry.tracer.detail

    def test_disabled_config_yields_null_singleton(self):
        config = ReplicationConfig(block_size=BS, num_blocks=N)
        assert config.telemetry_instance() is NULL_TELEMETRY


class TestDetailLevels:
    def test_default_fine_spans_are_null(self):
        telemetry = Telemetry()
        assert telemetry.fine_span("write.delta") is NULL_SPAN
        with telemetry.span("write"):
            with telemetry.fine_span("write.delta"):
                pass
        names = {span["name"] for span in telemetry.snapshot()["traces"]}
        assert names == {"write"}

    def test_detail_records_fine_spans(self):
        telemetry = Telemetry(detail=True)
        with telemetry.span("write"):
            with telemetry.fine_span("write.delta"):
                pass
        names = {span["name"] for span in telemetry.snapshot()["traces"]}
        assert names == {"write", "write.delta"}


# ---------------------------------------------------------------------------
# CLI smoke: trace tree / critical / chrome, flightrec dump / show
# ---------------------------------------------------------------------------


@pytest.fixture()
def snapshot_path(tmp_path):
    """A saved telemetry snapshot with a few traced writes and one event."""
    telemetry = Telemetry(node="cli")
    _, base = _replica_link()
    engine, _ = _engine([base], telemetry)
    rng = make_rng(9, "cli-snap")
    for lba in range(3):
        engine.write_block(lba, _block(rng))
    telemetry.event("health.transition", link=0, old="healthy", new="degraded")
    path = tmp_path / "snapshot.json"
    save_snapshot(telemetry.snapshot(), path)
    return str(path)


class TestCliObservability:
    def test_trace_critical(self, snapshot_path, capsys):
        assert main(["trace", "critical", snapshot_path]) == 0
        out = capsys.readouterr().out
        assert "critical path over" in out
        assert "transport" in out

    def test_trace_tree(self, snapshot_path, capsys):
        with open(snapshot_path, encoding="utf-8") as fh:
            trace_id = json.load(fh)["traces"][0]["trace_id"]
        assert main(["trace", "tree", snapshot_path, "--id", str(trace_id)]) == 0
        assert "write" in capsys.readouterr().out

    def test_trace_chrome(self, snapshot_path, tmp_path, capsys):
        out_path = tmp_path / "chrome.json"
        assert main(
            ["trace", "chrome", snapshot_path, "--out", str(out_path)]
        ) == 0
        with open(out_path, encoding="utf-8") as fh:
            events = json.load(fh)["traceEvents"]
        assert any(event.get("name") == "write" for event in events)

    def test_flightrec_dump_and_show(self, snapshot_path, capsys):
        assert main(["flightrec", "dump", snapshot_path]) == 0
        dumped = json.loads(capsys.readouterr().out)
        assert dumped["events"][0]["kind"] == "health.transition"
        assert main(["flightrec", "show", snapshot_path]) == 0
        assert "health.transition" in capsys.readouterr().out
