"""Property test: routed reads are indistinguishable from primary reads.

Hypothesis drives an interleaved read/write/flush/drain schedule through
a replica-routed stack and checks, at every read, that the routed answer
equals the primary device's bytes — the ground truth for the latest
completed write, since the primary always applies locally before
shipping.  The grid crosses fan-out mode (sequential vs pipelined, where
in-flight work makes conflicts real), redundancy (mirror vs erasure
any-k reassembly), and shard counts {1, 2, 4}.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ReplicationConfig, open_primary

BS = 64
N = 16

#: one schedule step: ("write", lba, payload) | ("read", lba)
#: | ("flush",) | ("drain",)
ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("write"),
            st.integers(0, N - 1),
            st.binary(min_size=BS, max_size=BS),
        ),
        st.tuples(st.just("read"), st.integers(0, N - 1)),
        st.tuples(st.just("flush")),
        st.tuples(st.just("drain")),
    ),
    max_size=30,
)


def _config(fanout: str, redundancy: str) -> ReplicationConfig:
    kwargs: dict = dict(
        block_size=BS,
        num_blocks=N,
        read_policy="replica",
        resilient=True,
    )
    if fanout == "pipelined":
        # sim-mode latency keeps submitted work dirty until drain, so
        # the schedule actually exercises the conflict fallback
        kwargs.update(fanout="pipelined", window=4, link_latency_s=0.01)
    if redundancy == "erasure":
        kwargs.update(redundancy="erasure", k=2, n=4)
    else:
        kwargs.update(replicas=2)
    return ReplicationConfig(**kwargs)


@pytest.mark.parametrize("shards", [1, 2, 4])
@pytest.mark.parametrize("redundancy", ["mirror", "erasure"])
@pytest.mark.parametrize("fanout", ["sequential", "pipelined"])
@settings(max_examples=10, deadline=None)
@given(schedule=ops)
def test_routed_reads_equal_primary_reads(fanout, redundancy, shards, schedule):
    config = _config(fanout, redundancy)
    with open_primary(config, shards=shards) as stack:
        engine = stack.engine
        for step in schedule:
            if step[0] == "write":
                engine.write_block(step[1], step[2])
            elif step[0] == "read":
                assert engine.read_block(step[1]) == stack.device.read_block(
                    step[1]
                )
            elif step[0] == "flush":
                engine.flush_batch()
            else:
                engine.drain()
        engine.drain()
        # quiescent sweep: every LBA routable and still correct
        for lba in range(N):
            assert engine.read_block(lba) == stack.device.read_block(lba)
