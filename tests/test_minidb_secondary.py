"""Tests for non-unique secondary indexes."""

from __future__ import annotations

import pytest

from repro.block import MemoryBlockDevice
from repro.common.errors import ConfigurationError, StorageError
from repro.minidb import Column, ColumnType, Database, Schema
from repro.minidb.secondary import SecondaryIndex, attach_secondary_index


def people_table():
    db = Database(MemoryBlockDevice(1024, 1024), pool_capacity=32)
    table = db.create_table(
        "people",
        Schema([
            Column("id", ColumnType.INT),
            Column("last", ColumnType.CHAR, 16),
            Column("balance", ColumnType.FLOAT),
        ]),
        key="id",
    )
    return table, db


class TestSecondaryIndex:
    def test_duplicate_values_all_returned(self):
        table, _ = people_table()
        attach_secondary_index(table, "last")
        table.insert((1, "smith", 0.0))
        table.insert((2, "jones", 0.0))
        table.insert((3, "smith", 0.0))
        rows = table.find_by("last", "smith")
        assert sorted(row[0] for row in rows) == [1, 3]
        assert [row[0] for row in table.find_by("last", "jones")] == [2]

    def test_no_matches(self):
        table, _ = people_table()
        attach_secondary_index(table, "last")
        table.insert((1, "smith", 0.0))
        assert table.find_by("last", "nobody") == []

    def test_find_without_index_raises(self):
        table, _ = people_table()
        with pytest.raises(StorageError, match="no secondary index"):
            table.find_by("last", "smith")

    def test_backfill_of_existing_rows(self):
        table, _ = people_table()
        table.insert((1, "lee", 0.0))
        table.insert((2, "lee", 0.0))
        attach_secondary_index(table, "last")
        assert sorted(r[0] for r in table.find_by("last", "lee")) == [1, 2]

    def test_update_moves_index_entry(self):
        table, _ = people_table()
        attach_secondary_index(table, "last")
        table.insert((1, "old", 0.0))
        table.update_fields(1, last="new")
        assert table.find_by("last", "old") == []
        assert [r[0] for r in table.find_by("last", "new")] == [1]

    def test_update_of_other_column_keeps_entry(self):
        table, _ = people_table()
        attach_secondary_index(table, "last")
        table.insert((1, "same", 0.0))
        table.update_fields(1, balance=99.0)
        assert [r[0] for r in table.find_by("last", "same")] == [1]

    def test_delete_removes_entry(self):
        table, _ = people_table()
        attach_secondary_index(table, "last")
        table.insert((1, "gone", 0.0))
        table.insert((2, "gone", 0.0))
        table.delete(1)
        assert [r[0] for r in table.find_by("last", "gone")] == [2]

    def test_double_attach_rejected(self):
        table, _ = people_table()
        attach_secondary_index(table, "last")
        with pytest.raises(ConfigurationError):
            attach_secondary_index(table, "last")

    def test_many_duplicates_and_commits(self):
        table, db = people_table()
        attach_secondary_index(table, "last")
        for i in range(300):
            table.insert((i, f"name{i % 7}", float(i)))
            if i % 50 == 0:
                db.commit()
        db.commit()
        for bucket in range(7):
            matches = table.find_by("last", f"name{bucket}")
            assert len(matches) == len([i for i in range(300) if i % 7 == bucket])

    def test_int_secondary_values(self):
        db = Database(MemoryBlockDevice(1024, 512), pool_capacity=16)
        table = db.create_table(
            "orders",
            Schema([
                Column("o_id", ColumnType.INT),
                Column("c_id", ColumnType.INT),
            ]),
            key="o_id",
        )
        attach_secondary_index(table, "c_id")
        for o in range(40):
            table.insert((o, o % 5))
        assert len(table.find_by("c_id", 3)) == 8

    def test_raw_index_remove_missing(self):
        db = Database(MemoryBlockDevice(1024, 256), pool_capacity=8)
        index = SecondaryIndex(db.pool, db.allocate_page)
        index.insert("x", 100)
        assert not index.remove("x", 999)
        assert index.remove("x", 100)
        assert index.lookup("x") == []


class TestCsvExport:
    def test_to_csv(self):
        from repro.analysis import ExperimentResult

        result = ExperimentResult("f", "t", ["a", "b,c"])
        result.add_row(1, "x,y")
        result.add_row(2.5, "plain")
        csv = result.to_csv()
        lines = csv.strip().splitlines()
        assert lines[0] == 'a,"b,c"'
        assert lines[1] == '1,"x,y"'
        assert lines[2] == "2.5,plain"

    def test_save_csv(self, tmp_path):
        from repro.analysis import ExperimentResult

        result = ExperimentResult("f", "t", ["v"])
        result.add_row(42)
        path = tmp_path / "out.csv"
        result.save_csv(path)
        assert path.read_text() == "v\n42\n"
