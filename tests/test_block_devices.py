"""Tests for the concrete block devices: memory, sparse, file."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.block import FileBlockDevice, MemoryBlockDevice, SparseBlockDevice
from repro.common.errors import (
    BlockRangeError,
    BlockSizeError,
)
from repro.common.errors import DeviceClosedError


DEVICE_FACTORIES = {
    "memory": lambda bs, n: MemoryBlockDevice(bs, n),
    "sparse": lambda bs, n: SparseBlockDevice(bs, n),
}


@pytest.fixture(params=sorted(DEVICE_FACTORIES))
def any_device(request):
    return DEVICE_FACTORIES[request.param](512, 32)


class TestBlockDeviceContract:
    """Behaviour every device must share (validation lives in the base)."""

    def test_initial_reads_are_zero(self, any_device):
        assert any_device.read_block(0) == bytes(512)
        assert any_device.read_block(31) == bytes(512)

    def test_write_then_read(self, any_device):
        data = bytes(range(256)) * 2
        any_device.write_block(5, data)
        assert any_device.read_block(5) == data

    def test_overwrite(self, any_device):
        any_device.write_block(3, b"a" * 512)
        any_device.write_block(3, b"b" * 512)
        assert any_device.read_block(3) == b"b" * 512

    def test_lba_out_of_range(self, any_device):
        with pytest.raises(BlockRangeError):
            any_device.read_block(32)
        with pytest.raises(BlockRangeError):
            any_device.write_block(-1, bytes(512))

    def test_wrong_block_size(self, any_device):
        with pytest.raises(BlockSizeError):
            any_device.write_block(0, bytes(511))

    def test_multi_block_io(self, any_device):
        payload = bytes(range(64)) * 8 * 3  # 3 blocks
        any_device.write_blocks(4, payload)
        assert any_device.read_blocks(4, 3) == payload

    def test_write_blocks_partial_rejected(self, any_device):
        with pytest.raises(BlockSizeError):
            any_device.write_blocks(0, bytes(700))

    def test_capacity(self, any_device):
        assert any_device.capacity_bytes == 512 * 32

    def test_closed_device_rejects_io(self, any_device):
        any_device.close()
        with pytest.raises(DeviceClosedError):
            any_device.read_block(0)

    def test_context_manager(self):
        with MemoryBlockDevice(512, 4) as dev:
            dev.write_block(0, b"x" * 512)
        assert dev.closed

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            MemoryBlockDevice(0, 10)
        with pytest.raises(ValueError):
            MemoryBlockDevice(512, 0)

    def test_iter_blocks(self, any_device):
        any_device.write_block(2, b"z" * 512)
        blocks = dict(any_device.iter_blocks())
        assert len(blocks) == 32
        assert blocks[2] == b"z" * 512
        assert blocks[0] == bytes(512)


class TestMemoryDevice:
    def test_snapshot_and_load(self):
        dev = MemoryBlockDevice(128, 8)
        dev.write_block(1, b"q" * 128)
        image = dev.snapshot()
        dev.write_block(1, b"r" * 128)
        dev.load(image)
        assert dev.read_block(1) == b"q" * 128

    def test_load_wrong_size(self):
        dev = MemoryBlockDevice(128, 8)
        with pytest.raises(ValueError):
            dev.load(bytes(5))


class TestSparseDevice:
    def test_zero_write_frees_slot(self):
        dev = SparseBlockDevice(512, 16)
        dev.write_block(3, b"x" * 512)
        assert dev.allocated_blocks == 1
        dev.write_block(3, bytes(512))
        assert dev.allocated_blocks == 0
        assert dev.read_block(3) == bytes(512)

    def test_written_lbas_sorted(self):
        dev = SparseBlockDevice(512, 16)
        for lba in (9, 2, 7):
            dev.write_block(lba, b"y" * 512)
        assert dev.written_lbas() == [2, 7, 9]


class TestFileDevice:
    def test_persistence_across_reopen(self, tmp_path):
        path = tmp_path / "disk.img"
        with FileBlockDevice(path, 256, 16) as dev:
            dev.write_block(7, b"p" * 256)
        with FileBlockDevice(path, 256, 16) as dev:
            assert dev.read_block(7) == b"p" * 256
            assert dev.read_block(0) == bytes(256)

    def test_file_created_at_capacity(self, tmp_path):
        path = tmp_path / "disk.img"
        with FileBlockDevice(path, 256, 16):
            pass
        assert path.stat().st_size == 256 * 16

    def test_flush(self, tmp_path):
        dev = FileBlockDevice(tmp_path / "d.img", 256, 4)
        dev.write_block(0, b"f" * 256)
        dev.flush()
        dev.close()


class TestPropertyRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(
        writes=st.lists(
            st.tuples(st.integers(0, 15), st.binary(min_size=64, max_size=64)),
            max_size=30,
        )
    )
    def test_devices_agree(self, writes):
        """Memory and sparse devices behave identically under any write set."""
        mem = MemoryBlockDevice(64, 16)
        sparse = SparseBlockDevice(64, 16)
        for lba, data in writes:
            mem.write_block(lba, data)
            sparse.write_block(lba, data)
        for lba in range(16):
            assert mem.read_block(lba) == sparse.read_block(lba)
