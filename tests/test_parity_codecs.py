"""Tests for the parity delta computation and every codec."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import CodecError
from repro.parity import (
    PipelineCodec,
    RawCodec,
    SparseSegmentCodec,
    ZeroRleCodec,
    ZlibCodec,
    available_codecs,
    backward_parity,
    decode_frame,
    decode_frame_into,
    decode_frame_xor_into,
    encode_frame,
    encode_frames,
    forward_parity,
    get_codec,
)
from repro.parity.frame import FRAME_OVERHEAD, best_frame

ALL_CODECS = [RawCodec(), ZeroRleCodec(), ZlibCodec(), SparseSegmentCodec(), PipelineCodec()]


class TestDelta:
    def test_forward_then_backward(self):
        old = b"a" * 100
        new = b"a" * 40 + b"CHANGED" + b"a" * 53
        delta = forward_parity(new, old)
        assert backward_parity(delta, old) == new

    def test_unchanged_block_gives_zero_delta(self):
        data = bytes(range(200))
        assert forward_parity(data, data) == bytes(200)

    def test_delta_is_sparse_for_partial_change(self):
        old = bytes(1000)
        new = bytes(500) + b"\xff" * 10 + bytes(490)
        delta = forward_parity(new, old)
        assert delta.count(0) == 990

    @given(st.binary(min_size=1, max_size=512))
    def test_roundtrip_property(self, old):
        new = bytes(reversed(old))
        assert backward_parity(forward_parity(new, old), old) == new


@pytest.mark.parametrize("codec", ALL_CODECS, ids=lambda c: c.name)
class TestCodecRoundTrip:
    def test_empty(self, codec):
        assert codec.decode(codec.encode(b""), 0) == b""

    def test_all_zero(self, codec):
        data = bytes(4096)
        assert codec.decode(codec.encode(data), 4096) == data

    def test_all_nonzero(self, codec):
        data = bytes(range(1, 256)) * 16
        assert codec.decode(codec.encode(data), len(data)) == data

    def test_sparse_delta(self, codec):
        data = bytearray(8192)
        data[100:120] = b"\x11" * 20
        data[4000:4300] = b"\x22" * 300
        data[8190:8192] = b"\x33\x44"
        raw = bytes(data)
        assert codec.decode(codec.encode(raw), len(raw)) == raw

    @settings(max_examples=40, deadline=None)
    @given(data=st.binary(min_size=0, max_size=2048))
    def test_roundtrip_property(self, codec, data):
        assert codec.decode(codec.encode(data), len(data)) == data


class TestSparsePayloadSizes:
    """The point of PRINS: sparse deltas must encode small."""

    def _sparse_block(self, block_size=8192, changed=400):
        data = bytearray(block_size)
        data[1000 : 1000 + changed] = bytes(range(1, 256))[: changed % 255] * 1 + bytes(
            max(0, changed - 255)
        )
        data[1000 : 1000 + changed] = (b"\x55" * changed)
        return bytes(data)

    @pytest.mark.parametrize("codec_name", ["zero-rle", "sparse", "rle+zlib"])
    def test_sparse_encodes_small(self, codec_name):
        data = self._sparse_block()
        encoded = get_codec(codec_name).encode(data)
        assert len(encoded) < len(data) / 10

    def test_zero_rle_all_zero_is_tiny(self):
        encoded = ZeroRleCodec().encode(bytes(65536))
        assert len(encoded) == 0  # nothing to say: decode pads with zeros

    def test_zero_rle_beats_raw_at_20_percent_change(self):
        data = bytearray(8192)
        data[0:1638] = b"\x99" * 1638  # 20% changed
        encoded = ZeroRleCodec().encode(bytes(data))
        assert len(encoded) < 8192 / 4


class TestCodecErrors:
    def test_raw_length_mismatch(self):
        with pytest.raises(CodecError):
            RawCodec().decode(b"abc", 5)

    def test_zlib_garbage(self):
        with pytest.raises(CodecError):
            ZlibCodec().decode(b"not zlib data", 10)

    def test_zlib_wrong_length(self):
        payload = ZlibCodec().encode(b"hello")
        with pytest.raises(CodecError):
            ZlibCodec().decode(payload, 99)

    def test_zero_rle_overrun(self):
        # declares a literal that exceeds the original length
        payload = ZeroRleCodec().encode(b"\x01" * 100)
        with pytest.raises(CodecError):
            ZeroRleCodec().decode(payload, 10)

    def test_sparse_truncated(self):
        with pytest.raises(CodecError):
            SparseSegmentCodec().decode(b"\x01", 100)

    def test_zlib_invalid_level(self):
        with pytest.raises(ValueError):
            ZlibCodec(level=11)


class TestRegistry:
    def test_lookup_by_name_and_id(self):
        assert get_codec("zero-rle").codec_id == get_codec(1).codec_id

    def test_unknown_raises(self):
        with pytest.raises(CodecError):
            get_codec("nope")
        with pytest.raises(CodecError):
            get_codec(250)

    def test_available_sorted_by_id(self):
        ids = [c.codec_id for c in available_codecs()]
        assert ids == sorted(ids)
        assert 0 in ids  # raw always present


class TestFrame:
    def test_roundtrip(self):
        data = bytes(300)
        for codec in ALL_CODECS:
            assert decode_frame(encode_frame(codec, data)) == data

    def test_overhead_constant(self):
        frame = encode_frame(RawCodec(), b"abc")
        assert len(frame) == FRAME_OVERHEAD + 3

    def test_too_short(self):
        with pytest.raises(CodecError):
            decode_frame(b"\x00")

    def test_best_frame_picks_smallest(self):
        sparse = bytes(4000) + b"\x01" + bytes(4191)
        best = best_frame([RawCodec(), ZeroRleCodec()], sparse)
        assert len(best) < 100  # RLE must have won

    def test_best_frame_decodes(self):
        data = b"\x07" * 999
        assert decode_frame(best_frame(ALL_CODECS, data)) == data

    def test_best_frame_empty_codecs(self):
        with pytest.raises(ValueError):
            best_frame([], b"x")


class TestSparseSegmentMerging:
    def test_nearby_runs_merge(self):
        codec = SparseSegmentCodec(merge_gap=8)
        data = bytearray(100)
        data[10] = 1
        data[15] = 2  # 4 zero bytes apart -> merged
        segs = codec.segments(bytes(data))
        assert segs == [(10, 6)]

    def test_distant_runs_stay_separate(self):
        codec = SparseSegmentCodec(merge_gap=2)
        data = bytearray(100)
        data[10] = 1
        data[50] = 2
        assert len(codec.segments(bytes(data))) == 2

    def test_merge_gap_validation(self):
        with pytest.raises(ValueError):
            SparseSegmentCodec(merge_gap=-1)


@pytest.mark.parametrize("codec", ALL_CODECS, ids=lambda c: c.name)
class TestBufferProtocolInputs:
    """Codecs must accept memoryview/bytearray inputs on the zero-copy path."""

    def _sparse(self, n=4096):
        data = bytearray(n)
        data[100:140] = b"\x11" * 40
        data[2000:2300] = bytes(range(1, 151)) * 2
        data[n - 2 :] = b"\x33\x44"
        return bytes(data)

    @pytest.mark.parametrize("wrap", [bytearray, memoryview])
    def test_encode_any_buffer_matches_bytes(self, codec, wrap):
        data = self._sparse()
        assert codec.encode(wrap(bytearray(data))) == codec.encode(data)

    def test_decode_into_bytearray(self, codec):
        data = self._sparse()
        payload = codec.encode(data)
        out = bytearray(b"\xee" * len(data))  # stale contents must vanish
        codec.decode_into(payload, out)
        assert bytes(out) == data

    def test_decode_into_memoryview(self, codec):
        data = self._sparse()
        payload = codec.encode(data)
        backing = bytearray(b"\xee" * len(data))
        codec.decode_into(payload, memoryview(backing))
        assert bytes(backing) == data

    def test_decode_xor_into_applies_delta(self, codec):
        old = bytes(range(256)) * 16
        new = bytearray(old)
        new[300:600] = b"\x77" * 300
        delta = forward_parity(bytes(new), old)
        payload = codec.encode(delta)
        block = bytearray(old)
        codec.decode_xor_into(payload, block)
        assert bytes(block) == bytes(new)

    def test_decode_into_short_target_raises(self, codec):
        # the trailing literal of the sparse block overruns a target one
        # byte too small (a too-large target is legal only for zero-rle,
        # whose implicit zero tail pads; the frame layer enforces exact
        # lengths, covered by TestFrameIntoDecoders)
        data = self._sparse()
        payload = codec.encode(data)
        with pytest.raises(CodecError):
            codec.decode_into(payload, bytearray(len(data) - 1))

    def test_encode_many_matches_mapped_encode(self, codec):
        datas = [self._sparse(), bytes(512), self._sparse(2048)]
        assert codec.encode_many(datas) == [codec.encode(d) for d in datas]


class TestFrameIntoDecoders:
    def _frame_and_data(self):
        data = bytearray(2048)
        data[70:90] = b"\x42" * 20
        data[1000:1010] = b"\x24" * 10
        raw = bytes(data)
        return encode_frame(get_codec("zero-rle"), raw), raw

    def test_decode_frame_into(self):
        frame, data = self._frame_and_data()
        out = bytearray(b"\xaa" * len(data))
        decode_frame_into(frame, out)
        assert bytes(out) == data

    def test_decode_frame_xor_into_recovers_new_block(self):
        old = bytes(range(1, 256)) * 8 + bytes(8)
        new = bytearray(old)
        new[100:200] = b"\x55" * 100
        frame = encode_frame(get_codec("sparse"), forward_parity(bytes(new), old))
        block = bytearray(old)
        decode_frame_xor_into(frame, block)
        assert bytes(block) == bytes(new)

    def test_target_length_mismatch_raises(self):
        frame, data = self._frame_and_data()
        with pytest.raises(CodecError):
            decode_frame_into(frame, bytearray(len(data) - 1))
        with pytest.raises(CodecError):
            decode_frame_xor_into(frame, bytearray(len(data) + 1))

    def test_truncated_frame_raises(self):
        with pytest.raises(CodecError):
            decode_frame_into(b"\x01", bytearray(8))

    def test_encode_frames_matches_per_frame_encode(self):
        codec = get_codec("zero-rle")
        datas = [bytes(64), b"\x01" * 64, bytes(30) + b"\x09\x08" + bytes(32)]
        assert encode_frames(codec, datas) == [
            encode_frame(codec, d) for d in datas
        ]


class TestParityBufferInputs:
    def test_forward_parity_accepts_views(self):
        old = bytes(range(256))
        new = bytes(reversed(old))
        expect = forward_parity(new, old)
        assert forward_parity(memoryview(new), bytearray(old)) == expect

    def test_backward_parity_accepts_views(self):
        old = bytes(range(256))
        new = bytes(reversed(old))
        delta = forward_parity(new, old)
        assert backward_parity(memoryview(delta), bytearray(old)) == new
