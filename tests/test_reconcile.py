"""Unit tests for the set-reconciliation resync tier (engine/reconcile.py).

Covers the three layers in isolation from the heal ladder: sketch
identification exactness (including the false-negative → re-sketch round
path and the stall fallback signal), content shipping through the
ShipWork protocol with sub-block shingling for large blocks, and the
resumable per-group state machine (invalidate, resume-after-fault).
Integration with GuardedLink.heal() lives in test_resilience.py.
"""

from __future__ import annotations

import pytest

from repro.block import MemoryBlockDevice
from repro.common.errors import ConfigurationError, SyncError
from repro.common.rng import make_rng
from repro.engine import (
    DirectLink,
    FaultyLink,
    ReplicaEngine,
    digest_sync,
    make_strategy,
    verify_consistency,
)
from repro.engine.messages import ReplicationRecord
from repro.engine.reconcile import (
    SHINGLE_PIECE_BYTES,
    ReconcileConfig,
    ReconcileSession,
    ReconcileStalledError,
    ResyncShipper,
    shingle_boundaries,
    shingle_diff_spans,
)

BS = 512
N = 256


def _devices(num_blocks: int = N, block_size: int = BS, seed: int = 7):
    """A (src, dst) pair initialised to the same random image."""
    rng = make_rng(seed, "reconcile-image")
    src = MemoryBlockDevice(block_size, num_blocks)
    dst = MemoryBlockDevice(block_size, num_blocks)
    for lba in range(num_blocks):
        data = rng.integers(0, 256, block_size, dtype="u1").tobytes()
        src.write_block(lba, data)
        dst.write_block(lba, data)
    return src, dst


def _dirty(device, lbas, seed: int = 11):
    rng = make_rng(seed, "reconcile-dirty")
    for lba in lbas:
        device.write_block(
            lba, rng.integers(0, 256, device.block_size, dtype="u1").tobytes()
        )


def _shipper(dst, report, config=None, strategy_name="prins", link_wrap=None):
    """A ResyncShipper wired to a real replica engine over dst."""
    strategy = make_strategy(strategy_name)
    replica = ReplicaEngine(dst, strategy)
    link = DirectLink(replica)
    if link_wrap is not None:
        link = link_wrap(link)
    seq = [1 << 20]

    def builder(lba, new, old):
        frame = strategy.encode_update(new, old)
        if frame is None:
            return None
        seq[0] += 1
        return ReplicationRecord.for_block(seq[0], new, frame)

    return ResyncShipper(link, builder, config or ReconcileConfig(), report), link


class TestReconcileConfig:
    def test_defaults_valid(self):
        config = ReconcileConfig()
        assert config.group_size == 64
        assert config.max_rounds >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"group_size": 0},
            {"sketch_bits_per_lba": 0},
            {"max_rounds": 0},
            {"shingle_chunk_bytes": 3000},  # not a power of two
            {"shingle_min_chunk_bytes": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            ReconcileConfig(**kwargs)


class TestIdentification:
    def test_clean_pair_verifies_without_shipping(self):
        src, dst = _devices()
        session = ReconcileSession(N, BS)
        shipper, _ = _shipper(dst, session.report)
        report = session.run(src, dst, shipper)
        assert session.complete
        assert report.rounds == 1
        assert report.dirty_lbas_found == 0
        assert report.records_shipped == 0
        assert report.diff_bytes == 0
        assert report.sketch_bytes > 0  # identification is never free

    def test_finds_exactly_the_dirty_set(self):
        src, dst = _devices()
        dirty = sorted(make_rng(3, "pick").choice(N, 9, replace=False))
        _dirty(src, dirty)
        session = ReconcileSession(N, BS)
        shipper, _ = _shipper(dst, session.report)
        report = session.run(src, dst, shipper)
        assert session.complete
        assert report.dirty_lbas_found == len(dirty)
        assert report.records_shipped == len(dirty)
        assert verify_consistency(src, dst) == []

    def test_repairs_divergence_on_the_replica_side(self):
        # bit rot on the replica: the key appears only in dst's sketch
        src, dst = _devices()
        _dirty(dst, [5, 77, 200])
        session = ReconcileSession(N, BS)
        shipper, _ = _shipper(dst, session.report)
        session.run(src, dst, shipper)
        assert session.complete
        assert verify_consistency(src, dst) == []

    def test_wire_cost_is_sublinear_in_volume(self):
        """1% dirty with partial-block edits (the OLTP shape PRINS
        targets): reconcile must move far less than the full sweep."""
        src, dst = _devices(num_blocks=1024)
        rng = make_rng(13, "edits")
        for lba in range(0, 1024, 100):  # ~1% dirty, ~40-byte edits
            data = bytearray(src.read_block(lba))
            off = int(rng.integers(0, BS - 40))
            data[off : off + 40] = rng.integers(
                0, 256, 40, dtype="u1"
            ).tobytes()
            src.write_block(lba, bytes(data))
        baseline_src = MemoryBlockDevice(BS, 1024)
        baseline_dst = MemoryBlockDevice(BS, 1024)
        for lba in range(1024):
            baseline_src.write_block(lba, src.read_block(lba))
            baseline_dst.write_block(lba, dst.read_block(lba))
        session = ReconcileSession(1024, BS)
        shipper, _ = _shipper(dst, session.report)
        report = session.run(src, dst, shipper)
        digest_report = digest_sync(baseline_src, baseline_dst)
        assert verify_consistency(src, dst) == []
        assert verify_consistency(baseline_src, baseline_dst) == []
        assert report.wire_bytes < digest_report.wire_bytes / 2

    def test_geometry_mismatch_rejected(self):
        src, _ = _devices(num_blocks=16)
        other = MemoryBlockDevice(BS, 32)
        session = ReconcileSession(16, BS)
        shipper, _ = _shipper(other, session.report)
        with pytest.raises(SyncError, match="geometry"):
            session.run(src, other, shipper)

    def test_session_device_mismatch_rejected(self):
        src, dst = _devices(num_blocks=16)
        session = ReconcileSession(64, BS)  # built for a bigger volume
        shipper, _ = _shipper(dst, session.report)
        with pytest.raises(SyncError, match="geometry"):
            session.run(src, dst, shipper)


class TestVerificationRounds:
    def test_false_negative_is_caught_by_group_digest(self, monkeypatch):
        """Force every sketch to read clean: the strong group digest must
        still catch the divergence and send groups back for re-sketch
        until the rounds budget trips the deterministic stall signal."""
        import repro.engine.reconcile as reconcile_mod

        monkeypatch.setattr(
            reconcile_mod, "_bit_of", lambda lba, crc, nbits, salt: 0
        )
        src, dst = _devices(num_blocks=64)
        _dirty(src, [3])
        session = ReconcileSession(
            64, BS, ReconcileConfig(group_size=64, max_rounds=3)
        )
        shipper, _ = _shipper(dst, session.report)
        with pytest.raises(ReconcileStalledError, match="stalled"):
            session.run(src, dst, shipper)
        assert not session.complete
        assert session.report.groups_resketched >= 1
        assert session.rounds_used == 3
        # exactness was never compromised: nothing claimed verified
        assert session.report.groups_verified == 0

    def test_resalting_changes_the_sketch(self):
        """Round salts must decorrelate: the same dirty pair that collides
        under one salt is separated under another (statistical smoke:
        across many salts the sketch is not constant)."""
        from repro.engine.reconcile import _bit_of

        bits = {_bit_of(7, 0xDEADBEEF, 512, salt) for salt in range(32)}
        assert len(bits) > 1


class TestResumability:
    def test_invalidate_repends_verified_groups(self):
        src, dst = _devices()
        session = ReconcileSession(N, BS)
        shipper, _ = _shipper(dst, session.report)
        session.run(src, dst, shipper)
        assert session.complete
        verified_before = session.report.groups_verified
        assert session.invalidate([0, 1]) == 1  # same group: one re-pend
        assert not session.complete
        assert session.report.groups_verified == verified_before - 1
        # out-of-range LBAs are ignored, not an error
        assert session.invalidate([-1, 10**9]) == 0
        _dirty(src, [1])
        session.run(src, dst, shipper)
        assert session.complete
        assert verify_consistency(src, dst) == []

    def test_transient_fault_resumes_from_verified_groups(self):
        """A link fault mid-ship propagates; a second run() resumes with
        per-group progress intact and converges byte-identical."""
        src, dst = _devices()
        dirty = [10, 130, 250]  # three distinct groups (group_size=64)
        _dirty(src, dirty)
        session = ReconcileSession(N, BS)
        holder = {}

        def wrap(link):
            holder["flaky"] = FaultyLink(link)
            return holder["flaky"]

        shipper, _ = _shipper(dst, session.report, link_wrap=wrap)
        holder["flaky"].fail_next(1, "drop")
        from repro.engine import InjectedLinkError

        with pytest.raises(InjectedLinkError):
            session.run(src, dst, shipper)
        assert not session.complete
        shipped_first = session.report.records_shipped
        session.run(src, dst, shipper)  # resume: no new faults
        assert session.complete
        assert verify_consistency(src, dst) == []
        # the resumed run shipped only what the fault interrupted
        assert session.report.records_shipped >= shipped_first
        assert session.report.dirty_lbas_found >= len(dirty)


class TestShingling:
    def test_boundaries_are_deterministic_and_floored(self):
        data = make_rng(5, "shingle").integers(
            0, 256, 64 * 1024, dtype="u1"
        ).tobytes()
        cuts = shingle_boundaries(data, 4096, 512)
        assert cuts == shingle_boundaries(data, 4096, 512)
        assert cuts[0] == 0 and cuts[-1] == len(data)
        assert all(b - a >= 512 for a, b in zip(cuts, cuts[1:-1]))

    def test_boundaries_localize_edits(self):
        """Content-defined cuts: editing the tail leaves prefix cuts alone."""
        data = bytearray(
            make_rng(6, "shingle").integers(
                0, 256, 64 * 1024, dtype="u1"
            ).tobytes()
        )
        before = shingle_boundaries(bytes(data), 4096, 512)
        data[-100:] = b"\x00" * 100
        after = shingle_boundaries(bytes(data), 4096, 512)
        prefix = [c for c in before if c < len(data) - 4096 * 2]
        assert after[: len(prefix)] == prefix

    def test_diff_spans_cover_every_difference(self):
        rng = make_rng(8, "spans")
        src = bytearray(rng.integers(0, 256, 128 * 1024, dtype="u1").tobytes())
        dst = bytes(src)
        src[100:140] = b"\xff" * 40
        src[70000:70008] = b"\xee" * 8
        spans, charged = shingle_diff_spans(
            bytes(src), dst, ReconcileConfig()
        )
        for i, (a, b) in enumerate(zip(bytes(src), dst)):
            if a != b:
                assert any(lo <= i < hi for lo, hi in spans), i
        # two point edits in 128 KiB: the hash exchange is tiny next to
        # the block, and the located spans are tight around the edits
        assert charged < len(src) // 8
        assert sum(hi - lo for lo, hi in spans) < len(src) // 8

    def test_equal_blocks_charge_one_digest(self):
        data = b"\xab" * (64 * 1024)
        spans, charged = shingle_diff_spans(data, data, ReconcileConfig())
        assert spans == []
        assert charged == SHINGLE_PIECE_BYTES

    def test_length_mismatch_rejected(self):
        with pytest.raises(SyncError, match="equal-length"):
            shingle_diff_spans(b"ab", b"abc", ReconcileConfig())

    def test_large_blocks_take_the_shingle_pass(self):
        big = 64 * 1024
        src, dst = _devices(num_blocks=4, block_size=big)
        data = bytearray(src.read_block(2))
        data[1000:1050] = b"\x11" * 50
        src.write_block(2, bytes(data))
        session = ReconcileSession(4, big)
        shipper, _ = _shipper(dst, session.report)
        report = session.run(src, dst, shipper)
        assert session.complete
        assert report.subblock_diffs == 1
        assert verify_consistency(src, dst) == []

    def test_small_blocks_skip_the_shingle_pass(self):
        src, dst = _devices(num_blocks=8)
        _dirty(src, [1])
        session = ReconcileSession(8, BS)
        shipper, _ = _shipper(dst, session.report)
        report = session.run(src, dst, shipper)
        assert report.subblock_diffs == 0


class TestReport:
    def test_snapshot_round_trips_the_ledger(self):
        src, dst = _devices(num_blocks=64)
        _dirty(src, [1, 40])
        session = ReconcileSession(64, BS)
        shipper, _ = _shipper(dst, session.report)
        report = session.run(src, dst, shipper)
        snap = report.snapshot()
        assert snap["wire_bytes"] == report.wire_bytes
        assert snap["wire_bytes"] == (
            snap["sketch_bytes"] + snap["digest_bytes"] + snap["diff_bytes"]
        )
        assert snap["records_shipped"] == 2
        assert snap["groups_verified"] == snap["groups_total"] == 1
