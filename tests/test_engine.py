"""Tests for the PRINS engine: strategies, records, primary/replica flow."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.block import MemoryBlockDevice
from repro.common.errors import ConfigurationError, ReplicationError
from repro.engine import (
    CompressedBlockStrategy,
    DirectLink,
    FullBlockStrategy,
    PrimaryEngine,
    PrinsStrategy,
    ReplicaEngine,
    ReplicationRecord,
    digest_sync,
    full_sync,
    make_strategy,
    verify_consistency,
)
from repro.engine.accounting import TrafficAccountant, ethernet_wire_bytes
from repro.engine.strategy import strategy_names
from repro.raid import Raid5Array

BS = 512
N = 32


def partial_change(data, start=100, span=40, fill=0x5A):
    buf = bytearray(data)
    buf[start : start + span] = bytes([fill]) * span
    return bytes(buf)


class TestStrategies:
    def test_factory_names(self):
        assert strategy_names() == ["traditional", "compressed", "prins"]
        for name in strategy_names():
            assert make_strategy(name).name == name

    def test_factory_unknown(self):
        with pytest.raises(ConfigurationError):
            make_strategy("rsync")

    def test_traditional_ships_full_block(self):
        strategy = FullBlockStrategy()
        frame = strategy.encode_update(b"n" * BS, b"o" * BS)
        assert frame is not None and len(frame) >= BS
        assert strategy.apply_update(frame, None) == b"n" * BS

    def test_compressed_roundtrip(self):
        strategy = CompressedBlockStrategy()
        data = b"abc" * 200
        frame = strategy.encode_update(data, b"")
        assert len(frame) < len(data)  # compressible content
        assert strategy.apply_update(frame, None) == data

    def test_prins_ships_small_delta(self):
        strategy = PrinsStrategy()
        old = bytes(BS)
        new = partial_change(old)
        frame = strategy.encode_update(new, old)
        assert len(frame) < BS / 4
        assert strategy.apply_update(frame, old) == new

    def test_prins_uses_raid_delta_when_given(self):
        strategy = PrinsStrategy()
        old = b"\x01" * BS
        new = b"\x03" * BS
        delta = bytes([0x02]) * BS
        frame = strategy.encode_update(new, b"IGNORED" * 73 + b"X", raid_delta=delta)
        assert strategy.apply_update(frame, old) == new

    def test_prins_skips_unchanged(self):
        strategy = PrinsStrategy(skip_unchanged=True)
        data = b"same" * 128
        assert strategy.encode_update(data, data) is None

    def test_prins_no_skip_option(self):
        strategy = PrinsStrategy(skip_unchanged=False)
        data = b"same" * 128
        assert strategy.encode_update(data, data) is not None

    def test_prins_apply_requires_old_data(self):
        strategy = PrinsStrategy()
        frame = strategy.encode_update(b"a" * BS, bytes(BS))
        with pytest.raises(ConfigurationError):
            strategy.apply_update(frame, None)

    @settings(max_examples=30, deadline=None)
    @given(old=st.binary(min_size=BS, max_size=BS), new=st.binary(min_size=BS, max_size=BS))
    def test_all_strategies_roundtrip_property(self, old, new):
        for name in strategy_names():
            strategy = make_strategy(name)
            frame = strategy.encode_update(new, old)
            if frame is None:  # prins skip of identical blocks
                assert old == new
                continue
            assert strategy.apply_update(frame, old) == new


class TestReplicationRecord:
    def test_pack_unpack(self):
        record = ReplicationRecord.for_block(7, b"block", b"frame-bytes")
        parsed = ReplicationRecord.unpack(record.pack())
        assert parsed == record

    def test_verify_accepts_matching_block(self):
        record = ReplicationRecord.for_block(1, b"data", b"f")
        record.verify(b"data")

    def test_verify_rejects_corruption(self):
        record = ReplicationRecord.for_block(1, b"data", b"f")
        with pytest.raises(ReplicationError):
            record.verify(b"daTa")

    def test_truncated_rejected(self):
        with pytest.raises(ReplicationError):
            ReplicationRecord.unpack(b"\x00\x01")


class TestReplicaEngine:
    def _pair(self, name="prins"):
        strategy = make_strategy(name)
        device = MemoryBlockDevice(BS, N)
        return ReplicaEngine(device, strategy), strategy, device

    def test_applies_and_acks(self):
        replica, strategy, device = self._pair("traditional")
        frame = strategy.encode_update(b"w" * BS, bytes(BS))
        record = ReplicationRecord.for_block(1, b"w" * BS, frame)
        ack = replica.receive(4, record.pack())
        seq, status = ReplicaEngine.parse_ack(ack)
        assert (seq, status) == (1, 0)
        assert device.read_block(4) == b"w" * BS

    def test_duplicate_delivery_is_idempotent(self):
        """Re-XORing a parity delta would corrupt; dedupe must prevent it."""
        replica, strategy, device = self._pair("prins")
        old = bytes(BS)
        new = partial_change(old)
        frame = strategy.encode_update(new, old)
        record = ReplicationRecord.for_block(1, new, frame).pack()
        replica.receive(0, record)
        ack = replica.receive(0, record)  # redelivery
        _, status = ReplicaEngine.parse_ack(ack)
        assert status == 1  # duplicate
        assert device.read_block(0) == new
        assert replica.records_duplicate == 1

    def test_crc_mismatch_detected(self):
        replica, strategy, _ = self._pair("prins")
        old = bytes(BS)
        frame = strategy.encode_update(partial_change(old), old)
        bad = ReplicationRecord(seq=1, block_crc=0xDEAD, frame=frame)
        with pytest.raises(ReplicationError):
            replica.receive(0, bad.pack())


class TestPrimaryEngine:
    def test_every_strategy_keeps_replica_identical(self, engine_stack, rng):
        for name in strategy_names():
            engine, primary, replica_dev, _ = engine_stack(name)
            for _ in range(100):
                lba = int(rng.integers(0, N))
                old = engine.read_block(lba)
                engine.write_block(lba, partial_change(old, fill=int(rng.integers(1, 255))))
            assert verify_consistency(primary, replica_dev) == []

    def test_prins_traffic_much_smaller(self, engine_stack, rng):
        totals = {}
        for name in strategy_names():
            engine, *_ = engine_stack(name)
            write_rng = __import__("numpy").random.default_rng(5)
            for _ in range(50):
                lba = int(write_rng.integers(0, N))
                old = engine.read_block(lba)
                engine.write_block(lba, partial_change(old, fill=int(write_rng.integers(1, 255))))
            totals[name] = engine.accountant.payload_bytes
        assert totals["prins"] * 4 < totals["traditional"]

    def test_multiple_replicas_all_consistent(self):
        strategy = make_strategy("prins")
        primary = MemoryBlockDevice(BS, N)
        replicas = [MemoryBlockDevice(BS, N) for _ in range(3)]
        links = [DirectLink(ReplicaEngine(r, strategy)) for r in replicas]
        engine = PrimaryEngine(primary, strategy, links)
        for lba in range(N):
            engine.write_block(lba, bytes([lba + 1]) * BS)
        for replica in replicas:
            assert verify_consistency(primary, replica) == []

    def test_traffic_scales_with_replica_count(self):
        strategy = make_strategy("traditional")
        primary = MemoryBlockDevice(BS, N)
        links = [
            DirectLink(ReplicaEngine(MemoryBlockDevice(BS, N), strategy))
            for _ in range(3)
        ]
        engine = PrimaryEngine(primary, strategy, links)
        engine.write_block(0, b"x" * BS)
        assert engine.accountant.writes_replicated == 3

    def test_raid_backed_primary_replicates_correctly(self):
        strategy = make_strategy("prins")
        array = Raid5Array([MemoryBlockDevice(BS, 16) for _ in range(4)])
        replica_dev = MemoryBlockDevice(BS, array.num_blocks)
        engine = PrimaryEngine(
            array, strategy, [DirectLink(ReplicaEngine(replica_dev, strategy))]
        )
        for lba in range(array.num_blocks):
            engine.write_block(lba, bytes([lba + 1]) * BS)
        assert verify_consistency(array, replica_dev) == []
        assert array.scrub() == []

    def test_skipped_writes_counted(self, engine_stack):
        engine, *_ = engine_stack("prins")
        engine.write_block(0, bytes(BS))  # identical to initial zeros
        assert engine.accountant.writes_skipped == 1
        assert engine.accountant.payload_bytes == 0

    def test_reads_pass_through(self, engine_stack):
        engine, primary, _, _ = engine_stack("traditional")
        primary.write_block(9, b"r" * BS)
        assert engine.read_block(9) == b"r" * BS


class TestSync:
    def test_full_sync_copies_everything(self):
        src = MemoryBlockDevice(BS, 8)
        dst = MemoryBlockDevice(BS, 8)
        for lba in range(8):
            src.write_block(lba, bytes([lba + 1]) * BS)
        report = full_sync(src, dst)
        assert report.blocks_copied == 8
        assert verify_consistency(src, dst) == []

    def test_digest_sync_copies_only_differences(self):
        src = MemoryBlockDevice(BS, 8)
        dst = MemoryBlockDevice(BS, 8)
        for lba in range(8):
            data = bytes([lba + 1]) * BS
            src.write_block(lba, data)
            dst.write_block(lba, data)
        src.write_block(3, b"diff" * 128)
        report = digest_sync(src, dst)
        assert report.blocks_copied == 1
        assert report.bytes_copied == BS
        assert report.digest_bytes == 8 * 8
        assert verify_consistency(src, dst) == []

    def test_geometry_mismatch(self):
        from repro.common.errors import SyncError

        with pytest.raises(SyncError):
            full_sync(MemoryBlockDevice(BS, 8), MemoryBlockDevice(BS, 9))


class TestAccounting:
    def test_counters(self):
        accountant = TrafficAccountant()
        accountant.record_write(8192, 400)
        accountant.record_write(8192, None)
        assert accountant.writes_total == 2
        assert accountant.writes_replicated == 1
        assert accountant.writes_skipped == 1
        assert accountant.payload_bytes == 400
        assert accountant.pdu_bytes == 448
        assert accountant.mean_payload == 400
        assert accountant.reduction_vs_data == pytest.approx(16384 / 400)

    def test_ethernet_model_continuous(self):
        # the paper's formula: Sd + Sd/1.5 * 0.112 (KB)
        assert ethernet_wire_bytes(1500) == pytest.approx(1500 + 112)
        assert ethernet_wire_bytes(3000) == pytest.approx(3000 + 224)

    def test_ethernet_model_exact_packets(self):
        assert ethernet_wire_bytes(1, exact_packets=True) == 1 + 112
        assert ethernet_wire_bytes(1501, exact_packets=True) == 1501 + 2 * 112

    def test_ethernet_zero(self):
        assert ethernet_wire_bytes(0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ethernet_wire_bytes(-1)

    def test_reset(self):
        accountant = TrafficAccountant()
        accountant.record_write(100, 50)
        accountant.reset()
        assert accountant.writes_total == 0
        assert accountant.per_write_payloads == []
