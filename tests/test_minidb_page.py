"""Tests for slotted pages."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import StorageError
from repro.minidb.page import PageFullError, SlottedPage

SIZE = 512


class TestSlottedPageBasics:
    def test_fresh_page_empty(self):
        page = SlottedPage(SIZE)
        assert page.slot_count == 0
        assert page.live_slots() == []

    def test_insert_read(self):
        page = SlottedPage(SIZE)
        slot = page.insert(b"hello")
        assert page.read(slot) == b"hello"

    def test_multiple_records(self):
        page = SlottedPage(SIZE)
        slots = [page.insert(bytes([i]) * (i + 1)) for i in range(10)]
        for i, slot in enumerate(slots):
            assert page.read(slot) == bytes([i]) * (i + 1)

    def test_serialization_roundtrip(self):
        page = SlottedPage(SIZE)
        page.insert(b"aaa")
        page.insert(b"bbbb")
        reloaded = SlottedPage(SIZE, page.to_bytes())
        assert reloaded.read(0) == b"aaa"
        assert reloaded.read(1) == b"bbbb"

    def test_bad_magic_rejected(self):
        with pytest.raises(StorageError):
            SlottedPage(SIZE, bytes(SIZE))

    def test_page_full(self):
        page = SlottedPage(64)
        page.insert(b"x" * 40)
        with pytest.raises(PageFullError):
            page.insert(b"y" * 40)

    def test_free_space_decreases(self):
        page = SlottedPage(SIZE)
        before = page.free_space
        page.insert(b"z" * 50)
        assert page.free_space == before - 50 - 4  # record + slot entry


class TestUpdateDelete:
    def test_update_in_place_same_size(self):
        page = SlottedPage(SIZE)
        slot = page.insert(b"aaaa")
        assert page.update(slot, b"bbbb")
        assert page.read(slot) == b"bbbb"

    def test_update_smaller_shrinks(self):
        page = SlottedPage(SIZE)
        slot = page.insert(b"aaaaaaaa")
        assert page.update(slot, b"cc")
        assert page.read(slot) == b"cc"

    def test_update_larger_refused(self):
        page = SlottedPage(SIZE)
        slot = page.insert(b"aa")
        assert not page.update(slot, b"ccc")
        assert page.read(slot) == b"aa"  # unchanged

    def test_update_only_touches_record_bytes(self):
        """The PRINS-critical property: in-place update = local change."""
        page = SlottedPage(SIZE)
        slots = [page.insert(bytes([i + 1]) * 20) for i in range(5)]
        before = page.to_bytes()
        page.update(slots[2], b"\xff" * 20)
        after = page.to_bytes()
        diff = [i for i, (a, b) in enumerate(zip(before, after)) if a != b]
        assert len(diff) == 20  # exactly the record bytes changed
        assert max(diff) - min(diff) == 19  # and they are contiguous

    def test_delete_then_read_fails(self):
        page = SlottedPage(SIZE)
        slot = page.insert(b"dead")
        page.delete(slot)
        with pytest.raises(StorageError):
            page.read(slot)
        assert not page.is_live(slot)

    def test_double_delete_rejected(self):
        page = SlottedPage(SIZE)
        slot = page.insert(b"x")
        page.delete(slot)
        with pytest.raises(StorageError):
            page.delete(slot)

    def test_deleted_slot_reused(self):
        page = SlottedPage(SIZE)
        a = page.insert(b"one")
        page.insert(b"two")
        page.delete(a)
        c = page.insert(b"three")
        assert c == a  # slot entry recycled

    def test_compact_reclaims_space(self):
        page = SlottedPage(256)
        slots = [page.insert(b"f" * 40) for _ in range(5)]
        for slot in slots[:4]:
            page.delete(slot)
        free_before = page.free_space
        page.compact()
        assert page.free_space > free_before
        assert page.read(slots[4]) == b"f" * 40

    def test_slot_out_of_range(self):
        page = SlottedPage(SIZE)
        with pytest.raises(StorageError):
            page.read(0)


class TestPageProperty:
    @settings(max_examples=30, deadline=None)
    @given(
        records=st.lists(st.binary(min_size=1, max_size=30), min_size=1, max_size=12)
    )
    def test_model_based_insert_delete(self, records):
        """Page behaves like a dict under interleaved insert/delete."""
        page = SlottedPage(1024)
        model = {}
        for i, record in enumerate(records):
            slot = page.insert(record)
            model[slot] = record
            if i % 3 == 2:  # periodically delete one
                victim = sorted(model)[0]
                page.delete(victim)
                del model[victim]
        for slot, record in model.items():
            assert page.read(slot) == record
        assert sorted(page.live_slots()) == sorted(model)
        # survives serialization
        reloaded = SlottedPage(1024, page.to_bytes())
        for slot, record in model.items():
            assert reloaded.read(slot) == record
