"""Tests for the CDP/TRAP parity log and point-in-time recovery."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.block import MemoryBlockDevice
from repro.cdp import ParityLog, RecoveryPoint, recover_block, recover_image
from repro.cdp.parity_log import CdpDevice
from repro.common.errors import RecoveryError
from repro.common.rng import make_rng

BS = 256


def history_for_block(rng, versions=6):
    """A chain of versions of one block."""
    blocks = [bytes(BS)]
    for _ in range(versions):
        buf = bytearray(blocks[-1])
        start = int(rng.integers(0, BS - 20))
        buf[start : start + 20] = rng.integers(0, 256, 20, dtype="u1").tobytes()
        blocks.append(bytes(buf))
    return blocks


class TestParityLog:
    def test_log_and_chain(self, rng):
        log = ParityLog()
        versions = history_for_block(rng)
        for t, (old, new) in enumerate(itertools.pairwise(versions)):
            log.log_write(0, new, old, timestamp=float(t))
        assert log.entry_count == len(versions) - 1
        assert log.lbas() == [0]
        assert len(log.chain(0)) == len(versions) - 1

    def test_timestamps_must_be_monotonic_per_block(self, rng):
        log = ParityLog()
        log.log_write(0, b"a" * BS, bytes(BS), timestamp=5.0)
        with pytest.raises(RecoveryError):
            log.log_write(0, b"b" * BS, b"a" * BS, timestamp=4.0)

    def test_stored_bytes_far_below_full_block_journal(self, rng):
        """The TRAP claim: parity logging is much smaller than block CDP."""
        log = ParityLog()
        versions = history_for_block(rng, versions=20)
        for t, (old, new) in enumerate(itertools.pairwise(versions)):
            log.log_write(0, new, old, timestamp=float(t))
        full_journal = 20 * BS
        assert log.stored_bytes < full_journal / 3

    def test_truncate(self, rng):
        log = ParityLog()
        versions = history_for_block(rng)
        for t, (old, new) in enumerate(itertools.pairwise(versions)):
            log.log_write(0, new, old, timestamp=float(t))
        dropped = log.truncate_before(2.0)
        assert dropped == 3  # timestamps 0, 1, 2
        assert all(entry.timestamp > 2.0 for entry in log.chain(0))
        log.truncate_before(100.0)
        assert log.lbas() == []


class TestRecoverBlock:
    def _logged_history(self, rng):
        log = ParityLog()
        versions = history_for_block(rng, versions=8)
        for t, (old, new) in enumerate(itertools.pairwise(versions)):
            log.log_write(0, new, old, timestamp=float(t))
        return log, versions

    def test_forward_recovery_every_version(self, rng):
        log, versions = self._logged_history(rng)
        for t in range(len(versions) - 1):
            point = RecoveryPoint(float(t))
            recovered = recover_block(log, 0, point, baseline=versions[0])
            assert recovered == versions[t + 1]

    def test_backward_recovery_every_version(self, rng):
        log, versions = self._logged_history(rng)
        current = versions[-1]
        for t in range(len(versions) - 1):
            point = RecoveryPoint(float(t))
            recovered = recover_block(log, 0, point, current=current)
            assert recovered == versions[t + 1]

    def test_forward_and_backward_cross_check(self, rng):
        log, versions = self._logged_history(rng)
        recovered = recover_block(
            log, 0, RecoveryPoint(3.0), baseline=versions[0], current=versions[-1]
        )
        assert recovered == versions[4]

    def test_corrupt_baseline_detected_by_cross_check(self, rng):
        log, versions = self._logged_history(rng)
        bad_baseline = b"\xff" * BS
        with pytest.raises(RecoveryError, match="disagree"):
            recover_block(
                log, 0, RecoveryPoint(3.0), baseline=bad_baseline,
                current=versions[-1],
            )

    def test_needs_some_reference(self, rng):
        log, _ = self._logged_history(rng)
        with pytest.raises(RecoveryError):
            recover_block(log, 0, RecoveryPoint(1.0))

    def test_point_before_history_returns_baseline(self, rng):
        log, versions = self._logged_history(rng)
        recovered = recover_block(
            log, 0, RecoveryPoint(0.0), baseline=versions[0]
        )
        # timestamp 0.0 includes the first write (t=0)
        assert recovered == versions[1]

    def test_negative_timestamp_rejected(self):
        with pytest.raises(RecoveryError):
            RecoveryPoint(-1.0)


class TestCdpDevice:
    def test_device_logs_every_write(self):
        log = ParityLog()
        clock = itertools.count()
        device = CdpDevice(MemoryBlockDevice(BS, 8), log, clock=lambda: next(clock))
        device.write_block(3, b"a" * BS)
        device.write_block(3, b"b" * BS)
        device.write_block(5, b"c" * BS)
        assert log.entry_count == 3
        assert log.lbas() == [3, 5]

    def test_recover_image_round_trip(self, rng):
        log = ParityLog()
        tick = itertools.count()
        inner = MemoryBlockDevice(BS, 8)
        device = CdpDevice(inner, log, clock=lambda: next(tick))
        baseline = MemoryBlockDevice(BS, 8)
        images = []
        write_rng = make_rng(9, "cdp")
        for _ in range(12):
            lba = int(write_rng.integers(0, 8))
            data = write_rng.integers(0, 256, BS, dtype="u1").tobytes()
            device.write_block(lba, data)
            images.append(inner.snapshot())
        # recover to each historical instant and compare whole images
        for t, image in enumerate(images):
            recovered = recover_image(
                log, RecoveryPoint(float(t)), baseline=baseline
            )
            assert recovered.snapshot() == image

    def test_recover_image_backward_from_current(self, rng):
        log = ParityLog()
        tick = itertools.count()
        inner = MemoryBlockDevice(BS, 4)
        device = CdpDevice(inner, log, clock=lambda: next(tick))
        device.write_block(0, b"v1" * 128)
        mid_image = inner.snapshot()
        device.write_block(0, b"v2" * 128)
        recovered = recover_image(log, RecoveryPoint(0.0), current=inner)
        assert recovered.snapshot() == mid_image

    def test_recover_image_needs_reference(self):
        with pytest.raises(RecoveryError):
            recover_image(ParityLog(), RecoveryPoint(0.0))


class TestCdpProperty:
    @settings(max_examples=20, deadline=None)
    @given(
        writes=st.lists(
            st.tuples(st.integers(0, 3), st.binary(min_size=32, max_size=32)),
            min_size=1,
            max_size=15,
        ),
        target=st.integers(0, 14),
    )
    def test_any_point_recoverable_both_directions(self, writes, target):
        target = min(target, len(writes) - 1)
        log = ParityLog()
        device = MemoryBlockDevice(32, 4)
        baseline = MemoryBlockDevice(32, 4)
        images = []
        for t, (lba, data) in enumerate(writes):
            old = device.read_block(lba)
            device.write_block(lba, data)
            log.log_write(lba, data, old, timestamp=float(t))
            images.append(device.snapshot())
        forward = recover_image(log, RecoveryPoint(float(target)), baseline=baseline)
        backward = recover_image(log, RecoveryPoint(float(target)), current=device)
        assert forward.snapshot() == images[target]
        assert backward.snapshot() == images[target]
