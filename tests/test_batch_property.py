"""Property: batched application is indistinguishable from sequential.

The correctness claim behind merge-elision is algebraic: XOR-composed
same-LBA parity deltas (``P'₁ ⊕ P'₂ ⊕ …``) applied as ONE update must
leave the replica byte-identical to applying each delta sequentially
(paper Eqs. 1–2 compose because XOR is associative).  Hypothesis drives
random write schedules over a deliberately tiny LBA space (so same-LBA
merging actually happens), through every registered codec and all three
strategies, and asserts the batched and unbatched replica images match
exactly.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.block import MemoryBlockDevice
from repro.engine import (
    BatchConfig,
    DirectLink,
    PrimaryEngine,
    PrinsStrategy,
    ReplicaEngine,
    make_strategy,
    verify_consistency,
)
from repro.parity.codecs import available_codecs

BS = 128
N = 4  # tiny LBA space: collisions (and therefore merges) are the norm

#: every registered codec name, resolved at import time
CODEC_NAMES = [codec.name for codec in available_codecs()]

write_lists = st.lists(
    st.tuples(st.integers(0, N - 1), st.binary(min_size=BS, max_size=BS)),
    max_size=40,
)


def _run(writes, strategy_factory, batch):
    primary = MemoryBlockDevice(BS, N)
    replica_dev = MemoryBlockDevice(BS, N)
    strategy = strategy_factory()
    engine = PrimaryEngine(
        primary,
        strategy,
        [DirectLink(ReplicaEngine(replica_dev, strategy))],
        batch=batch,
    )
    for lba, data in writes:
        engine.write_block(lba, data)
    engine.flush_batch()
    assert verify_consistency(primary, replica_dev) == []
    return replica_dev.snapshot()


@settings(max_examples=25, deadline=None)
@given(
    writes=write_lists,
    codec=st.sampled_from(CODEC_NAMES),
    window=st.integers(2, 16),
)
def test_batched_prins_equals_sequential_for_every_codec(writes, codec, window):
    """XOR-composed batches must reproduce sequential application exactly."""
    make = lambda: PrinsStrategy(codec=codec)  # noqa: E731
    sequential = _run(writes, make, batch=None)
    batched = _run(writes, make, batch=BatchConfig(max_records=window))
    assert sequential == batched


@settings(max_examples=25, deadline=None)
@given(
    writes=write_lists,
    name=st.sampled_from(["traditional", "compressed", "prins"]),
)
def test_batched_strategies_equal_sequential(writes, name):
    """Last-writer-wins merging must match sequential for baselines too."""
    make = lambda: make_strategy(name)  # noqa: E731
    sequential = _run(writes, make, batch=None)
    batched = _run(writes, make, batch=BatchConfig(max_records=4))
    assert sequential == batched


@settings(max_examples=25, deadline=None)
@given(writes=write_lists, window=st.integers(2, 8))
def test_byte_budget_windows_equal_sequential(writes, window):
    """Byte-budget flush boundaries must not change the final image."""
    make = lambda: PrinsStrategy()  # noqa: E731
    sequential = _run(writes, make, batch=None)
    batched = _run(
        writes,
        make,
        batch=BatchConfig(max_records=64, max_bytes=window * BS),
    )
    assert sequential == batched
