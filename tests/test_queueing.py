"""Tests for the queueing models: params, MVA, M/M/1, network model."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing import (
    MM1Metrics,
    ReplicationNetworkModel,
    StrategyTraffic,
    T1,
    T3,
    mm1_metrics,
    router_service_time,
    solve_mva,
    transmission_delay,
)
from repro.queueing.mva import response_time_curve
from repro.queueing.params import (
    LineRate,
    nodal_processing_delay,
    packet_count,
    propagation_delay,
)


class TestParams:
    def test_paper_line_rates(self):
        # Sec. 3.3: T1 = 154.4 KB/s, T3 = 4473.6 KB/s (10 bits per byte)
        assert T1.bytes_per_second == pytest.approx(154_400)
        assert T3.bytes_per_second == pytest.approx(4_473_600)

    def test_transmission_delay_formula(self):
        # Dtrans = (Sd + Sd/1.5 * 0.112) / Net_BW, with Sd = 8 KB on T1
        sd = 8192
        expected = (sd + sd / 1500 * 112) / 154_400
        assert transmission_delay(sd, T1) == pytest.approx(expected)

    def test_t3_faster_than_t1(self):
        assert transmission_delay(8192, T3) < transmission_delay(8192, T1)

    def test_propagation_is_1ms(self):
        # 200 km / 2e8 m/s = 1 ms (Sec. 3.3)
        assert propagation_delay() == pytest.approx(1e-3)

    def test_processing_delay_per_packet(self):
        assert nodal_processing_delay(1500) == pytest.approx(5e-6)
        assert nodal_processing_delay(15000) == pytest.approx(50e-6)
        assert nodal_processing_delay(10) == pytest.approx(5e-6)  # min 1 packet

    def test_router_service_time_eq4(self):
        sd = 8192
        expected = (
            transmission_delay(sd, T1)
            + nodal_processing_delay(sd)
            + propagation_delay()
        )
        assert router_service_time(sd, T1) == pytest.approx(expected)

    def test_packet_count_continuous(self):
        assert packet_count(3000) == pytest.approx(2.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            transmission_delay(-1, T1)
        with pytest.raises(ValueError):
            LineRate("bad", 0)


class TestMva:
    def test_population_one_no_queueing(self):
        """With one customer there is never queueing: R = sum of service."""
        result = solve_mva([0.05, 0.05], think_time=0.1, population=1)
        assert result.response_time == pytest.approx(0.1)
        assert result.throughput == pytest.approx(1 / 0.2)

    def test_asymptotic_throughput_bounded_by_bottleneck(self):
        service = [0.04, 0.08]
        result = solve_mva(service, think_time=0.1, population=500)
        assert result.throughput <= 1 / 0.08 + 1e-9
        assert result.throughput == pytest.approx(1 / 0.08, rel=0.01)

    def test_response_time_monotone_in_population(self):
        service = [0.05, 0.05]
        curve = response_time_curve(service, 0.1, list(range(1, 60, 5)))
        assert all(a <= b + 1e-12 for a, b in zip(curve, curve[1:]))

    def test_high_population_asymptote(self):
        """R(n) -> n/X_max - Z for large n (the standard closed-network law)."""
        service = [0.05, 0.05]
        n = 400
        result = solve_mva(service, 0.1, n)
        assert result.response_time == pytest.approx(n * 0.05 - 0.1, rel=0.02)

    def test_zero_population(self):
        result = solve_mva([0.05], 0.1, 0)
        assert result.response_time == 0.0
        assert result.throughput == 0.0

    def test_queue_lengths_sum_to_population_minus_thinkers(self):
        result = solve_mva([0.05, 0.05], 0.1, 30)
        thinkers = result.throughput * 0.1  # Little's law at the delay center
        assert sum(result.queue_lengths) + thinkers == pytest.approx(30, rel=1e-6)

    def test_no_centers(self):
        result = solve_mva([], 0.1, 10)
        assert result.response_time == 0.0
        assert result.throughput == pytest.approx(100.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            solve_mva([0.05], 0.1, -1)
        with pytest.raises(ValueError):
            solve_mva([-0.05], 0.1, 1)
        with pytest.raises(ValueError):
            solve_mva([0.05], -0.1, 1)

    @settings(max_examples=25, deadline=None)
    @given(
        service=st.lists(st.floats(0.001, 0.2), min_size=1, max_size=4),
        population=st.integers(1, 80),
    )
    def test_littles_law_property(self, service, population):
        """X * (Z + R) == N exactly, for any configuration."""
        result = solve_mva(service, 0.1, population)
        assert result.throughput * result.cycle_time == pytest.approx(population)


class TestMM1:
    def test_stable_queue_metrics(self):
        metrics = mm1_metrics(arrival_rate=5, service_time=0.1)
        assert metrics.utilization == pytest.approx(0.5)
        assert metrics.response_time == pytest.approx(0.2)
        assert metrics.queueing_time == pytest.approx(0.1)
        assert metrics.mean_queue_length == pytest.approx(1.0)

    def test_saturation_gives_inf(self):
        metrics = mm1_metrics(arrival_rate=11, service_time=0.1)
        assert not metrics.stable
        assert math.isinf(metrics.queueing_time)
        assert math.isinf(metrics.response_time)

    def test_saturation_rate(self):
        assert mm1_metrics(1, 0.05).saturation_rate == pytest.approx(20)

    def test_validation(self):
        with pytest.raises(ValueError):
            mm1_metrics(-1, 0.1)
        with pytest.raises(ValueError):
            mm1_metrics(1, 0)

    def test_queueing_time_grows_toward_saturation(self):
        times = [mm1_metrics(rate, 0.05).queueing_time for rate in (5, 10, 15, 19)]
        assert times == sorted(times)


class TestReplicationNetworkModel:
    def _models(self, line=T1):
        return {
            name: ReplicationNetworkModel(StrategyTraffic(name, payload), line)
            for name, payload in [
                ("traditional", 8192),
                ("compressed", 2730),
                ("prins", 400),
            ]
        }

    def test_fig8_ordering_holds_at_every_population(self):
        models = self._models(T1)
        for population in (1, 20, 50, 100):
            traditional = models["traditional"].response_time(population)
            compressed = models["compressed"].response_time(population)
            prins = models["prins"].response_time(population)
            assert prins < compressed < traditional

    def test_prins_stays_flat_traditional_blows_up(self):
        models = self._models(T1)
        prins_curve = models["prins"].response_time_curve([1, 100])
        traditional_curve = models["traditional"].response_time_curve([1, 100])
        assert prins_curve[1] / prins_curve[0] < 50
        assert traditional_curve[1] > 4.0  # paper fig8: ~6 s at pop 100

    def test_fig9_t3_much_faster(self):
        t1 = self._models(T1)["traditional"].response_time(100)
        t3 = self._models(T3)["traditional"].response_time(100)
        assert t3 < t1 / 5

    def test_fig10_saturation_ordering(self):
        models = self._models(T1)
        assert (
            models["traditional"].saturation_write_rate
            < models["compressed"].saturation_write_rate
            < models["prins"].saturation_write_rate
        )

    def test_paper_think_time_default(self):
        model = self._models()["prins"]
        assert model.think_time == pytest.approx(0.1)
        assert model.routers == 2

    def test_queueing_time_curve_saturates(self):
        model = self._models(T1)["traditional"]
        curve = model.queueing_time_curve([1.0, 30.0])
        assert math.isinf(curve[1])  # traditional saturates T1 below 30/s

    def test_validation(self):
        with pytest.raises(ValueError):
            ReplicationNetworkModel(StrategyTraffic("x", 100), T1, routers=0)
        with pytest.raises(ValueError):
            StrategyTraffic("x", -1)
