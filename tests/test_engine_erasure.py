"""Tests for the erasure-coded pool (PRINS deltas as parity updates)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError, StorageError
from repro.common.rng import make_rng
from repro.engine.erasure import ErasureConfig, ErasurePool

BS = 256
BLOCKS = 16


def small_pool(**overrides):
    defaults = dict(data_nodes=3, block_size=BS, blocks_per_node=BLOCKS)
    defaults.update(overrides)
    return ErasurePool(ErasureConfig(**defaults))


class TestConfig:
    def test_storage_overhead(self):
        assert ErasureConfig(data_nodes=4).storage_overhead == 0.25
        assert ErasureConfig(data_nodes=4).total_nodes == 5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ErasureConfig(data_nodes=1)


class TestPlacement:
    def test_rotating_parity_covers_all_nodes(self):
        pool = small_pool(rotate_parity=True)
        placements = {pool.parity_node(lba) for lba in range(BLOCKS)}
        assert placements == set(range(4))

    def test_fixed_parity(self):
        pool = small_pool(rotate_parity=False)
        assert all(pool.parity_node(lba) == 3 for lba in range(BLOCKS))

    def test_data_nodes_skip_parity(self):
        pool = small_pool()
        for lba in range(BLOCKS):
            parity = pool.parity_node(lba)
            physicals = [pool.physical_node(d, lba) for d in range(3)]
            assert parity not in physicals
            assert sorted(physicals + [parity]) == [0, 1, 2, 3]

    def test_bad_data_node(self):
        with pytest.raises(ConfigurationError):
            small_pool().physical_node(5, 0)


class TestDataPath:
    def test_write_read(self):
        pool = small_pool()
        pool.write(1, 3, b"e" * BS)
        assert pool.read(1, 3) == b"e" * BS

    def test_parity_consistent_after_writes(self, rng):
        pool = small_pool()
        for _ in range(60):
            pool.write(
                int(rng.integers(0, 3)),
                int(rng.integers(0, BLOCKS)),
                rng.integers(0, 256, BS, dtype="u1").tobytes(),
            )
        assert pool.verify_parity() == []

    def test_traffic_is_delta_sized(self):
        pool = small_pool()
        base = bytes(BS)
        pool.write(0, 0, base)  # all-zero write: delta skipped entirely
        assert pool.accountant.writes_skipped == 1
        block = bytearray(BS)
        block[10:20] = b"\x55" * 10
        pool.write(0, 0, bytes(block))
        assert pool.accountant.payload_bytes < BS / 4  # tiny encoded delta

    def test_unchanged_write_ships_nothing(self):
        pool = small_pool()
        pool.write(2, 5, b"q" * BS)
        shipped = pool.accountant.payload_bytes
        pool.write(2, 5, b"q" * BS)  # identical rewrite
        assert pool.accountant.payload_bytes == shipped


class TestFailureRecovery:
    def _loaded_pool(self, rng):
        pool = small_pool()
        contents = {}
        for node in range(3):
            for lba in range(BLOCKS):
                data = rng.integers(0, 256, BS, dtype="u1").tobytes()
                pool.write(node, lba, data)
                contents[(node, lba)] = data
        return pool, contents

    def test_any_data_node_recoverable(self, rng):
        pool, contents = self._loaded_pool(rng)
        victim_physical = pool.physical_node(1, 0)
        pool.fail_node(victim_physical)
        # every logical block still readable (reconstructed where needed)
        for (node, lba), data in contents.items():
            assert pool.read(node, lba) == data

    def test_parity_node_loss_harmless_for_reads(self, rng):
        pool, contents = self._loaded_pool(rng)
        pool.fail_node(pool.parity_node(0))
        # stripe 0's data nodes are unaffected
        for node in range(3):
            assert pool.read(node, 0) == contents[(node, 0)]

    def test_rebuild_restores_redundancy(self, rng):
        pool, contents = self._loaded_pool(rng)
        pool.fail_node(2)
        pool.rebuild_node(2)
        assert pool.verify_parity() == []
        for (node, lba), data in contents.items():
            assert pool.read(node, lba) == data

    def test_second_failure_rejected(self, rng):
        pool, _ = self._loaded_pool(rng)
        pool.fail_node(0)
        with pytest.raises(StorageError):
            pool.fail_node(1)

    def test_rebuild_unfailed_rejected(self):
        pool = small_pool()
        with pytest.raises(ConfigurationError):
            pool.rebuild_node(0)

    def test_writes_continue_while_degraded(self, rng):
        pool, contents = self._loaded_pool(rng)
        pool.fail_node(pool.parity_node(7))  # lose parity of stripe 7
        pool.write(0, 7, b"w" * BS)  # still writable
        assert pool.read(0, 7) == b"w" * BS
        rebuilt = pool.rebuild_node(pool.parity_node(7))
        assert rebuilt is not None
        assert pool.verify_parity() == []


class TestErasureVsReplication:
    def test_same_wire_cost_fraction_of_storage(self, rng):
        """The headline: identical delta traffic, 1/N storage overhead."""
        from repro.block import MemoryBlockDevice
        from repro.engine import (
            DirectLink,
            PrimaryEngine,
            ReplicaEngine,
            make_strategy,
        )

        writes = []
        write_rng = make_rng(21, "erasure-cmp")
        for _ in range(40):
            lba = int(write_rng.integers(0, BLOCKS))
            block = bytearray(BS)
            start = int(write_rng.integers(0, BS - 30))
            block[start : start + 30] = write_rng.integers(
                0, 256, 30, dtype="u1"
            ).tobytes()
            writes.append((lba, bytes(block)))

        pool = small_pool()
        for lba, data in writes:
            pool.write(0, lba, data)

        strategy = make_strategy("prins")
        primary = MemoryBlockDevice(BS, BLOCKS)
        replica = ReplicaEngine(MemoryBlockDevice(BS, BLOCKS), strategy)
        engine = PrimaryEngine(primary, strategy, [DirectLink(replica)])
        for lba, data in writes:
            engine.write_block(lba, data)

        # same deltas, same codec -> identical frame bytes; replication
        # additionally carries a 12-byte record header (seq + CRC) per write
        from repro.engine.messages import RECORD_OVERHEAD

        replication_frames = (
            engine.accountant.payload_bytes
            - RECORD_OVERHEAD * engine.accountant.writes_replicated
        )
        assert pool.accountant.payload_bytes == replication_frames


class TestErasureProperty:
    @settings(max_examples=20, deadline=None)
    @given(
        writes=st.lists(
            st.tuples(
                st.integers(0, 2),
                st.integers(0, 7),
                st.binary(min_size=64, max_size=64),
            ),
            max_size=30,
        ),
        victim=st.integers(0, 3),
    )
    def test_parity_invariant_and_recovery(self, writes, victim):
        pool = ErasurePool(
            ErasureConfig(data_nodes=3, block_size=64, blocks_per_node=8)
        )
        shadow = {}
        for node, lba, data in writes:
            pool.write(node, lba, data)
            shadow[(node, lba)] = data
        assert pool.verify_parity() == []
        pool.fail_node(victim)
        for (node, lba), data in shadow.items():
            assert pool.read(node, lba) == data
