"""Tests for the telemetry subsystem (:mod:`repro.obs`).

Covers registry semantics, log2-histogram bucketing, span nesting and
ring-buffer bounds, the null-telemetry fast path, exporter formats, the
Ethernet wire model edge cases, accountant/IoCounters integration, and
the instrumented engine write path end-to-end (including the CLI
``demo --json`` acceptance path).
"""

from __future__ import annotations

import json
import time

import pytest

from repro.block.memory import MemoryBlockDevice
from repro.block.stats import CountingDevice, IoCounters
from repro.engine.accounting import TrafficAccountant, ethernet_wire_bytes
from repro.engine.links import DirectLink
from repro.engine.primary import PrimaryEngine
from repro.engine.replica import ReplicaEngine
from repro.engine.resilience import ResilienceConfig
from repro.engine.strategy import make_strategy
from repro.obs import (
    NULL_SPAN,
    NULL_TELEMETRY,
    Histogram,
    MetricsRegistry,
    NullTelemetry,
    Telemetry,
    Tracer,
    get_telemetry,
    load_snapshot,
    render_metrics_report,
    render_trace_report,
    save_snapshot,
    to_json,
    to_prometheus,
    use_telemetry,
)

# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        c1 = registry.counter("a.b")
        c1.inc()
        c1.inc(4)
        assert registry.counter("a.b") is c1
        assert c1.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_set_and_inc(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(3.5)
        gauge.inc(-1.5)
        assert gauge.value == 2.0

    def test_gauge_fn_is_lazy(self):
        registry = MetricsRegistry()
        box = {"v": 1}
        registry.gauge_fn("lazy", lambda: box["v"])
        box["v"] = 42
        assert registry.snapshot()["gauges"]["lazy"] == 42.0

    def test_callback_gauge_rejects_set(self):
        registry = MetricsRegistry()
        gauge = registry.gauge_fn("cb", lambda: 0)
        with pytest.raises(ValueError):
            gauge.set(1.0)

    def test_name_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("")

    def test_unique_name(self):
        registry = MetricsRegistry()
        registry.counter("n")
        assert registry.unique_name("n") == "n#2"
        registry.counter("n#2")
        assert registry.unique_name("n") == "n#3"
        assert registry.unique_name("fresh") == "fresh"

    def test_adopt_histogram_shares_state(self):
        registry = MetricsRegistry()
        hist = Histogram("external")
        registry.adopt_histogram("ext", hist)
        hist.record(7)
        assert registry.snapshot()["histograms"]["ext"]["count"] == 1

    def test_reset_zeroes_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(9)
        registry.gauge("g").set(2)
        registry.histogram("h").record(5)
        registry.reset()
        snap = registry.snapshot()
        assert snap["counters"]["c"] == 0
        assert snap["gauges"]["g"] == 0.0
        assert snap["histograms"]["h"]["count"] == 0


# ---------------------------------------------------------------------------
# histogram bucketing
# ---------------------------------------------------------------------------


class TestHistogram:
    def test_log2_bucket_edges(self):
        hist = Histogram("h")
        for v in (0, 1, 2, 3, 4):
            hist.record(v)
        buckets = {b["le"]: b["count"] for b in hist.snapshot()["buckets"]}
        # 0 -> le 0; 1 -> le 1; 2,3 -> le 3; 4 -> le 7
        assert buckets == {0: 1, 1: 1, 3: 2, 7: 1}

    def test_stats_and_mean(self):
        hist = Histogram("h")
        for v in (10, 20, 30):
            hist.record(v)
        assert hist.count == 3
        assert hist.sum == 60
        assert hist.min == 10
        assert hist.max == 30
        assert hist.mean == pytest.approx(20.0)

    def test_overflow_bucket(self):
        hist = Histogram("h", max_exponent=4)  # values > 15 overflow
        hist.record(16)
        hist.record(1_000_000)
        snap = hist.snapshot()
        assert snap["buckets"] == [{"le": "inf", "count": 2}]
        # overflow quantile reports the largest recorded value
        assert hist.quantile(0.99) == 1_000_000

    def test_quantiles_within_bucket_resolution(self):
        hist = Histogram("h")
        for v in range(1, 101):
            hist.record(v)
        p50 = hist.quantile(0.50)
        assert 50 <= p50 <= 100  # covering-bucket upper bound, 2x resolution
        assert hist.quantile(0.0) >= 1
        assert hist.quantile(1.0) == 100

    def test_rejects_negative_and_floors_floats(self):
        hist = Histogram("h")
        with pytest.raises(ValueError):
            hist.record(-1)
        hist.record(3.9)
        assert hist.sum == 3

    def test_empty_snapshot(self):
        snap = Histogram("h").snapshot()
        assert snap["count"] == 0
        assert snap["buckets"] == []
        assert snap["p50"] == 0

    def test_memory_is_bounded(self):
        hist = Histogram("h")
        baseline = len(hist._counts)
        for v in range(10_000):
            hist.record(v)
        assert len(hist._counts) == baseline


# ---------------------------------------------------------------------------
# tracing
# ---------------------------------------------------------------------------


class TestTracer:
    def test_nesting_builds_one_trace(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("child") as child:
                with tracer.span("grandchild") as grandchild:
                    pass
        assert parent.parent_id is None
        assert child.parent_id == parent.span_id
        assert grandchild.parent_id == child.span_id
        assert parent.trace_id == child.trace_id == grandchild.trace_id
        assert parent.duration_ns >= child.duration_ns >= 0

    def test_sibling_roots_get_distinct_traces(self):
        tracer = Tracer()
        with tracer.span("a") as a:
            pass
        with tracer.span("b") as b:
            pass
        assert a.trace_id != b.trace_id

    def test_ring_buffer_is_bounded_but_summary_is_exact(self):
        tracer = Tracer(capacity=16)
        for _ in range(100):
            with tracer.span("op"):
                pass
        assert len(tracer.export_spans(max_spans=1000)) == 16
        assert tracer.summary()["op"]["count"] == 100
        assert tracer.spans_finished == 100

    def test_exception_sets_error_attr(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        (record,) = tracer.export_spans(10)
        assert record["attrs"]["error"] == "RuntimeError"

    def test_span_attrs_round_trip(self):
        tracer = Tracer()
        with tracer.span("s", lba=7) as span:
            span.set("bytes", 99)
        (record,) = tracer.export_spans(10)
        assert record["attrs"] == {"lba": 7, "bytes": 99}

    def test_reset_clears_buffer_and_summary(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        tracer.reset()
        assert tracer.export_spans(10) == []
        assert tracer.summary() == {}


# ---------------------------------------------------------------------------
# null telemetry (the disabled fast path)
# ---------------------------------------------------------------------------


class TestNullTelemetry:
    def test_span_is_shared_singleton(self):
        tel = NullTelemetry()
        assert tel.span("a", lba=1) is NULL_SPAN
        assert tel.span("b") is NULL_SPAN
        with tel.span("c") as span:
            span.set("k", "v")  # swallowed, no state

    def test_metrics_are_shared_singletons(self):
        tel = NullTelemetry()
        assert tel.counter("a") is tel.counter("b")
        assert tel.histogram("a") is tel.histogram("b")
        tel.counter("a").inc(10)
        assert tel.counter("a").value == 0

    def test_snapshot_shape(self):
        snap = NullTelemetry().snapshot()
        assert snap["enabled"] is False
        assert snap["traces"] == []
        assert snap["sources"] == {}

    def test_default_telemetry_is_null(self):
        assert get_telemetry() is NULL_TELEMETRY

    def test_null_span_overhead_is_negligible(self):
        tel = NULL_TELEMETRY
        n = 20_000
        start = time.perf_counter()
        for _ in range(n):
            with tel.span("write"):
                pass
        per_op = (time.perf_counter() - start) / n
        # generous: a no-op context manager should cost well under 5us
        assert per_op < 5e-6


class TestUseTelemetry:
    def test_scoped_install_and_restore(self):
        tel = Telemetry()
        assert get_telemetry() is NULL_TELEMETRY
        with use_telemetry(tel):
            assert get_telemetry() is tel
            nested = Telemetry()
            with use_telemetry(nested):
                assert get_telemetry() is nested
            assert get_telemetry() is tel
        assert get_telemetry() is NULL_TELEMETRY

    def test_register_source_unique_ifies(self):
        tel = Telemetry()
        assert tel.register_source("engine", dict) == "engine"
        assert tel.register_source("engine", dict) == "engine#2"
        assert tel.source_names == ["engine", "engine#2"]
        tel.unregister_source("engine#2")
        assert tel.source_names == ["engine"]


# ---------------------------------------------------------------------------
# exporters
# ---------------------------------------------------------------------------


def _sample_telemetry() -> Telemetry:
    tel = Telemetry()
    tel.counter("transport.bytes_sent").inc(1234)
    tel.gauge("queue.depth").set(3)
    hist = tel.histogram("payload_bytes")
    for v in (100, 200, 5000):
        hist.record(v)
    with tel.span("write", lba=1):
        with tel.span("write.encode"):
            pass
    tel.register_source("engine.prins", lambda: {"payload_bytes": 42})
    return tel


class TestExporters:
    def test_json_round_trip(self):
        snap = _sample_telemetry().snapshot()
        assert json.loads(to_json(snap)) == snap

    def test_save_and_load(self, tmp_path):
        snap = _sample_telemetry().snapshot()
        path = tmp_path / "snap.json"
        save_snapshot(snap, path)
        assert load_snapshot(path) == snap

    def test_prometheus_format(self):
        text = to_prometheus(_sample_telemetry().snapshot())
        assert "# TYPE prins_transport_bytes_sent_total counter" in text
        assert "prins_transport_bytes_sent_total 1234" in text
        assert "# TYPE prins_queue_depth gauge" in text
        assert "# TYPE prins_payload_bytes histogram" in text
        assert 'le="+Inf"' in text
        assert "prins_payload_bytes_count 3" in text
        # spans export as summaries with quantile labels
        assert 'quantile="0.5"' in text
        # source leaves flatten to gauges
        assert "engine_prins_payload_bytes 42" in text
        # every line is either a comment or name[ {labels}] value
        for line in text.splitlines():
            assert line.startswith("#") or len(line.rsplit(" ", 1)) == 2

    def test_metrics_report_sections(self):
        report = render_metrics_report(_sample_telemetry().snapshot())
        assert "transport.bytes_sent" in report
        assert "queue.depth" in report
        assert "payload_bytes" in report
        assert "write.encode" in report
        assert "engine.prins" in report

    def test_metrics_report_handles_disabled(self):
        report = render_metrics_report(NullTelemetry().snapshot())
        assert "disabled" in report.lower()

    def test_trace_report_renders_tree(self):
        tel = Telemetry()
        with tel.span("write", lba=9):
            with tel.span("write.send", link=0):
                with tel.span("replica.apply"):
                    pass
        report = render_trace_report(tel.snapshot())
        lines = report.splitlines()
        assert "write (lba=9)" in report
        assert "write.send (link=0)" in report
        assert "replica.apply" in report
        # children are indented under their parent
        write_line = next(ln for ln in lines if "write (" in ln)
        send_line = next(ln for ln in lines if "write.send" in ln)
        apply_line = next(ln for ln in lines if "replica.apply" in ln)

        def indent(s: str) -> int:
            return len(s) - len(s.lstrip())

        assert indent(write_line) < indent(send_line) < indent(apply_line)


# ---------------------------------------------------------------------------
# ethernet wire model edges (paper Sec. 3.3)
# ---------------------------------------------------------------------------


class TestEthernetWireBytes:
    def test_exact_packet_edges(self):
        assert ethernet_wire_bytes(1499, exact_packets=True) == 1499 + 112
        assert ethernet_wire_bytes(1500, exact_packets=True) == 1500 + 112
        assert ethernet_wire_bytes(1501, exact_packets=True) == 1501 + 2 * 112

    def test_continuous_model(self):
        for payload in (1499, 1500, 1501, 123_456):
            assert ethernet_wire_bytes(payload) == pytest.approx(
                payload * (1 + 112 / 1500)
            )

    def test_zero_is_zero(self):
        assert ethernet_wire_bytes(0) == 0.0
        assert ethernet_wire_bytes(0, exact_packets=True) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ethernet_wire_bytes(-1)

    def test_accountant_total_matches_linear_model(self):
        accountant = TrafficAccountant()
        for payload in (10, 1499, 1500, 1501, 9000):
            accountant.record_write(8192, payload)
        assert accountant.ethernet_bytes == pytest.approx(
            sum(
                ethernet_wire_bytes(p) for p in (10, 1499, 1500, 1501, 9000)
            )
        )


# ---------------------------------------------------------------------------
# accountant histogram + keep_raw, IoCounters cap
# ---------------------------------------------------------------------------


class TestAccountantBounds:
    def test_raw_sample_gated_by_keep_raw(self):
        bounded = TrafficAccountant()
        raw = TrafficAccountant(keep_raw=True)
        for acct in (bounded, raw):
            for payload in (100, 200, 300):
                acct.record_write(8192, payload)
        assert bounded.per_write_payloads == []
        assert raw.per_write_payloads == [100, 200, 300]
        # the bounded histogram is maintained either way
        assert bounded.payload_histogram.count == 3
        assert bounded.payload_histogram.sum == 600

    def test_snapshot_is_json_safe_and_complete(self):
        acct = TrafficAccountant()
        acct.record_write(8192, 500)
        acct.record_write(8192, None)  # skipped
        acct.record_retry(64)
        acct.record_resync(1024)
        snap = acct.snapshot()
        json.dumps(snap)  # must not raise
        assert snap["writes_total"] == 2
        assert snap["writes_skipped"] == 1
        assert snap["payload_bytes"] == 500
        assert snap["per_write_payload_bytes"]["count"] == 1
        assert snap["resilience"]["retries"] == 1
        assert snap["resilience"]["recovery_bytes"] == 64 + 1024

    def test_reduction_inf_encodes_as_negative_one(self):
        acct = TrafficAccountant()
        acct.record_write(8192, None)
        assert acct.snapshot()["reduction_vs_data"] == -1.0

    def test_reset_clears_histogram(self):
        acct = TrafficAccountant(keep_raw=True)
        acct.record_write(8192, 500)
        acct.reset()
        assert acct.payload_histogram.count == 0
        assert acct.per_write_payloads == []


class TestIoCountersCap:
    def test_uncapped_tracks_all(self):
        counters = IoCounters()
        for lba in range(100):
            counters.note_lba_written(lba)
        assert counters.unique_lbas == 100
        assert not counters.unique_lbas_overflowed

    def test_cap_bounds_cardinality(self):
        counters = IoCounters(max_unique_lbas=10)
        for lba in range(100):
            counters.note_lba_written(lba)
        assert counters.unique_lbas == 10
        assert counters.unique_lbas_overflowed
        counters.note_lba_written(5)  # already a member: no overflow churn
        assert counters.unique_lbas == 10

    def test_cap_validation(self):
        with pytest.raises(ValueError):
            IoCounters(max_unique_lbas=0)

    def test_reset_clears_overflow(self):
        counters = IoCounters(max_unique_lbas=1)
        counters.note_lba_written(1)
        counters.note_lba_written(2)
        assert counters.unique_lbas_overflowed
        counters.reset()
        assert not counters.unique_lbas_overflowed
        assert counters.unique_lbas == 0

    def test_counting_device_registers_source(self):
        tel = Telemetry()
        device = CountingDevice(
            MemoryBlockDevice(512, 8), max_unique_lbas=4, telemetry=tel, name="d0"
        )
        device.write_block(0, bytes(512))
        snap = tel.snapshot()
        assert snap["sources"]["io.d0"]["writes"] == 1
        assert snap["sources"]["io.d0"]["unique_lbas"] == 1


# ---------------------------------------------------------------------------
# engine integration: the instrumented write path
# ---------------------------------------------------------------------------


def _run_instrumented_engine(tel: Telemetry, strategy_name: str = "prins") -> None:
    block_size, blocks = 512, 16
    primary = MemoryBlockDevice(block_size, blocks)
    replica = MemoryBlockDevice(block_size, blocks)
    strategy = make_strategy(strategy_name)
    engine = PrimaryEngine(
        primary,
        strategy,
        [DirectLink(ReplicaEngine(replica, strategy))],
        resilience=ResilienceConfig(),
        telemetry=tel,
        telemetry_name=f"test.{strategy_name}",
    )
    payload = bytes(range(256)) * 2
    for lba in range(8):
        engine.write_block(lba, payload)
        engine.write_block(lba, payload[:-1] + b"\x00")  # one byte flipped


class TestEngineIntegration:
    def test_write_path_spans_present(self):
        tel = Telemetry(detail=True)
        _run_instrumented_engine(tel)
        spans = tel.snapshot()["spans"]
        for stage in (
            "write",
            "write.local",
            "write.delta",
            "write.encode",
            "write.send",
            "replica.apply",
            "replica.decode",
        ):
            assert stage in spans, f"missing span {stage}"
            assert spans[stage]["count"] > 0

    def test_span_tree_nests_send_over_apply(self):
        tel = Telemetry()
        _run_instrumented_engine(tel)
        records = tel.snapshot()["traces"]
        by_id = {r["span_id"]: r for r in records}
        applies = [r for r in records if r["name"] == "replica.apply"]
        assert applies
        for record in applies:
            parent = by_id.get(record["parent_id"])
            if parent is not None:
                assert parent["name"] == "write.send"
                assert parent["trace_id"] == record["trace_id"]

    def test_engine_source_carries_accounting_and_health(self):
        tel = Telemetry()
        _run_instrumented_engine(tel)
        source = tel.snapshot()["sources"]["test.prins"]
        assert source["strategy"] == "prins"
        assert source["accountant"]["writes_total"] == 16
        assert source["accountant"]["payload_bytes"] > 0
        assert source["links"]["health"] == ["healthy"]
        assert source["links"]["backlog_depths"] == [0]

    def test_resilience_counters_register(self):
        tel = Telemetry()
        _run_instrumented_engine(tel)
        counters = tel.snapshot()["metrics"]["counters"]
        assert counters["resilience.ships_delivered"] == 16
        assert counters["resilience.ships_journaled"] == 0

    def test_null_telemetry_engine_records_nothing(self):
        _run_instrumented_engine(NULL_TELEMETRY)  # must simply not blow up
        assert NULL_TELEMETRY.snapshot()["traces"] == []

    def test_full_snapshot_json_round_trips(self):
        tel = Telemetry()
        _run_instrumented_engine(tel)
        snap = tel.snapshot()
        assert json.loads(to_json(snap)) == snap


# ---------------------------------------------------------------------------
# CLI acceptance: demo --json carries stage timings + histograms + resilience
# ---------------------------------------------------------------------------


class TestCliSnapshot:
    def test_demo_tpcc_json_snapshot(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "snap.json"
        assert (
            main(
                [
                    "demo",
                    "--workload",
                    "tpcc",
                    "--transactions",
                    "10",
                    "--json",
                    str(path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        snap = load_snapshot(path)
        # per-stage span timings for the full write path
        for stage in ("write.delta", "write.encode", "write.send", "replica.apply"):
            assert snap["spans"][stage]["count"] > 0
        # byte histograms for all three strategies
        for name in ("traditional", "compressed", "prins"):
            hist = snap["sources"][f"demo.{name}"]["accountant"][
                "per_write_payload_bytes"
            ]
            assert hist["count"] > 0
        # resilience counters present
        assert snap["metrics"]["counters"]["resilience.ships_delivered"] > 0

    def test_demo_json_stdout_is_pure_json(self, capsys):
        from repro.cli import main

        assert main(["demo", "--transactions", "5", "--json"]) == 0
        out = capsys.readouterr().out
        snap = json.loads(out)  # nothing but JSON on stdout
        assert snap["enabled"] is True

    def test_metrics_and_trace_report_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "snap.json"
        main(["demo", "--transactions", "5", "--json", str(path)])
        capsys.readouterr()
        assert main(["metrics", str(path)]) == 0
        report = capsys.readouterr().out
        assert "resilience.ships_delivered" in report
        assert main(["trace", "report", str(path)]) == 0
        tree = capsys.readouterr().out
        assert "write" in tree and "replica.apply" in tree
