"""Tests for tables, experiment results, and paper comparisons."""

from __future__ import annotations

from repro.analysis import Comparison, ExperimentResult, format_table


class TestFormatTable:
    def test_alignment_and_headers(self):
        out = format_table(
            ["name", "count"], [["alpha", 10], ["b", 20000]], title="demo"
        )
        lines = out.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "count" in lines[1]
        assert "alpha" in lines[3]
        assert "20,000" in out  # thousands separator

    def test_float_formatting(self):
        out = format_table(["v"], [[3.14159], [2.0], [12345.6]])
        assert "3.142" in out
        lines = [line.strip() for line in out.splitlines()]
        assert "2" in lines  # integral float rendered as int
        assert "12,346" in out

    def test_empty_rows(self):
        out = format_table(["a"], [])
        assert "a" in out


class TestComparison:
    def test_within_tolerance(self):
        assert Comparison("m", 10.0, 12.0).within_tolerance
        assert Comparison("m", 10.0, 29.0, tolerance_factor=3).within_tolerance
        assert not Comparison("m", 10.0, 31.0, tolerance_factor=3).within_tolerance
        assert Comparison("m", 10.0, 3.5, tolerance_factor=3).within_tolerance
        assert not Comparison("m", 10.0, 3.2, tolerance_factor=3).within_tolerance

    def test_ratio(self):
        assert Comparison("m", 10.0, 25.0).ratio == 2.5

    def test_zero_paper_value(self):
        assert Comparison("m", 0.0, 0.0).ratio == 1.0


class TestExperimentResult:
    def test_render_includes_everything(self):
        result = ExperimentResult("figX", "demo figure", ["a", "b"])
        result.add_row(1, 2.5)
        result.add_comparison("metric", 10.0, 11.0)
        result.notes.append("a note")
        rendered = result.render()
        assert "[figX] demo figure" in rendered
        assert "metric" in rendered
        assert "[ok]" in rendered
        assert "note: a note" in rendered

    def test_out_of_band_marked(self):
        result = ExperimentResult("f", "t", ["x"])
        result.add_comparison("bad", 1.0, 100.0)
        assert "OUT OF BAND" in result.render()
