"""End-to-end tests for the erasure replication tier.

The tier's contract, exercised through :mod:`repro.api` and the cluster:

* **equivalence** — for every strategy x codec, the erasure stack's
  reassembled image is byte-identical to what a mirror stack replicates
  (the cross-tier invariant the ISSUE pins);
* **fault tolerance** — any ``m = n - k`` lost holders leave reads and
  survivor-driven repair exact;
* **economy** — the same fault tolerance costs measurably less wire and
  storage than ``f + 1`` mirrors, and repair ships ``volume / k``;
* **compatibility** — the default mirror path is pinned byte-for-byte,
  so adding the tier changed nothing for existing users.
"""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ReplicationConfig, open_cluster, open_primary
from repro.common.errors import ConfigurationError, ReplicationError
from repro.common.rng import make_rng
from repro.engine.links import ReplicaLink

BS = 64
N_BLOCKS = 8

#: every shippable strategy x codec combination (codec pins apply only to
#: the delta/compression strategies; traditional always ships raw blocks)
STRATEGY_CODECS = [
    ("traditional", None),
    ("compressed", "zlib"),
    ("compressed", "sparse"),
    ("prins", "zlib"),
    ("prins", "sparse"),
    ("prins", "zero-rle"),
    ("prins", "rle+zlib"),
]

write_lists = st.lists(
    st.tuples(
        st.integers(0, N_BLOCKS - 1), st.binary(min_size=BS, max_size=BS)
    ),
    max_size=25,
)


def _config(**overrides) -> ReplicationConfig:
    defaults = dict(block_size=BS, num_blocks=N_BLOCKS)
    defaults.update(overrides)
    return ReplicationConfig(**defaults)


def _erasure_config(**overrides) -> ReplicationConfig:
    overrides.setdefault("redundancy", "erasure")
    overrides.setdefault("k", 4)
    overrides.setdefault("n", 6)
    return _config(**overrides)


def _seeded_writes(count: int, seed: int = 17) -> list[tuple[int, bytes]]:
    rng = make_rng(seed, "stripe-integration")
    return [
        (
            int(rng.integers(0, N_BLOCKS)),
            rng.integers(0, 256, BS, dtype="u1").tobytes(),
        )
        for _ in range(count)
    ]


# -- compatibility: the mirror default is untouched ---------------------------


def test_default_redundancy_is_mirror():
    config = ReplicationConfig()
    assert config.redundancy == "mirror"
    assert config.stripe_config() is None
    with open_primary(_config()) as stack:
        assert stack.engine.stripe is None
        assert stack.engine.stripe_codec is None


class _RecordingLink(ReplicaLink):
    """Wraps a link, capturing every wire frame it delivers."""

    def __init__(self, inner: ReplicaLink, frames: list) -> None:
        self._inner = inner
        self._frames = frames

    def submit(self, work):
        record = work.record
        self._frames.append(
            (work.lba, record.seq, record.block_crc, record.frame)
        )
        return self._inner.submit(work)


def test_mirror_wire_bytes_are_pinned():
    """The default mirror path ships byte-identical frames pre/post tier.

    A seeded workload's exact wire traffic, digested.  If this pin moves,
    the erasure tier leaked into the mirror path — that is a regression,
    not a snapshot to update casually.
    """
    frames: list = []
    stack = open_primary(
        _config(), link_factory=lambda i, base: _RecordingLink(base, frames)
    )
    with stack:
        for lba, data in _seeded_writes(40):
            stack.engine.write_block(lba, data)
        stack.drain()
    digest = hashlib.sha256()
    for lba, seq, crc, frame in frames:
        digest.update(f"{lba}:{seq}:{crc}:".encode())
        digest.update(frame)
    assert len(frames) == 40
    assert digest.hexdigest() == (
        "560efb21869cad433d931370b5e590150ded8aaf9ea51e1f43ce0e4452f72811"
    )


def test_erasure_rejects_batching():
    with pytest.raises(ConfigurationError):
        _erasure_config(batch_records=8)


def test_erasure_validates_block_divisibility():
    with pytest.raises(ConfigurationError):
        ReplicationConfig(
            redundancy="erasure", k=3, n=5, block_size=64, num_blocks=4
        )


# -- equivalence: every strategy x codec reassembles to the mirror image ------


@settings(max_examples=20, deadline=None)
@given(
    writes=write_lists,
    pair=st.sampled_from(STRATEGY_CODECS),
)
def test_erasure_reassembles_identical_to_mirror(writes, pair):
    strategy, codec = pair
    mirror = open_primary(_config(strategy=strategy, codec=codec))
    erasure = open_primary(_erasure_config(strategy=strategy, codec=codec))
    with mirror, erasure:
        for lba, data in writes:
            mirror.engine.write_block(lba, data)
            erasure.engine.write_block(lba, data)
        mirror.drain()
        erasure.drain()
        assert mirror.verify()
        assert erasure.verify()
        mirror_image = mirror.replica_devices[0].snapshot()
        reassembled = b"".join(
            erasure.read_striped(lba) for lba in range(N_BLOCKS)
        )
        assert reassembled == mirror_image
        erasure.engine.verify_traffic_conservation()


@settings(max_examples=20, deadline=None)
@given(
    writes=write_lists,
    drop=st.sets(st.integers(0, 5), max_size=2),
)
def test_reads_survive_any_m_holder_losses(writes, drop):
    """Losing any <= m fragment holders leaves every block readable."""
    with open_primary(_erasure_config(strategy="prins")) as stack:
        for lba, data in writes:
            stack.engine.write_block(lba, data)
        stack.drain()
        for lba in range(N_BLOCKS):
            assert (
                stack.read_striped(lba, exclude=tuple(drop))
                == stack.device.read_block(lba)
            )


def test_losing_more_than_m_holders_fails_loudly():
    with open_primary(_erasure_config()) as stack:
        with pytest.raises(ReplicationError):
            stack.read_striped(0, exclude=(0, 1, 2))


# -- fault case: lose holders, read degraded, repair, verify ------------------


def test_lost_holders_repair_from_survivors():
    with open_primary(_erasure_config(strategy="prins")) as stack:
        for lba, data in _seeded_writes(30, seed=23):
            stack.engine.write_block(lba, data)
        stack.drain()
        codec = stack.engine.stripe_codec
        volume = stack.device.num_blocks * stack.device.block_size
        # lose m holders outright (disk gone, zeroed replacements)
        for lost in (1, 5):
            stack.replica_devices[lost].load(
                bytes(codec.fragment_size * N_BLOCKS)
            )
        # degraded reads are still exact
        for lba in range(N_BLOCKS):
            assert (
                stack.read_striped(lba, exclude=(1, 5))
                == stack.device.read_block(lba)
            )
        assert not stack.verify()
        report1 = stack.repair_fragment(1)
        report5 = stack.repair_fragment(5)
        assert stack.verify()
        # regenerating economy: each rebuild ships volume/k, not volume
        for report in (report1, report5):
            assert report.written_bytes == volume // codec.k
            assert report.read_bytes == volume
        accountant = stack.engine.accountant
        assert accountant.repairs == 2
        assert accountant.repair_write_bytes == 2 * (volume // codec.k)
        stack.engine.verify_traffic_conservation()


def test_initial_image_full_syncs_fragment_holders():
    rng = make_rng(31, "image")
    image = rng.integers(0, 256, BS * N_BLOCKS, dtype="u1").tobytes()
    with open_primary(_erasure_config(), initial_image=image) as stack:
        assert stack.verify()
        for lba in range(N_BLOCKS):
            assert stack.read_striped(lba) == image[lba * BS : (lba + 1) * BS]


# -- resilience: the heal ladder runs per-fragment ----------------------------


def test_guarded_stripe_fail_and_heal():
    config = _erasure_config(strategy="prins", resilient=True)
    with open_primary(config) as stack:
        writes = _seeded_writes(20, seed=41)
        for lba, data in writes[:8]:
            stack.engine.write_block(lba, data)
        stack.engine.fail_link(5)
        for lba, data in writes[8:]:
            stack.engine.write_block(lba, data)
        stack.drain()
        assert not stack.verify()  # holder 5 is behind
        outcome = stack.engine.heal_link(5)
        assert "replay" in outcome.tiers
        stack.drain()
        assert stack.verify()
        stack.engine.verify_traffic_conservation()


def test_pipelined_sim_stripe_fanout():
    config = _erasure_config(
        strategy="prins", fanout="pipelined", window=4, workers="inline"
    )
    with open_primary(config) as stack:
        for lba, data in _seeded_writes(25, seed=43):
            stack.engine.write_block(lba, data)
        stack.drain()
        assert stack.verify()
        stack.engine.verify_traffic_conservation()


def test_write_many_striped_equals_sequential():
    writes = _seeded_writes(20, seed=47)
    images = []
    for use_many in (False, True):
        with open_primary(_erasure_config(strategy="prins")) as stack:
            if use_many:
                stack.engine.write_many(writes)
            else:
                for lba, data in writes:
                    stack.engine.write_block(lba, data)
            stack.drain()
            assert stack.verify()
            images.append(
                tuple(d.snapshot() for d in stack.replica_devices)
            )
    assert images[0] == images[1]


# -- accounting: the per-fragment conservation law ----------------------------


def test_fragment_accounting_itemizes_and_balances():
    with open_primary(_erasure_config(strategy="prins")) as stack:
        for lba, data in _seeded_writes(30, seed=53):
            stack.engine.write_block(lba, data)
        stack.drain()
        accountant = stack.engine.accountant
        snapshot = accountant.snapshot()
        erasure = snapshot["erasure"]
        assert erasure["erasure_writes"] == accountant.writes_replicated
        itemized = sum(
            r["fragment_ships"] for r in snapshot["per_replica"].values()
        )
        assert erasure["fragments_shipped"] == itemized
        assert erasure["fragment_payload_bytes"] == sum(
            r["fragment_payload_bytes"]
            for r in snapshot["per_replica"].values()
        )
        accountant.verify_conservation(expect_full_attribution=True)


def test_zero_delta_fragments_are_elided():
    """A localized change elides the untouched data fragments' zero deltas."""
    with open_primary(_erasure_config(strategy="prins")) as stack:
        data = bytearray(bytes([7]) * BS)
        stack.engine.write_block(0, bytes(data))
        stack.drain()
        accountant = stack.engine.accountant
        before = accountant.fragments_shipped
        data[0] ^= 0xFF  # touch only fragment 0's slice
        stack.engine.write_block(0, bytes(data))
        stack.drain()
        # fragment 0 plus the m=2 parity fragments ship; slices 1..3 elide
        assert accountant.fragments_shipped == before + 3
        assert accountant.fragments_elided == 3
        assert stack.verify()
        # an identical rewrite is a whole-write skip, upstream of striping
        skipped = accountant.writes_skipped
        stack.engine.write_block(0, bytes(data))
        stack.drain()
        assert accountant.writes_skipped == skipped + 1
        assert accountant.fragments_shipped == before + 3


def test_telemetry_snapshot_reports_stripe_shape():
    with open_primary(_erasure_config()) as stack:
        snapshot = stack.engine.telemetry_snapshot()
        assert snapshot["stripe"] == {
            "k": 4,
            "n": 6,
            "fragment_size": BS // 4,
            "storage_overhead": 1.5,
        }


# -- economy: same fault tolerance, measurably less wire and storage ----------


def test_erasure_beats_equally_tolerant_mirrors():
    """k=4/n=6 tolerates f=2 like 3 mirrors, at less wire and storage.

    Run at a realistic 4 KiB block size: the per-fragment PDU header is
    fixed, so the erasure tier's wire win needs payloads that dwarf it
    (at toy 64-byte blocks the 6x headers would dominate).
    """
    big = 4096
    rng = make_rng(59, "economy")
    writes = [
        (
            int(rng.integers(0, N_BLOCKS)),
            rng.integers(0, 256, big, dtype="u1").tobytes(),
        )
        for _ in range(60)
    ]
    erasure = open_primary(_erasure_config(strategy="traditional", block_size=big))
    mirrors = open_primary(
        _config(strategy="traditional", replicas=3, block_size=big)
    )
    with erasure, mirrors:
        for lba, data in writes:
            erasure.engine.write_block(lba, data)
            mirrors.engine.write_block(lba, data)
        erasure.drain()
        mirrors.drain()
        e_acct, m_acct = erasure.engine.accountant, mirrors.engine.accountant
        e_wire = e_acct.payload_bytes + e_acct.pdu_bytes
        m_wire = m_acct.payload_bytes + m_acct.pdu_bytes
        assert e_wire < m_wire
        e_storage = sum(
            d.block_size * d.num_blocks for d in erasure.replica_devices
        )
        m_storage = sum(
            d.block_size * d.num_blocks for d in mirrors.replica_devices
        )
        assert e_storage < m_storage
        assert e_storage == pytest.approx(m_storage / 2)  # 1.5x vs 3x


# -- the cluster layer --------------------------------------------------------


def test_cluster_erasure_write_read_repair():
    cluster = open_cluster(
        _erasure_config(
            strategy="prins", nodes=8, num_blocks=4, resilient=True
        )
    )
    data = make_rng(61, "cluster").integers(0, 256, BS, dtype="u1").tobytes()
    cluster.nodes[0].engine.write_block(1, data)
    assert cluster.verify() == {}
    # primary down: the block reassembles from its fragment holders
    cluster.fail_node(0)
    assert cluster.read_from_replica(0, 1) == data
    cluster.heal_node(0)
    # a holder's disk is lost: rebuild every fragment it hosted
    placement = cluster.placement[0]
    victim = placement[2]
    region = cluster.nodes[victim].replica_regions[0]
    region.load(bytes(region.block_size * region.num_blocks))
    assert cluster.verify() != {}
    reports = cluster.repair_node(victim)
    assert 0 in reports
    assert cluster.verify() == {}
    cluster.verify_traffic_conservation()


def test_cluster_erasure_needs_enough_peers():
    with pytest.raises(ConfigurationError):
        open_cluster(_erasure_config(nodes=6, num_blocks=4))  # n > nodes-1


def test_cluster_mirror_rejects_repair_node():
    cluster = open_cluster(_config(nodes=4, num_blocks=4))
    with pytest.raises(ConfigurationError):
        cluster.repair_node(1)
