#!/usr/bin/env python
"""Telemetry-overhead smoke gate: live tracing must stay cheap.

Times the PRINS engine write path through the shared no-op telemetry
singletons (``NULL_TELEMETRY``, the library default), under a live
:class:`repro.obs.Telemetry` recording the coarse causal stage spans
(the default detail level), and under ``Telemetry(detail=True)``
recording every sub-stage span — then gates on the live/null ratio::

    PYTHONPATH=src python scripts/bench_telemetry_overhead.py --max-slowdown 1.15

The three engines are interleaved at *single-write* granularity — every
round issues one timed write per mode, mode order rotating — and the
gated ratio compares **median per-write times**.  Interleaving this
finely makes drift on a shared runner (thermal throttling, noisy
neighbours) land on all modes symmetrically, and the median discards
the writes an interrupt or migration spiked outright.  The gate applies
to the default detail level; the ``detail=True`` ratio is reported (and
written to the JSON) as documentation of what the opt-in fine spans
cost.
"""

from __future__ import annotations

import argparse
import gc
import json
import statistics
import sys
from time import perf_counter_ns

sys.path.insert(0, "src")

from repro.block import MemoryBlockDevice  # noqa: E402
from repro.common.rng import make_rng  # noqa: E402
from repro.engine import (  # noqa: E402
    DirectLink,
    PrimaryEngine,
    ReplicaEngine,
    make_strategy,
)
from repro.obs import NULL_TELEMETRY, Telemetry  # noqa: E402
from repro.workloads.content import mutate_fraction, random_bytes  # noqa: E402

BLOCK_SIZE = 8192


class _Mode:
    """One timed configuration: an engine and its per-write times."""

    def __init__(self, name: str, telemetry) -> None:
        self.name = name
        rng = make_rng(5, "telemetry-overhead")
        old = random_bytes(rng, BLOCK_SIZE)
        new = mutate_fraction(old, 0.10, rng)
        primary = MemoryBlockDevice(BLOCK_SIZE, 16)
        replica = MemoryBlockDevice(BLOCK_SIZE, 16)
        primary.write_block(3, old)
        replica.write_block(3, old)
        strategy = make_strategy("prins")
        self.engine = PrimaryEngine(
            primary,
            strategy,
            [DirectLink(ReplicaEngine(replica, strategy))],
            telemetry=telemetry,
        )
        self.old = old
        self.new = new
        self.flip = False
        self.times_ns: list[int] = []

    def write_once(self) -> None:
        """Run and record one timed write (alternating content)."""
        self.flip = flip = not self.flip
        data = self.new if flip else self.old
        engine = self.engine
        start = perf_counter_ns()
        engine.write_block(3, data)
        self.times_ns.append(perf_counter_ns() - start)


def run_modes(writes: int, warmup: int) -> dict:
    """Interleave single writes across modes; compare median write times."""
    modes = [
        _Mode("null", NULL_TELEMETRY),
        _Mode("live", Telemetry()),
        _Mode("detail", Telemetry(detail=True)),
    ]
    for mode in modes:
        for _ in range(warmup):
            mode.write_once()
        mode.times_ns.clear()
    gc.disable()
    try:
        for round_no in range(writes):
            # rotate who goes first so periodic noise (timer interrupts,
            # neighbours) cancels across modes instead of always taxing
            # the same one
            lead = round_no % len(modes)
            for mode in modes[lead:] + modes[:lead]:
                mode.write_once()
    finally:
        gc.enable()
    null, live, detail = (
        statistics.median(mode.times_ns) for mode in modes
    )
    return {
        "null_write_us": null / 1e3,
        "live_write_us": live / 1e3,
        "detail_write_us": detail / 1e3,
        "slowdown": live / null,
        "detail_slowdown": detail / null,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--writes", type=int, default=3000)
    parser.add_argument("--warmup", type=int, default=200)
    parser.add_argument(
        "--max-slowdown",
        type=float,
        default=None,
        metavar="RATIO",
        help="fail when live/null (default detail) exceeds RATIO (e.g. 1.15)",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH", help="write results JSON"
    )
    args = parser.parse_args(argv)

    result = run_modes(args.writes, args.warmup)
    ratio = result["slowdown"]
    detail_ratio = result["detail_slowdown"]
    for name in ("null", "live", "detail"):
        print(
            f"{name:>6} telemetry: "
            f"{result[f'{name}_write_us']:8.2f} us/write "
            f"(median of {args.writes} interleaved writes)"
        )
    print(
        f"slowdown (median write time ratio): {ratio:.3f}x  "
        f"(detail: {detail_ratio:.3f}x)"
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump({"writes": args.writes, **result}, handle, indent=2)
        print(f"results written to {args.out}")
    if args.max_slowdown is not None and ratio > args.max_slowdown:
        print(
            f"FAIL: live telemetry slows the write path {ratio:.3f}x "
            f"(budget {args.max_slowdown:.2f}x)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
