#!/usr/bin/env python
"""Hot-path microbenchmark: xor / encode / decode / write / batched flush.

Measures the primary→replica fast path at several block sizes and
dirtiness levels and records ops/s and ns/op into ``BENCH_hotpath.json``
so every perf PR lands with before/after numbers.

The script is *feature-detecting*: it runs unmodified against older
revisions of the engine (no ``write_many``, no ``old_block_cache``), so
the same definition of each benchmark can capture a pre-optimization
baseline and a post-optimization current run into one file::

    # capture (or refresh) the slow-side numbers
    PYTHONPATH=src python scripts/bench_hotpath.py --role baseline

    # capture the optimized numbers and print the speedup table
    PYTHONPATH=src python scripts/bench_hotpath.py --role current

    # CI smoke: quick run, fail if > 3x slower than the checked-in numbers
    PYTHONPATH=src python scripts/bench_hotpath.py --smoke \
        --check BENCH_hotpath.json --max-regression 3

Benchmarks (each at block size 4 KiB / 8 KiB / 64 KiB and dirtiness
5 / 20 / 100 %):

* ``xor``          — one forward parity computation (Eq. 1).
* ``encode``       — zero-RLE encode of one parity delta.
* ``decode``       — zero-RLE decode of that payload.
* ``write``        — one full PrimaryEngine.write_block through a
                     DirectLink to a ReplicaEngine (PRINS strategy).
* ``batched_flush``— a 32-write window shipped as one batch PDU,
                     reported per logical write (uses
                     ``PrimaryEngine.write_many`` when available).

Only the standard library + the repo itself are required.
"""

from __future__ import annotations

import argparse
import json
import statistics
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.block import MemoryBlockDevice  # noqa: E402
from repro.common.buffers import xor_bytes  # noqa: E402
from repro.common.rng import make_rng  # noqa: E402
from repro.engine import (  # noqa: E402
    BatchConfig,
    DirectLink,
    PrimaryEngine,
    ReplicaEngine,
    make_strategy,
)
from repro.parity import ZeroRleCodec  # noqa: E402
from repro.workloads.content import mutate_fraction  # noqa: E402

BLOCK_SIZES = (4096, 8192, 65536)
DIRTINESS = (0.05, 0.20, 1.00)
WINDOW = 32  # writes per batched flush
#: scattered edit spans per dirty block — clustered-but-plural, like the
#: paper's "5 to 20% of a block changes" under real edits
SPANS = 8

SMOKE_BLOCK_SIZES = (4096, 65536)
SMOKE_DIRTINESS = (0.20,)


def _key(bench: str, block_size: int, dirtiness: float) -> str:
    return f"{bench}/{block_size}/{int(dirtiness * 100)}"


def _make_blocks(block_size: int, dirtiness: float, count: int):
    """Deterministic (old, new) block pairs with scattered dirty spans."""
    rng = make_rng(7, f"hotpath-{block_size}-{dirtiness}")
    olds, news = [], []
    for _ in range(count):
        old = rng.integers(0, 256, block_size, dtype="u1").tobytes()
        new = mutate_fraction(old, dirtiness, rng, runs=SPANS)
        olds.append(old)
        news.append(new)
    return olds, news


def _time_per_op(fn, min_seconds: float) -> float:
    """Median ns/op over 3 calibrated repetitions of ``fn`` (one op each)."""
    # calibrate the loop count so one repetition takes >= min_seconds
    n = 1
    while True:
        t0 = time.perf_counter_ns()
        for _ in range(n):
            fn()
        elapsed = time.perf_counter_ns() - t0
        if elapsed >= min_seconds * 1e9 or n >= 1 << 22:
            break
        growth = max(2, int((min_seconds * 1.2e9) / max(elapsed, 1)))
        n *= min(growth, 16)
    samples = [elapsed / n]
    for _ in range(2):
        t0 = time.perf_counter_ns()
        for _ in range(n):
            fn()
        samples.append((time.perf_counter_ns() - t0) / n)
    return statistics.median(samples)


def _build_engine(block_size: int, num_blocks: int, batch: bool):
    strategy = make_strategy("prins")
    primary = MemoryBlockDevice(block_size, num_blocks)
    replica = MemoryBlockDevice(block_size, num_blocks)
    kwargs = {}
    if batch:
        kwargs["batch"] = BatchConfig(max_records=WINDOW, max_bytes=1 << 30)
    try:  # newer engines: bounded LRU serving A_old from memory
        engine = PrimaryEngine(
            primary,
            strategy,
            [DirectLink(ReplicaEngine(replica, strategy))],
            old_block_cache=num_blocks,
            **kwargs,
        )
    except TypeError:  # older engine: no cache knob
        engine = PrimaryEngine(
            primary,
            strategy,
            [DirectLink(ReplicaEngine(replica, strategy))],
            **kwargs,
        )
    return engine, primary, replica


def bench_all(
    block_sizes, dirtiness_levels, min_seconds: float
) -> dict[str, dict[str, float]]:
    """Run every benchmark; returns ``{key: {ns_per_op, ops_per_s}}``."""
    codec = ZeroRleCodec()
    results: dict[str, dict[str, float]] = {}

    def record(bench, bs, dirt, ns):
        key = _key(bench, bs, dirt)
        results[key] = {
            "ns_per_op": round(ns, 1),
            "ops_per_s": round(1e9 / ns, 1) if ns else 0.0,
        }
        print(f"  {key:28s} {ns:12.0f} ns/op  {1e9 / ns:12.0f} ops/s")

    for bs in block_sizes:
        for dirt in dirtiness_levels:
            olds, news = _make_blocks(bs, dirt, WINDOW)
            old0, new0 = olds[0], news[0]
            delta0 = xor_bytes(new0, old0)
            payload0 = codec.encode(delta0)

            record("xor", bs, dirt, _time_per_op(
                lambda: xor_bytes(new0, old0), min_seconds))
            record("encode", bs, dirt, _time_per_op(
                lambda: codec.encode(delta0), min_seconds))
            record("decode", bs, dirt, _time_per_op(
                lambda: codec.decode(payload0, bs), min_seconds))

            # full write path: warm device, overwrite in a cycle
            engine, primary, replica = _build_engine(bs, WINDOW, batch=False)
            for lba, old in enumerate(olds):
                primary.write_block(lba, old)
                replica.write_block(lba, old)
            cyc = {"i": 0}

            def one_write():
                i = cyc["i"]
                blocks = news if (i // WINDOW) % 2 == 0 else olds
                engine.write_block(i % WINDOW, blocks[i % WINDOW])
                cyc["i"] = i + 1

            record("write", bs, dirt, _time_per_op(one_write, min_seconds))
            engine.close()

            # batched flush: a WINDOW of writes shipped as one PDU,
            # reported per logical write (encode+ship amortized)
            engine, primary, replica = _build_engine(bs, WINDOW, batch=True)
            for lba, old in enumerate(olds):
                primary.write_block(lba, old)
                replica.write_block(lba, old)
            flip = {"v": False}
            write_many = getattr(engine, "write_many", None)

            def one_window():
                blocks = olds if flip["v"] else news
                flip["v"] = not flip["v"]
                if write_many is not None:
                    write_many(list(enumerate(blocks)))
                else:
                    for lba, data in enumerate(blocks):
                        engine.write_block(lba, data)
                engine.flush_batch()

            ns_window = _time_per_op(one_window, min_seconds)
            record("batched_flush", bs, dirt, ns_window / WINDOW)
            engine.close()
    return results


def _git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, check=True,
        ).stdout.strip()
    except Exception:
        return "unknown"


def _speedups(baseline: dict, current: dict) -> dict[str, float]:
    out = {}
    for key, cur in sorted(current.items()):
        base = baseline.get(key)
        if base and cur.get("ns_per_op"):
            out[key] = round(base["ns_per_op"] / cur["ns_per_op"], 2)
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--role", choices=["baseline", "current"], default="current",
        help="which side of the before/after comparison this run records",
    )
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_hotpath.json"),
        help="JSON file to merge results into",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny scale for CI: fewer configs, shorter timing windows",
    )
    parser.add_argument(
        "--check", metavar="PATH", default=None,
        help="compare this run against the 'current' numbers in PATH",
    )
    parser.add_argument(
        "--max-regression", type=float, default=3.0,
        help="with --check: fail if any ns/op exceeds recorded x this factor",
    )
    parser.add_argument(
        "--min-seconds", type=float, default=None,
        help="per-sample timing window (default 0.2, smoke 0.05)",
    )
    args = parser.parse_args(argv)

    block_sizes = SMOKE_BLOCK_SIZES if args.smoke else BLOCK_SIZES
    dirtiness = SMOKE_DIRTINESS if args.smoke else DIRTINESS
    min_seconds = args.min_seconds or (0.05 if args.smoke else 0.2)

    print(f"hot-path microbenchmark (role={args.role}, smoke={args.smoke})")
    results = bench_all(block_sizes, dirtiness, min_seconds)

    if args.check:
        recorded = json.loads(Path(args.check).read_text())
        reference = recorded.get("current") or recorded.get("baseline") or {}
        failures = []
        for key, cur in sorted(results.items()):
            ref = reference.get(key)
            if not ref:
                continue
            ratio = cur["ns_per_op"] / ref["ns_per_op"]
            marker = "FAIL" if ratio > args.max_regression else "ok"
            print(f"  check {key:28s} {ratio:6.2f}x recorded   [{marker}]")
            if ratio > args.max_regression:
                failures.append(key)
        if failures:
            print(
                f"REGRESSION: {len(failures)} benchmark(s) more than "
                f"{args.max_regression:.1f}x slower than {args.check}: "
                f"{', '.join(failures)}"
            )
            return 1
        print(f"all benchmarks within {args.max_regression:.1f}x of {args.check}")
        return 0

    out_path = Path(args.out)
    doc = json.loads(out_path.read_text()) if out_path.exists() else {}
    doc.setdefault("schema", 1)
    doc.setdefault("config", {
        "block_sizes": list(BLOCK_SIZES),
        "dirtiness": list(DIRTINESS),
        "window": WINDOW,
        "spans": SPANS,
        "codec": "zero-rle",
        "units": {"ns_per_op": "nanoseconds", "ops_per_s": "operations/s"},
    })
    doc[args.role] = results
    doc.setdefault("meta", {})[args.role] = {
        "git": _git_rev(),
        "python": sys.version.split()[0],
        "captured_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "smoke": args.smoke,
    }
    if "baseline" in doc and "current" in doc:
        doc["speedup"] = _speedups(doc["baseline"], doc["current"])
        print("\nspeedup vs baseline (higher is better):")
        for key, ratio in doc["speedup"].items():
            print(f"  {key:28s} {ratio:6.2f}x")
    out_path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"\nresults merged into {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
