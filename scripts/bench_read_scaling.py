#!/usr/bin/env python
"""Read-scaling benchmark: conflict-aware replica routing vs primary-only.

Replays a read-heavy TPC-W-style browsing mix (95% reads / 5% writes,
80/20 hot set) against one volume and counts, per storage server, how
many reads it served.  Read service time is uniform across servers, so
the deterministic makespan model is simply ``max(reads per server)`` and

    speedup = total_reads / max(reads per server)

normalized to 1.0x for ``read_policy="primary"`` (every read funnels
through the primary).  Counts are deterministic under the fixed seeds —
the sim-clock scheduler, round-robin router, and workload RNG have no
wall-clock dependence — so the CI gate checks them exactly, plus two
headline gates:

* **scaling** — with 4 replicas the routed policies must reach at least
  ``--min-read-speedup`` (default 3.0x);
* **identity** — every routed read must return byte-identical data to a
  primary read (asserted inline during the run), and the shipped
  payload bytes + final primary/replica images must be identical across
  every policy × shard combination (routing and sharding change *where
  reads are served*, never what is written or stored).

Usage::

    # refresh the tracked artifact (full sweep + smoke keys)
    PYTHONPATH=src python scripts/bench_read_scaling.py --out BENCH_read.json

    # CI smoke: re-run the smoke configs and gate against the artifact
    PYTHONPATH=src python scripts/bench_read_scaling.py --smoke \
        --check BENCH_read.json --min-read-speedup 3.0

Only the standard library + the repo itself are required.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api import ReplicationConfig, open_primary  # noqa: E402
from repro.common.rng import make_rng  # noqa: E402
from repro.workloads.content import random_bytes  # noqa: E402

BLOCK = 4096
BLOCKS = 512
OPS = 8000
SMOKE_OPS = 2000
READ_FRACTION = 0.95  # TPC-W browsing mix: ~95% of ops are page reads
HOT_FRACTION = 0.2  # 20% of the volume takes 80% of the traffic
HOT_WEIGHT = 0.8

READ_SERVICE_S = 0.0002  # simulated read service time per op

POLICIES = ("primary", "replica", "least_loaded")
REPLICA_COUNTS = (2, 4)
SHARD_COUNTS = (1, 4)

SMOKE_POLICIES = ("primary", "replica")
SMOKE_REPLICA_COUNTS = (4,)
SMOKE_SHARD_COUNTS = (1, 4)


def _key(policy: str, replicas: int, shards: int, ops: int) -> str:
    return f"{policy}/r{replicas}/s{shards}/{ops}"


def _build(policy: str, replicas: int, shards: int):
    config = ReplicationConfig(
        block_size=BLOCK,
        num_blocks=BLOCKS,
        replicas=replicas,
        resilient=True,
        fanout="pipelined",
        window=8,
        link_latency_s=0.001,  # sim-clock latency: keeps work in flight
        read_policy=policy,
        shards=shards,
    )
    return open_primary(config)


def _count_reads(stack):
    """Wrap every server's read path with a gated counter.

    ``serving[0]`` is raised only around benchmark reads, so the
    engine's own device reads (A_old fetches on the write path) are
    not charged to read service.
    """
    serving = [False]
    counts: dict[str, int] = {}
    truth = stack.device.read_block  # unwrapped: ground-truth reads

    def wrap(device, name):
        counts[name] = 0
        original = device.read_block

        def counting(lba, _original=original, _name=name):
            if serving[0]:
                counts[_name] += 1
            return _original(lba)

        device.read_block = counting

    wrap(stack.device, "primary")
    for index, device in enumerate(stack.replica_devices):
        wrap(device, f"replica{index}")
    return serving, counts, truth


def _pump(engine):
    """A callable advancing every shard's sim clock by one read's service.

    Reads take time on whichever server serves them; while they run,
    in-flight acks land.  Without this, sim time would stand still
    through read-only stretches and every written LBA would stay dirty
    until the final drain — unrealistically inflating the conflict rate
    (identically across policies, but still).
    """
    from repro.engine import ShardedEngine

    engines = (
        list(engine.shards) if isinstance(engine, ShardedEngine) else [engine]
    )
    sims = [e.scheduler.sim for e in engines if e.scheduler is not None]

    def pump() -> None:
        for sim in sims:
            sim.run(sim.now + READ_SERVICE_S)

    return pump


def _workload(ops: int):
    """The deterministic op stream: ("read", lba) / ("write", lba, data)."""
    rng = make_rng(12, "tpcw-read-mix", ops)
    hot_blocks = max(1, int(BLOCKS * HOT_FRACTION))
    stream = []
    for _ in range(ops):
        if rng.random() < HOT_WEIGHT:
            lba = int(rng.integers(0, hot_blocks))
        else:
            lba = int(rng.integers(hot_blocks, BLOCKS))
        if rng.random() < READ_FRACTION:
            stream.append(("read", lba))
        else:
            stream.append(("write", lba, random_bytes(rng, BLOCK)))
    return stream


def _measure(policy: str, replicas: int, shards: int, ops: int) -> dict:
    stack = _build(policy, replicas, shards)
    serving, counts, truth = _count_reads(stack)
    engine = stack.engine
    # warm the volume so reads have real bytes to disagree about
    warm_rng = make_rng(5, "tpcw-warm")
    for lba in range(BLOCKS):
        engine.write_block(lba, random_bytes(warm_rng, BLOCK))
    engine.drain()

    pump = _pump(engine)
    total_reads = 0
    t0 = time.perf_counter()
    for step in _workload(ops):
        if step[0] == "read":
            total_reads += 1
            pump()
            serving[0] = True
            data = engine.read_block(step[1])
            serving[0] = False
            if data != truth(step[1]):
                raise AssertionError(
                    f"routed read of LBA {step[1]} diverged from the "
                    f"primary's bytes ({policy}, r={replicas}, s={shards})"
                )
        else:
            engine.write_block(step[1], step[2])
    wall_ms = (time.perf_counter() - t0) * 1e3
    engine.drain()

    image = hashlib.sha256(stack.device.snapshot())
    for device in stack.replica_devices:
        image.update(device.snapshot())
    if policy == "primary":
        router = {"reads_primary": total_reads, "reads_replica": 0,
                  "reads_conflict": 0}
    elif shards > 1:
        router = {k: v for k, v in engine.router_snapshot().items()
                  if k != "policy"}
    else:
        router = {k: v for k, v in engine.router.snapshot().items()
                  if k != "policy"}
    makespan = max(counts.values())
    result = {
        "total_reads": total_reads,
        "server_reads": dict(sorted(counts.items())),
        "makespan_reads": makespan,
        "speedup": round(total_reads / makespan, 3),
        "payload_bytes": int(engine.accountant.payload_bytes),
        "image_sha": image.hexdigest(),
        "wall_ms": round(wall_ms, 2),
        **router,
    }
    stack.engine.close()
    return result


def bench_all(ops: int, policies, replica_counts, shard_counts) -> dict:
    results: dict[str, dict] = {}
    for replicas in replica_counts:
        for shards in shard_counts:
            for policy in policies:
                key = _key(policy, replicas, shards, ops)
                results[key] = _measure(policy, replicas, shards, ops)
                r = results[key]
                print(
                    f"  {key:28s} speedup {r['speedup']:>6.3f}x"
                    f"  conflicts {r['reads_conflict']:>5,}"
                    f"  {r['wall_ms']:>8.1f} ms"
                )
    return results


def _identity_failures(results: dict) -> list[str]:
    """Payload bytes and images must agree across every same-shape cell."""
    failures = []
    by_shape: dict[tuple, dict[str, tuple]] = {}
    for key, r in results.items():
        policy, rr, ss, ops = key.split("/")
        by_shape.setdefault((rr, ops), {})[key] = (
            r["payload_bytes"], r["image_sha"],
        )
    for shape, cells in sorted(by_shape.items()):
        if len({v for v in cells.values()}) > 1:
            failures.append(
                f"r={shape[0]} ops={shape[1]}: payload/image identity "
                f"broken across {sorted(cells)}"
            )
    return failures


def _check(results: dict, recorded_path: str, min_speedup: float) -> int:
    """Gate a fresh run against the tracked artifact.

    (1) all counts are deterministic, so every fresh number must match
    the recorded one exactly; (2) routed policies must hit the read
    speedup floor at 4 replicas; (3) payload bytes and final images
    must be identical across every policy × shard cell of a shape.
    """
    recorded = json.loads(Path(recorded_path).read_text()).get("results", {})
    failures = []
    for key, fresh in sorted(results.items()):
        ref = recorded.get(key)
        if ref is None:
            failures.append(f"{key}: missing from {recorded_path}")
            continue
        for field in ("server_reads", "payload_bytes", "image_sha",
                      "reads_conflict"):
            if fresh[field] != ref[field]:
                failures.append(
                    f"{key}: {field} {fresh[field]} != recorded "
                    f"{ref[field]} (routing changed? refresh artifact)"
                )
    for key, fresh in sorted(results.items()):
        policy, rr, _, _ = key.split("/")
        if policy == "primary" or rr != "r4":
            continue
        marker = "FAIL" if fresh["speedup"] < min_speedup else "ok"
        print(
            f"  gate {key:28s} {fresh['speedup']:6.3f}x "
            f"(floor {min_speedup:.1f}x)   [{marker}]"
        )
        if fresh["speedup"] < min_speedup:
            failures.append(
                f"{key}: read speedup {fresh['speedup']:.3f}x below the "
                f"{min_speedup:.1f}x floor"
            )
    failures.extend(_identity_failures(results))
    if failures:
        print("READ-SCALING GATE FAILED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(
        f"all read-scaling benchmarks match {recorded_path}; routed reads "
        f"scale >= {min_speedup:.1f}x at 4 replicas with byte-identical "
        f"payloads and images"
    )
    return 0


def _git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, check=True,
        ).stdout.strip()
    except Exception:
        return "unknown"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_read.json"),
        help="JSON artifact to write (full runs also record smoke keys)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="smaller op count / reduced grid for CI",
    )
    parser.add_argument(
        "--check", metavar="PATH", default=None,
        help="gate this run against the artifact at PATH instead of writing",
    )
    parser.add_argument(
        "--min-read-speedup", type=float, default=3.0,
        help="with --check: read speedup floor at 4 replicas (default 3.0)",
    )
    args = parser.parse_args(argv)

    print(f"read-scaling benchmark (smoke={args.smoke})")
    if args.smoke:
        results = bench_all(
            SMOKE_OPS, SMOKE_POLICIES, SMOKE_REPLICA_COUNTS,
            SMOKE_SHARD_COUNTS,
        )
    else:
        results = bench_all(OPS, POLICIES, REPLICA_COUNTS, SHARD_COUNTS)
        # full runs also capture the smoke keys so CI can gate exactly
        results.update(
            bench_all(
                SMOKE_OPS, SMOKE_POLICIES, SMOKE_REPLICA_COUNTS,
                SMOKE_SHARD_COUNTS,
            )
        )

    if args.check:
        return _check(results, args.check, args.min_read_speedup)

    failures = _identity_failures(results)
    if failures:
        print("IDENTITY CHECK FAILED:")
        for failure in failures:
            print(f"  {failure}")
        return 1

    doc = {
        "schema": 1,
        "config": {
            "block_size": BLOCK,
            "volume_blocks": BLOCKS,
            "read_fraction": READ_FRACTION,
            "hot_fraction": HOT_FRACTION,
            "hot_weight": HOT_WEIGHT,
            "ops": {"full": OPS, "smoke": SMOKE_OPS},
            "units": {
                "speedup": "total_reads / max reads served by one server",
                "wall_ms": "replay wall-clock, informational only",
            },
            "key": "policy/r<replicas>/s<shards>/<ops>",
        },
        "results": results,
        "meta": {
            "git": _git_rev(),
            "python": sys.version.split()[0],
            "captured_at": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            ),
            "smoke": args.smoke,
        },
    }
    Path(args.out).write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n"
    )
    print(f"\nresults written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
