#!/usr/bin/env python
"""Fan-out scheduler micro-benchmark: sequential vs pipelined shipping.

Two measurements, both against real in-memory replicas:

* **makespan** (sim mode) — the deterministic simulated wall-clock of a
  write burst fanned out to N latency-bearing replicas, sequential
  (``LatencyLink`` + ``SimClock`` metering: every ship serializes behind
  the previous ack) vs pipelined (``SchedulerConfig`` window: up to W
  submissions ride each link concurrently).  The speedup here is the
  tentpole claim: ``≈ min(W, burst)`` until the wire saturates.

* **overhead** (real time) — ops/s of zero-latency shipping through the
  scheduler vs the plain sequential loop, i.e. what the window machinery
  itself costs when there is no latency to hide.

Usage::

    PYTHONPATH=src python scripts/bench_scheduler.py            # full table
    PYTHONPATH=src python scripts/bench_scheduler.py --smoke    # CI smoke
    PYTHONPATH=src python scripts/bench_scheduler.py --smoke \
        --min-speedup 2.0                                       # gate

``--min-speedup`` makes the exit status a regression gate: the pipelined
makespan must beat sequential by at least that factor at the largest
measured window (deterministic in sim mode, so the gate is exact, not a
timing roll of the dice).

Only the standard library + the repo itself are required.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.block import MemoryBlockDevice  # noqa: E402
from repro.common.rng import make_rng  # noqa: E402
from repro.engine import (  # noqa: E402
    DirectLink,
    LatencyLink,
    PrimaryEngine,
    ReplicaEngine,
    SchedulerConfig,
    SimClock,
    make_strategy,
)

BLOCK_SIZE = 4096


def _build(
    num_blocks: int,
    replicas: int,
    latency_s: float,
    scheduler: SchedulerConfig | None,
    clock: SimClock | None,
):
    """One primary + N replicas; latency via LatencyLink (seq) or scheduler."""
    strategy = make_strategy("prins")
    links = []
    devices = []
    for _ in range(replicas):
        device = MemoryBlockDevice(BLOCK_SIZE, num_blocks)
        devices.append(device)
        link = DirectLink(ReplicaEngine(device, strategy))
        if scheduler is None and latency_s:
            link = LatencyLink(link, latency_s, clock=clock)
        links.append(link)
    engine = PrimaryEngine(
        MemoryBlockDevice(BLOCK_SIZE, num_blocks),
        strategy,
        links,
        scheduler=scheduler,
    )
    return engine, devices


def _burst(engine, writes: int) -> None:
    rng = make_rng(7, "bench-sched")
    num_blocks = engine.num_blocks
    for _ in range(writes):
        lba = int(rng.integers(0, num_blocks))
        engine.write_block(lba, rng.integers(0, 256, BLOCK_SIZE, "u1").tobytes())


def bench_makespan(
    writes: int, replicas: int, latency_s: float, window: int
) -> dict:
    """Deterministic simulated makespan: sequential vs one pipelined window."""
    clock = SimClock()
    seq_engine, seq_devices = _build(256, replicas, latency_s, None, clock)
    _burst(seq_engine, writes)
    sequential_s = clock.now

    config = SchedulerConfig(window=window, link_latency_s=latency_s)
    pip_engine, pip_devices = _build(256, replicas, latency_s, config, None)
    _burst(pip_engine, writes)
    pip_engine.drain()
    pipelined_s = pip_engine.scheduler.now

    assert (
        seq_engine.accountant.payload_bytes
        == pip_engine.accountant.payload_bytes
    ), "pipelined fan-out changed the wire bytes"
    for seq_dev, pip_dev in zip(seq_devices, pip_devices):
        assert seq_dev.snapshot() == pip_dev.snapshot(), "images diverged"

    return {
        "window": window,
        "sequential_s": sequential_s,
        "pipelined_s": pipelined_s,
        "speedup": sequential_s / pipelined_s if pipelined_s else float("inf"),
    }


def bench_overhead(writes: int, replicas: int, window: int) -> dict:
    """Real-time ops/s at zero latency: scheduler machinery vs plain loop."""

    def timed(scheduler):
        engine, _ = _build(256, replicas, 0.0, scheduler, None)
        start = time.perf_counter()
        _burst(engine, writes)
        engine.drain()
        return writes / (time.perf_counter() - start)

    sequential_ops = timed(None)
    pipelined_ops = timed(SchedulerConfig(window=window))
    return {
        "sequential_ops_s": sequential_ops,
        "pipelined_ops_s": pipelined_ops,
        "overhead_x": sequential_ops / pipelined_ops,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="small sizes for CI"
    )
    parser.add_argument(
        "--replicas", type=int, default=4, help="fan-out width (default 4)"
    )
    parser.add_argument(
        "--latency-ms", type=float, default=2.0, help="per-link ack latency"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail unless pipelined beats sequential by this factor",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH", help="write results JSON"
    )
    args = parser.parse_args(argv)

    writes = 64 if args.smoke else 256
    latency_s = args.latency_ms / 1000.0
    windows = (1, 2, 4, 8) if args.smoke else (1, 2, 4, 8, 16)

    print(
        f"fan-out scheduler bench: {writes} writes x {args.replicas} replicas, "
        f"{args.latency_ms:g} ms ack latency\n"
    )
    print(f"{'window':>7} {'sequential':>12} {'pipelined':>12} {'speedup':>9}")
    rows = []
    for window in windows:
        row = bench_makespan(writes, args.replicas, latency_s, window)
        rows.append(row)
        print(
            f"{row['window']:>7} {row['sequential_s']:>11.3f}s "
            f"{row['pipelined_s']:>11.3f}s {row['speedup']:>8.2f}x"
        )

    overhead = bench_overhead(writes, args.replicas, windows[-1])
    print(
        f"\nzero-latency overhead: sequential "
        f"{overhead['sequential_ops_s']:,.0f} ops/s, pipelined "
        f"{overhead['pipelined_ops_s']:,.0f} ops/s "
        f"({overhead['overhead_x']:.2f}x machinery cost)"
    )

    if args.out:
        payload = {"makespan": rows, "overhead": overhead}
        Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"results written to {args.out}")

    if args.min_speedup is not None:
        best = rows[-1]["speedup"]
        if best < args.min_speedup:
            print(
                f"FAIL: window={rows[-1]['window']} speedup {best:.2f}x < "
                f"required {args.min_speedup:.2f}x",
                file=sys.stderr,
            )
            return 1
        print(
            f"gate OK: window={rows[-1]['window']} speedup {best:.2f}x >= "
            f"{args.min_speedup:.2f}x"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
