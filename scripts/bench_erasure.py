#!/usr/bin/env python
"""Erasure-tier benchmark: wire, storage, and repair bandwidth vs mirrors.

Replays a seeded row-level (TPC-C-style) update workload through two
stacks with the *same* fault tolerance f=2 — a k=4/n=6 erasure stripe
group and 3 full mirrors — and records what each moved on the wire and
keeps on disk.  Then it loses one fragment holder and rebuilds it from
survivors, recording the regenerating-repair bandwidth against the full
re-mirror a replica tier would need.  All byte counts are simulated and
deterministic under the fixed seeds, so the CI gate checks them exactly;
the headline gates are that erasure beats the equally tolerant mirrors
on combined wire+storage bytes and that repair ships at most
``--max-repair`` of the volume (the ``volume / k`` regenerating bound,
0.25 here — the check uses 0.30 for slack against future PDU framing).

Usage::

    # refresh the tracked artifact (full sweep + smoke keys)
    PYTHONPATH=src python scripts/bench_erasure.py --out BENCH_erasure.json

    # CI smoke: re-run the smoke configs and gate against the artifact
    PYTHONPATH=src python scripts/bench_erasure.py --smoke \
        --check BENCH_erasure.json --max-repair 0.30

Only the standard library + the repo itself are required.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api import ReplicationConfig, open_primary  # noqa: E402
from repro.common.rng import make_rng  # noqa: E402
from repro.workloads.content import random_bytes  # noqa: E402

BLOCK = 8192
ROW = 300  # one TPC-C-ish hot-row update per page write
K, N = 4, 6  # erasure code shape: tolerates f = n - k = 2
MIRRORS = 3  # f + 1 mirrors for the same tolerance f = 2
STRATEGIES = ("traditional", "prins")
BLOCKS = 1024
SMOKE_BLOCKS = 256
WRITES_PER_BLOCKS = 2  # workload size = blocks * this


def _key(mode: str, strategy: str, blocks: int) -> str:
    return f"{mode}/{strategy}/{blocks}"


def _workload(blocks: int) -> list[tuple[int, int]]:
    """Seeded (lba, row offset) updates — identical for both stacks."""
    rng = make_rng(6, "erasure-bench", blocks)
    return [
        (int(rng.integers(0, blocks)), int(rng.integers(0, BLOCK - ROW)))
        for _ in range(blocks * WRITES_PER_BLOCKS)
    ]


def _base_image(blocks: int) -> bytes:
    rng = make_rng(7, "erasure-base", blocks)
    return random_bytes(rng, BLOCK * blocks)


def _run_stack(config: ReplicationConfig, blocks: int) -> dict:
    """Replay the workload; return wire and storage totals."""
    rng = make_rng(8, "erasure-rows", blocks)
    with open_primary(config, initial_image=_base_image(blocks)) as stack:
        engine = stack.engine
        for lba, offset in _workload(blocks):
            page = bytearray(engine.read_block(lba))
            page[offset : offset + ROW] = random_bytes(rng, ROW)
            engine.write_block(lba, bytes(page))
        stack.drain()
        assert stack.verify(), "stack diverged during the benchmark"
        accountant = engine.accountant
        return {
            "wire_bytes": accountant.payload_bytes + accountant.pdu_bytes,
            "payload_bytes": accountant.payload_bytes,
            "pdu_bytes": accountant.pdu_bytes,
            "storage_bytes": sum(
                d.block_size * d.num_blocks for d in stack.replica_devices
            ),
            "writes": accountant.writes_total,
        }


def _run_repair(strategy: str, blocks: int) -> dict:
    """Lose one fragment holder after the workload; rebuild from survivors."""
    config = ReplicationConfig(
        strategy=strategy, block_size=BLOCK, num_blocks=blocks,
        redundancy="erasure", k=K, n=N,
    )
    rng = make_rng(8, "erasure-rows", blocks)
    with open_primary(config, initial_image=_base_image(blocks)) as stack:
        engine = stack.engine
        for lba, offset in _workload(blocks):
            page = bytearray(engine.read_block(lba))
            page[offset : offset + ROW] = random_bytes(rng, ROW)
            engine.write_block(lba, bytes(page))
        stack.drain()
        codec = engine.stripe_codec
        lost = N - 1  # a parity holder: the general (scaled-fold) case
        stack.replica_devices[lost].load(
            bytes(codec.fragment_size * blocks)
        )
        t0 = time.perf_counter()
        report = stack.repair_fragment(lost)
        wall_ms = (time.perf_counter() - t0) * 1e3
        assert stack.verify(), "repair left the stripe group inconsistent"
        volume = BLOCK * blocks
        return {
            "volume_bytes": volume,
            "repair_read_bytes": report.read_bytes,
            "repair_write_bytes": report.written_bytes,
            "remirror_bytes": volume,  # what rebuilding a full mirror ships
            "wall_ms": round(wall_ms, 2),
        }


def bench_all(blocks: int) -> dict[str, dict]:
    results: dict[str, dict] = {}
    for strategy in STRATEGIES:
        erasure = _run_stack(
            ReplicationConfig(
                strategy=strategy, block_size=BLOCK, num_blocks=blocks,
                redundancy="erasure", k=K, n=N,
            ),
            blocks,
        )
        mirror = _run_stack(
            ReplicationConfig(
                strategy=strategy, block_size=BLOCK, num_blocks=blocks,
                replicas=MIRRORS,
            ),
            blocks,
        )
        repair = _run_repair(strategy, blocks)
        results[_key("erasure", strategy, blocks)] = erasure
        results[_key("mirror", strategy, blocks)] = mirror
        results[_key("repair", strategy, blocks)] = repair
        print(
            f"  {strategy:12s} {blocks:5d} blocks: "
            f"wire {erasure['wire_bytes']:>12,} B vs "
            f"{mirror['wire_bytes']:>12,} B mirrored "
            f"({erasure['wire_bytes'] / mirror['wire_bytes']:.2f}x), "
            f"storage {erasure['storage_bytes'] / mirror['storage_bytes']:.2f}x"
        )
        print(
            f"  {'':12s} repair shipped "
            f"{repair['repair_write_bytes']:>12,} B "
            f"({repair['repair_write_bytes'] / repair['volume_bytes']:.2f} "
            f"of volume; re-mirror would ship {repair['remirror_bytes']:,} B)"
        )
    return results


def _git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, check=True,
        ).stdout.strip()
    except Exception:
        return "unknown"


def _check(results: dict, recorded_path: str, max_repair: float) -> int:
    """Gate a fresh run against the tracked artifact.

    Three checks: (1) simulated byte counts are deterministic, so every
    fresh number must match the recorded one exactly — drift means the
    wire protocol or code shape changed and the artifact needs a
    deliberate refresh; (2) at every strategy the erasure tier must beat
    the equally fault-tolerant mirror set on combined wire+storage bytes
    (storage strictly, wire within 5% — delta strategies ship
    near-parity wire because the deltas were already tiny); (3)
    rebuilding a lost fragment must ship at most ``max_repair`` of the
    volume (regenerating repair, not a full re-mirror).
    """
    recorded = json.loads(Path(recorded_path).read_text()).get("results", {})
    failures = []
    for key, fresh in sorted(results.items()):
        ref = recorded.get(key)
        if ref is None:
            failures.append(f"{key}: missing from {recorded_path}")
            continue
        for field in ("wire_bytes", "repair_write_bytes", "storage_bytes"):
            if field in fresh and fresh[field] != ref.get(field):
                failures.append(
                    f"{key}: {field} {fresh[field]:,} != recorded "
                    f"{ref.get(field):,} (protocol changed? refresh artifact)"
                )
    for key, fresh in sorted(results.items()):
        mode, strategy, blocks = key.split("/")
        if mode == "erasure":
            mirror = results.get(f"mirror/{strategy}/{blocks}")
            if mirror:
                # full-block strategies halve the wire; delta strategies
                # ship near-parity wire (the deltas were already tiny) —
                # so the wire gate is "never meaningfully more", and the
                # combined wire+storage total must beat mirrors outright
                wire_ok = (
                    fresh["wire_bytes"] <= 1.05 * mirror["wire_bytes"]
                )
                disk_ok = fresh["storage_bytes"] < mirror["storage_bytes"]
                total_ok = (
                    fresh["wire_bytes"] + fresh["storage_bytes"]
                    < mirror["wire_bytes"] + mirror["storage_bytes"]
                )
                ok = wire_ok and disk_ok and total_ok
                marker = "ok" if ok else "FAIL"
                print(
                    f"  gate {key:28s} wire "
                    f"{fresh['wire_bytes'] / mirror['wire_bytes']:5.2f}x, "
                    f"storage "
                    f"{fresh['storage_bytes'] / mirror['storage_bytes']:5.2f}x "
                    f"of {MIRRORS} mirrors   [{marker}]"
                )
                if not ok:
                    failures.append(
                        f"{key}: erasure does not beat {MIRRORS} mirrors "
                        f"(wire {fresh['wire_bytes']:,} vs "
                        f"{mirror['wire_bytes']:,}, storage "
                        f"{fresh['storage_bytes']:,} vs "
                        f"{mirror['storage_bytes']:,})"
                    )
        elif mode == "repair":
            ratio = fresh["repair_write_bytes"] / fresh["volume_bytes"]
            marker = "FAIL" if ratio > max_repair else "ok"
            print(
                f"  gate {key:28s} repair {ratio:5.2f} of volume "
                f"(max {max_repair:.2f})   [{marker}]"
            )
            if ratio > max_repair:
                failures.append(
                    f"{key}: repair shipped {ratio:.2f} of the volume "
                    f"(gate {max_repair:.2f}; regenerating bound is 1/k = "
                    f"{1 / K:.2f})"
                )
    if failures:
        print("ERASURE GATE FAILED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(
        f"all erasure benchmarks match {recorded_path}; erasure beats "
        f"{MIRRORS} mirrors on wire and storage, repair stays within "
        f"{max_repair:.2f} of volume"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_erasure.json"),
        help="JSON artifact to write (full runs also record smoke keys)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small volume for CI",
    )
    parser.add_argument(
        "--check", metavar="PATH", default=None,
        help="gate this run against the artifact at PATH instead of writing",
    )
    parser.add_argument(
        "--max-repair", type=float, default=0.30,
        help="with --check: max repair-write/volume ratio (default 0.30)",
    )
    args = parser.parse_args(argv)

    print(f"erasure tier benchmark k={K} n={N} vs {MIRRORS} mirrors "
          f"(smoke={args.smoke})")
    if args.smoke:
        results = bench_all(SMOKE_BLOCKS)
    else:
        results = bench_all(BLOCKS)
        # full runs also capture the smoke keys so CI can gate exactly
        results.update(bench_all(SMOKE_BLOCKS))

    if args.check:
        return _check(results, args.check, args.max_repair)

    doc = {
        "schema": 1,
        "config": {
            "block_size": BLOCK,
            "row_bytes": ROW,
            "k": K,
            "n": N,
            "mirrors": MIRRORS,
            "strategies": list(STRATEGIES),
            "volumes": {"full": BLOCKS, "smoke": SMOKE_BLOCKS},
            "writes_per_blocks": WRITES_PER_BLOCKS,
            "units": {
                "wire_bytes": "simulated bytes on the wire (deterministic)",
                "repair_write_bytes": "bytes shipped to the replacement",
                "wall_ms": "repair wall-clock, informational only",
            },
            "key": "mode/strategy/volume_blocks",
        },
        "results": results,
        "meta": {
            "git": _git_rev(),
            "python": sys.version.split()[0],
            "captured_at": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            ),
            "smoke": args.smoke,
        },
    }
    Path(args.out).write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n"
    )
    print(f"\nresults written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
