#!/usr/bin/env python
"""Concurrency benchmark: process codec workers + transport tier parity.

Times the encode-bound mix the GIL actually throttles — PRINS parity
deltas through the ``rle+zlib`` codec at 64 KiB blocks, shipped in
``write_many``-sized windows — inline versus the
:class:`~repro.engine.workers.CodecWorkerPool` at 1/2/4 workers, and
verifies the two tiers of the concurrency contract:

* **throughput** — with 4 workers the pool must reach at least
  ``--min-speedup`` (default 2.0x) over inline encode.  The gate is
  core-aware: wall-clock speedup is physically unreachable on a
  single-core runner, so it is enforced only when at least
  ``--gate-cores`` (default 4) usable cores exist — CI's runners have
  them; the measured core count is recorded either way;
* **identity** — every pool-encoded frame must be byte-identical to the
  inline frame (asserted inline during the run); the default engine
  path must produce byte-identical replica images and payload ledgers
  with ``workers="process"``; and 64 concurrent sessions against the
  asyncio target must move exactly the same wire bytes as the same 64
  sessions against the thread-per-session target.  Identity gates are
  deterministic and enforced unconditionally.

Usage::

    # refresh the tracked artifact (full sweep + smoke keys)
    PYTHONPATH=src python scripts/bench_concurrency.py --out BENCH_concurrency.json

    # CI smoke: identity gates + core-aware speedup floor
    PYTHONPATH=src python scripts/bench_concurrency.py --smoke \
        --check BENCH_concurrency.json --min-speedup 2.0

Only the standard library + the repo itself are required.
"""

from __future__ import annotations

import argparse
import asyncio
import hashlib
import json
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api import ReplicationConfig, open_primary  # noqa: E402
from repro.block import MemoryBlockDevice  # noqa: E402
from repro.common.rng import make_rng  # noqa: E402
from repro.engine.workers import CodecWorkerPool, available_cores  # noqa: E402
from repro.iscsi import (  # noqa: E402
    AsyncTargetServer,
    Initiator,
    TargetServer,
    TcpTransport,
)
from repro.iscsi.aio import run_sessions  # noqa: E402
from repro.parity.codecs import get_codec  # noqa: E402
from repro.parity.frame import encode_frames  # noqa: E402

BLOCK = 65536
CODEC = "rle+zlib"
WINDOW = 32  # payloads per encode window (one write_many burst)
WINDOWS = {"full": 12, "smoke": 4}
WORKER_COUNTS = (1, 2, 4)
SESSIONS = 64
SESSION_OPS = {"full": 8, "smoke": 3}

ENGINE_BS = 8192
ENGINE_BLOCKS = 128
ENGINE_WRITES = {"full": 512, "smoke": 128}


def _payloads(windows: int) -> list[list[bytes]]:
    """Deterministic encode-bound windows: half sparse deltas, half noise."""
    rng = make_rng(31, "bench-concurrency", windows)
    out = []
    for _ in range(windows):
        window = []
        for index in range(WINDOW):
            if index % 2 == 0:
                block = bytearray(BLOCK)
                for _ in range(64):
                    block[int(rng.integers(0, BLOCK))] = int(
                        rng.integers(1, 256)
                    )
                window.append(bytes(block))
            else:
                window.append(rng.bytes(BLOCK))
        out.append(window)
    return out


def bench_encode(windows: int) -> dict:
    """Inline vs pool encode over the same windows; frames must match."""
    codec = get_codec(CODEC)
    batches = _payloads(windows)

    t0 = time.perf_counter()
    inline_frames = [encode_frames(codec, window) for window in batches]
    inline_ms = (time.perf_counter() - t0) * 1e3

    digest = hashlib.sha256()
    for frames in inline_frames:
        for frame in frames:
            digest.update(frame)

    results = {
        "inline": {"wall_ms": round(inline_ms, 2), "speedup": 1.0},
        "frames_sha": digest.hexdigest(),
        "codec": CODEC,
        "windows": windows,
        "window_items": WINDOW,
        "block_bytes": BLOCK,
    }
    for count in WORKER_COUNTS:
        with CodecWorkerPool(
            worker_count=count, ring_slots=8, block_size=BLOCK
        ) as pool:
            pool.encode_frames(codec, batches[0])  # warm the rings
            t0 = time.perf_counter()
            pool_frames = [
                pool.encode_frames(codec, window) for window in batches
            ]
            pool_ms = (time.perf_counter() - t0) * 1e3
        if pool_frames != inline_frames:
            raise AssertionError(
                f"pool frames diverged from inline at {count} workers"
            )
        results[f"process{count}"] = {
            "wall_ms": round(pool_ms, 2),
            "speedup": round(inline_ms / pool_ms, 3) if pool_ms else 0.0,
        }
        print(
            f"  encode {CODEC:10s} workers={count}  "
            f"{pool_ms:8.1f} ms  {inline_ms / pool_ms:6.3f}x vs inline "
            f"({inline_ms:.1f} ms)"
        )
    return results


def bench_engine_identity(writes: int) -> dict:
    """Default facade path: process workers must change nothing observable."""
    rng = make_rng(7, "bench-concurrency-engine", writes)
    stream = [
        (int(rng.integers(0, ENGINE_BLOCKS)), rng.bytes(ENGINE_BS))
        for _ in range(writes)
    ]

    def run(**concurrency):
        config = ReplicationConfig(
            block_size=ENGINE_BS,
            num_blocks=ENGINE_BLOCKS,
            replicas=2,
            codec=CODEC,
            **concurrency,
        )
        with open_primary(config) as stack:
            t0 = time.perf_counter()
            stack.engine.write_many(stream)
            stack.drain()
            wall_ms = (time.perf_counter() - t0) * 1e3
            assert stack.verify()
            image = hashlib.sha256()
            for device in stack.replica_devices:
                image.update(device.snapshot())
            return {
                "image_sha": image.hexdigest(),
                "payload_bytes": int(stack.engine.accountant.payload_bytes),
                "wall_ms": round(wall_ms, 2),
            }

    inline = run()
    process = run(workers="process", worker_count=4, ring_slots=8)
    if (inline["image_sha"], inline["payload_bytes"]) != (
        process["image_sha"],
        process["payload_bytes"],
    ):
        raise AssertionError(
            "workers='process' broke engine-path byte identity"
        )
    print(
        f"  engine identity: {writes} writes, payload "
        f"{inline['payload_bytes']:,} B, images identical"
    )
    return {"writes": writes, "inline": inline, "process4": process}


def bench_wire_parity(session_ops: int) -> dict:
    """64 sessions against both target tiers must move identical bytes."""

    def make_script(index: int):
        async def script(session):
            for op in range(session_ops):
                lba = (index * session_ops + op) % 256
                await session.write(lba, bytes([(lba % 255) + 1]) * 512)
                await session.read(lba)
            await session.ping(b"bench")
            t = session.transport
            return (
                t.bytes_sent,
                t.bytes_received,
                t.pdus_sent,
                t.pdus_received,
            )

        return script

    scripts = [make_script(i) for i in range(SESSIONS)]

    def drive_threaded():
        """The same op sequence, synchronously, against the threaded tier."""
        totals = []
        server = TargetServer(MemoryBlockDevice(512, 256)).start()
        try:
            host, port = server.address
            for index in range(SESSIONS):
                initiator = Initiator(
                    TcpTransport.connect(host, port), timeout=10
                )
                initiator.login()
                for op in range(session_ops):
                    lba = (index * session_ops + op) % 256
                    initiator.write(lba, bytes([(lba % 255) + 1]) * 512)
                    initiator.read(lba)
                initiator.ping(b"bench")
                t = initiator.transport
                totals.append(
                    (t.bytes_sent, t.bytes_received, t.pdus_sent,
                     t.pdus_received)
                )
                initiator.logout()
        finally:
            server.close()
        return totals

    t0 = time.perf_counter()
    threaded = drive_threaded()
    threaded_ms = (time.perf_counter() - t0) * 1e3

    server = AsyncTargetServer(MemoryBlockDevice(512, 256)).serve_background()
    try:
        host, port = server.address
        t0 = time.perf_counter()
        aio = asyncio.run(run_sessions(host, port, scripts))
        aio_ms = (time.perf_counter() - t0) * 1e3
        served = server.snapshot()["sessions_served"]
    finally:
        server.stop_background()

    # logout byte parity: async scripts sample counters before logout, the
    # sync driver too — totals are per-session (sent, received, pdu) tuples
    if aio != threaded:
        raise AssertionError(
            "asyncio tier wire bytes diverged from the threaded tier"
        )
    wire_sha = hashlib.sha256(repr(threaded).encode()).hexdigest()
    print(
        f"  wire parity: {SESSIONS} sessions x {session_ops} ops, "
        f"threaded {threaded_ms:.0f} ms / asyncio {aio_ms:.0f} ms, "
        f"bytes identical"
    )
    return {
        "sessions": SESSIONS,
        "session_ops": session_ops,
        "sessions_served_async": served,
        "wire_sha": wire_sha,
        "threaded_wall_ms": round(threaded_ms, 2),
        "asyncio_wall_ms": round(aio_ms, 2),
    }


def bench_all(scale: str) -> dict:
    print(f"concurrency benchmark ({scale}, cores={available_cores()})")
    return {
        f"encode/{scale}": bench_encode(WINDOWS[scale]),
        f"engine/{scale}": bench_engine_identity(ENGINE_WRITES[scale]),
        f"wire/{scale}": bench_wire_parity(SESSION_OPS[scale]),
    }


def _check(
    results: dict, recorded_path: str, min_speedup: float, gate_cores: int
) -> int:
    """Gate a fresh run: identity exactly, throughput core-aware."""
    recorded = json.loads(Path(recorded_path).read_text()).get("results", {})
    failures = []
    for key, fresh in sorted(results.items()):
        ref = recorded.get(key)
        if ref is None:
            failures.append(f"{key}: missing from {recorded_path}")
            continue
        for field in ("frames_sha", "image_sha", "wire_sha"):
            kind = key.split("/")[0]
            fresh_value = _identity_field(kind, fresh, field)
            ref_value = _identity_field(kind, ref, field)
            if fresh_value != ref_value:
                failures.append(
                    f"{key}: {field} {fresh_value} != recorded {ref_value} "
                    f"(wire or codec change? refresh artifact)"
                )
    cores = available_cores()
    for key, fresh in sorted(results.items()):
        if not key.startswith("encode/"):
            continue
        speedup = fresh["process4"]["speedup"]
        if cores < gate_cores:
            print(
                f"  gate {key:16s} {speedup:6.3f}x  [skipped: "
                f"{cores} usable core(s) < {gate_cores}]"
            )
            continue
        marker = "FAIL" if speedup < min_speedup else "ok"
        print(
            f"  gate {key:16s} {speedup:6.3f}x "
            f"(floor {min_speedup:.1f}x at 4 workers)   [{marker}]"
        )
        if speedup < min_speedup:
            failures.append(
                f"{key}: 4-worker speedup {speedup:.3f}x below the "
                f"{min_speedup:.1f}x floor on {cores} cores"
            )
    if failures:
        print("CONCURRENCY GATE FAILED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(
        f"concurrency gates pass: byte identity exact; throughput "
        f"{'enforced' if cores >= gate_cores else 'recorded (low-core host)'}"
    )
    return 0


def _identity_field(kind: str, cell: dict, field: str):
    if field == "image_sha" and kind == "engine":
        return cell["inline"][field]
    return cell.get(field)


def _git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, check=True,
        ).stdout.strip()
    except Exception:
        return "unknown"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_concurrency.json"),
        help="JSON artifact to write (full runs also record smoke keys)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="smaller windows / fewer ops for CI",
    )
    parser.add_argument(
        "--check", metavar="PATH", default=None,
        help="gate this run against the artifact at PATH instead of writing",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=2.0,
        help="with --check: 4-worker encode speedup floor (default 2.0)",
    )
    parser.add_argument(
        "--gate-cores", type=int, default=4,
        help="enforce the speedup floor only with >= this many usable cores",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        results = bench_all("smoke")
    else:
        results = bench_all("full")
        results.update(bench_all("smoke"))

    if args.check:
        return _check(
            results, args.check, args.min_speedup, args.gate_cores
        )

    doc = {
        "schema": 1,
        "config": {
            "codec": CODEC,
            "block_bytes": BLOCK,
            "window_items": WINDOW,
            "windows": WINDOWS,
            "sessions": SESSIONS,
            "engine": {
                "block_size": ENGINE_BS,
                "num_blocks": ENGINE_BLOCKS,
                "writes": ENGINE_WRITES,
            },
            "units": {
                "speedup": "inline encode wall / pool encode wall",
                "wall_ms": "wall-clock, informational only",
            },
            "key": "<bench>/<scale>",
        },
        "results": results,
        "meta": {
            "git": _git_rev(),
            "python": sys.version.split()[0],
            "cores": available_cores(),
            "captured_at": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            ),
            "smoke": args.smoke,
        },
    }
    Path(args.out).write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n"
    )
    print(f"\nresults written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
