#!/usr/bin/env python3
"""Markdown link checker for the repo's documentation set.

Stdlib-only (runs anywhere Python runs, no pip installs). For each
documentation file it verifies that

* every relative markdown link target ``[text](path)`` exists on disk,
  resolved against the file containing the link (anchors and query
  strings are stripped; ``http(s)://`` and ``mailto:`` links are skipped —
  this repo's docs must stay navigable offline);
* every intra-document anchor ``[text](#section)`` matches a heading in
  the same file, using GitHub's slugification rules (lowercase, spaces
  to hyphens, punctuation dropped);
* every *code path* reference of the form ```` `tests/...` ````,
  ```` `benchmarks/...` ````, ```` `examples/...` ```` or
  ```` `scripts/...` ```` names a real file or directory (module dotted
  paths like ``repro.engine.batch`` are checked as ``src/`` paths).

Exit status is the number of broken references (0 == all good), so CI
can gate on it directly::

    python scripts/check_doc_links.py README.md DESIGN.md ARCHITECTURE.md
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

DEFAULT_DOCS = [
    "README.md",
    "DESIGN.md",
    "ARCHITECTURE.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "CHANGES.md",
]

#: ``[text](target)`` — non-greedy text, target up to the closing paren.
_LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")

#: `` `path/to/thing.py` `` — backticked references into the checked trees.
_CODE_PATH = re.compile(
    r"`((?:src|tests|benchmarks|examples|scripts|paper_scale_results)"
    r"[A-Za-z0-9_./-]*)`"
)

#: ``repro.engine.batch``-style dotted module references in backticks.
_MODULE = re.compile(r"`(repro(?:\.[a-z_][a-z0-9_]*)+)`")

#: markdown headings, for anchor validation.
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)

_EXTERNAL = ("http://", "https://", "mailto:")


def github_slug(heading: str) -> str:
    """Return the GitHub anchor slug for a heading line."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # unwrap code spans
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # unwrap links
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def module_to_paths(dotted: str) -> list[Path]:
    """Candidate filesystem locations for a dotted ``repro.*`` reference.

    The last component may be a function/class inside a module
    (``repro.engine.sync.digest_sync``), so the parent module file is
    also accepted as a match.
    """
    parts = dotted.split(".")
    rel = Path("src", *parts)
    candidates = [rel.with_suffix(".py"), rel]  # module file or package dir
    if len(parts) > 2:  # attribute of a module: check the parent module
        parent = Path("src", *parts[:-1])
        candidates.append(parent.with_suffix(".py"))
    return candidates


def check_file(doc: Path) -> list[str]:
    """Return a list of human-readable problems found in ``doc``."""
    problems: list[str] = []
    text = doc.read_text(encoding="utf-8")
    slugs = {github_slug(h) for h in _HEADING.findall(text)}

    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(_EXTERNAL):
            continue
        if target.startswith("#"):
            if target[1:] not in slugs:
                problems.append(f"{doc.name}: broken anchor {target!r}")
            continue
        path_part = target.split("#", 1)[0].split("?", 1)[0]
        if not path_part:
            continue
        resolved = (doc.parent / path_part).resolve()
        if not resolved.exists():
            problems.append(f"{doc.name}: broken link {target!r}")

    for match in _CODE_PATH.finditer(text):
        ref = match.group(1).rstrip("/")
        if not (REPO_ROOT / ref).exists():
            problems.append(f"{doc.name}: missing code path `{ref}`")

    for match in _MODULE.finditer(text):
        dotted = match.group(1)
        if not any((REPO_ROOT / p).exists() for p in module_to_paths(dotted)):
            problems.append(f"{doc.name}: missing module `{dotted}`")

    return problems


def main(argv: list[str]) -> int:
    """Check the given docs (or the default set); return the error count."""
    names = argv or DEFAULT_DOCS
    problems: list[str] = []
    checked = 0
    for name in names:
        doc = (REPO_ROOT / name).resolve()
        if not doc.exists():
            problems.append(f"{name}: documentation file itself is missing")
            continue
        checked += 1
        problems.extend(check_file(doc))
    for problem in problems:
        print(f"BROKEN  {problem}")
    print(f"checked {checked} file(s): {len(problems)} broken reference(s)")
    return len(problems)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
