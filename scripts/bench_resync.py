#!/usr/bin/env python
"""Resync-tier benchmark: reconcile vs digest heal cost after an outage.

Sweeps dirty fractions over a pre-synced PRINS pair, overflows the
backlog during a simulated outage of row-level (TPC-C-style) page
updates, then heals once per resync tier and records what each tier
moved.  Wire bytes are *simulated* (deterministic under the fixed
seeds), so the recorded numbers are runner-independent: the CI gate
checks them exactly, plus the headline ratio — at 1% dirty the
reconcile tier must ship at most 10% of the digest sweep's bytes.

Usage::

    # refresh the tracked artifact (full sweep + smoke keys)
    PYTHONPATH=src python scripts/bench_resync.py --out BENCH_resync.json

    # CI smoke: re-run the smoke configs and gate against the artifact
    PYTHONPATH=src python scripts/bench_resync.py --smoke \
        --check BENCH_resync.json --max-ratio 0.10

Only the standard library + the repo itself are required.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.block import MemoryBlockDevice  # noqa: E402
from repro.common.rng import make_rng  # noqa: E402
from repro.engine import (  # noqa: E402
    DirectLink,
    PrimaryEngine,
    ReplicaEngine,
    ResilienceConfig,
    make_strategy,
    verify_consistency,
)
from repro.workloads.content import random_bytes  # noqa: E402

BLOCK = 8192
ROW = 300  # one TPC-C-ish hot-row update per page write
BLOCKS = 2048
DIRTY_FRACTIONS = (0.005, 0.01, 0.02, 0.05)
WRITES_PER_DIRTY_PAGE = 4

SMOKE_BLOCKS = 512
SMOKE_DIRTY_FRACTIONS = (0.01,)


def _key(tier: str, blocks: int, fraction: float) -> str:
    return f"{tier}/{blocks}/{int(fraction * 1000)}"


def _build_stack(resync: str, blocks: int):
    strategy = make_strategy("prins")
    primary_dev = MemoryBlockDevice(BLOCK, blocks)
    replica_dev = MemoryBlockDevice(BLOCK, blocks)
    replica = ReplicaEngine(replica_dev, strategy)
    engine = PrimaryEngine(
        primary_dev,
        strategy,
        [DirectLink(replica)],
        resilience=ResilienceConfig(
            resync=resync,
            backlog_capacity_bytes=2048,  # overflow fast: force the tier
        ),
    )
    rng = make_rng(4, "resync-base", blocks)
    for lba in range(blocks):
        data = random_bytes(rng, BLOCK)
        primary_dev.write_block(lba, data)
        replica_dev.write_block(lba, data)
    return engine, primary_dev, replica_dev


def _outage(engine, blocks: int, fraction: float) -> int:
    """Row-level updates over a small dirty page set; returns write count."""
    rng = make_rng(9, "resync-dirty", blocks, int(fraction * 10000))
    dirty = [
        int(lba)
        for lba in rng.choice(
            blocks, max(1, int(blocks * fraction)), replace=False
        )
    ]
    hot_row = {lba: int(rng.integers(0, BLOCK - ROW)) for lba in dirty}
    engine.fail_link(0)
    writes = len(dirty) * WRITES_PER_DIRTY_PAGE
    for _ in range(writes):
        lba = int(rng.choice(dirty))
        page = bytearray(engine.read_block(lba))
        off = hot_row[lba]
        page[off : off + ROW] = random_bytes(rng, ROW)
        engine.write_block(lba, bytes(page))
    return writes


def _measure(resync: str, blocks: int, fraction: float) -> dict:
    engine, primary_dev, replica_dev = _build_stack(resync, blocks)
    _outage(engine, blocks, fraction)
    t0 = time.perf_counter()
    outcome = engine.heal_link(0)
    wall_ms = (time.perf_counter() - t0) * 1e3
    divergent = verify_consistency(primary_dev, replica_dev)
    if divergent:
        raise AssertionError(
            f"{resync} heal left {len(divergent)} divergent blocks"
        )
    if resync == "reconcile":
        assert outcome.mode == "reconcile", outcome.tiers
        report = outcome.reconcile
        return {
            "wire_bytes": report.wire_bytes,
            "sketch_bytes": report.sketch_bytes,
            "digest_bytes": report.digest_bytes,
            "diff_bytes": report.diff_bytes,
            "rounds": report.rounds,
            "dirty_lbas": report.dirty_lbas_found,
            "wall_ms": round(wall_ms, 2),
        }
    assert outcome.mode == "digest", outcome.tiers
    report = outcome.sync_report
    return {
        "wire_bytes": report.wire_bytes,
        "digest_bytes": report.digest_bytes,
        "diff_bytes": report.bytes_copied,
        "dirty_lbas": report.blocks_copied,
        "wall_ms": round(wall_ms, 2),
    }


def bench_all(blocks: int, fractions) -> dict[str, dict]:
    results: dict[str, dict] = {}
    for fraction in fractions:
        for tier in ("reconcile", "digest"):
            key = _key(tier, blocks, fraction)
            results[key] = _measure(tier, blocks, fraction)
            r = results[key]
            print(
                f"  {key:22s} {r['wire_bytes']:>12,} wire B"
                f"  {r['wall_ms']:>8.1f} ms"
            )
        rec = results[_key("reconcile", blocks, fraction)]["wire_bytes"]
        dig = results[_key("digest", blocks, fraction)]["wire_bytes"]
        print(f"  {'-> ratio':22s} {rec / dig:12.3f}x of digest sweep")
    return results


def _git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, check=True,
        ).stdout.strip()
    except Exception:
        return "unknown"


def _check(results: dict, recorded_path: str, max_ratio: float) -> int:
    """Gate a fresh run against the tracked artifact.

    Two checks: (1) simulated wire bytes are deterministic, so every
    fresh number must match the recorded one exactly — a drift means
    the resync protocol changed and the artifact needs a deliberate
    refresh; (2) at every measured dirty fraction the reconcile tier
    must stay within ``max_ratio`` of the digest sweep's bytes.
    """
    recorded = json.loads(Path(recorded_path).read_text()).get("results", {})
    failures = []
    for key, fresh in sorted(results.items()):
        ref = recorded.get(key)
        if ref is None:
            failures.append(f"{key}: missing from {recorded_path}")
            continue
        if fresh["wire_bytes"] != ref["wire_bytes"]:
            failures.append(
                f"{key}: wire bytes {fresh['wire_bytes']:,} != recorded "
                f"{ref['wire_bytes']:,} (protocol changed? refresh artifact)"
            )
    ratios = {}
    for key, fresh in results.items():
        tier, blocks, permille = key.split("/")
        if tier == "reconcile":
            digest = results.get(f"digest/{blocks}/{permille}")
            if digest:
                ratios[key] = fresh["wire_bytes"] / digest["wire_bytes"]
    for key, ratio in sorted(ratios.items()):
        marker = "FAIL" if ratio > max_ratio else "ok"
        print(f"  gate {key:22s} {ratio:6.3f}x of digest   [{marker}]")
        if ratio > max_ratio:
            failures.append(
                f"{key}: reconcile moved {ratio:.3f}x the digest sweep's "
                f"bytes (gate {max_ratio:.2f}x)"
            )
    if failures:
        print("RESYNC GATE FAILED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(
        f"all resync benchmarks match {recorded_path} and reconcile stays "
        f"within {max_ratio:.2f}x of the digest sweep"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_resync.json"),
        help="JSON artifact to write (full runs also record smoke keys)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small volume / single fraction for CI",
    )
    parser.add_argument(
        "--check", metavar="PATH", default=None,
        help="gate this run against the artifact at PATH instead of writing",
    )
    parser.add_argument(
        "--max-ratio", type=float, default=0.10,
        help="with --check: max reconcile/digest wire-byte ratio (default 0.10)",
    )
    args = parser.parse_args(argv)

    print(f"resync tier benchmark (smoke={args.smoke})")
    if args.smoke:
        results = bench_all(SMOKE_BLOCKS, SMOKE_DIRTY_FRACTIONS)
    else:
        results = bench_all(BLOCKS, DIRTY_FRACTIONS)
        # full runs also capture the smoke keys so CI can gate exactly
        results.update(bench_all(SMOKE_BLOCKS, SMOKE_DIRTY_FRACTIONS))

    if args.check:
        return _check(results, args.check, args.max_ratio)

    doc = {
        "schema": 1,
        "config": {
            "block_size": BLOCK,
            "row_bytes": ROW,
            "writes_per_dirty_page": WRITES_PER_DIRTY_PAGE,
            "volumes": {"full": BLOCKS, "smoke": SMOKE_BLOCKS},
            "dirty_fractions": list(DIRTY_FRACTIONS),
            "units": {
                "wire_bytes": "simulated bytes on the wire (deterministic)",
                "wall_ms": "heal wall-clock, informational only",
            },
            "key": "tier/volume_blocks/dirty_permille",
        },
        "results": results,
        "meta": {
            "git": _git_rev(),
            "python": sys.version.split()[0],
            "captured_at": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            ),
            "smoke": args.smoke,
        },
    }
    Path(args.out).write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n"
    )
    print(f"\nresults written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
