#!/usr/bin/env python
"""Remote mirroring over real TCP sockets — the paper's deployment shape.

Starts an iSCSI target (the replica node) on a loopback socket, connects a
PRINS primary to it exactly as the paper's PRINS-engine does ("the
communication module is another iSCSI initiator communicating with the
counterpart iSCSI target at the replica node", Sec. 2), runs a mini-DBMS
workload on the primary, then simulates a primary failure and serves the
data from the replica.

Run:  python examples/remote_mirror_tcp.py
"""

from repro import (
    Database,
    Initiator,
    InitiatorLink,
    MemoryBlockDevice,
    PrimaryEngine,
    ReplicaEngine,
    ReplicationConfig,
    TargetServer,
    TcpTransport,
    verify_consistency,
)
from repro.common.units import format_bytes
from repro.minidb import Column, ColumnType, Schema

BLOCK_SIZE = 4096
NUM_BLOCKS = 1024

#: one config drives both ends of the mirror; a custom transport is the
#: one topology :func:`repro.api.open_primary` doesn't wire for you, so
#: this example derives the pieces from the config and assembles by hand
CONFIG = ReplicationConfig(
    strategy="prins", block_size=BLOCK_SIZE, num_blocks=NUM_BLOCKS
)


def main() -> None:
    # ---- replica node: block device + replica engine inside an iSCSI target
    replica_disk = MemoryBlockDevice(BLOCK_SIZE, NUM_BLOCKS)
    strategy = CONFIG.strategy_instance()
    replica_engine = ReplicaEngine(replica_disk, strategy)
    server = TargetServer(
        replica_disk,
        name="iqn.2006-01.edu.uri.hpcl:replica",
        replication_handler=replica_engine.receive,
    ).start()
    host, port = server.address
    print(f"replica target listening on {host}:{port}")

    # ---- primary node: local disk + PRINS engine dialing the replica
    initiator = Initiator(TcpTransport.connect(host, port))
    initiator.login("iqn.2006-01.edu.uri.hpcl:replica")
    primary_disk = MemoryBlockDevice(BLOCK_SIZE, NUM_BLOCKS)
    engine = PrimaryEngine(
        primary_disk,
        strategy,
        [InitiatorLink(initiator)],
        verify_acks=CONFIG.verify_acks,
        batch=CONFIG.batch_config(),
        old_block_cache=CONFIG.old_block_cache,
    )

    # ---- application: a small accounts database on the replicated device
    db = Database(engine, pool_capacity=64)
    accounts = db.create_table(
        "accounts",
        Schema([
            Column("id", ColumnType.INT),
            Column("owner", ColumnType.CHAR, 24),
            Column("balance", ColumnType.FLOAT),
        ]),
        key="id",
    )
    for i in range(500):
        accounts.insert((i, f"customer-{i}", 100.0))
    db.commit()
    for i in range(0, 500, 3):  # a burst of balance updates
        accounts.update_fields(i, balance=100.0 + i)
    db.commit()

    wire = initiator.transport.bytes_sent + initiator.transport.bytes_received
    print(
        f"workload done: {engine.accountant.writes_total} block writes, "
        f"{format_bytes(engine.accountant.data_bytes)} of data written, "
        f"{format_bytes(wire)} crossed the wire (PRINS parity deltas)"
    )

    mismatches = verify_consistency(primary_disk, replica_disk)
    print(f"replica consistency check: {len(mismatches)} mismatched blocks")
    assert mismatches == []

    # ---- failover: the primary "dies"; mount the replica image directly
    initiator.logout()
    server.stop()
    print("\nprimary lost — promoting the replica...")
    recovered_db = Database(replica_disk, pool_capacity=64)
    # (a production system would persist the catalog; here we re-read one
    # heap page to show the bytes really are there)
    from repro.minidb.page import SlottedPage

    rows = 0
    for lba in range(NUM_BLOCKS):
        try:
            page = SlottedPage(BLOCK_SIZE, replica_disk.read_block(lba))
        except Exception:
            continue
        rows += len(page.live_slots())
    print(f"replica image holds {rows} live records (heap rows + index nodes)")
    assert rows >= 500
    print("failover target is fully populated — mirror held.")


if __name__ == "__main__":
    main()
