#!/usr/bin/env python
"""WAN capacity planning with the paper's queueing model (Figs. 8-10).

Given a measured per-write payload for each replication strategy, answer
the operator's questions analytically: how does replication response time
grow with the number of nodes x replicas on a T1 vs a T3 line, and at
what write rate does a router saturate?  Cross-checks one point against
the discrete-event simulator.

Run:  python examples/wan_capacity_planning.py
"""

from repro import ReplicationNetworkModel, StrategyTraffic, T1, T3
from repro.analysis import format_table
from repro.sim import simulate_closed_network

# mean replicated payload per write at 8 KB blocks — plug in your own
# measurements (e.g. from examples/tpcc_traffic_study.py)
PAYLOADS = {
    "traditional": 8192.0,
    "compressed": 8192.0 / 3.5,
    "prins": 350.0,
}
POPULATIONS = [1, 10, 20, 40, 60, 80, 100]


def response_table(line) -> str:
    rows = []
    models = {
        name: ReplicationNetworkModel(StrategyTraffic(name, payload), line)
        for name, payload in PAYLOADS.items()
    }
    for population in POPULATIONS:
        rows.append(
            [population]
            + [models[name].response_time(population) for name in PAYLOADS]
        )
    return format_table(
        ["population"] + [f"{name} s" for name in PAYLOADS],
        rows,
        title=f"replication response time on {line.name} "
        f"(2 routers, think 0.1s, 8KB blocks)",
    )


def main() -> None:
    print(response_table(T1))
    print()
    print(response_table(T3))

    print("\nsingle-router saturation (M/M/1, T1):")
    for name, payload in PAYLOADS.items():
        model = ReplicationNetworkModel(StrategyTraffic(name, payload), T1)
        print(f"  {name:12s} saturates at {model.saturation_write_rate:7.1f} "
              f"writes/s")

    # sanity: simulate one heavy point and compare with the MVA answer
    model = ReplicationNetworkModel(
        StrategyTraffic("traditional", PAYLOADS["traditional"]), T1
    )
    analytic = model.response_time(60)
    simulated = simulate_closed_network(
        model.router_service_time, model.think_time, population=60,
        routers=2, horizon=2000, seed=1,
    ).mean_response_time
    print(
        f"\ncross-check at population 60 (traditional, T1): "
        f"MVA {analytic:.2f}s vs simulation {simulated:.2f}s "
        f"({abs(simulated - analytic) / analytic:.1%} apart)"
    )


if __name__ == "__main__":
    main()
