#!/usr/bin/env python
"""Reproduce the paper's Figure 4 experiment end to end.

Runs the TPC-C-like workload on the minidb substrate at several block
sizes, captures the block-write trace once per size, replays it through
the three replication strategies, and prints the traffic table with the
paper-ratio comparisons — the same code path the `fig4` benchmark uses.

Run:  python examples/tpcc_traffic_study.py [--scale paper]
(small scale by default: ~10 s; paper scale takes a few minutes)
"""

import argparse
import time

from repro.experiments.figures import run_fig4


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=["small", "paper"], default="small")
    args = parser.parse_args()

    start = time.perf_counter()
    result = run_fig4(args.scale)
    print(result.render())
    print(f"\ncompleted in {time.perf_counter() - start:.1f}s "
          f"at scale={args.scale}")

    in_band = sum(c.within_tolerance for c in result.comparisons)
    print(f"{in_band}/{len(result.comparisons)} paper comparisons in band")


if __name__ == "__main__":
    main()
