#!/usr/bin/env python
"""CDP/TRAP: recover a filesystem to any point in time from parity logs.

The paper's released code ships "continuous data protection (CDP) and
timely recovery to any point-in-time (TRAP)" (Sec. 6).  Because PRINS
computes ``P' = A_new XOR A_old`` on every write anyway, *logging* those
deltas gives a complete per-block undo/redo chain at a fraction of the
space of a full-block journal.

This example corrupts a file "by accident", then walks the log back to the
last good instant — in both directions (forward from the baseline and
backward from the damaged current image) — and shows the two agree.

Run:  python examples/point_in_time_recovery.py
"""

import itertools

from repro import FileSystem, MemoryBlockDevice, ParityLog, RecoveryPoint, recover_image
from repro.cdp.parity_log import CdpDevice
from repro.common.units import format_bytes

BLOCK_SIZE = 1024
NUM_BLOCKS = 2048


def main() -> None:
    # a logical clock: every block write gets the next tick
    ticks = itertools.count()
    disk = MemoryBlockDevice(BLOCK_SIZE, NUM_BLOCKS)
    log = ParityLog(codec="zero-rle")
    device = CdpDevice(disk, log, clock=lambda: next(ticks))

    baseline = MemoryBlockDevice(BLOCK_SIZE, NUM_BLOCKS)  # t = -inf image

    fs = FileSystem.format(device, inode_count=128)
    fs.makedirs("ledger")
    fs.write_file("ledger/2006-01.txt", b"opening balance: 1000\n" * 40)
    fs.write_file("ledger/2006-02.txt", b"rent -350\npayroll -200\n" * 30)

    good_instant = next(ticks) - 1  # remember "now" (last applied tick)
    print(f"good state recorded at logical time {good_instant}")

    # ---- disaster: a buggy script truncates one file and scribbles another
    fs.write_file("ledger/2006-01.txt", b"oops\n")
    fs.write_file("ledger/2006-02.txt", b"\x00" * 700)
    print("after the accident:",
          fs.read_file("ledger/2006-01.txt")[:10], "...")

    print(
        f"\nparity log: {log.entry_count} entries, "
        f"{format_bytes(log.stored_bytes)} "
        f"(a full-block journal would hold "
        f"{format_bytes(log.entry_count * BLOCK_SIZE)})"
    )

    # ---- recover to the good instant, both directions
    point = RecoveryPoint(float(good_instant))
    forward = recover_image(log, point, baseline=baseline)
    backward = recover_image(log, point, current=disk)
    assert forward.snapshot() == backward.snapshot(), "log corrupt!"

    recovered_fs = FileSystem(forward)
    jan = recovered_fs.read_file("ledger/2006-01.txt")
    feb = recovered_fs.read_file("ledger/2006-02.txt")
    assert jan == b"opening balance: 1000\n" * 40
    assert feb == b"rent -350\npayroll -200\n" * 30
    print("recovered ledger/2006-01.txt:", jan[:22], "...")
    print("forward and backward recovery agree — files restored exactly.")


if __name__ == "__main__":
    main()
