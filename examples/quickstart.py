#!/usr/bin/env python
"""Quickstart: replicate writes three ways and compare the wire bytes.

Opens a primary/replica pair through the :mod:`repro.api` front door with
each of the paper's three strategies — traditional (full block),
compressed (zlib), and PRINS (encoded parity delta) — pushes the same
partial-overwrite workload through each, and prints the traffic.  This is
the paper's core claim in ~50 lines.

Run:  python examples/quickstart.py
"""

from repro import MemoryBlockDevice, ReplicationConfig, open_primary
from repro.common.rng import make_rng
from repro.common.units import format_bytes
from repro.experiments.testbed import testbed_table
from repro.workloads.content import mutate_fraction, random_bytes

BLOCK_SIZE = 8192  # "a typical data block size in commercial applications"
NUM_BLOCKS = 256
WRITES = 400
CHANGE_FRACTION = 0.10  # the paper: 5-20% of a block changes per write


def main() -> None:
    print(testbed_table())
    print()

    # One shared initial image, so all three strategies see identical writes.
    rng = make_rng(2006, "quickstart")
    initial = MemoryBlockDevice(BLOCK_SIZE, NUM_BLOCKS)
    for lba in range(NUM_BLOCKS):
        initial.write_block(lba, random_bytes(rng, BLOCK_SIZE))

    print(
        f"{WRITES} writes of {BLOCK_SIZE} B blocks, "
        f"{CHANGE_FRACTION:.0%} of each block changed per write:\n"
    )
    for name in ("traditional", "compressed", "prins"):
        config = ReplicationConfig(
            strategy=name, block_size=BLOCK_SIZE, num_blocks=NUM_BLOCKS
        )
        # initial_image = the paper's "initial sync": the factory loads the
        # primary and full-syncs the replica before any write ships.
        with open_primary(config, initial_image=initial.snapshot()) as stack:
            engine = stack.engine
            write_rng = make_rng(2007, "quickstart-writes")
            for _ in range(WRITES):
                lba = int(write_rng.integers(0, NUM_BLOCKS))
                old = engine.read_block(lba)
                engine.write_block(
                    lba, mutate_fraction(old, CHANGE_FRACTION, write_rng)
                )

            assert stack.verify(), "replica diverged!"
            accountant = engine.accountant
            print(
                f"  {name:12s} shipped {format_bytes(accountant.payload_bytes):>10}"
                f"   ({accountant.reduction_vs_data:5.1f}x less than the "
                f"{format_bytes(accountant.data_bytes)} written)"
            )

    print("\nreplicas verified byte-identical to their primaries under all "
          "three strategies")


if __name__ == "__main__":
    main()
