#!/usr/bin/env python
"""Degraded-mode operation and recovery on a resilient PRINS cluster.

The paper asserts its implementation is "fairly robust" under "extensive
testing and experiments" (Sec. 6) without showing the machinery.  This
example demonstrates the reproduction's fault-tolerance layer end to end:

1. a 4-node cluster whose replication links are wrapped in
   :class:`~repro.engine.resilience.FaultyLink` (30% of ships fail);
2. :class:`~repro.engine.resilience.ResilientLink` retries with
   deterministic exponential backoff absorb the transient faults;
3. a node is taken DOWN — its inbound links journal parity deltas as
   backlog instead of failing writes;
4. on heal the backlog is replayed in sequence order (escalating to a
   digest resync if the backlog had overflowed), and ``verify()``
   confirms every replica is byte-identical again;
5. the traffic accountant itemises what recovery cost on the wire.

Everything is seeded — rerunning prints identical numbers.

Run:  python examples/degraded_mode_recovery.py
"""

from repro import ReplicationConfig, open_cluster
from repro.common.rng import make_rng
from repro.common.units import format_bytes
from repro.engine import FaultyLink, ResilienceConfig, RetryPolicy

NODES = 4
REPLICAS = 2
BLOCK_SIZE = 4096
BLOCKS = 64
WRITES = 200
FAIL_FRACTION = 0.30
SEED = 23


def main() -> None:
    config = ReplicationConfig(
        strategy="prins",
        nodes=NODES,
        replicas_per_node=REPLICAS,
        block_size=BLOCK_SIZE,
        num_blocks=BLOCKS,
        resilient=True,
    )
    # the fault thresholds the flat config doesn't expose ride along as a
    # hand-tuned policy override
    resilience = ResilienceConfig(
        retry=RetryPolicy(max_attempts=4, base_delay_s=0.01, jitter=0.5),
        degraded_after=1,
        down_after=5,
        probe_interval=4,
        backlog_capacity_bytes=256 * 1024,
        seed=SEED,
    )

    faulty: dict[tuple[int, int], FaultyLink] = {}

    def wrap(primary_id: int, replica_id: int, link):
        wrapped = FaultyLink(
            link,
            drop_probability=FAIL_FRACTION * 2 / 3,
            error_probability=FAIL_FRACTION / 3,
            rng=make_rng(SEED, "faults", primary_id, replica_id),
        )
        faulty[(primary_id, replica_id)] = wrapped
        return wrapped

    cluster = open_cluster(config, resilience=resilience, link_factory=wrap)
    print(
        f"cluster: {NODES} nodes x {REPLICAS} replicas, "
        f"{FAIL_FRACTION:.0%} of ships faulted"
    )

    # ---- phase 1: write through the faulty links; retries absorb faults
    rng = make_rng(SEED, "workload")
    for _ in range(WRITES):
        node = int(rng.integers(0, NODES))
        lba = int(rng.integers(0, BLOCKS))
        cluster.write(node, lba, rng.integers(0, 256, BLOCK_SIZE, dtype="u1").tobytes())
    print(f"\nphase 1: {WRITES} writes completed, none raised")
    print(f"  link health: {sorted(h.value for h in cluster.health().values())}")

    # ---- phase 2: node 2 dies; writes to its peers journal backlog
    cluster.fail_node(2)
    for _ in range(60):
        node = int(rng.integers(0, NODES))
        if node in cluster.down_nodes:
            node = (node + 1) % NODES
        lba = int(rng.integers(0, BLOCKS))
        cluster.write(node, lba, rng.integers(0, 256, BLOCK_SIZE, dtype="u1").tobytes())
    report = cluster.verify_detailed()
    print("\nphase 2: node 2 DOWN, 60 more writes")
    print(f"  pending (down-with-backlog) pairs: {sorted(report.pending)}")
    print(f"  diverged pairs: {sorted(report.diverged)}")
    # a read of node 2's data still works — served by a surviving replica
    data = cluster.read(2, 0)
    print(f"  read(node 2, lba 0) served from replica: {len(data)} bytes")

    # ---- phase 3: heal; backlog replays (or digest-resyncs) in order
    outcomes = cluster.heal_all()
    modes = {pair: out.mode for pair, out in outcomes.items() if out.mode != "none"}
    print("\nphase 3: heal_all()")
    for pair, mode in sorted(modes.items()):
        print(f"  link {pair}: recovered via {mode}")
    mismatches = cluster.verify()
    print(f"  verify() mismatches: {mismatches}")
    assert mismatches == {}, "replicas must be byte-identical after heal"

    # ---- the bill: what fault tolerance cost on the wire
    retry = cluster.total_retry_bytes
    resync = cluster.total_resync_bytes
    recovery = cluster.total_recovery_bytes
    payload = cluster.total_payload_bytes
    print("\nwire accounting:")
    print(f"  first-attempt payload : {format_bytes(payload)}")
    print(f"  retry traffic         : {format_bytes(retry)}")
    print(f"  backlog replay/resync : {format_bytes(resync)}")
    print(f"  total recovery        : {format_bytes(recovery)}")
    assert retry > 0 and resync > 0
    print("\nall replicas byte-identical; recovery fully accounted")


if __name__ == "__main__":
    main()
