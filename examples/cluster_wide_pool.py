#!/usr/bin/env python
"""The paper's Figure 1 system: N nodes forming a shared storage pool.

Builds a :class:`~repro.engine.cluster.StorageCluster` — every node owns
local storage, replicates its writes to a subset of peer nodes (round-
robin successor placement), and can serve any peer's data after that peer
fails.  Also demonstrates the disconnect → journal → catch-up path for a
replica that drops off the network, and feeds the cluster's measured
traffic into the queueing model to predict WAN response time at the
cluster's population (nodes × replicas, exactly the paper's Sec. 3.3).

Run:  python examples/cluster_wide_pool.py
"""

from repro import ReplicationConfig, open_cluster
from repro.common.rng import make_rng
from repro.common.units import format_bytes
from repro.queueing import ReplicationNetworkModel, StrategyTraffic, T1

NODES = 6
REPLICAS = 2
BLOCK_SIZE = 4096


def main() -> None:
    config = ReplicationConfig(
        strategy="prins",
        nodes=NODES,
        replicas_per_node=REPLICAS,
        block_size=BLOCK_SIZE,
        num_blocks=128,
    )
    cluster = open_cluster(config)
    print(
        f"cluster: {NODES} nodes x {REPLICAS} replicas "
        f"(queueing population {cluster.config.population})"
    )
    for node_id, replicas in sorted(cluster.placement.items()):
        print(f"  node {node_id} -> replicas {replicas}")

    # ---- warm the pool, then run a partial-overwrite workload
    rng = make_rng(41, "cluster")
    for node in range(NODES):
        for lba in range(64):
            cluster.write(node, lba, rng.integers(0, 256, BLOCK_SIZE, dtype="u1").tobytes())
    for node_obj in cluster.nodes:  # measure steady state, not the load phase
        node_obj.engine.accountant.reset()

    for _ in range(600):
        node = int(rng.integers(0, NODES))
        lba = int(rng.integers(0, 64))
        block = bytearray(cluster.read(node, lba))
        start = int(rng.integers(0, BLOCK_SIZE - 400))
        block[start : start + 400] = rng.integers(0, 256, 400, dtype="u1").tobytes()
        cluster.write(node, lba, bytes(block))

    assert cluster.verify() == {}, "cluster inconsistent!"
    print(
        f"\n600 writes: {format_bytes(cluster.total_data_bytes)} written, "
        f"{format_bytes(cluster.total_payload_bytes)} replicated "
        f"({cluster.total_data_bytes / cluster.total_payload_bytes * REPLICAS:.1f}x "
        f"saving per replica copy)"
    )

    # ---- node 3 "fails"; its data is served from a replica
    probe_lba = 10
    from_primary = cluster.read(3, probe_lba)
    from_replica = cluster.read_from_replica(3, probe_lba)
    assert from_primary == from_replica
    print(f"node 3 lost — block {probe_lba} served from replica set "
          f"{cluster.placement[3]}: identical")

    # ---- capacity planning from the measured traffic
    mean_payload = cluster.mean_payload_per_write()
    model = ReplicationNetworkModel(
        StrategyTraffic("prins", mean_payload), T1
    )
    print(
        f"\nmeasured mean payload {mean_payload:.0f} B/write -> modeled "
        f"replication response time at population {cluster.config.population} on T1: "
        f"{model.response_time(cluster.config.population) * 1000:.1f} ms"
    )


if __name__ == "__main__":
    main()
