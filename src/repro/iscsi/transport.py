"""Transports: byte-counting PDU pipes.

Two implementations share one interface: :class:`InProcessTransport` (a pair
of queues, used by the traffic experiments where thousands of engines would
make real sockets needlessly slow) and :class:`TcpTransport` (a real TCP
socket, used by the networked examples and integration tests so the
protocol is exercised end-to-end over the loopback interface exactly as the
paper ran it over Ethernet).

Every transport counts bytes in both directions; the replication traffic
numbers in the figure benchmarks come straight from these counters.
"""

from __future__ import annotations

import queue
import socket
from abc import ABC, abstractmethod

from repro.common.errors import ProtocolError
from repro.iscsi.pdu import BHS_SIZE, Pdu


class Transport(ABC):
    """A bidirectional, ordered, reliable PDU pipe with byte accounting."""

    def __init__(self) -> None:
        self.bytes_sent = 0
        self.bytes_received = 0
        self.pdus_sent = 0
        self.pdus_received = 0

    def send(self, pdu: Pdu) -> None:
        """Send one PDU."""
        raw = pdu.pack()
        self._send_raw(raw)
        self.bytes_sent += len(raw)
        self.pdus_sent += 1

    def receive(self, timeout: float | None = None) -> Pdu:
        """Block until the next PDU arrives and return it.

        Raises :class:`TransportClosedError` when the peer has closed.
        """
        pdu = self._receive_pdu(timeout)
        self.bytes_received += pdu.wire_size
        self.pdus_received += 1
        return pdu

    @abstractmethod
    def _send_raw(self, raw: bytes) -> None:
        """Ship serialized bytes to the peer."""

    @abstractmethod
    def _receive_pdu(self, timeout: float | None) -> Pdu:
        """Return the next PDU from the peer."""

    @abstractmethod
    def close(self) -> None:
        """Tear down the pipe; the peer's next receive raises."""

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class TransportClosedError(ProtocolError):
    """Raised when receiving on (or sending to) a closed transport."""


_CLOSE = object()  # sentinel placed on the queue when a peer closes


class InProcessTransport(Transport):
    """One endpoint of an in-memory duplex pipe.

    Build connected pairs with :func:`transport_pair`.  PDUs are serialized
    and re-parsed so framing bugs cannot hide, and byte counts match what a
    socket would carry.
    """

    def __init__(
        self, outbox: "queue.Queue[object]", inbox: "queue.Queue[object]"
    ) -> None:
        super().__init__()
        self._outbox = outbox
        self._inbox = inbox
        self._closed = False

    def _send_raw(self, raw: bytes) -> None:
        if self._closed:
            raise TransportClosedError("transport is closed")
        self._outbox.put(raw)

    def _receive_pdu(self, timeout: float | None) -> Pdu:
        if self._closed:
            raise TransportClosedError("transport is closed")
        try:
            item = self._inbox.get(timeout=timeout)
        except queue.Empty:
            raise TimeoutError("no PDU within timeout") from None
        if item is _CLOSE:
            self._inbox.put(_CLOSE)  # leave the sentinel for other readers
            raise TransportClosedError("peer closed the transport")
        assert isinstance(item, bytes)
        return Pdu.unpack(item)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._outbox.put(_CLOSE)


def transport_pair() -> tuple[InProcessTransport, InProcessTransport]:
    """Return two connected :class:`InProcessTransport` endpoints."""
    a_to_b: "queue.Queue[object]" = queue.Queue()
    b_to_a: "queue.Queue[object]" = queue.Queue()
    return (
        InProcessTransport(outbox=a_to_b, inbox=b_to_a),
        InProcessTransport(outbox=b_to_a, inbox=a_to_b),
    )


class TcpTransport(Transport):
    """PDU pipe over a connected TCP socket."""

    def __init__(self, sock: socket.socket) -> None:
        super().__init__()
        self._sock = sock
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._closed = False

    @classmethod
    def connect(cls, host: str, port: int, timeout: float = 10.0) -> "TcpTransport":
        """Dial ``host:port`` and wrap the resulting socket."""
        sock = socket.create_connection((host, port), timeout=timeout)
        sock.settimeout(None)
        return cls(sock)

    def _send_raw(self, raw: bytes) -> None:
        if self._closed:
            raise TransportClosedError("transport is closed")
        try:
            self._sock.sendall(raw)
        except OSError as exc:
            raise TransportClosedError(f"send failed: {exc}") from exc

    def _receive_pdu(self, timeout: float | None) -> Pdu:
        if self._closed:
            raise TransportClosedError("transport is closed")
        self._sock.settimeout(timeout)
        try:
            header = self._recv_exact(BHS_SIZE)
            pdu, data_len = Pdu.unpack_header(header)
            pdu.data = self._recv_exact(data_len) if data_len else b""
        except socket.timeout:
            raise TimeoutError("no PDU within timeout") from None
        except OSError as exc:
            raise TransportClosedError(f"receive failed: {exc}") from exc
        finally:
            self._sock.settimeout(None)
        return pdu

    def _recv_exact(self, n: int) -> bytes:
        chunks: list[bytes] = []
        remaining = n
        while remaining:
            chunk = self._sock.recv(remaining)
            if not chunk:
                raise TransportClosedError("peer closed the connection")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._sock.close()
