"""Transports: byte-counting PDU pipes.

Two implementations share one interface: :class:`InProcessTransport` (a pair
of queues, used by the traffic experiments where thousands of engines would
make real sockets needlessly slow) and :class:`TcpTransport` (a real TCP
socket, used by the networked examples and integration tests so the
protocol is exercised end-to-end over the loopback interface exactly as the
paper ran it over Ethernet).

Every transport counts bytes in both directions; the replication traffic
numbers in the figure benchmarks come straight from these counters.
"""

from __future__ import annotations

import queue
import socket
from abc import ABC, abstractmethod

from repro.common.errors import ProtocolError
from repro.iscsi.pdu import BHS_SIZE, Pdu
from repro.obs.registry import NULL_COUNTER, NULL_HISTOGRAM
from repro.obs.telemetry import NULL_TELEMETRY


class Transport(ABC):
    """A bidirectional, ordered, reliable PDU pipe with byte accounting.

    A transport can additionally feed the telemetry subsystem
    (:meth:`bind_telemetry`): sent PDUs then emit ``transport.send`` spans
    and aggregate ``transport.*`` counters plus a PDU-size histogram in
    the bound registry.  Counters are registry-wide aggregates shared by
    every transport bound to the same telemetry — matching how the paper
    reports wire totals, not per-socket numbers.
    """

    def __init__(self) -> None:
        self.bytes_sent = 0
        self.bytes_received = 0
        self.pdus_sent = 0
        self.pdus_received = 0
        self._telemetry = NULL_TELEMETRY
        self._tx_bytes = NULL_COUNTER
        self._rx_bytes = NULL_COUNTER
        self._tx_pdus = NULL_COUNTER
        self._rx_pdus = NULL_COUNTER
        self._pdu_hist = NULL_HISTOGRAM

    def bind_telemetry(self, telemetry) -> None:
        """Route this transport's counters/spans into ``telemetry``."""
        self._telemetry = telemetry
        self._tx_bytes = telemetry.counter("transport.bytes_sent")
        self._rx_bytes = telemetry.counter("transport.bytes_received")
        self._tx_pdus = telemetry.counter("transport.pdus_sent")
        self._rx_pdus = telemetry.counter("transport.pdus_received")
        self._pdu_hist = telemetry.histogram("transport.sent_pdu_bytes")

    def send(self, pdu: Pdu) -> None:
        """Send one PDU."""
        raw = pdu.pack()
        with self._telemetry.span("transport.send", bytes=len(raw)):
            self._send_raw(raw)
        self.bytes_sent += len(raw)
        self.pdus_sent += 1
        self._tx_bytes.inc(len(raw))
        self._tx_pdus.inc()
        self._pdu_hist.record(len(raw))

    def receive(self, timeout: float | None = None) -> Pdu:
        """Block until the next PDU arrives and return it.

        Raises :class:`TransportClosedError` when the peer has closed.
        """
        pdu = self._receive_pdu(timeout)
        self.bytes_received += pdu.wire_size
        self.pdus_received += 1
        self._rx_bytes.inc(pdu.wire_size)
        self._rx_pdus.inc()
        return pdu

    @abstractmethod
    def _send_raw(self, raw: bytes) -> None:
        """Ship serialized bytes to the peer."""

    @abstractmethod
    def _receive_pdu(self, timeout: float | None) -> Pdu:
        """Return the next PDU from the peer."""

    @abstractmethod
    def close(self) -> None:
        """Tear down the pipe; the peer's next receive raises."""

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class TransportClosedError(ProtocolError):
    """Raised when receiving on (or sending to) a closed transport."""


class InjectedTransportError(ProtocolError):
    """The error raised for injected transport (PDU pipe) failures."""

    def __init__(self, kind: str) -> None:
        super().__init__(f"injected transport {kind}")
        self.kind = kind


class FlakyTransport(Transport):
    """Fault-injecting decorator around another transport.

    The PDU-level sibling of :class:`~repro.engine.resilience.FaultyLink`:
    it drops, errors, or duplicates *sent* PDUs so the full iSCSI path
    (initiator → target → replication handler) can be exercised under
    network faults.  A dropped PDU is silently discarded — the peer sees
    nothing and the sender's next ``receive`` times out, exactly how loss
    manifests on a real socket.  Byte counters on this wrapper reflect what
    the application *tried* to send; the inner transport is bypassed for
    dropped PDUs.
    """

    def __init__(
        self,
        inner: Transport,
        drop_probability: float = 0.0,
        error_probability: float = 0.0,
        duplicate_probability: float = 0.0,
        rng=None,
    ) -> None:
        super().__init__()
        for name, p in (
            ("drop", drop_probability),
            ("error", error_probability),
            ("duplicate", duplicate_probability),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(
                    f"{name}_probability must be in [0, 1], got {p}"
                )
        if drop_probability + error_probability + duplicate_probability > 1.0:
            raise ValueError("fault probabilities must sum to <= 1")
        self._inner = inner
        self._drop_p = drop_probability
        self._error_p = error_probability
        self._duplicate_p = duplicate_probability
        if rng is None:
            from repro.common.rng import make_rng

            rng = make_rng(0, "flaky-transport")
        self._rng = rng
        self._forced: list[str] = []
        self._dead = False
        self.drops = 0
        self.errors = 0
        self.duplicates = 0

    @property
    def inner(self) -> Transport:
        """The wrapped transport."""
        return self._inner

    def fail_next(self, count: int = 1, kind: str = "error") -> None:
        """Force the next ``count`` sends to fail with ``kind``."""
        if kind not in ("drop", "error", "duplicate"):
            raise ValueError(f"unknown fault kind {kind!r}")
        self._forced.extend([kind] * count)

    def kill(self) -> None:
        """Drop every PDU until :meth:`heal` (network partition)."""
        self._dead = True

    def heal(self) -> None:
        """Clear all injected faults."""
        self._dead = False
        self._forced.clear()

    def _draw(self) -> str | None:
        if self._dead:
            return "drop"
        if self._forced:
            return self._forced.pop(0)
        total = self._drop_p + self._error_p + self._duplicate_p
        if total <= 0.0:
            return None
        r = float(self._rng.random())
        if r < self._drop_p:
            return "drop"
        if r < self._drop_p + self._error_p:
            return "error"
        if r < total:
            return "duplicate"
        return None

    def _send_raw(self, raw: bytes) -> None:
        mode = self._draw()
        if mode == "drop":
            self.drops += 1
            return  # peer never sees it; their receive() will time out
        if mode == "error":
            self.errors += 1
            raise InjectedTransportError("send error")
        self._inner._send_raw(raw)
        if mode == "duplicate":
            self.duplicates += 1
            self._inner._send_raw(raw)

    def _receive_pdu(self, timeout: float | None) -> Pdu:
        return self._inner._receive_pdu(timeout)

    def close(self) -> None:
        self._inner.close()


_CLOSE = object()  # sentinel placed on the queue when a peer closes


class InProcessTransport(Transport):
    """One endpoint of an in-memory duplex pipe.

    Build connected pairs with :func:`transport_pair`.  PDUs are serialized
    and re-parsed so framing bugs cannot hide, and byte counts match what a
    socket would carry.
    """

    def __init__(
        self, outbox: "queue.Queue[object]", inbox: "queue.Queue[object]"
    ) -> None:
        super().__init__()
        self._outbox = outbox
        self._inbox = inbox
        self._closed = False

    def _send_raw(self, raw: bytes) -> None:
        if self._closed:
            raise TransportClosedError("transport is closed")
        self._outbox.put(raw)

    def _receive_pdu(self, timeout: float | None) -> Pdu:
        if self._closed:
            raise TransportClosedError("transport is closed")
        try:
            item = self._inbox.get(timeout=timeout)
        except queue.Empty:
            raise TimeoutError("no PDU within timeout") from None
        if item is _CLOSE:
            self._inbox.put(_CLOSE)  # leave the sentinel for other readers
            raise TransportClosedError("peer closed the transport")
        assert isinstance(item, bytes)
        return Pdu.unpack(item)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._outbox.put(_CLOSE)


def transport_pair() -> tuple[InProcessTransport, InProcessTransport]:
    """Return two connected :class:`InProcessTransport` endpoints."""
    a_to_b: "queue.Queue[object]" = queue.Queue()
    b_to_a: "queue.Queue[object]" = queue.Queue()
    return (
        InProcessTransport(outbox=a_to_b, inbox=b_to_a),
        InProcessTransport(outbox=b_to_a, inbox=a_to_b),
    )


class TcpTransport(Transport):
    """PDU pipe over a connected TCP socket."""

    def __init__(self, sock: socket.socket) -> None:
        super().__init__()
        self._sock = sock
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._closed = False

    @classmethod
    def connect(cls, host: str, port: int, timeout: float = 10.0) -> "TcpTransport":
        """Dial ``host:port`` and wrap the resulting socket."""
        sock = socket.create_connection((host, port), timeout=timeout)
        sock.settimeout(None)
        return cls(sock)

    def _send_raw(self, raw: bytes) -> None:
        if self._closed:
            raise TransportClosedError("transport is closed")
        try:
            self._sock.sendall(raw)
        except OSError as exc:
            raise TransportClosedError(f"send failed: {exc}") from exc

    def _receive_pdu(self, timeout: float | None) -> Pdu:
        if self._closed:
            raise TransportClosedError("transport is closed")
        self._sock.settimeout(timeout)
        try:
            header = self._recv_exact(BHS_SIZE)
            pdu, data_len = Pdu.unpack_header(header)
            pdu.data = self._recv_exact(data_len) if data_len else b""
        except socket.timeout:
            raise TimeoutError("no PDU within timeout") from None
        except OSError as exc:
            raise TransportClosedError(f"receive failed: {exc}") from exc
        finally:
            try:
                self._sock.settimeout(None)
            except OSError:
                # close() from another thread severed the socket mid-receive;
                # the TransportClosedError above is the real story
                pass
        return pdu

    def _recv_exact(self, n: int) -> bytes:
        chunks: list[bytes] = []
        remaining = n
        while remaining:
            chunk = self._sock.recv(remaining)
            if not chunk:
                raise TransportClosedError("peer closed the connection")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._sock.close()
