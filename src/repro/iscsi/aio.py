"""Asyncio transport tier: one process, thousands of iSCSI sessions.

The thread-per-connection :class:`~repro.iscsi.target.TargetServer` burns
an OS thread (and its stack) per initiator, which caps how many replica
sessions one node can serve.  This module rebuilds the wire layer on
:mod:`asyncio` streams:

* :class:`AsyncTargetServer` multiplexes every connection on one event
  loop.  Each connection gets its own :class:`~repro.iscsi.target.Target`
  protocol engine — the *same* synchronous state machine the threaded
  server drives, invoked PDU-by-PDU from the reader coroutine — so the
  response bytes are identical to the threaded server's by construction;
* per-connection PDU framing is strictly ordered: one reader coroutine
  reads a 48-byte BHS with ``readexactly``, then the data segment, then
  writes the response and awaits ``drain()`` — the flow-controlled write
  that turns a slow initiator into backpressure on exactly that session
  instead of unbounded buffering;
* shutdown is cancellation, not abandonment: :meth:`AsyncTargetServer.stop`
  closes the listener, cancels every live session task, and awaits them,
  so no connection outlives the server;
* :class:`AsyncTcpTransport` / :class:`AsyncInitiator` are the client-side
  mirrors, for callers already living on an event loop.

Sync callers (the API facade, tests, benchmarks) host the loop in a
daemon thread via :class:`EventLoopThread`; ``serve_background`` /
``stop_background`` wrap the coroutine round-trips.

Telemetry: accepts emit a ``transport.accept`` span and tick
``transport.accepts`` / the ``transport.sessions`` gauge, so
``prins trace critical`` can attribute connection-setup time; per-PDU
byte counters share the same ``transport.*`` names as the blocking tier.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Iterable

from repro.block.device import BlockDevice
from repro.common.errors import LoginError, ProtocolError
from repro.iscsi.pdu import BHS_SIZE, Opcode, Pdu, ScsiOp, Status
from repro.iscsi.target import BatchHandler, ReplicationHandler, Target
from repro.obs.registry import NULL_COUNTER, NULL_GAUGE, NULL_HISTOGRAM
from repro.obs.telemetry import NULL_TELEMETRY

__all__ = [
    "AsyncInitiator",
    "AsyncTargetServer",
    "AsyncTcpTransport",
    "EventLoopThread",
]


class EventLoopThread:
    """An asyncio event loop hosted in a daemon thread.

    Lets synchronous code own asyncio servers: ``run(coro)`` submits a
    coroutine and blocks for its result.  One loop thread can host many
    :class:`AsyncTargetServer` instances — that is exactly the

    single-process multiplexing the tier exists for.
    """

    def __init__(self, name: str = "prins-aio") -> None:
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name=name, daemon=True
        )
        self._thread.start()

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        """The hosted event loop."""
        return self._loop

    def run(self, coro, timeout: float | None = 30.0):
        """Run ``coro`` on the loop thread and return its result."""
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return future.result(timeout=timeout)

    def close(self, timeout: float = 5.0) -> None:
        """Stop the loop and join its thread (idempotent)."""
        if self._loop.is_closed():
            return
        if self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=timeout)
        self._loop.close()

    def __enter__(self) -> "EventLoopThread":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


async def _read_pdu(reader: asyncio.StreamReader) -> Pdu:
    """Read one framed PDU: fixed BHS, then the advertised data segment."""
    header = await reader.readexactly(BHS_SIZE)
    pdu, data_len = Pdu.unpack_header(header)
    pdu.data = await reader.readexactly(data_len) if data_len else b""
    return pdu


class AsyncTcpTransport:
    """Asyncio-stream PDU pipe — the event-loop twin of ``TcpTransport``.

    Byte/PDU counters mirror the blocking transport's so wire accounting
    is comparable across tiers; ``send`` awaits ``drain()``, making the
    stream's flow control the sender's backpressure.
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._closed = False
        self.bytes_sent = 0
        self.bytes_received = 0
        self.pdus_sent = 0
        self.pdus_received = 0

    @classmethod
    async def connect(cls, host: str, port: int) -> "AsyncTcpTransport":
        """Dial ``host:port`` and wrap the resulting stream pair."""
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def send(self, pdu: Pdu) -> None:
        """Send one PDU and await the stream's flow-controlled drain."""
        if self._closed:
            raise ProtocolError("transport is closed")
        raw = pdu.pack()
        self._writer.write(raw)
        await self._writer.drain()
        self.bytes_sent += len(raw)
        self.pdus_sent += 1

    async def receive(self, timeout: float | None = None) -> Pdu:
        """Await the next PDU (bounded by ``timeout`` when given)."""
        if self._closed:
            raise ProtocolError("transport is closed")
        try:
            if timeout is not None:
                pdu = await asyncio.wait_for(_read_pdu(self._reader), timeout)
            else:
                pdu = await _read_pdu(self._reader)
        except asyncio.IncompleteReadError:
            raise ProtocolError("peer closed the transport") from None
        self.bytes_received += pdu.wire_size
        self.pdus_received += 1
        return pdu

    async def close(self) -> None:
        """Close the stream and await the transport teardown."""
        if self._closed:
            return
        self._closed = True
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass


class AsyncInitiator:
    """Async one-command-at-a-time iSCSI client (mirror of ``Initiator``).

    Same session discipline, ITT matching, and wire bytes as the blocking
    client — ``await`` replaces blocking on the socket, nothing else
    changes on the wire.
    """

    def __init__(
        self, transport: AsyncTcpTransport, timeout: float | None = 30.0
    ) -> None:
        self._transport = transport
        self._timeout = timeout
        self._itt = 0
        self._cmd_sn = 0
        self._logged_in = False
        self.block_size: int | None = None
        self.num_blocks: int | None = None

    @property
    def transport(self) -> AsyncTcpTransport:
        """The underlying transport (exposes byte counters)."""
        return self._transport

    @property
    def logged_in(self) -> bool:
        """True after a successful :meth:`login`."""
        return self._logged_in

    @classmethod
    async def connect(
        cls, host: str, port: int, timeout: float | None = 30.0
    ) -> "AsyncInitiator":
        """Dial a target and return a not-yet-logged-in initiator."""
        return cls(await AsyncTcpTransport.connect(host, port), timeout)

    # -- session ------------------------------------------------------------

    async def login(self, target_name: str = "") -> dict[str, str]:
        """Log in; returns the target's negotiated parameters."""
        response = await self._roundtrip(
            Pdu(opcode=Opcode.LOGIN_REQUEST, data=target_name.encode("utf-8")),
            expect=Opcode.LOGIN_RESPONSE,
        )
        params: dict[str, str] = {}
        for pair in response.data.decode("utf-8").split(";"):
            if "=" in pair:
                key, value = pair.split("=", 1)
                params[key] = value
        self.block_size = int(params.get("BlockSize", 0)) or None
        self.num_blocks = int(params.get("NumBlocks", 0)) or None
        self._logged_in = True
        return params

    async def logout(self) -> None:
        """Log out and close the transport."""
        if self._logged_in:
            await self._roundtrip(
                Pdu(opcode=Opcode.LOGOUT_REQUEST),
                expect=Opcode.LOGOUT_RESPONSE,
            )
            self._logged_in = False
        await self._transport.close()

    # -- SCSI ----------------------------------------------------------------

    async def read(self, lba: int, count: int = 1) -> bytes:
        """Read ``count`` blocks starting at ``lba``."""
        response = await self._roundtrip(
            Pdu(
                opcode=Opcode.SCSI_COMMAND,
                flags=int(ScsiOp.READ),
                lba=lba,
                transfer_length=count,
            ),
            expect=Opcode.SCSI_DATA_IN,
        )
        return response.data

    async def write(self, lba: int, data: bytes) -> None:
        """Write whole blocks starting at ``lba``."""
        count = len(data) // self.block_size if self.block_size else 1
        await self._roundtrip(
            Pdu(
                opcode=Opcode.SCSI_COMMAND,
                flags=int(ScsiOp.WRITE),
                lba=lba,
                transfer_length=count,
                data=data,
            ),
            expect=Opcode.SCSI_RESPONSE,
        )

    async def ping(self, payload: bytes = b"") -> bytes:
        """NOP round-trip; returns the echoed payload."""
        response = await self._roundtrip(
            Pdu(opcode=Opcode.NOP_OUT, data=payload), expect=Opcode.NOP_IN
        )
        return response.data

    # -- PRINS replication ----------------------------------------------------

    async def send_replication_frame(
        self, lba: int, frame: bytes, ctx=None
    ) -> bytes:
        """Ship one replication frame; returns the replica's ack payload."""
        trace_id, parent_span = (
            (0, 0) if ctx is None else (ctx.trace_id, ctx.span_id)
        )
        response = await self._roundtrip(
            Pdu(
                opcode=Opcode.REPL_DATA_OUT,
                lba=lba,
                trace_id=trace_id,
                parent_span=parent_span,
                data=frame,
            ),
            expect=Opcode.REPL_ACK,
        )
        return response.data

    async def send_replication_batch(
        self, payload: bytes, record_count: int, ctx=None
    ) -> bytes:
        """Ship a packed multi-segment batch; returns the batch ack payload."""
        trace_id, parent_span = (
            (0, 0) if ctx is None else (ctx.trace_id, ctx.span_id)
        )
        response = await self._roundtrip(
            Pdu(
                opcode=Opcode.REPL_BATCH_OUT,
                transfer_length=record_count,
                trace_id=trace_id,
                parent_span=parent_span,
                data=payload,
            ),
            expect=Opcode.REPL_BATCH_ACK,
        )
        return response.data

    # -- plumbing -------------------------------------------------------------

    async def _roundtrip(self, request: Pdu, expect: Opcode) -> Pdu:
        self._itt += 1
        self._cmd_sn += 1
        request.itt = self._itt
        request.seq = self._cmd_sn
        await self._transport.send(request)
        response = await self._transport.receive(timeout=self._timeout)
        while response.itt < request.itt:
            # stale response from an earlier exchange: drain by ITT, same
            # as the blocking initiator
            response = await self._transport.receive(timeout=self._timeout)
        if response.itt != request.itt:
            raise ProtocolError(
                f"response ITT {response.itt} does not match "
                f"request {request.itt}"
            )
        if response.opcode is not expect:
            raise ProtocolError(
                f"expected {expect!r}, got {response.opcode!r} "
                f"(status {response.status:#04x})"
            )
        if response.status != Status.GOOD:
            if response.opcode is Opcode.LOGIN_RESPONSE:
                raise LoginError(
                    f"login rejected with status {response.status:#04x}"
                )
            raise ProtocolError(
                f"command failed with status {response.status:#04x}"
            )
        return response

    async def __aenter__(self) -> "AsyncInitiator":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.logout()


class AsyncTargetServer:
    """Event-loop iSCSI target: every session is a task, not a thread.

    Each accepted connection runs :meth:`_serve_connection` — a fresh
    :class:`~repro.iscsi.target.Target` state machine fed PDUs in arrival
    order, its responses written back through the flow-controlled stream.
    Because :meth:`Target.handle` is the same code the threaded server
    calls, a given request sequence produces identical response bytes on
    either tier.
    """

    def __init__(
        self,
        device: BlockDevice,
        host: str = "127.0.0.1",
        port: int = 0,
        name: str = "iqn.2006-01.edu.uri.hpcl:prins",
        replication_handler: ReplicationHandler | None = None,
        batch_handler: BatchHandler | None = None,
        telemetry=None,
    ) -> None:
        self._device = device
        self._host = host
        self._port = port
        self._name = name
        self._replication_handler = replication_handler
        self._batch_handler = batch_handler
        self._server: asyncio.AbstractServer | None = None
        self._tasks: set[asyncio.Task] = set()
        self._closed = False
        self.sessions_served = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.pdus_served = 0
        self._telemetry = NULL_TELEMETRY
        self._accept_counter = NULL_COUNTER
        self._session_gauge = NULL_GAUGE
        self._pdu_hist = NULL_HISTOGRAM
        if telemetry is not None:
            self.bind_telemetry(telemetry)
        # set by serve_background for the sync-facade lifecycle
        self._loop_thread: EventLoopThread | None = None
        self._owns_loop = False

    def bind_telemetry(self, telemetry) -> None:
        """Meter accepts, live sessions, and response sizes in ``telemetry``."""
        self._telemetry = telemetry
        self._accept_counter = telemetry.counter("transport.accepts")
        self._session_gauge = telemetry.gauge("transport.sessions")
        self._pdu_hist = telemetry.histogram("transport.sent_pdu_bytes")

    @property
    def address(self) -> tuple[str, int]:
        """The (host, port) the server is listening on."""
        if self._server is None or not self._server.sockets:
            raise ProtocolError("server is not listening")
        return self._server.sockets[0].getsockname()[:2]

    @property
    def connection_count(self) -> int:
        """Live session tasks."""
        return len(self._tasks)

    # -- async lifecycle ------------------------------------------------------

    async def start(self) -> "AsyncTargetServer":
        """Bind the listener and begin accepting sessions."""
        if self._closed:
            raise ProtocolError("target server is closed")
        self._server = await asyncio.start_server(
            self._on_connect, self._host, self._port
        )
        return self

    def _on_connect(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.ensure_future(self._serve_connection(reader, writer))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        with self._telemetry.span("transport.accept", target=self._name):
            self._accept_counter.inc()
            self.sessions_served += 1
            self._session_gauge.set(len(self._tasks))
            target = Target(
                self._device,
                name=self._name,
                replication_handler=self._replication_handler,
                batch_handler=self._batch_handler,
            )
        try:
            while True:
                request = await _read_pdu(reader)
                self.bytes_received += request.wire_size
                response = target.handle(request)
                if response is not None:
                    raw = response.pack()
                    writer.write(raw)
                    # flow-controlled backpressure: a slow initiator stalls
                    # only its own session coroutine
                    await writer.drain()
                    self.bytes_sent += len(raw)
                    self.pdus_served += 1
                    self._pdu_hist.record(len(raw))
                if request.opcode is Opcode.LOGOUT_REQUEST:
                    break
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass  # peer vanished mid-frame: drop the session
        finally:
            self._session_gauge.set(max(0, len(self._tasks) - 1))
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def stop(self) -> None:
        """Stop listening, cancel every live session, await clean exit."""
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        tasks = list(self._tasks)
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        self._tasks.clear()

    # -- sync facade ----------------------------------------------------------

    def serve_background(
        self, loop_thread: EventLoopThread | None = None
    ) -> "AsyncTargetServer":
        """Start on a loop thread (creating one if needed); returns self.

        The sync entry point used by ``open_primary(transport="asyncio")``
        and tests: the server runs on ``loop_thread`` (shared across many
        servers for true single-process multiplexing) and blocking
        clients connect to :attr:`address` as usual.
        """
        if loop_thread is None:
            loop_thread = EventLoopThread(name=f"aio-{self._name}")
            self._owns_loop = True
        self._loop_thread = loop_thread
        loop_thread.run(self.start())
        return self

    def stop_background(self, timeout: float = 10.0) -> None:
        """Stop a :meth:`serve_background` server from sync code."""
        if self._loop_thread is None:
            return
        self._loop_thread.run(self.stop(), timeout=timeout)
        if self._owns_loop:
            self._loop_thread.close()
        self._loop_thread = None

    def snapshot(self) -> dict:
        """JSON-safe server counters."""
        return {
            "name": self._name,
            "sessions_served": self.sessions_served,
            "live_sessions": len(self._tasks),
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "pdus_served": self.pdus_served,
        }


async def run_sessions(
    host: str,
    port: int,
    scripts: "Iterable",
    target_name: str = "",
) -> list:
    """Run many initiator scripts concurrently against one target.

    Each ``script`` is an async callable taking a logged-in
    :class:`AsyncInitiator`; its return value lands in the result list in
    script order.  This is the ≥64-connection concurrency harness used by
    the tests and the benchmark.
    """

    async def _one(script):
        initiator = await AsyncInitiator.connect(host, port)
        await initiator.login(target_name)
        try:
            return await script(initiator)
        finally:
            await initiator.logout()

    return list(await asyncio.gather(*(_one(s) for s in scripts)))
