"""A compact iSCSI-flavoured network storage protocol.

The paper's prototype runs inside an iSCSI target (UNH implementation on
Linux, the authors' own on Windows) and uses a second iSCSI
initiator/target pair between PRINS-engines for replication traffic
(Sec. 2).  This package reproduces that substrate in pure Python:

* :mod:`repro.iscsi.pdu` — binary PDUs with a real 48-byte Basic Header
  Segment, so on-wire byte accounting is honest;
* :mod:`repro.iscsi.transport` — in-process and TCP transports with byte
  counters;
* :mod:`repro.iscsi.target` — a target exposing one
  :class:`~repro.block.device.BlockDevice` as a LUN, plus a vendor-specific
  replication opcode that the PRINS replica engine hooks;
* :mod:`repro.iscsi.initiator` — the client side (login, READ/WRITE,
  replication frames, logout);
* :mod:`repro.iscsi.aio` — the asyncio tier: one event-loop thread
  multiplexing thousands of sessions as tasks instead of threads, wire
  bytes identical to the threaded server.

Scope: login/logout and the full-feature phase commands needed by the
engines.  No CHAP, no multi-connection sessions, no task management — see
DESIGN.md Sec. 6.
"""

from repro.iscsi.aio import (
    AsyncInitiator,
    AsyncTargetServer,
    AsyncTcpTransport,
    EventLoopThread,
)
from repro.iscsi.initiator import Initiator
from repro.iscsi.pdu import Opcode, Pdu
from repro.iscsi.target import Target, TargetServer
from repro.iscsi.transport import (
    InProcessTransport,
    TcpTransport,
    Transport,
    transport_pair,
)

__all__ = [
    "AsyncInitiator",
    "AsyncTargetServer",
    "AsyncTcpTransport",
    "EventLoopThread",
    "InProcessTransport",
    "Initiator",
    "Opcode",
    "Pdu",
    "Target",
    "TargetServer",
    "TcpTransport",
    "Transport",
    "transport_pair",
]
