"""Protocol data units.

Every PDU carries a 48-byte Basic Header Segment (BHS) followed by an
optional data segment, mirroring real iSCSI framing (RFC 3720 uses the same
48-byte BHS).  Field layout (little-endian; real iSCSI is big-endian, the
distinction is irrelevant to byte counts)::

    offset  size  field
    0       1     opcode
    1       1     flags
    2       2     status / reserved
    4       4     initiator task tag (ITT)
    8       8     LBA (SCSI CDB logical block address)
    16      4     transfer length in blocks (SCSI CDB)
    20      4     data segment length
    24      8     sequence number (CmdSN / StatSN)
    32      8     trace id (causal context; 0 = tracing off)
    40      8     parent span id (causal context; 0 = tracing off)

The vendor-specific :attr:`Opcode.REPL_DATA_OUT` carries PRINS replication
frames; everything else is standard command traffic.

The trailing 16 bytes were reserved padding through PR 6; they now carry
the optional :mod:`repro.obs.dist` trace context.  Both fields default
to zero, and zero is exactly what the old ``16x`` padding wrote — so
with tracing off (the default) every packed PDU is byte-identical to the
previous wire format, and the paper-figure byte counts stay pinned.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field

from repro.common.errors import ProtocolError

BHS_SIZE = 48
_BHS = struct.Struct("<BBHIQIIQQQ")


class Opcode(enum.IntEnum):
    """PDU opcodes (initiator→target even, target→initiator odd)."""

    LOGIN_REQUEST = 0x03
    LOGIN_RESPONSE = 0x23
    SCSI_COMMAND = 0x01
    SCSI_RESPONSE = 0x21
    SCSI_DATA_IN = 0x25
    SCSI_DATA_OUT = 0x05
    NOP_OUT = 0x00
    NOP_IN = 0x20
    LOGOUT_REQUEST = 0x06
    LOGOUT_RESPONSE = 0x26
    REPL_DATA_OUT = 0x1C  # vendor-specific: PRINS replication frame
    REPL_ACK = 0x3C  # vendor-specific: replica acknowledgement
    REPL_BATCH_OUT = 0x1E  # vendor-specific: multi-segment PRINS batch
    REPL_BATCH_ACK = 0x3E  # vendor-specific: batch acknowledgement


class ScsiOp(enum.IntEnum):
    """The two SCSI operations the targets serve (encoded in ``flags``)."""

    READ = 0x28
    WRITE = 0x2A


class Status(enum.IntEnum):
    """Response status codes."""

    GOOD = 0x00
    CHECK_CONDITION = 0x02
    LOGIN_REJECT = 0x10
    INVALID_LBA = 0x11
    PROTOCOL_VIOLATION = 0x12


@dataclass
class Pdu:
    """One protocol data unit: 48-byte header plus data segment."""

    opcode: Opcode
    flags: int = 0
    status: int = 0
    itt: int = 0
    lba: int = 0
    transfer_length: int = 0
    seq: int = 0
    trace_id: int = 0
    parent_span: int = 0
    data: bytes = field(default=b"", repr=False)

    @property
    def wire_size(self) -> int:
        """Total bytes this PDU occupies on the wire."""
        return BHS_SIZE + len(self.data)

    def pack(self) -> bytes:
        """Serialize to wire format."""
        header = _BHS.pack(
            int(self.opcode),
            self.flags,
            self.status,
            self.itt,
            self.lba,
            self.transfer_length,
            len(self.data),
            self.seq,
            self.trace_id,
            self.parent_span,
        )
        assert len(header) == BHS_SIZE
        return header + self.data

    @classmethod
    def unpack_header(cls, header: bytes) -> tuple["Pdu", int]:
        """Parse a BHS; return the PDU (data empty) and the data length."""
        if len(header) != BHS_SIZE:
            raise ProtocolError(f"BHS must be {BHS_SIZE} bytes, got {len(header)}")
        (
            opcode,
            flags,
            status,
            itt,
            lba,
            xfer,
            data_len,
            seq,
            trace_id,
            parent_span,
        ) = _BHS.unpack(header)
        try:
            op = Opcode(opcode)
        except ValueError:
            raise ProtocolError(f"unknown opcode {opcode:#04x}") from None
        pdu = cls(
            opcode=op,
            flags=flags,
            status=status,
            itt=itt,
            lba=lba,
            transfer_length=xfer,
            seq=seq,
            trace_id=trace_id,
            parent_span=parent_span,
        )
        return pdu, data_len

    @classmethod
    def unpack(cls, raw: bytes) -> "Pdu":
        """Parse a complete PDU from ``raw`` (header + full data segment)."""
        pdu, data_len = cls.unpack_header(raw[:BHS_SIZE])
        data = raw[BHS_SIZE:]
        if len(data) != data_len:
            raise ProtocolError(
                f"data segment is {len(data)} bytes, header declares {data_len}"
            )
        pdu.data = data
        return pdu
