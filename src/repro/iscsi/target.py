"""The iSCSI target: serves one block device, hooks replication frames.

A :class:`Target` owns the protocol state machine for one session
(security-negotiation-free login → full-feature phase → logout) and
dispatches SCSI READ/WRITE to its LUN.  The vendor-specific
``REPL_DATA_OUT`` opcode is handed to a pluggable handler — the PRINS
replica engine registers itself there, exactly as the paper's PRINS-engine
"runs as a software module inside the iSCSI target" (Sec. 1).

:class:`TargetServer` runs targets for many TCP connections, one thread
per session, so the networked examples can mirror across real sockets.
"""

from __future__ import annotations

import inspect
import logging
import socket
import threading
import time
from collections.abc import Callable

from repro.block.device import BlockDevice
from repro.common.errors import BlockRangeError, ProtocolError
from repro.iscsi.pdu import Opcode, Pdu, ScsiOp, Status
from repro.iscsi.transport import TcpTransport, Transport, TransportClosedError
from repro.obs.dist import context_from_wire

logger = logging.getLogger(__name__)

#: Called with (lba, frame_bytes); returns ack payload (usually empty).
#: Handlers may additionally accept a ``ctx`` keyword — the carried
#: :class:`~repro.obs.dist.TraceContext` — which the target passes when
#: the request PDU brought one; legacy two-argument handlers keep working.
ReplicationHandler = Callable[[int, bytes], bytes]

#: Called with (packed_batch_bytes); returns the batch ack payload.
#: Same optional ``ctx`` keyword convention as :data:`ReplicationHandler`.
BatchHandler = Callable[[bytes], bytes]


def _accepts_ctx(handler) -> bool:
    """True when ``handler`` can take a ``ctx`` keyword argument.

    Decided once at install time (``inspect.signature`` is too slow for
    the per-PDU path); un-introspectable callables count as legacy.
    """
    if handler is None:
        return False
    try:
        signature = inspect.signature(handler)
    except (TypeError, ValueError):
        return False
    for param in signature.parameters.values():
        if param.kind is inspect.Parameter.VAR_KEYWORD:
            return True
        if param.name == "ctx":
            return True
    return False


class Target:
    """Protocol engine for one session against one LUN."""

    def __init__(
        self,
        device: BlockDevice,
        name: str = "iqn.2006-01.edu.uri.hpcl:prins",
        replication_handler: ReplicationHandler | None = None,
        batch_handler: BatchHandler | None = None,
    ) -> None:
        self._device = device
        self._name = name
        self._replication_handler = replication_handler
        self._batch_handler = batch_handler
        self._repl_handler_ctx = _accepts_ctx(replication_handler)
        self._batch_handler_ctx = _accepts_ctx(batch_handler)
        self._logged_in = False
        self._stat_sn = 0

    @property
    def name(self) -> str:
        """The target's IQN-style name."""
        return self._name

    @property
    def device(self) -> BlockDevice:
        """The LUN this target serves."""
        return self._device

    def set_replication_handler(self, handler: ReplicationHandler) -> None:
        """Install the callback invoked for every ``REPL_DATA_OUT`` PDU."""
        self._replication_handler = handler
        self._repl_handler_ctx = _accepts_ctx(handler)

    def set_batch_handler(self, handler: BatchHandler) -> None:
        """Install the callback invoked for every ``REPL_BATCH_OUT`` PDU."""
        self._batch_handler = handler
        self._batch_handler_ctx = _accepts_ctx(handler)

    # -- session loop -------------------------------------------------------

    def serve(self, transport: Transport) -> None:
        """Process PDUs from ``transport`` until logout or disconnect."""
        try:
            while True:
                try:
                    request = transport.receive()
                except TransportClosedError:
                    return
                response = self.handle(request)
                if response is not None:
                    transport.send(response)
                if request.opcode is Opcode.LOGOUT_REQUEST:
                    return
        finally:
            transport.close()

    def handle(self, request: Pdu) -> Pdu | None:
        """Handle a single request PDU; return the response (or None)."""
        self._stat_sn += 1
        handlers = {
            Opcode.LOGIN_REQUEST: self._handle_login,
            Opcode.SCSI_COMMAND: self._handle_scsi,
            Opcode.REPL_DATA_OUT: self._handle_replication,
            Opcode.REPL_BATCH_OUT: self._handle_batch,
            Opcode.NOP_OUT: self._handle_nop,
            Opcode.LOGOUT_REQUEST: self._handle_logout,
        }
        handler = handlers.get(request.opcode)
        if handler is None:
            raise ProtocolError(f"target cannot handle opcode {request.opcode!r}")
        if request.opcode is not Opcode.LOGIN_REQUEST and not self._logged_in:
            return self._respond(
                request, Opcode.SCSI_RESPONSE, status=Status.PROTOCOL_VIOLATION
            )
        return handler(request)

    # -- opcode handlers ------------------------------------------------------

    def _handle_login(self, request: Pdu) -> Pdu:
        requested = request.data.decode("utf-8", errors="replace")
        if requested and requested != self._name:
            logger.warning("login rejected: wanted %r, serving %r", requested, self._name)
            return self._respond(
                request, Opcode.LOGIN_RESPONSE, status=Status.LOGIN_REJECT
            )
        self._logged_in = True
        params = (
            f"TargetName={self._name};BlockSize={self._device.block_size};"
            f"NumBlocks={self._device.num_blocks}"
        )
        return self._respond(
            request, Opcode.LOGIN_RESPONSE, data=params.encode("utf-8")
        )

    def _handle_scsi(self, request: Pdu) -> Pdu:
        try:
            op = ScsiOp(request.flags)
        except ValueError:
            raise ProtocolError(f"unknown SCSI op {request.flags:#04x}") from None
        try:
            if op is ScsiOp.READ:
                data = self._device.read_blocks(request.lba, request.transfer_length)
                return self._respond(request, Opcode.SCSI_DATA_IN, data=data)
            self._device.write_blocks(request.lba, request.data)
            return self._respond(request, Opcode.SCSI_RESPONSE)
        except BlockRangeError:
            return self._respond(
                request, Opcode.SCSI_RESPONSE, status=Status.INVALID_LBA
            )

    def _handle_replication(self, request: Pdu) -> Pdu:
        if self._replication_handler is None:
            logger.warning("replication frame received but no handler installed")
            return self._respond(
                request, Opcode.REPL_ACK, status=Status.PROTOCOL_VIOLATION
            )
        ctx = context_from_wire(request.trace_id, request.parent_span)
        if ctx is not None and self._repl_handler_ctx:
            ack_payload = self._replication_handler(request.lba, request.data, ctx=ctx)
        else:
            ack_payload = self._replication_handler(request.lba, request.data)
        return self._respond(request, Opcode.REPL_ACK, data=ack_payload)

    def _handle_batch(self, request: Pdu) -> Pdu:
        if self._batch_handler is None:
            logger.warning("replication batch received but no handler installed")
            return self._respond(
                request, Opcode.REPL_BATCH_ACK, status=Status.PROTOCOL_VIOLATION
            )
        ctx = context_from_wire(request.trace_id, request.parent_span)
        if ctx is not None and self._batch_handler_ctx:
            ack_payload = self._batch_handler(request.data, ctx=ctx)
        else:
            ack_payload = self._batch_handler(request.data)
        return self._respond(request, Opcode.REPL_BATCH_ACK, data=ack_payload)

    def _handle_nop(self, request: Pdu) -> Pdu:
        return self._respond(request, Opcode.NOP_IN, data=request.data)

    def _handle_logout(self, request: Pdu) -> Pdu:
        self._logged_in = False
        return self._respond(request, Opcode.LOGOUT_RESPONSE)

    def _respond(
        self,
        request: Pdu,
        opcode: Opcode,
        status: Status = Status.GOOD,
        data: bytes = b"",
    ) -> Pdu:
        return Pdu(
            opcode=opcode,
            status=int(status),
            itt=request.itt,
            lba=request.lba,
            seq=self._stat_sn,
            data=data,
        )


class TargetServer:
    """TCP server running one :class:`Target` session per connection."""

    def __init__(
        self,
        device: BlockDevice,
        host: str = "127.0.0.1",
        port: int = 0,
        name: str = "iqn.2006-01.edu.uri.hpcl:prins",
        replication_handler: ReplicationHandler | None = None,
        batch_handler: BatchHandler | None = None,
    ) -> None:
        self._device = device
        self._name = name
        self._replication_handler = replication_handler
        self._batch_handler = batch_handler
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen()
        # live sessions: (thread, transport) pairs, guarded by _lock so a
        # racing accept and close() never disagree about liveness
        self._sessions: list[tuple[threading.Thread, TcpTransport]] = []
        self._lock = threading.Lock()
        self._accept_thread: threading.Thread | None = None
        self._running = False
        self._closed = False

    @property
    def address(self) -> tuple[str, int]:
        """The (host, port) the server is listening on."""
        return self._listener.getsockname()

    @property
    def session_count(self) -> int:
        """Live (unjoined) session threads."""
        with self._lock:
            self._reap_locked()
            return len(self._sessions)

    def start(self) -> "TargetServer":
        """Begin accepting connections in a background thread."""
        if self._closed:
            raise ProtocolError("target server is closed")
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"target-{self._name}", daemon=True
        )
        self._accept_thread.start()
        return self

    def _accept_loop(self) -> None:
        while self._running:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            transport = TcpTransport(conn)
            with self._lock:
                if not self._running:
                    # close() won the race: refuse the straggler session
                    transport.close()
                    return
                target = Target(
                    self._device,
                    name=self._name,
                    replication_handler=self._replication_handler,
                    batch_handler=self._batch_handler,
                )
                thread = threading.Thread(
                    target=target.serve,
                    args=(transport,),
                    name=f"session-{self._name}",
                    daemon=True,
                )
                self._reap_locked()
                self._sessions.append((thread, transport))
                thread.start()

    def _reap_locked(self) -> None:
        """Drop finished session threads (holding the lock)."""
        self._sessions = [
            entry for entry in self._sessions if entry[0].is_alive()
        ]

    def close(self, timeout: float = 5.0) -> None:
        """Deterministic shutdown: refuse, sever, and join every session.

        Closes the listening socket (new connects are refused), closes
        each live session's transport (a session blocked in ``receive`` —
        e.g. behind a half-open initiator that never sends another PDU —
        unblocks with :class:`TransportClosedError` and exits), then
        joins the session and accept threads, each bounded by
        ``timeout``.  Idempotent; the server cannot be restarted.
        """
        with self._lock:
            self._running = False
            self._closed = True
            sessions = list(self._sessions)
        # a plain close() does not wake a thread parked in accept() on
        # Linux; shutdown() does.  Platforms that refuse shutdown on a
        # listening socket get a throwaway wake-up connection instead.
        try:
            address = self._listener.getsockname()
        except OSError:
            address = None
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            if address is not None:
                try:
                    socket.create_connection(address[:2], timeout=0.2).close()
                except OSError:
                    pass
        try:
            self._listener.close()
        except OSError:
            pass
        for _thread, transport in sessions:
            transport.close()
        deadline = time.monotonic() + timeout
        for thread, _transport in sessions:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
        if self._accept_thread is not None:
            self._accept_thread.join(
                timeout=max(0.0, deadline - time.monotonic())
            )
        leaked = [t for t, _ in sessions if t.is_alive()]
        if leaked:
            raise ProtocolError(
                f"{len(leaked)} session thread(s) failed to stop within "
                f"{timeout:.1f}s"
            )
        with self._lock:
            self._sessions = []

    def stop(self) -> None:
        """Alias for :meth:`close` (the historical name)."""
        self.close()

    def __enter__(self) -> "TargetServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()
