"""The iSCSI initiator: client side of the protocol.

An :class:`Initiator` logs into a target over any transport and then issues
SCSI READ/WRITE commands or PRINS replication frames.  The PRINS engine's
"communication module is another iSCSI initiator communicating with the
counterpart iSCSI target at the replica node" (Sec. 2) — that module is
exactly an instance of this class.
"""

from __future__ import annotations

from repro.common.errors import LoginError, ProtocolError
from repro.iscsi.pdu import Opcode, Pdu, ScsiOp, Status
from repro.iscsi.transport import Transport


class Initiator:
    """Synchronous one-command-at-a-time iSCSI client."""

    def __init__(self, transport: Transport, timeout: float | None = 30.0) -> None:
        self._transport = transport
        self._timeout = timeout
        self._itt = 0
        self._cmd_sn = 0
        self._logged_in = False
        self.block_size: int | None = None
        self.num_blocks: int | None = None

    @property
    def transport(self) -> Transport:
        """The underlying transport (exposes byte counters)."""
        return self._transport

    @property
    def logged_in(self) -> bool:
        """True after a successful :meth:`login`."""
        return self._logged_in

    # -- session ------------------------------------------------------------

    def login(self, target_name: str = "") -> dict[str, str]:
        """Log in; returns the target's negotiated parameters."""
        response = self._roundtrip(
            Pdu(opcode=Opcode.LOGIN_REQUEST, data=target_name.encode("utf-8")),
            expect=Opcode.LOGIN_RESPONSE,
        )
        if response.status != Status.GOOD:
            raise LoginError(f"login rejected with status {response.status:#04x}")
        params: dict[str, str] = {}
        for pair in response.data.decode("utf-8").split(";"):
            if "=" in pair:
                key, value = pair.split("=", 1)
                params[key] = value
        self.block_size = int(params.get("BlockSize", 0)) or None
        self.num_blocks = int(params.get("NumBlocks", 0)) or None
        self._logged_in = True
        return params

    def logout(self) -> None:
        """Log out and close the transport."""
        if self._logged_in:
            self._roundtrip(
                Pdu(opcode=Opcode.LOGOUT_REQUEST), expect=Opcode.LOGOUT_RESPONSE
            )
            self._logged_in = False
        self._transport.close()

    # -- SCSI ------------------------------------------------------------------

    def read(self, lba: int, count: int = 1) -> bytes:
        """Read ``count`` blocks starting at ``lba``."""
        response = self._roundtrip(
            Pdu(
                opcode=Opcode.SCSI_COMMAND,
                flags=int(ScsiOp.READ),
                lba=lba,
                transfer_length=count,
            ),
            expect=Opcode.SCSI_DATA_IN,
        )
        return response.data

    def write(self, lba: int, data: bytes) -> None:
        """Write whole blocks starting at ``lba``."""
        count = len(data) // self.block_size if self.block_size else 1
        self._roundtrip(
            Pdu(
                opcode=Opcode.SCSI_COMMAND,
                flags=int(ScsiOp.WRITE),
                lba=lba,
                transfer_length=count,
                data=data,
            ),
            expect=Opcode.SCSI_RESPONSE,
        )

    def ping(self, payload: bytes = b"") -> bytes:
        """NOP round-trip; returns the echoed payload."""
        return self._roundtrip(
            Pdu(opcode=Opcode.NOP_OUT, data=payload), expect=Opcode.NOP_IN
        ).data

    # -- PRINS replication -------------------------------------------------------

    def send_replication_frame(self, lba: int, frame: bytes, ctx=None) -> bytes:
        """Ship one replication frame; returns the replica's ack payload.

        ``ctx`` (a :class:`~repro.obs.dist.TraceContext` or ``None``)
        rides in the BHS trace fields so the replica's apply span joins
        the originating write's causal tree; absent context packs zeros
        — byte-identical to the pre-tracing wire format.
        """
        trace_id, parent_span = (0, 0) if ctx is None else (ctx.trace_id, ctx.span_id)
        response = self._roundtrip(
            Pdu(
                opcode=Opcode.REPL_DATA_OUT,
                lba=lba,
                trace_id=trace_id,
                parent_span=parent_span,
                data=frame,
            ),
            expect=Opcode.REPL_ACK,
        )
        return response.data

    def send_replication_batch(
        self, payload: bytes, record_count: int, ctx=None
    ) -> bytes:
        """Ship a packed multi-segment batch; returns the batch ack payload.

        One PDU carries ``record_count`` replication records (count is
        advertised in ``transfer_length`` for wire-level introspection);
        the per-record LBAs travel inside the batch segments.  ``ctx``
        propagates the causal trace context exactly as in
        :meth:`send_replication_frame`.
        """
        trace_id, parent_span = (0, 0) if ctx is None else (ctx.trace_id, ctx.span_id)
        response = self._roundtrip(
            Pdu(
                opcode=Opcode.REPL_BATCH_OUT,
                transfer_length=record_count,
                trace_id=trace_id,
                parent_span=parent_span,
                data=payload,
            ),
            expect=Opcode.REPL_BATCH_ACK,
        )
        return response.data

    # -- plumbing ------------------------------------------------------------------

    def _roundtrip(self, request: Pdu, expect: Opcode) -> Pdu:
        self._itt += 1
        self._cmd_sn += 1
        request.itt = self._itt
        request.seq = self._cmd_sn
        self._transport.send(request)
        response = self._transport.receive(timeout=self._timeout)
        while response.itt < request.itt:
            # A late or duplicated response from an earlier exchange (a
            # retried command whose first ack arrived after its timeout,
            # or a duplicated PDU acked twice).  iSCSI matches responses
            # by ITT: drain stale ones and keep waiting for ours, so one
            # network hiccup cannot poison every later exchange.
            response = self._transport.receive(timeout=self._timeout)
        if response.itt != request.itt:
            raise ProtocolError(
                f"response ITT {response.itt} does not match request {request.itt}"
            )
        if response.opcode is not expect:
            raise ProtocolError(
                f"expected {expect!r}, got {response.opcode!r} "
                f"(status {response.status:#04x})"
            )
        if response.status != Status.GOOD:
            if response.opcode is Opcode.LOGIN_RESPONSE:
                raise LoginError(
                    f"login rejected with status {response.status:#04x}"
                )
            raise ProtocolError(f"command failed with status {response.status:#04x}")
        return response

    def __enter__(self) -> "Initiator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.logout()
