"""ASCII table rendering for benchmark output."""

from __future__ import annotations


def format_table(
    headers: list[str], rows: list[list[object]], title: str | None = None
) -> str:
    """Render a simple aligned table.

    Numbers are right-aligned; everything else left-aligned.  Floats are
    shown with three significant decimals unless they are integral.
    """
    rendered: list[list[str]] = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: list[str], row_values: list[object] | None) -> str:
        parts = []
        for i, cell in enumerate(cells):
            value = row_values[i] if row_values is not None else None
            if isinstance(value, (int, float)):
                parts.append(cell.rjust(widths[i]))
            else:
                parts.append(cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers, None))
    lines.append("  ".join("-" * w for w in widths))
    for raw, row in zip(rows, rendered):
        lines.append(fmt_row(row, raw))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value in (float("inf"), float("-inf")):
            return "inf" if value > 0 else "-inf"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3f}"
    if isinstance(value, int):
        return f"{value:,}" if abs(value) >= 10_000 else str(value)
    return str(value)
