"""Result analysis and reporting.

Small, dependency-free helpers the benchmark harness uses to print the
paper's tables: ASCII table rendering (:mod:`repro.analysis.tables`) and
experiment-result records with paper-vs-measured comparisons
(:mod:`repro.analysis.report`).
"""

from repro.analysis.report import Comparison, ExperimentResult
from repro.analysis.tables import format_table

__all__ = ["Comparison", "ExperimentResult", "format_table"]
