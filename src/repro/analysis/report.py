"""Experiment-result records and paper-vs-measured comparisons."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.tables import format_table


@dataclass(frozen=True)
class Comparison:
    """One paper claim checked against a measured value."""

    metric: str
    paper_value: float
    measured_value: float
    tolerance_factor: float = 3.0  # "shape, not absolute numbers"

    @property
    def ratio(self) -> float:
        """measured / paper (1.0 is a perfect match)."""
        if self.paper_value == 0:
            return float("inf") if self.measured_value else 1.0
        return self.measured_value / self.paper_value

    @property
    def within_tolerance(self) -> bool:
        """True if measured is within ``tolerance_factor``× of the paper."""
        ratio = self.ratio
        return 1.0 / self.tolerance_factor <= ratio <= self.tolerance_factor


@dataclass
class ExperimentResult:
    """A reproduced table/figure: id, data rows, and paper comparisons."""

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list[object]] = field(default_factory=list)
    comparisons: list[Comparison] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        """Append one data row."""
        self.rows.append(list(values))

    def add_comparison(
        self,
        metric: str,
        paper_value: float,
        measured_value: float,
        tolerance_factor: float = 3.0,
    ) -> Comparison:
        """Record a paper-vs-measured check."""
        comparison = Comparison(metric, paper_value, measured_value, tolerance_factor)
        self.comparisons.append(comparison)
        return comparison

    def to_dict(self) -> dict:
        """JSON-safe view of the whole result (rows, comparisons, notes)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "comparisons": [
                {
                    "metric": c.metric,
                    "paper_value": c.paper_value,
                    "measured_value": c.measured_value,
                    "ratio": c.ratio,
                    "within_tolerance": c.within_tolerance,
                }
                for c in self.comparisons
            ],
            "notes": list(self.notes),
            "ok": all(c.within_tolerance for c in self.comparisons),
        }

    def to_csv(self) -> str:
        """Render the data rows as CSV (header row first).

        Values are comma-escaped minimally (quotes around cells containing
        commas); floats keep full precision for downstream plotting.
        """

        def cell(value: object) -> str:
            text = repr(value) if isinstance(value, float) else str(value)
            if "," in text or '"' in text:
                text = '"' + text.replace('"', '""') + '"'
            return text

        lines = [",".join(cell(h) for h in self.headers)]
        lines += [",".join(cell(v) for v in row) for row in self.rows]
        return "\n".join(lines) + "\n"

    def save_csv(self, path) -> None:
        """Write :meth:`to_csv` output to ``path``."""
        from pathlib import Path

        Path(path).write_text(self.to_csv(), encoding="utf-8")

    def render(self) -> str:
        """Format the whole result for terminal output."""
        lines = [format_table(self.headers, self.rows, title=f"[{self.experiment_id}] {self.title}")]
        if self.comparisons:
            lines.append("")
            lines.append("paper comparison:")
            for c in self.comparisons:
                verdict = "ok" if c.within_tolerance else "OUT OF BAND"
                lines.append(
                    f"  {c.metric}: paper={c.paper_value:g} "
                    f"measured={c.measured_value:g} "
                    f"(x{c.ratio:.2f}) [{verdict}]"
                )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)
