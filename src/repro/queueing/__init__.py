"""Queueing models of the replication WAN (paper Sec. 3.3).

The paper models the wide-area network as a closed queueing network:
computing nodes are delay centers (think time 0.1 s, the measured TPC-C
write inter-arrival), routers are FIFO queues whose service time is the
nodal delay of Eq. (3)/(4), and the population is nodes × replicas.  The
model is solved with exact Mean Value Analysis; a separate open M/M/1
model studies single-router saturation (Fig. 10).

* :mod:`repro.queueing.params` — T1/T3 line rates and the nodal-delay
  formula with the paper's exact constants;
* :mod:`repro.queueing.mva` — exact MVA for closed networks;
* :mod:`repro.queueing.mm1` — M/M/1 metrics;
* :mod:`repro.queueing.model` — the PRINS response-time model producing
  the curves of Figs. 8, 9, and 10 from measured payload sizes.
"""

from repro.queueing.mm1 import MM1Metrics, mm1_metrics
from repro.queueing.model import ReplicationNetworkModel, StrategyTraffic
from repro.queueing.mva import MvaResult, solve_mva
from repro.queueing.params import (
    T1,
    T3,
    LineRate,
    nodal_processing_delay,
    propagation_delay,
    router_service_time,
    transmission_delay,
)

__all__ = [
    "LineRate",
    "MM1Metrics",
    "MvaResult",
    "ReplicationNetworkModel",
    "StrategyTraffic",
    "T1",
    "T3",
    "mm1_metrics",
    "nodal_processing_delay",
    "propagation_delay",
    "router_service_time",
    "solve_mva",
    "transmission_delay",
]
