"""The replication-network response-time model (Figs. 8, 9, 10).

Connects the measured traffic (mean replicated payload per write, from the
traffic experiments) to the queueing substrate: each strategy's payload
size sets the routers' service time via Eq. (4); the closed network (think
time 0.1 s — the measured TPC-C average of 10.22 writes/s — and two
routers) is then solved with exact MVA across populations, and the single
router with M/M/1 across write rates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.queueing.mm1 import MM1Metrics, mm1_metrics
from repro.queueing.mva import MvaResult, solve_mva
from repro.queueing.params import LineRate, router_service_time

#: the paper's think time: "each node generates a write request after 0.1
#: second" (measured 10.22 writes/s under TPC-C, Sec. 3.3)
DEFAULT_THINK_TIME = 0.1
#: the paper's topology: "all replications go through two network routers"
DEFAULT_ROUTERS = 2


@dataclass(frozen=True)
class StrategyTraffic:
    """Measured traffic characteristics of one replication strategy."""

    name: str
    mean_payload_bytes: float

    def __post_init__(self) -> None:
        if self.mean_payload_bytes < 0:
            raise ValueError("mean_payload_bytes must be non-negative")


class ReplicationNetworkModel:
    """Queueing model of one strategy's replication traffic over a WAN."""

    def __init__(
        self,
        traffic: StrategyTraffic,
        line: LineRate,
        routers: int = DEFAULT_ROUTERS,
        think_time: float = DEFAULT_THINK_TIME,
    ) -> None:
        if routers <= 0:
            raise ValueError(f"routers must be positive, got {routers}")
        self.traffic = traffic
        self.line = line
        self.routers = routers
        self.think_time = think_time

    @property
    def router_service_time(self) -> float:
        """Per-router service time for this strategy's payload (Eq. 4)."""
        return router_service_time(self.traffic.mean_payload_bytes, self.line)

    # -- closed network (Figs. 8 and 9) ---------------------------------------

    def solve(self, population: int) -> MvaResult:
        """Exact MVA at ``population`` = nodes × replicas."""
        service = [self.router_service_time] * self.routers
        return solve_mva(service, self.think_time, population)

    def response_time(self, population: int) -> float:
        """Replication response time (time in the router chain), seconds."""
        return self.solve(population).response_time

    def response_time_curve(self, populations: list[int]) -> list[float]:
        """Response time at each population (a Fig. 8 / Fig. 9 series)."""
        return [self.response_time(n) for n in populations]

    # -- open single router (Fig. 10) --------------------------------------------

    def router_mm1(self, write_rate: float) -> MM1Metrics:
        """M/M/1 view of one router at ``write_rate`` requests/second."""
        return mm1_metrics(write_rate, self.router_service_time)

    def queueing_time_curve(self, write_rates: list[float]) -> list[float]:
        """Router queueing time at each write rate (the Fig. 10 series)."""
        return [self.router_mm1(rate).queueing_time for rate in write_rates]

    @property
    def saturation_write_rate(self) -> float:
        """Write rate at which a single router saturates (1/S)."""
        return 1.0 / self.router_service_time
