"""Exact Mean Value Analysis for closed queueing networks.

Implements the classic exact MVA recursion (Lazowska et al. [29], the
paper's own reference): a single customer class, one delay center (the
computing nodes' think time) and ``M`` load-dependent-free FIFO queueing
centers (the routers).  For population ``n``::

    R_i(n) = S_i * (1 + Q_i(n - 1))          response at center i
    X(n)   = n / (Z + Σ R_i(n))              system throughput
    Q_i(n) = X(n) * R_i(n)                   queue length at center i

The recursion is exact for product-form networks (exponential service,
FIFO), which is the paper's setting.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MvaResult:
    """Solution of the closed network at one population."""

    population: int
    think_time: float
    response_time: float  # total time at the queueing centers (Σ R_i)
    throughput: float  # customers per second through the cycle
    queue_lengths: tuple[float, ...]  # mean customers at each center
    center_response_times: tuple[float, ...]

    @property
    def cycle_time(self) -> float:
        """Mean time around the loop: think + response."""
        return self.think_time + self.response_time

    @property
    def bottleneck_utilization(self) -> float:
        """Highest per-center utilization (X × S_i)."""
        return max(
            self.throughput * r / (1 + q) if q >= 0 else 0.0
            for r, q in zip(self.center_response_times, self.queue_lengths)
        )


def solve_mva(
    service_times: list[float], think_time: float, population: int
) -> MvaResult:
    """Solve the closed network exactly at ``population`` customers.

    ``service_times`` holds one mean service time per queueing center
    (the routers); ``think_time`` is the delay-center demand (Z).
    """
    if population < 0:
        raise ValueError(f"population must be non-negative, got {population}")
    if think_time < 0:
        raise ValueError(f"think_time must be non-negative, got {think_time}")
    if any(s < 0 for s in service_times):
        raise ValueError("service times must be non-negative")
    centers = len(service_times)
    queue_lengths = [0.0] * centers
    response_times = [0.0] * centers
    throughput = 0.0
    for n in range(1, population + 1):
        response_times = [
            s * (1.0 + q) for s, q in zip(service_times, queue_lengths)
        ]
        total_response = sum(response_times)
        throughput = n / (think_time + total_response)
        queue_lengths = [throughput * r for r in response_times]
    return MvaResult(
        population=population,
        think_time=think_time,
        response_time=sum(response_times),
        throughput=throughput,
        queue_lengths=tuple(queue_lengths),
        center_response_times=tuple(response_times),
    )


def response_time_curve(
    service_times: list[float], think_time: float, populations: list[int]
) -> list[float]:
    """Response time at each population (one MVA solve per point)."""
    return [
        solve_mva(service_times, think_time, n).response_time
        for n in populations
    ]
