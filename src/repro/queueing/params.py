"""WAN parameters and the nodal-delay model (paper Eqs. (3) and (4)).

Constants are taken verbatim from Sec. 3.3:

* a T1 line is 1.544 Mbps ≈ 154.4 KB/s "assuming 10 bits for a byte
  considering parity bit etc."; a T3 line is 44.736 Mbps ≈ 4473.6 KB/s;
* packets carry 1.5 KB of payload with 0.112 KB of Ethernet+IP+TCP headers;
* nodal processing delay is 5 µs per packet;
* propagation delay is 1 ms (200 km at 2×10⁸ m/s).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Ethernet payload bytes per packet (paper: 1.5 KB)
PACKET_PAYLOAD_BYTES = 1500.0
#: protocol header bytes per packet (paper: 0.112 KB)
PACKET_HEADER_BYTES = 112.0
#: nodal processing delay per packet, seconds (paper: 5 µs)
PROCESSING_DELAY_PER_PACKET = 5e-6
#: propagation delay per hop, seconds (paper: 200 km / 2e8 m/s = 1 ms)
PROPAGATION_DELAY = 1e-3


@dataclass(frozen=True)
class LineRate:
    """A WAN line type: name plus usable bandwidth in bytes per second."""

    name: str
    bytes_per_second: float

    def __post_init__(self) -> None:
        if self.bytes_per_second <= 0:
            raise ValueError("bandwidth must be positive")


#: T1 line: 1.544 Mbps at 10 bits/byte = 154.4 KB/s (paper Sec. 3.3)
T1 = LineRate("T1", 154_400.0)
#: T3 line: 44.736 Mbps at 10 bits/byte = 4473.6 KB/s
T3 = LineRate("T3", 4_473_600.0)


def packet_count(payload_bytes: float) -> float:
    """Number of packets for a payload (continuous, per the paper's model)."""
    if payload_bytes < 0:
        raise ValueError(f"payload_bytes must be non-negative, got {payload_bytes}")
    return payload_bytes / PACKET_PAYLOAD_BYTES


def transmission_delay(payload_bytes: float, line: LineRate) -> float:
    """Eq. (3) Dtrans: ``(Sd + Sd/1.5 * 0.112) / Net_BW`` in seconds."""
    wire_bytes = payload_bytes + packet_count(payload_bytes) * PACKET_HEADER_BYTES
    return wire_bytes / line.bytes_per_second


def nodal_processing_delay(payload_bytes: float) -> float:
    """Dproc: 5 µs per packet (at least one packet per message)."""
    return max(1.0, packet_count(payload_bytes)) * PROCESSING_DELAY_PER_PACKET


def propagation_delay() -> float:
    """Dprop: 1 ms per router hop."""
    return PROPAGATION_DELAY


def router_service_time(payload_bytes: float, line: LineRate) -> float:
    """Eq. (4): ``S_router = Dtrans + Dproc + Dprop``.

    The queueing delay Dqueue of Eq. (3) is *not* part of the service
    time — it is what the MVA / M/M/1 solution produces.
    """
    return (
        transmission_delay(payload_bytes, line)
        + nodal_processing_delay(payload_bytes)
        + propagation_delay()
    )
