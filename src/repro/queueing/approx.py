"""Approximate MVA (Schweitzer / Bard) for very large populations.

Exact MVA is O(population × centers); at the cluster sizes the paper's
introduction gestures at (grids, P2P networks — thousands of nodes ×
replicas) an O(iterations × centers) fixed point is preferable.  The
Schweitzer approximation replaces the exact arrival theorem term
``Q_i(n-1)`` with ``Q_i(n) * (n-1)/n`` and iterates to convergence; its
error is a few percent at worst and vanishes as the population grows —
verified against exact MVA in the test suite.
"""

from __future__ import annotations

from repro.queueing.mva import MvaResult


def solve_mva_approximate(
    service_times: list[float],
    think_time: float,
    population: int,
    tolerance: float = 1e-9,
    max_iterations: int = 100_000,
) -> MvaResult:
    """Schweitzer fixed-point approximation of the closed network.

    Same result type as :func:`repro.queueing.mva.solve_mva`; accuracy is
    within a few percent of exact MVA for populations above ~10 and
    essentially exact asymptotically.
    """
    if population < 0:
        raise ValueError(f"population must be non-negative, got {population}")
    if think_time < 0:
        raise ValueError(f"think_time must be non-negative, got {think_time}")
    if any(s < 0 for s in service_times):
        raise ValueError("service times must be non-negative")
    centers = len(service_times)
    if population == 0 or centers == 0:
        response = [0.0] * centers
        throughput = (
            population / think_time if think_time > 0 and population else 0.0
        )
        return MvaResult(
            population=population,
            think_time=think_time,
            response_time=0.0,
            throughput=throughput,
            queue_lengths=tuple(0.0 for _ in service_times),
            center_response_times=tuple(response),
        )

    # initial guess: population spread evenly over the centers
    queue_lengths = [population / centers] * centers
    scale = (population - 1) / population
    throughput = 0.0
    response_times = list(service_times)
    for _ in range(max_iterations):
        response_times = [
            s * (1.0 + q * scale) for s, q in zip(service_times, queue_lengths)
        ]
        total_response = sum(response_times)
        throughput = population / (think_time + total_response)
        new_lengths = [throughput * r for r in response_times]
        drift = max(
            abs(new - old) for new, old in zip(new_lengths, queue_lengths)
        )
        queue_lengths = new_lengths
        if drift < tolerance:
            break
    return MvaResult(
        population=population,
        think_time=think_time,
        response_time=sum(response_times),
        throughput=throughput,
        queue_lengths=tuple(queue_lengths),
        center_response_times=tuple(response_times),
    )
