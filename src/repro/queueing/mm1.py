"""M/M/1 queue metrics (paper Fig. 10).

"We use a simple M/M/1 queueing model to analyze the traffic behavior on
one router.  We keep increasing the write request rate of computing nodes
until the router is saturated" (Sec. 4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class MM1Metrics:
    """Steady-state metrics of an M/M/1 queue (inf when saturated)."""

    arrival_rate: float
    service_time: float

    @property
    def utilization(self) -> float:
        """ρ = λ · S."""
        return self.arrival_rate * self.service_time

    @property
    def stable(self) -> bool:
        """True when ρ < 1."""
        return self.utilization < 1.0

    @property
    def queueing_time(self) -> float:
        """Mean wait before service, Wq = ρS / (1 − ρ); inf if saturated."""
        if not self.stable:
            return math.inf
        rho = self.utilization
        return rho * self.service_time / (1.0 - rho)

    @property
    def response_time(self) -> float:
        """Mean total time in system, W = S / (1 − ρ); inf if saturated."""
        if not self.stable:
            return math.inf
        return self.service_time / (1.0 - self.utilization)

    @property
    def mean_queue_length(self) -> float:
        """Mean number in system, L = ρ / (1 − ρ); inf if saturated."""
        if not self.stable:
            return math.inf
        rho = self.utilization
        return rho / (1.0 - rho)

    @property
    def saturation_rate(self) -> float:
        """The arrival rate at which the queue saturates, 1/S."""
        return 1.0 / self.service_time if self.service_time > 0 else math.inf


def mm1_metrics(arrival_rate: float, service_time: float) -> MM1Metrics:
    """Build M/M/1 metrics, validating inputs."""
    if arrival_rate < 0:
        raise ValueError(f"arrival_rate must be non-negative, got {arrival_rate}")
    if service_time <= 0:
        raise ValueError(f"service_time must be positive, got {service_time}")
    return MM1Metrics(arrival_rate=arrival_rate, service_time=service_time)
