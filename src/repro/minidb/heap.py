"""Heap files: unordered record storage addressed by RID.

A heap file owns a growing set of pages.  Records are addressed by
``Rid(page_id, slot)``.  Updates are applied in place when the new record
fits (the common TPC-C case — fixed-width rows never grow), otherwise the
record moves and the caller receives the new RID to fix up its index.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from typing import NamedTuple

from repro.common.errors import StorageError
from repro.minidb.buffer import BufferPool
from repro.minidb.page import PageFullError


class Rid(NamedTuple):
    """Record identifier: page id + slot within the page."""

    page_id: int
    slot: int


class HeapFile:
    """A bag of records spread across buffer-pool pages."""

    def __init__(
        self, pool: BufferPool, allocate_page: Callable[[], int]
    ) -> None:
        self._pool = pool
        self._allocate_page = allocate_page
        self._page_ids: list[int] = []

    @property
    def page_ids(self) -> list[int]:
        """Pages owned by this heap file, in allocation order."""
        return list(self._page_ids)

    @property
    def record_capacity_hint(self) -> int:
        """Largest record that is guaranteed to fit in a fresh page."""
        # header 8 + one slot entry 4
        return self._pool.page_size - 12

    # -- operations -----------------------------------------------------------

    def insert(self, record: bytes) -> Rid:
        """Store ``record``; returns its RID.

        Tries the most recently used page first (append locality, like a
        real heap with a free-space map), then earlier pages, then grows.
        """
        if len(record) > self.record_capacity_hint:
            raise StorageError(
                f"record of {len(record)} bytes exceeds page capacity "
                f"({self.record_capacity_hint})"
            )
        for page_id in reversed(self._page_ids):
            page = self._pool.fetch(page_id)
            if page.free_space >= len(record):
                try:
                    slot = page.insert(record)
                except PageFullError:  # fragmentation: reclaim and retry
                    page.compact()
                    self._pool.mark_dirty(page_id)
                    if page.free_space < len(record):
                        continue
                    slot = page.insert(record)
                self._pool.mark_dirty(page_id)
                return Rid(page_id, slot)
        page_id = self._allocate_page()
        page = self._pool.new_page(page_id)
        self._page_ids.append(page_id)
        slot = page.insert(record)
        self._pool.mark_dirty(page_id)
        return Rid(page_id, slot)

    def read(self, rid: Rid) -> bytes:
        """Return the record at ``rid``."""
        return self._pool.fetch(rid.page_id).read(rid.slot)

    def update(self, rid: Rid, record: bytes) -> Rid:
        """Overwrite the record at ``rid``; returns its (possibly new) RID."""
        page = self._pool.fetch(rid.page_id)
        if page.update(rid.slot, record):
            self._pool.mark_dirty(rid.page_id)
            return rid
        # Does not fit in place: move the record.
        page.delete(rid.slot)
        self._pool.mark_dirty(rid.page_id)
        return self.insert(record)

    def delete(self, rid: Rid) -> None:
        """Remove the record at ``rid``."""
        page = self._pool.fetch(rid.page_id)
        page.delete(rid.slot)
        self._pool.mark_dirty(rid.page_id)

    def scan(self) -> Iterator[tuple[Rid, bytes]]:
        """Yield every live record as ``(rid, bytes)`` in page order."""
        for page_id in self._page_ids:
            page = self._pool.fetch(page_id)
            for slot in page.live_slots():
                yield Rid(page_id, slot), page.read(slot)

    def __len__(self) -> int:
        return sum(
            len(self._pool.fetch(pid).live_slots()) for pid in self._page_ids
        )
