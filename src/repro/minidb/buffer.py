"""Buffer pool: the page cache between minidb and the block device.

Pages are fetched into memory, mutated in place, and written back to the
device either on eviction or on :meth:`BufferPool.flush` (the commit path).
Because write-back rewrites the *whole* page image while a transaction
changed only a few rows, the block-level write stream has exactly the
partial-change character the paper measures — this class is where the
"5–20 % of a block actually changes" behaviour comes from mechanically.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.block.device import BlockDevice
from repro.common.errors import StorageError
from repro.minidb.page import SlottedPage


class BufferPool:
    """LRU cache of :class:`SlottedPage` objects over a block device.

    Page ``p`` lives in device block ``p``; minidb uses one block per page.
    """

    def __init__(self, device: BlockDevice, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._device = device
        self._capacity = capacity
        self._pages: OrderedDict[int, SlottedPage] = OrderedDict()
        self._dirty: set[int] = set()
        self._pins: dict[int, int] = {}
        self.fetches = 0
        self.hits = 0
        self.evictions = 0
        self.writebacks = 0

    @property
    def device(self) -> BlockDevice:
        """The underlying block device (often a PrimaryEngine)."""
        return self._device

    @property
    def page_size(self) -> int:
        """Page size == device block size."""
        return self._device.block_size

    @property
    def dirty_count(self) -> int:
        """Number of cached pages awaiting write-back."""
        return len(self._dirty)

    # -- page access ---------------------------------------------------------

    def new_page(self, page_id: int) -> SlottedPage:
        """Initialize block ``page_id`` as a fresh, empty slotted page."""
        page = SlottedPage(self.page_size)
        self._install(page_id, page)
        self._dirty.add(page_id)
        return page

    def fetch(self, page_id: int) -> SlottedPage:
        """Return the page in block ``page_id``, reading it if uncached."""
        self.fetches += 1
        cached = self._pages.get(page_id)
        if cached is not None:
            self._pages.move_to_end(page_id)
            self.hits += 1
            return cached
        raw = self._device.read_block(page_id)
        try:
            page = SlottedPage(self.page_size, raw)
        except StorageError:
            raise StorageError(
                f"block {page_id} does not contain a slotted page "
                f"(use new_page to initialize it)"
            ) from None
        self._install(page_id, page)
        return page

    def mark_dirty(self, page_id: int) -> None:
        """Record that the cached page was mutated and must be written back."""
        if page_id not in self._pages:
            raise StorageError(f"page {page_id} is not resident")
        self._dirty.add(page_id)

    # -- write-back ------------------------------------------------------------

    def flush(self) -> int:
        """Write every dirty page back to the device; returns pages written.

        This is minidb's commit/checkpoint: the paper's databases issue
        their block writes on exactly this path.
        """
        written = 0
        for page_id in sorted(self._dirty):
            self._writeback(page_id)
            written += 1
        self._dirty.clear()
        return written

    def flush_page(self, page_id: int) -> None:
        """Write back one dirty page (no-op if it is clean)."""
        if page_id in self._dirty:
            self._writeback(page_id)
            self._dirty.discard(page_id)

    def _writeback(self, page_id: int) -> None:
        self._device.write_block(page_id, self._pages[page_id].to_bytes())
        self.writebacks += 1

    # -- pinning -----------------------------------------------------------------

    def pin(self, page_id: int) -> None:
        """Protect a resident page from eviction until :meth:`unpin`.

        Multi-page operations (B-tree splits) pin every page they hold a
        Python reference to, so an eviction triggered by fetching a sibling
        cannot detach a page mid-mutation.
        """
        if page_id not in self._pages:
            raise StorageError(f"cannot pin non-resident page {page_id}")
        self._pins[page_id] = self._pins.get(page_id, 0) + 1

    def unpin(self, page_id: int) -> None:
        """Release one pin on ``page_id``."""
        count = self._pins.get(page_id, 0)
        if count <= 1:
            self._pins.pop(page_id, None)
        else:
            self._pins[page_id] = count - 1

    # -- eviction ----------------------------------------------------------------

    def _install(self, page_id: int, page: SlottedPage) -> None:
        self._pages[page_id] = page
        self._pages.move_to_end(page_id)
        while len(self._pages) > self._capacity:
            victim_id = next(
                (pid for pid in self._pages if pid not in self._pins), None
            )
            if victim_id is None:
                return  # everything pinned: temporarily exceed capacity
            if victim_id in self._dirty:
                self._writeback(victim_id)
                self._dirty.discard(victim_id)
            del self._pages[victim_id]
            self.evictions += 1
