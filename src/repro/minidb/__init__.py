"""minidb — a page-oriented mini-DBMS substrate.

The paper runs Oracle, Postgres and MySQL on top of the PRINS-engine.  What
those systems contribute to the experiment is their *storage behaviour*: a
transaction touches a handful of rows, each row update dirties a small slice
of an 8 KB slotted page, and the buffer manager writes whole pages back to
the block device.  minidb reproduces exactly that stack in miniature:

* :mod:`repro.minidb.page` — slotted pages with a slot directory;
* :mod:`repro.minidb.schema` — typed columns and row serialization;
* :mod:`repro.minidb.buffer` — an LRU buffer pool with dirty write-back;
* :mod:`repro.minidb.heap` — heap files of records addressed by RID;
* :mod:`repro.minidb.btree` — a B-tree index (int key → RID);
* :mod:`repro.minidb.db` — the `Database` facade tying it together.

Mount a :class:`~repro.engine.primary.PrimaryEngine` as the database's
device and every page write-back is replicated — the paper's full stack
(App → DBMS → PRINS-engine → storage) in pure Python.
"""

from repro.minidb.btree import BTree
from repro.minidb.buffer import BufferPool
from repro.minidb.db import Database
from repro.minidb.heap import HeapFile, Rid
from repro.minidb.page import SlottedPage
from repro.minidb.schema import Column, ColumnType, Schema

__all__ = [
    "BTree",
    "BufferPool",
    "Column",
    "ColumnType",
    "Database",
    "HeapFile",
    "Rid",
    "Schema",
    "SlottedPage",
]
