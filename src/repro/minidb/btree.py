"""B-tree index: integer key → RID.

Each node occupies one buffer-pool page (stored as the page's single
record, so the pool's dirty-tracking and write-back apply unchanged).
Leaves are chained for range scans.  Deletion is lazy — keys are removed
from leaves without rebalancing, the standard simplification for
insert-mostly workloads like TPC-C order entry.

Node wire format::

    uint8   is_leaf
    uint16  entry count
    int64   next-leaf page id (-1 if none / internal node)
    leaf:      count × (int64 key, uint32 page_id, uint16 slot)
    internal:  count × int64 key, then (count + 1) × uint32 child page id
"""

from __future__ import annotations

import bisect
import struct
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field

from repro.common.errors import StorageError
from repro.minidb.buffer import BufferPool
from repro.minidb.heap import Rid

_HEADER = struct.Struct("<BHq")
_LEAF_ENTRY = struct.Struct("<qIH")
_KEY = struct.Struct("<q")
_CHILD = struct.Struct("<I")


@dataclass
class _Node:
    """In-memory form of one B-tree node."""

    is_leaf: bool
    next_leaf: int = -1
    keys: list[int] = field(default_factory=list)
    rids: list[Rid] = field(default_factory=list)  # leaves only
    children: list[int] = field(default_factory=list)  # internal only

    def to_bytes(self) -> bytes:
        out = bytearray(
            _HEADER.pack(1 if self.is_leaf else 0, len(self.keys), self.next_leaf)
        )
        if self.is_leaf:
            for key, rid in zip(self.keys, self.rids):
                out += _LEAF_ENTRY.pack(key, rid.page_id, rid.slot)
        else:
            for key in self.keys:
                out += _KEY.pack(key)
            for child in self.children:
                out += _CHILD.pack(child)
        return bytes(out)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "_Node":
        is_leaf, count, next_leaf = _HEADER.unpack_from(raw, 0)
        pos = _HEADER.size
        node = cls(is_leaf=bool(is_leaf), next_leaf=next_leaf)
        if node.is_leaf:
            for _ in range(count):
                key, page_id, slot = _LEAF_ENTRY.unpack_from(raw, pos)
                pos += _LEAF_ENTRY.size
                node.keys.append(key)
                node.rids.append(Rid(page_id, slot))
        else:
            for _ in range(count):
                node.keys.append(_KEY.unpack_from(raw, pos)[0])
                pos += _KEY.size
            for _ in range(count + 1):
                node.children.append(_CHILD.unpack_from(raw, pos)[0])
                pos += _CHILD.size
        return node


class BTree:
    """A B-tree over ``(int key → Rid)`` pairs stored in pool pages."""

    def __init__(
        self,
        pool: BufferPool,
        allocate_page: Callable[[], int],
        max_entries: int | None = None,
    ) -> None:
        self._pool = pool
        self._allocate_page = allocate_page
        usable = pool.page_size - 64  # page + node headers, slot entry
        derived = usable // _LEAF_ENTRY.size
        self._max_entries = max_entries if max_entries is not None else derived
        if self._max_entries < 4:
            raise StorageError(
                f"page size {pool.page_size} too small for a B-tree node"
            )
        self._root_id = self._new_node_page(_Node(is_leaf=True))
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def root_page_id(self) -> int:
        """Page id of the current root node."""
        return self._root_id

    # -- node I/O ------------------------------------------------------------

    def _new_node_page(self, node: _Node) -> int:
        page_id = self._allocate_page()
        page = self._pool.new_page(page_id)
        page.insert(node.to_bytes())
        self._pool.mark_dirty(page_id)
        return page_id

    def _read_node(self, page_id: int) -> _Node:
        return _Node.from_bytes(self._pool.fetch(page_id).read(0))

    def _write_node(self, page_id: int, node: _Node) -> None:
        page = self._pool.fetch(page_id)
        self._pool.pin(page_id)
        try:
            blob = node.to_bytes()
            if not page.update(0, blob):
                page.delete(0)
                page.compact()
                slot = page.insert(blob)
                assert slot == 0
            self._pool.mark_dirty(page_id)
        finally:
            self._pool.unpin(page_id)

    # -- search ------------------------------------------------------------------

    def search(self, key: int) -> Rid | None:
        """Return the RID stored under ``key``, or None."""
        node = self._read_node(self._find_leaf(key))
        index = _lower_bound(node.keys, key)
        if index < len(node.keys) and node.keys[index] == key:
            return node.rids[index]
        return None

    def _find_leaf(self, key: int) -> int:
        page_id = self._root_id
        node = self._read_node(page_id)
        while not node.is_leaf:
            index = _upper_bound(node.keys, key)
            page_id = node.children[index]
            node = self._read_node(page_id)
        return page_id

    def range_scan(
        self, low: int | None = None, high: int | None = None
    ) -> Iterator[tuple[int, Rid]]:
        """Yield ``(key, rid)`` pairs with ``low <= key <= high``, in order."""
        page_id = self._find_leaf(low if low is not None else -(2**62))
        while page_id != -1:
            node = self._read_node(page_id)
            for key, rid in zip(node.keys, node.rids):
                if low is not None and key < low:
                    continue
                if high is not None and key > high:
                    return
                yield key, rid
            page_id = node.next_leaf

    # -- insert ---------------------------------------------------------------------

    def insert(self, key: int, rid: Rid) -> None:
        """Insert or overwrite the mapping ``key → rid``."""
        split = self._insert_into(self._root_id, key, rid)
        if split is not None:
            middle_key, new_page_id = split
            new_root = _Node(
                is_leaf=False,
                keys=[middle_key],
                children=[self._root_id, new_page_id],
            )
            self._root_id = self._new_node_page(new_root)

    def _insert_into(
        self, page_id: int, key: int, rid: Rid
    ) -> tuple[int, int] | None:
        """Insert under ``page_id``; returns ``(separator, new_page)`` on split."""
        node = self._read_node(page_id)
        if node.is_leaf:
            index = _lower_bound(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.rids[index] = rid  # overwrite existing mapping
                self._write_node(page_id, node)
                return None
            node.keys.insert(index, key)
            node.rids.insert(index, rid)
            self._size += 1
        else:
            child_index = _upper_bound(node.keys, key)
            split = self._insert_into(node.children[child_index], key, rid)
            if split is None:
                return None
            separator, new_child = split
            node.keys.insert(child_index, separator)
            node.children.insert(child_index + 1, new_child)
        if len(node.keys) <= self._max_entries:
            self._write_node(page_id, node)
            return None
        return self._split(page_id, node)

    def _split(self, page_id: int, node: _Node) -> tuple[int, int]:
        middle = len(node.keys) // 2
        if node.is_leaf:
            right = _Node(
                is_leaf=True,
                next_leaf=node.next_leaf,
                keys=node.keys[middle:],
                rids=node.rids[middle:],
            )
            separator = right.keys[0]
            right_id = self._new_node_page(right)
            node.keys = node.keys[:middle]
            node.rids = node.rids[:middle]
            node.next_leaf = right_id
        else:
            separator = node.keys[middle]
            right = _Node(
                is_leaf=False,
                keys=node.keys[middle + 1 :],
                children=node.children[middle + 1 :],
            )
            right_id = self._new_node_page(right)
            node.keys = node.keys[:middle]
            node.children = node.children[: middle + 1]
        self._write_node(page_id, node)
        return separator, right_id

    # -- delete -----------------------------------------------------------------------

    def delete(self, key: int) -> bool:
        """Remove ``key``; returns True if it was present (lazy, no merge)."""
        page_id = self._find_leaf(key)
        node = self._read_node(page_id)
        index = _lower_bound(node.keys, key)
        if index >= len(node.keys) or node.keys[index] != key:
            return False
        node.keys.pop(index)
        node.rids.pop(index)
        self._write_node(page_id, node)
        self._size -= 1
        return True

    def items(self) -> Iterator[tuple[int, Rid]]:
        """All mappings in key order."""
        return self.range_scan()


def _lower_bound(keys: list[int], key: int) -> int:
    """First index whose key is >= ``key``."""
    return bisect.bisect_left(keys, key)


def _upper_bound(keys: list[int], key: int) -> int:
    """First index whose key is > ``key``."""
    return bisect.bisect_right(keys, key)
