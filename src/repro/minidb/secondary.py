"""Secondary (non-unique) indexes.

TPC-C's Payment and Order-Status transactions select customers *by last
name* 60 % of the time (clause 2.5.1.2) — a non-unique secondary lookup.
:class:`SecondaryIndex` provides it on top of the existing unique B-tree
by composing the secondary key with a per-entry discriminator:

    composite = hash(value) * 2^20 + counter

so duplicate values occupy adjacent composite keys and one range scan
returns every match.  The index maps to *primary keys* (not RIDs), so heap
relocations never invalidate it.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

from repro.common.errors import ConfigurationError, StorageError
from repro.minidb.btree import BTree
from repro.minidb.buffer import BufferPool
from repro.minidb.heap import Rid


def _stable_hash(value: object) -> int:
    """Deterministic 40-bit hash of the secondary key value."""
    if isinstance(value, int):
        return value & ((1 << 40) - 1)
    text = str(value)
    accumulator = 0xCBF29CE484222325
    for byte in text.encode("utf-8"):
        accumulator ^= byte
        accumulator = (accumulator * 0x100000001B3) & ((1 << 64) - 1)
    return accumulator & ((1 << 40) - 1)


class SecondaryIndex:
    """Non-unique index: secondary value → set of primary keys."""

    _SLOT_BITS = 20  # up to 2^20 duplicates per value

    def __init__(self, pool: BufferPool, allocate_page: Callable[[], int]) -> None:
        self._tree = BTree(pool, allocate_page)
        self._next_slot: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._tree)

    def _base(self, value: object) -> int:
        return _stable_hash(value) << self._SLOT_BITS

    def insert(self, value: object, primary_key: int) -> None:
        """Register ``primary_key`` under secondary ``value``."""
        base = self._base(value)
        slot = self._next_slot.get(base, 0)
        if slot >= (1 << self._SLOT_BITS):
            raise StorageError(
                f"too many duplicates for secondary value {value!r}"
            )
        # the B-tree stores Rid pairs; encode the primary key as one
        self._tree.insert(
            base + slot, Rid(primary_key >> 16, primary_key & 0xFFFF)
        )
        self._next_slot[base] = slot + 1

    def remove(self, value: object, primary_key: int) -> bool:
        """Unregister one ``(value, primary_key)`` pair; True if found."""
        for composite, stored in self._tree.range_scan(
            self._base(value), self._base(value) + (1 << self._SLOT_BITS) - 1
        ):
            if (stored.page_id << 16 | stored.slot) == primary_key:
                return self._tree.delete(composite)
        return False

    def lookup(self, value: object) -> list[int]:
        """All primary keys registered under ``value``, insertion order.

        Hash collisions between different values are possible (40-bit
        space); callers filter by re-checking the row, as
        :meth:`Table.find_by` does.
        """
        base = self._base(value)
        return [
            (rid.page_id << 16) | rid.slot
            for _key, rid in self._tree.range_scan(
                base, base + (1 << self._SLOT_BITS) - 1
            )
        ]

    def items(self) -> Iterator[tuple[int, int]]:
        """Every (composite key, primary key) pair in index order."""
        for composite, rid in self._tree.items():
            yield composite, (rid.page_id << 16) | rid.slot


def attach_secondary_index(table, column_name: str) -> SecondaryIndex:
    """Create and maintain a secondary index on ``table.column_name``.

    Returns the index and monkey-wires nothing: the caller uses
    ``table.find_by(column_name, value)`` which this call enables.  Must be
    invoked before rows are inserted (existing rows are back-filled).
    """
    column_index = table.schema.column_index(column_name)
    index = SecondaryIndex(table._db.pool, table._db.allocate_page)
    # back-fill any existing rows
    for row in table.scan():
        index.insert(row[column_index], table._key_of(row))
    secondaries = getattr(table, "_secondary_indexes", None)
    if secondaries is None:
        secondaries = {}
        table._secondary_indexes = secondaries
    if column_name in secondaries:
        raise ConfigurationError(
            f"table {table.name!r} already has an index on {column_name!r}"
        )
    secondaries[column_name] = (column_index, index)
    return index
