"""Typed columns and row serialization.

Rows serialize to a compact binary format: fixed-width INT/FLOAT fields
inline, CHAR fields space-padded to their declared width, VARCHAR fields
length-prefixed.  CHAR padding matters for realism — TPC-C tables are full
of fixed-width fields, which is one reason database pages compress the way
they do in the paper's "compressed" baseline.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from repro.common.errors import ConfigurationError, StorageError


class ColumnType(enum.Enum):
    """Supported column types."""

    INT = "int"  # 8-byte signed
    FLOAT = "float"  # 8-byte IEEE double
    CHAR = "char"  # fixed width, space padded
    VARCHAR = "varchar"  # 2-byte length prefix, max width


@dataclass(frozen=True)
class Column:
    """One column: a name, a type, and (for strings) a width."""

    name: str
    type: ColumnType
    width: int = 0

    def __post_init__(self) -> None:
        if self.type in (ColumnType.CHAR, ColumnType.VARCHAR) and self.width <= 0:
            raise ConfigurationError(
                f"column {self.name!r}: {self.type.value} needs a positive width"
            )


class Schema:
    """An ordered list of columns with row encode/decode."""

    def __init__(self, columns: list[Column]) -> None:
        if not columns:
            raise ConfigurationError("schema needs at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate column names in {names}")
        self._columns = list(columns)
        self._index = {c.name: i for i, c in enumerate(columns)}

    @property
    def columns(self) -> list[Column]:
        """The columns, in declaration order."""
        return list(self._columns)

    def column_index(self, name: str) -> int:
        """Position of column ``name`` in a row tuple."""
        try:
            return self._index[name]
        except KeyError:
            raise ConfigurationError(f"no column named {name!r}") from None

    def max_row_size(self) -> int:
        """Upper bound on an encoded row's size, for page-fit planning."""
        total = 0
        for column in self._columns:
            if column.type in (ColumnType.INT, ColumnType.FLOAT):
                total += 8
            elif column.type is ColumnType.CHAR:
                total += column.width
            else:
                total += 2 + column.width
        return total

    # -- row codec ----------------------------------------------------------

    def encode(self, row: tuple) -> bytes:
        """Serialize ``row`` (one value per column, in order)."""
        if len(row) != len(self._columns):
            raise StorageError(
                f"row has {len(row)} values, schema has {len(self._columns)} columns"
            )
        out = bytearray()
        for column, value in zip(self._columns, row):
            if column.type is ColumnType.INT:
                out += struct.pack("<q", int(value))
            elif column.type is ColumnType.FLOAT:
                out += struct.pack("<d", float(value))
            elif column.type is ColumnType.CHAR:
                encoded = str(value).encode("utf-8")
                if len(encoded) > column.width:
                    raise StorageError(
                        f"value too wide for CHAR({column.width}) "
                        f"column {column.name!r}"
                    )
                out += encoded.ljust(column.width, b" ")
            else:  # VARCHAR
                encoded = str(value).encode("utf-8")
                if len(encoded) > column.width:
                    raise StorageError(
                        f"value too wide for VARCHAR({column.width}) "
                        f"column {column.name!r}"
                    )
                out += struct.pack("<H", len(encoded)) + encoded
        return bytes(out)

    def decode(self, raw: bytes) -> tuple:
        """Inverse of :meth:`encode`."""
        values: list = []
        pos = 0
        for column in self._columns:
            if column.type is ColumnType.INT:
                values.append(struct.unpack_from("<q", raw, pos)[0])
                pos += 8
            elif column.type is ColumnType.FLOAT:
                values.append(struct.unpack_from("<d", raw, pos)[0])
                pos += 8
            elif column.type is ColumnType.CHAR:
                values.append(
                    raw[pos : pos + column.width].rstrip(b" ").decode("utf-8")
                )
                pos += column.width
            else:  # VARCHAR
                (length,) = struct.unpack_from("<H", raw, pos)
                pos += 2
                values.append(raw[pos : pos + length].decode("utf-8"))
                pos += length
        if pos != len(raw):
            raise StorageError(
                f"row decoding consumed {pos} of {len(raw)} bytes"
            )
        return tuple(values)
