"""Slotted pages.

The classic DBMS page layout: a fixed header, records growing from the
front, and a slot directory growing from the back.  Record updates that fit
in place overwrite the record bytes only — which is precisely why a row
update dirties 5–20 % of a page and why PRINS wins (Sec. 1).

Layout::

    offset  size  field
    0       2     magic (0xDB01)
    2       2     slot count
    4       2     free-space offset (start of unused gap)
    6       2     flags
    8       ...   record heap (grows up)
    ...     4*n   slot directory at page end (grows down), one entry per
                  slot: uint16 record offset, uint16 record length
                  (offset 0xFFFF marks a deleted slot)
"""

from __future__ import annotations

import struct

from repro.common.errors import StorageError

_HEADER = struct.Struct("<HHHH")
_SLOT = struct.Struct("<HH")
_MAGIC = 0xDB01
_DELETED = 0xFFFF

HEADER_SIZE = _HEADER.size
SLOT_SIZE = _SLOT.size


class PageFullError(StorageError):
    """Raised when a record does not fit in the page's free space."""


class SlottedPage:
    """A mutable slotted page over a bytearray of fixed size."""

    def __init__(self, size: int, raw: bytes | None = None) -> None:
        if size < HEADER_SIZE + SLOT_SIZE:
            raise ValueError(f"page size {size} too small")
        if raw is not None:
            if len(raw) != size:
                raise ValueError(f"raw is {len(raw)} bytes, page size is {size}")
            self._buf = bytearray(raw)
            magic, _, _, _ = _HEADER.unpack_from(self._buf, 0)
            if magic != _MAGIC:
                raise StorageError(f"bad page magic {magic:#06x}")
        else:
            self._buf = bytearray(size)
            _HEADER.pack_into(self._buf, 0, _MAGIC, 0, HEADER_SIZE, 0)

    # -- header accessors ----------------------------------------------------

    @property
    def size(self) -> int:
        """Total page size in bytes."""
        return len(self._buf)

    @property
    def slot_count(self) -> int:
        """Number of slot directory entries (including deleted ones)."""
        return _HEADER.unpack_from(self._buf, 0)[1]

    @property
    def _free_offset(self) -> int:
        return _HEADER.unpack_from(self._buf, 0)[2]

    def _set_header(self, slots: int, free_offset: int) -> None:
        _HEADER.pack_into(self._buf, 0, _MAGIC, slots, free_offset, 0)

    @property
    def free_space(self) -> int:
        """Bytes available for one more record plus its slot entry."""
        directory_start = self.size - self.slot_count * SLOT_SIZE
        gap = directory_start - self._free_offset
        return max(0, gap - SLOT_SIZE)

    # -- slot directory ---------------------------------------------------------

    def _slot(self, slot_id: int) -> tuple[int, int]:
        if not 0 <= slot_id < self.slot_count:
            raise StorageError(f"slot {slot_id} out of range ({self.slot_count})")
        position = self.size - (slot_id + 1) * SLOT_SIZE
        return _SLOT.unpack_from(self._buf, position)

    def _set_slot(self, slot_id: int, offset: int, length: int) -> None:
        position = self.size - (slot_id + 1) * SLOT_SIZE
        _SLOT.pack_into(self._buf, position, offset, length)

    # -- record operations --------------------------------------------------------

    def insert(self, record: bytes) -> int:
        """Store ``record``; return its slot id.

        Reuses a deleted slot entry when one exists (record bytes are always
        appended to the heap; space from deletions is reclaimed only by
        :meth:`compact`).
        """
        reuse = next(
            (
                s
                for s in range(self.slot_count)
                if self._slot(s)[0] == _DELETED
            ),
            None,
        )
        needed = len(record) + (0 if reuse is not None else SLOT_SIZE)
        directory_start = self.size - self.slot_count * SLOT_SIZE
        if directory_start - self._free_offset < needed:
            raise PageFullError(
                f"record of {len(record)} bytes does not fit "
                f"({self.free_space} free)"
            )
        offset = self._free_offset
        self._buf[offset : offset + len(record)] = record
        if reuse is not None:
            slot_id = reuse
            self._set_header(self.slot_count, offset + len(record))
        else:
            slot_id = self.slot_count
            self._set_header(self.slot_count + 1, offset + len(record))
        self._set_slot(slot_id, offset, len(record))
        return slot_id

    def read(self, slot_id: int) -> bytes:
        """Return the record stored in ``slot_id``."""
        offset, length = self._slot(slot_id)
        if offset == _DELETED:
            raise StorageError(f"slot {slot_id} is deleted")
        return bytes(self._buf[offset : offset + length])

    def update(self, slot_id: int, record: bytes) -> bool:
        """Overwrite ``slot_id`` in place if the new record fits.

        Returns True on success; False means the caller must delete and
        re-insert (possibly on another page).  An in-place update touches
        only the record's own bytes — the PRINS-friendly common case.
        """
        offset, length = self._slot(slot_id)
        if offset == _DELETED:
            raise StorageError(f"slot {slot_id} is deleted")
        if len(record) > length:
            return False
        self._buf[offset : offset + len(record)] = record
        if len(record) != length:
            self._set_slot(slot_id, offset, len(record))
        return True

    def delete(self, slot_id: int) -> None:
        """Mark ``slot_id`` deleted (space reclaimed by :meth:`compact`)."""
        offset, _ = self._slot(slot_id)
        if offset == _DELETED:
            raise StorageError(f"slot {slot_id} already deleted")
        self._set_slot(slot_id, _DELETED, 0)

    def is_live(self, slot_id: int) -> bool:
        """True if ``slot_id`` holds a record."""
        return self._slot(slot_id)[0] != _DELETED

    def live_slots(self) -> list[int]:
        """Slot ids currently holding records."""
        return [s for s in range(self.slot_count) if self.is_live(s)]

    def compact(self) -> None:
        """Rewrite the record heap densely, dropping deleted-record space."""
        records = [(s, self.read(s)) for s in self.live_slots()]
        slots = self.slot_count
        self._buf[HEADER_SIZE : self.size - slots * SLOT_SIZE] = bytes(
            self.size - slots * SLOT_SIZE - HEADER_SIZE
        )
        offset = HEADER_SIZE
        for slot_id, record in records:
            self._buf[offset : offset + len(record)] = record
            self._set_slot(slot_id, offset, len(record))
            offset += len(record)
        self._set_header(slots, offset)

    def to_bytes(self) -> bytes:
        """Serialize the page (exactly ``size`` bytes)."""
        return bytes(self._buf)
