"""The ``Database`` facade: tables, indexes, page allocation, commit.

This is the layer the TPC-C / TPC-W workload drivers talk to.  It wires a
buffer pool over a block device (in the experiments, a
:class:`~repro.engine.primary.PrimaryEngine`, so commits replicate), hands
out page ids, and exposes key-addressed tables with B-tree indexes.

Durability model: :meth:`Database.commit` flushes all dirty pages — the
moment block writes reach the device, like a real DBMS checkpoint or a
commit under ``full_page_writes``.  There is no WAL/MVCC; see DESIGN.md
Sec. 6 for why that does not affect traffic shape.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.block.device import BlockDevice
from repro.common.errors import ConfigurationError, StorageError
from repro.minidb.btree import BTree
from repro.minidb.buffer import BufferPool
from repro.minidb.heap import HeapFile, Rid
from repro.minidb.schema import ColumnType, Schema


class Table:
    """A heap file plus a unique B-tree index on one INT key column."""

    def __init__(self, name: str, schema: Schema, db: "Database") -> None:
        self.name = name
        self.schema = schema
        self._db = db
        self._heap = HeapFile(db.pool, db.allocate_page)
        self._index: BTree | None = None
        self._key_column: int | None = None
        # column name -> (column position, SecondaryIndex); populated by
        # repro.minidb.secondary.attach_secondary_index
        self._secondary_indexes: dict[str, tuple[int, object]] = {}

    def with_key(self, column_name: str) -> "Table":
        """Declare ``column_name`` (an INT column) as the unique key."""
        index = self.schema.column_index(column_name)
        if self.schema.columns[index].type is not ColumnType.INT:
            raise ConfigurationError(
                f"key column {column_name!r} must be INT"
            )
        self._key_column = index
        self._index = BTree(self._db.pool, self._db.allocate_page)
        return self

    @property
    def heap(self) -> HeapFile:
        """The underlying heap file."""
        return self._heap

    def _key_of(self, row: tuple) -> int:
        if self._key_column is None:
            raise StorageError(f"table {self.name!r} has no key column")
        return int(row[self._key_column])

    # -- DML ------------------------------------------------------------------

    def insert(self, row: tuple) -> Rid:
        """Insert one row; maintains the key and secondary indexes."""
        rid = self._heap.insert(self.schema.encode(row))
        if self._index is not None:
            key = self._key_of(row)
            if self._index.search(key) is not None:
                # roll back the heap insert to keep the key unique
                self._heap.delete(rid)
                raise StorageError(
                    f"duplicate key {key} in table {self.name!r}"
                )
            self._index.insert(key, rid)
            for column_index, secondary in self._secondary_indexes.values():
                secondary.insert(row[column_index], key)
        return rid

    def get(self, key: int) -> tuple | None:
        """Fetch the row stored under ``key`` (None if absent)."""
        if self._index is None:
            raise StorageError(f"table {self.name!r} has no key column")
        rid = self._index.search(key)
        if rid is None:
            return None
        return self.schema.decode(self._heap.read(rid))

    def update(self, key: int, row: tuple) -> None:
        """Replace the row under ``key`` (key value must be unchanged)."""
        if self._index is None:
            raise StorageError(f"table {self.name!r} has no key column")
        if self._key_of(row) != key:
            raise StorageError("update must not change the key column")
        rid = self._index.search(key)
        if rid is None:
            raise StorageError(f"no row with key {key} in {self.name!r}")
        if self._secondary_indexes:
            old_row = self.schema.decode(self._heap.read(rid))
            for name, (column_index, secondary) in self._secondary_indexes.items():
                if old_row[column_index] != row[column_index]:
                    secondary.remove(old_row[column_index], key)
                    secondary.insert(row[column_index], key)
        new_rid = self._heap.update(rid, self.schema.encode(row))
        if new_rid != rid:
            self._index.insert(key, new_rid)

    def update_fields(self, key: int, **changes: object) -> tuple:
        """Read-modify-write selected columns; returns the new row."""
        row = self.get(key)
        if row is None:
            raise StorageError(f"no row with key {key} in {self.name!r}")
        values = list(row)
        for column_name, value in changes.items():
            values[self.schema.column_index(column_name)] = value
        new_row = tuple(values)
        self.update(key, new_row)
        return new_row

    def delete(self, key: int) -> bool:
        """Delete the row under ``key``; returns True if it existed."""
        if self._index is None:
            raise StorageError(f"table {self.name!r} has no key column")
        rid = self._index.search(key)
        if rid is None:
            return False
        if self._secondary_indexes:
            old_row = self.schema.decode(self._heap.read(rid))
            for column_index, secondary in self._secondary_indexes.values():
                secondary.remove(old_row[column_index], key)
        self._heap.delete(rid)
        self._index.delete(key)
        return True

    def find_by(self, column_name: str, value: object) -> list[tuple]:
        """All rows whose ``column_name`` equals ``value``, via the
        secondary index (attach one first with
        :func:`repro.minidb.secondary.attach_secondary_index`)."""
        entry = self._secondary_indexes.get(column_name)
        if entry is None:
            raise StorageError(
                f"table {self.name!r} has no secondary index on "
                f"{column_name!r}"
            )
        column_index, secondary = entry
        rows = []
        for key in secondary.lookup(value):
            row = self.get(key)
            # re-check: the index hashes values, so collisions are filtered
            if row is not None and row[column_index] == value:
                rows.append(row)
        return rows

    def scan(self) -> Iterator[tuple]:
        """Yield every row (heap order)."""
        for _rid, raw in self._heap.scan():
            yield self.schema.decode(raw)

    def range(self, low: int, high: int) -> Iterator[tuple]:
        """Yield rows with ``low <= key <= high`` in key order."""
        if self._index is None:
            raise StorageError(f"table {self.name!r} has no key column")
        for _key, rid in self._index.range_scan(low, high):
            yield self.schema.decode(self._heap.read(rid))

    def __len__(self) -> int:
        return len(self._heap)


class Database:
    """Top-level handle: owns the pool, the allocator, and the tables."""

    def __init__(self, device: BlockDevice, pool_capacity: int = 256) -> None:
        self._device = device
        self.pool = BufferPool(device, capacity=pool_capacity)
        self._next_page = 0
        self._tables: dict[str, Table] = {}

    @property
    def device(self) -> BlockDevice:
        """The block device under the pool (often a PrimaryEngine)."""
        return self._device

    @property
    def tables(self) -> dict[str, Table]:
        """Name → table mapping."""
        return dict(self._tables)

    def allocate_page(self) -> int:
        """Hand out the next unused device block as a page."""
        if self._next_page >= self._device.num_blocks:
            raise StorageError(
                f"device full: all {self._device.num_blocks} blocks allocated"
            )
        page_id = self._next_page
        self._next_page += 1
        return page_id

    @property
    def pages_allocated(self) -> int:
        """Number of device blocks handed out so far."""
        return self._next_page

    def create_table(
        self, name: str, schema: Schema, key: str | None = None
    ) -> Table:
        """Create (and register) a table; ``key`` names an INT key column."""
        if name in self._tables:
            raise ConfigurationError(f"table {name!r} already exists")
        table = Table(name, schema, self)
        if key is not None:
            table.with_key(key)
        self._tables[name] = table
        return table

    def table(self, name: str) -> Table:
        """Look up a table by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise ConfigurationError(f"no table named {name!r}") from None

    def commit(self) -> int:
        """Flush all dirty pages to the device; returns pages written.

        This is where block writes — and therefore replication traffic —
        actually happen.
        """
        return self.pool.flush()
