"""Empirical-distribution network simulation.

The paper's closed queueing model assumes exponential router service with
the *mean* replicated payload ("our model is a simplified model …  More
accurate and detailed modeling is left as our future research", Sec. 3.3).
This module is that future work: instead of one mean, each simulated
replication job draws its payload from the *measured per-write payload
sample* (the traffic accountant's ``per_write_payloads``), converts it to
a router service time through the paper's own Eq. (4), and runs the same
closed network in the event simulator.

This captures what MVA cannot: PRINS payloads are heavy-tailed (most
writes ship tiny deltas, a few ship near-full blocks), and the tail — not
the mean — sets the queueing behaviour near saturation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.rng import make_rng
from repro.queueing.params import LineRate, router_service_time
from repro.sim.core import Simulator
from repro.sim.network import Router


@dataclass(frozen=True)
class EmpiricalNetworkResult:
    """Measured statistics of one empirical-distribution run."""

    population: int
    mean_response_time: float
    p95_response_time: float
    p99_response_time: float
    throughput: float
    jobs_completed: int

    @property
    def tail_ratio(self) -> float:
        """p99 / mean — how much worse the tail is than the average."""
        if self.mean_response_time <= 0:
            return 1.0
        return self.p99_response_time / self.mean_response_time


class EmpiricalServiceSampler:
    """Draws router service times from measured per-write payloads."""

    def __init__(
        self,
        payload_samples: list[int],
        line: LineRate,
        rng: np.random.Generator,
    ) -> None:
        if not payload_samples:
            raise ValueError("need at least one payload sample")
        self._services = np.array(
            [router_service_time(p, line) for p in payload_samples]
        )
        self._rng = rng

    @property
    def mean_service_time(self) -> float:
        """Mean of the induced service-time distribution."""
        return float(self._services.mean())

    @property
    def squared_cv(self) -> float:
        """Squared coefficient of variation — 1.0 would be exponential."""
        mean = self._services.mean()
        if mean == 0:
            return 0.0
        return float(self._services.var() / mean**2)

    def __call__(self) -> float:
        return float(self._services[self._rng.integers(0, len(self._services))])


def simulate_empirical_network(
    payload_samples: list[int],
    line: LineRate,
    population: int,
    routers: int = 2,
    think_time: float = 0.1,
    horizon: float = 2_000.0,
    warmup: float = 200.0,
    seed: int = 0,
) -> EmpiricalNetworkResult:
    """Closed network (Fig. 3) with measured payload-sized jobs.

    Identical structure to
    :func:`repro.sim.experiment.simulate_closed_network` but each job's
    service time at every router comes from the empirical payload
    distribution (the same payload is used at each hop of one job, as a
    real message would be).
    """
    if population <= 0:
        raise ValueError(f"population must be positive, got {population}")
    sim = Simulator()
    rng = make_rng(seed, "empirical-network")
    sampler = EmpiricalServiceSampler(payload_samples, line, rng)

    chain = [
        Router(sim, sampler, name=f"router{i}") for i in range(routers)
    ]
    response_times: list[float] = []
    completions = 0

    def start_thinking() -> None:
        sim.schedule(float(rng.exponential(think_time)), send_job)

    def send_job() -> None:
        departure = sim.now
        job_service = sampler()  # one payload, reused at every hop

        def through(index: int) -> None:
            nonlocal completions
            if index == len(chain):
                if sim.now >= warmup:
                    response_times.append(sim.now - departure)
                    completions += 1
                start_thinking()
                return
            chain[index].submit(
                lambda: through(index + 1), service_time=job_service
            )

        through(0)

    for _ in range(population):
        start_thinking()
    sim.run(until=horizon)

    if response_times:
        samples = np.array(response_times)
        mean = float(samples.mean())
        p95 = float(np.percentile(samples, 95))
        p99 = float(np.percentile(samples, 99))
    else:
        mean = p95 = p99 = 0.0
    measured = horizon - warmup
    return EmpiricalNetworkResult(
        population=population,
        mean_response_time=mean,
        p95_response_time=p95,
        p99_response_time=p99,
        throughput=completions / measured if measured > 0 else 0.0,
        jobs_completed=completions,
    )
