"""Discrete-event simulation of the replication network.

The paper validates PRINS's scalability analytically (exact MVA over the
closed network of Fig. 3).  This package re-derives the same numbers by
simulation instead of algebra: closed-loop clients with exponential think
times push replication jobs through a chain of FIFO routers with
exponential service times, and the measured mean response time is compared
against the MVA solution (see ``benchmarks/test_sim_vs_mva.py``).  It also
lets the model be extended beyond product form (deterministic service,
heterogeneous routers) where MVA no longer applies.
"""

from repro.sim.core import Event, Simulator
from repro.sim.empirical import (
    EmpiricalNetworkResult,
    EmpiricalServiceSampler,
    simulate_empirical_network,
)
from repro.sim.experiment import ClosedNetworkResult, simulate_closed_network
from repro.sim.network import Router

__all__ = [
    "ClosedNetworkResult",
    "EmpiricalNetworkResult",
    "EmpiricalServiceSampler",
    "Event",
    "Router",
    "Simulator",
    "simulate_closed_network",
    "simulate_empirical_network",
]
