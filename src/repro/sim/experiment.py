"""Closed-network simulation experiment (the Fig. 3 network, simulated).

``population`` closed-loop clients each think for an exponential time with
mean ``think_time``, then send one replication job through ``routers``
FIFO queues in series and wait for it to return before thinking again —
exactly the paper's conservative assumption that "a computing node will
not generate another write request until the previous write is
successfully replicated" (Sec. 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.rng import make_rng
from repro.sim.core import Simulator
from repro.sim.network import Router


@dataclass(frozen=True)
class ClosedNetworkResult:
    """Measured steady-state statistics of one simulation run."""

    population: int
    mean_response_time: float
    throughput: float
    jobs_completed: int
    per_router_queue_lengths: tuple[float, ...]


def simulate_closed_network(
    service_time: float,
    think_time: float,
    population: int,
    routers: int = 2,
    horizon: float = 2_000.0,
    warmup: float = 200.0,
    seed: int = 0,
    deterministic_service: bool = False,
) -> ClosedNetworkResult:
    """Simulate the closed network and return measured statistics.

    With exponential service (default) the result should match exact MVA;
    ``deterministic_service`` explores the non-product-form variant the
    analytic model cannot solve.
    """
    if population <= 0:
        raise ValueError(f"population must be positive, got {population}")
    sim = Simulator()
    rng = make_rng(seed, "closed-network")

    def exponential(mean: float) -> float:
        return float(rng.exponential(mean))

    def sample_service() -> float:
        return service_time if deterministic_service else exponential(service_time)

    chain = [Router(sim, sample_service, name=f"router{i}") for i in range(routers)]

    response_times: list[float] = []
    completions = 0

    def start_thinking() -> None:
        sim.schedule(exponential(think_time), send_job)

    def send_job() -> None:
        departure = sim.now

        def through(index: int) -> None:
            if index == len(chain):
                nonlocal completions
                if sim.now >= warmup:
                    response_times.append(sim.now - departure)
                    completions += 1
                start_thinking()
                return
            chain[index].submit(lambda: through(index + 1))

        through(0)

    for _ in range(population):
        start_thinking()
    sim.run(until=horizon)

    measured = horizon - warmup
    return ClosedNetworkResult(
        population=population,
        mean_response_time=float(np.mean(response_times)) if response_times else 0.0,
        throughput=completions / measured if measured > 0 else 0.0,
        jobs_completed=completions,
        per_router_queue_lengths=tuple(
            r.mean_queue_length(horizon) for r in chain
        ),
    )
