"""Network elements: FIFO routers (and a fixed-latency link)."""

from __future__ import annotations

from collections import deque
from collections.abc import Callable

from repro.sim.core import Simulator

#: called when a job finishes at this element
Completion = Callable[[], None]


class Router:
    """A single-server FIFO queue.

    ``service_sampler`` returns a (possibly random) service time per job —
    exponential for product-form validation against MVA, deterministic for
    the beyond-MVA ablation.
    """

    def __init__(
        self,
        sim: Simulator,
        service_sampler: Callable[[], float],
        name: str = "router",
    ) -> None:
        self._sim = sim
        self._sample = service_sampler
        self.name = name
        self._queue: deque[tuple[Completion, float | None]] = deque()
        self._busy = False
        self.jobs_served = 0
        self.busy_time = 0.0
        self.queue_length_area = 0.0  # ∫ queue length dt, for mean Q
        self._last_change = 0.0

    @property
    def queue_length(self) -> int:
        """Jobs waiting or in service."""
        return len(self._queue) + (1 if self._busy else 0)

    def _account(self) -> None:
        now = self._sim.now
        self.queue_length_area += self.queue_length * (now - self._last_change)
        self._last_change = now

    def submit(
        self, on_complete: Completion, service_time: float | None = None
    ) -> None:
        """Enqueue a job; ``on_complete`` fires when its service finishes.

        ``service_time`` overrides the sampler for this one job — used by
        the empirical-distribution simulation, where a job's size is fixed
        when it is created, not when it reaches the head of the queue.
        """
        self._account()
        if self._busy:
            self._queue.append((on_complete, service_time))
        else:
            self._start(on_complete, service_time)

    def _start(self, on_complete: Completion, service_time: float | None) -> None:
        self._busy = True
        service = service_time if service_time is not None else self._sample()
        self.busy_time += service
        self._sim.schedule(service, lambda: self._finish(on_complete))

    def _finish(self, on_complete: Completion) -> None:
        self._account()
        self.jobs_served += 1
        if self._queue:
            self._start(*self._queue.popleft())
        else:
            self._busy = False
        on_complete()

    def mean_queue_length(self, horizon: float) -> float:
        """Time-averaged number in system over ``[0, horizon]``."""
        if horizon <= 0:
            return 0.0
        tail = self.queue_length * (horizon - self._last_change)
        return (self.queue_length_area + tail) / horizon


class Link:
    """A pure-delay element (propagation): no queueing, fixed latency."""

    def __init__(self, sim: Simulator, latency: float, name: str = "link") -> None:
        if latency < 0:
            raise ValueError(f"latency must be non-negative, got {latency}")
        self._sim = sim
        self.latency = latency
        self.name = name
        self.jobs_carried = 0

    def submit(self, on_complete: Completion) -> None:
        """Deliver the job after the fixed latency."""
        self.jobs_carried += 1
        self._sim.schedule(self.latency, on_complete)
