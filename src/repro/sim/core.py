"""Event-driven simulation core: a clock and a pending-event heap."""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field


@dataclass(order=True)
class Event:
    """A scheduled callback; ordering is (time, insertion sequence)."""

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Prevent the callback from firing."""
        self.cancelled = True


class Simulator:
    """A minimal discrete-event simulator."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._sequence = itertools.count()
        self.now = 0.0
        self.events_processed = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        event = Event(self.now + delay, next(self._sequence), callback)
        heapq.heappush(self._heap, event)
        return event

    def run(self, until: float) -> None:
        """Process events in time order until the clock reaches ``until``."""
        while self._heap and self._heap[0].time <= until:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            self.events_processed += 1
            event.callback()
        self.now = max(self.now, until)

    def run_all(self, max_events: int = 10_000_000) -> None:
        """Process every pending event (bounded by ``max_events``)."""
        processed = 0
        while self._heap and processed < max_events:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            self.events_processed += 1
            processed += 1
            event.callback()

    @property
    def events_pending(self) -> bool:
        """True while at least one non-cancelled event awaits processing."""
        return any(not event.cancelled for event in self._heap)

    def step(self) -> bool:
        """Process exactly one pending event; returns False when idle.

        The fan-out scheduler's deterministic backpressure uses this to
        advance the clock one ack at a time until a window credit frees.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            self.events_processed += 1
            event.callback()
            return True
        return False
