"""zlib codec.

The paper's *traditional replication with compression* baseline compresses
whole data blocks with the open-source zlib library [22]; the same codec
also serves as a second stage over parity deltas, where long zero runs make
zlib extremely effective.
"""

from __future__ import annotations

import zlib

from repro.common.errors import CodecError
from repro.parity.codecs import Buffer, Codec, register_codec


class ZlibCodec(Codec):
    """DEFLATE compression via the standard library's zlib binding."""

    codec_id = 2
    name = "zlib"

    def __init__(self, level: int = 6) -> None:
        if not 0 <= level <= 9:
            raise ValueError(f"zlib level must be 0..9, got {level}")
        self._level = level

    @property
    def level(self) -> int:
        """Configured compression level (0–9)."""
        return self._level

    def encode(self, data: Buffer) -> bytes:
        """Deflate the buffer at the configured level.

        ``zlib.compress`` consumes any buffer-protocol object directly, so
        views pass through without an intermediate copy.
        """
        return zlib.compress(data, self._level)

    def decode(self, payload: bytes, original_length: int) -> bytes:
        """Inflate and verify the original length."""
        try:
            data = zlib.decompress(payload)
        except zlib.error as exc:
            raise CodecError(f"zlib decompression failed: {exc}") from exc
        if len(data) != original_length:
            raise CodecError(
                f"zlib payload decoded to {len(data)} bytes, "
                f"expected {original_length}"
            )
        return data


ZLIB = register_codec(ZlibCodec())
