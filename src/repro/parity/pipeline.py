"""Composed codecs.

Stacking zero-RLE (strips the zeros) with zlib (compresses the surviving
literals) approximates the paper's production encoding: the parity "can be
compressed easily and quickly because all unchanged bits in a parity block
are zeros" (Sec. 5).  The pipeline stores intermediate lengths so decoding
can invert each stage exactly.
"""

from __future__ import annotations

import struct

from repro.common.errors import CodecError
from repro.obs.telemetry import NULL_TELEMETRY
from repro.parity.codecs import Buffer, Codec, register_codec
from repro.parity.zero_rle import ZeroRleCodec
from repro.parity.zlibcodec import ZlibCodec


class PipelineCodec(Codec):
    """Apply a sequence of codecs in order; decode inverts them in reverse.

    Wire format: one ``uint32`` intermediate length per stage after the
    first, then the final stage's payload.  (The first stage's input length
    is the frame's ``original_length``.)

    When a telemetry handle is bound (:meth:`bind_telemetry`, done by the
    owning strategy), every stage emits a ``codec.<stage>.encode`` /
    ``codec.<stage>.decode`` span, so a ``prins trace`` report shows where
    encoding time goes *inside* the composed codec.
    """

    codec_id = 4
    name = "rle+zlib"
    #: telemetry handle (null by default)
    telemetry = NULL_TELEMETRY

    def __init__(self, stages: list[Codec] | None = None) -> None:
        self._stages = stages if stages is not None else [ZeroRleCodec(), ZlibCodec()]
        if not self._stages:
            raise ValueError("pipeline needs at least one stage")

    def bind_telemetry(self, telemetry) -> None:
        """Attach a telemetry handle for per-stage span timing."""
        self.telemetry = telemetry

    @property
    def stages(self) -> list[Codec]:
        """The codecs applied in encode order."""
        return list(self._stages)

    def encode(self, data: Buffer) -> bytes:
        """Run the delta through every stage in order, timing each."""
        tel = self.telemetry
        lengths: list[int] = []
        current: Buffer = data
        for stage in self._stages:
            lengths.append(len(current))
            with tel.span(f"codec.{stage.name}.encode"):
                current = stage.encode(current)
        # lengths[0] equals the caller-known original length; skip it.
        header = struct.pack(f"<{len(lengths) - 1}I", *lengths[1:])
        return header + current

    def decode(self, payload: bytes, original_length: int) -> bytes:
        """Invert the stages in reverse order, timing each."""
        tel = self.telemetry
        n_header = len(self._stages) - 1
        header_size = 4 * n_header
        if len(payload) < header_size:
            raise CodecError("pipeline payload shorter than its length header")
        lengths = [original_length]
        lengths += list(struct.unpack_from(f"<{n_header}I", payload, 0))
        current = payload[header_size:]
        for stage, length in zip(reversed(self._stages), reversed(lengths)):
            with tel.span(f"codec.{stage.name}.decode"):
                current = stage.decode(current, length)
        return current


RLE_ZLIB = register_codec(PipelineCodec())
