"""Self-describing encoded frame.

Every payload a PRINS engine ships is wrapped in a tiny frame recording
which codec produced it and the original (decoded) length, so a replica can
decode without out-of-band configuration and the traffic accountant can
charge exact on-wire bytes.

Frame layout (little-endian)::

    uint8   codec_id
    uint32  original_length
    bytes   payload
"""

from __future__ import annotations

import struct
from typing import Union

from repro.common.errors import CodecError
from repro.parity.codecs import Buffer, Codec, _writable_view, get_codec

_HEADER = struct.Struct("<BI")

#: bytes of frame overhead added on top of the codec payload
FRAME_OVERHEAD = _HEADER.size


def encode_frame(codec: Codec, data: Buffer) -> bytes:
    """Encode ``data`` with ``codec`` and wrap it in a frame."""
    payload = codec.encode(data)
    return _HEADER.pack(codec.codec_id, len(data)) + payload


def encode_frames(codec: Codec, datas: "list[Buffer]") -> list[bytes]:
    """Encode a batch of deltas into frames via :meth:`Codec.encode_many`.

    Equivalent to mapping :func:`encode_frame`, but pays the codec's
    per-call dispatch once for the whole flush window.
    """
    payloads = codec.encode_many(datas)
    pack = _HEADER.pack
    codec_id = codec.codec_id
    return [
        pack(codec_id, len(data)) + payload
        for data, payload in zip(datas, payloads)
    ]


def decode_frame(frame: bytes) -> bytes:
    """Decode a frame produced by :func:`encode_frame`."""
    if len(frame) < _HEADER.size:
        raise CodecError(f"frame too short ({len(frame)} bytes)")
    codec_id, original_length = _HEADER.unpack_from(frame, 0)
    codec = get_codec(codec_id)
    return codec.decode(frame[_HEADER.size :], original_length)


def _frame_target(
    frame: bytes, out: Union[bytearray, memoryview]
) -> tuple[Codec, bytes, memoryview]:
    """Validate a frame against a writable target; return codec + payload."""
    if len(frame) < _HEADER.size:
        raise CodecError(f"frame too short ({len(frame)} bytes)")
    codec_id, original_length = _HEADER.unpack_from(frame, 0)
    view = _writable_view(out)
    if view.nbytes != original_length:
        raise CodecError(
            f"frame decodes to {original_length} bytes but the target "
            f"buffer holds {view.nbytes}"
        )
    return get_codec(codec_id), frame[_HEADER.size :], view


def decode_frame_into(frame: bytes, out: Union[bytearray, memoryview]) -> None:
    """Decode a frame directly into the writable buffer ``out``.

    ``out`` must be exactly the frame's ``original_length``; it is fully
    overwritten.  Sparse codecs scatter their segments straight into the
    target instead of materializing an intermediate block.
    """
    codec, payload, view = _frame_target(frame, out)
    codec.decode_into(payload, view)


def decode_frame_xor_into(
    frame: bytes, out: Union[bytearray, memoryview]
) -> None:
    """XOR a frame's decoded delta into ``out`` in place.

    The replica-side Eq. 2 fast path: with ``out`` holding ``A_old`` this
    leaves ``A_new`` in place, touching only the changed spans for sparse
    codecs.
    """
    codec, payload, view = _frame_target(frame, out)
    codec.decode_xor_into(payload, view)


def best_frame(codecs: list[Codec], data: bytes) -> bytes:
    """Encode ``data`` with every codec in ``codecs`` and keep the smallest.

    A cheap form of the adaptive encoding real WAN optimizers use; exposed
    for the codec ablation benchmark.
    """
    if not codecs:
        raise ValueError("best_frame needs at least one codec")
    return min((encode_frame(c, data) for c in codecs), key=len)
