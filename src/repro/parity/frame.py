"""Self-describing encoded frame.

Every payload a PRINS engine ships is wrapped in a tiny frame recording
which codec produced it and the original (decoded) length, so a replica can
decode without out-of-band configuration and the traffic accountant can
charge exact on-wire bytes.

Frame layout (little-endian)::

    uint8   codec_id
    uint32  original_length
    bytes   payload
"""

from __future__ import annotations

import struct

from repro.common.errors import CodecError
from repro.parity.codecs import Codec, get_codec

_HEADER = struct.Struct("<BI")

#: bytes of frame overhead added on top of the codec payload
FRAME_OVERHEAD = _HEADER.size


def encode_frame(codec: Codec, data: bytes) -> bytes:
    """Encode ``data`` with ``codec`` and wrap it in a frame."""
    payload = codec.encode(data)
    return _HEADER.pack(codec.codec_id, len(data)) + payload


def decode_frame(frame: bytes) -> bytes:
    """Decode a frame produced by :func:`encode_frame`."""
    if len(frame) < _HEADER.size:
        raise CodecError(f"frame too short ({len(frame)} bytes)")
    codec_id, original_length = _HEADER.unpack_from(frame, 0)
    codec = get_codec(codec_id)
    return codec.decode(frame[_HEADER.size :], original_length)


def best_frame(codecs: list[Codec], data: bytes) -> bytes:
    """Encode ``data`` with every codec in ``codecs`` and keep the smallest.

    A cheap form of the adaptive encoding real WAN optimizers use; exposed
    for the codec ablation benchmark.
    """
    if not codecs:
        raise ValueError("best_frame needs at least one codec")
    return min((encode_frame(c, data) for c in codecs), key=len)
