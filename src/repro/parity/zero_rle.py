"""Zero-run-length codec.

"A simple encoding scheme can substantially reduce the size of the parity"
(Sec. 1).  This codec is that simple scheme: it alternates
``(zero_run_length, literal_length, literal_bytes)`` records, exploiting the
fact that a parity delta is zeros everywhere the write did not change the
block.  Run lengths are varint-encoded so a 64 KB block of zeros costs three
bytes.
"""

from __future__ import annotations

from repro.common.buffers import nonzero_runs
from repro.common.errors import CodecError
from repro.parity.codecs import Codec, register_codec


def _write_varint(out: bytearray, value: int) -> None:
    """Append ``value`` as a LEB128-style varint."""
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(payload: bytes, pos: int) -> tuple[int, int]:
    """Read a varint at ``pos``; return ``(value, new_pos)``."""
    value = 0
    shift = 0
    while True:
        if pos >= len(payload):
            raise CodecError("truncated varint in zero-RLE payload")
        byte = payload[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7
        if shift > 63:
            raise CodecError("varint too long in zero-RLE payload")


class ZeroRleCodec(Codec):
    """Run-length encoding of zero gaps between literal (changed) segments.

    Wire format: repeated ``varint(zero_gap) varint(lit_len) lit_bytes``
    records.  The final zero tail is implicit — decoding pads with zeros to
    ``original_length``.  Literal segments separated by fewer than
    ``merge_gap`` zero bytes are coalesced (the stray zeros ship as
    literals), which keeps chance zeros inside a changed span from
    fragmenting it into hundreds of records.
    """

    codec_id = 1
    name = "zero-rle"

    def __init__(self, merge_gap: int = 8) -> None:
        if merge_gap < 0:
            raise ValueError(f"merge_gap must be non-negative, got {merge_gap}")
        self._merge_gap = merge_gap

    @property
    def merge_gap(self) -> int:
        """Zero gaps up to this length are encoded as literals."""
        return self._merge_gap

    def encode(self, data: bytes) -> bytes:
        """Run-length encode the delta's zero gaps (Sec. 2's sparse P')."""
        out = bytearray()
        cursor = 0
        for offset, length in nonzero_runs(data, merge_gap=self._merge_gap):
            _write_varint(out, offset - cursor)  # zeros since last literal
            _write_varint(out, length)
            out += data[offset : offset + length]
            cursor = offset + length
        return bytes(out)

    def decode(self, payload: bytes, original_length: int) -> bytes:
        """Expand zero runs and literals back into the original delta."""
        out = bytearray(original_length)
        pos = 0
        cursor = 0
        while pos < len(payload):
            gap, pos = _read_varint(payload, pos)
            lit_len, pos = _read_varint(payload, pos)
            cursor += gap
            end = cursor + lit_len
            if end > original_length or pos + lit_len > len(payload):
                raise CodecError("zero-RLE payload overruns declared length")
            out[cursor:end] = payload[pos : pos + lit_len]
            pos += lit_len
            cursor = end
        return bytes(out)


ZERO_RLE = register_codec(ZeroRleCodec())
