"""Zero-run-length codec.

"A simple encoding scheme can substantially reduce the size of the parity"
(Sec. 1).  This codec is that simple scheme: it alternates
``(zero_run_length, literal_length, literal_bytes)`` records, exploiting the
fact that a parity delta is zeros everywhere the write did not change the
block.  Run lengths are varint-encoded so a 64 KB block of zeros costs three
bytes.

The encoder is a single vectorized pass: one boolean-diff span detection
(:func:`repro.common.buffers.nonzero_spans`, O(n) independent of run count)
followed by one ``b"".join`` gather of varint headers and zero-copy literal
views — no growing ``bytearray`` and no per-byte work.  The wire format is
unchanged and byte-identical to the historical loop encoder.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.common.buffers import nonzero_spans, xor_into
from repro.common.errors import CodecError
from repro.parity.codecs import Buffer, Codec, _writable_view, register_codec

#: Below this target size the per-literal :func:`xor_into` loop wins over
#: hoisting numpy views of the whole target and payload.
_FUSED_XOR_MIN = 2048

#: single-byte varints (values < 128) precomputed — covers every gap and
#: literal length under 128 bytes with a list index instead of arithmetic
_VARINT1 = [bytes([i]) for i in range(0x80)]

#: memoized multi-byte varints — block-sized gaps and literal lengths repeat
#: heavily across a flush window (every 64 KB delta produces offsets from
#: the same small range), so serving them from a dict beats rebuilding a
#: bytearray per call.  Bounded so adversarial value streams cannot grow it
#: without limit.
_VARINT_CACHE: dict[int, bytes] = {}
_VARINT_CACHE_MAX = 1 << 16


def _varint(value: int) -> bytes:
    """LEB128-style varint as bytes (table- or cache-served when possible)."""
    if value < 0x80:
        return _VARINT1[value]
    cached = _VARINT_CACHE.get(value)
    if cached is not None:
        return cached
    out = bytearray()
    v = value
    while True:
        byte = v & 0x7F
        v >>= 7
        if v:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            break
    encoded = bytes(out)
    if len(_VARINT_CACHE) < _VARINT_CACHE_MAX:
        _VARINT_CACHE[value] = encoded
    return encoded


def _write_varint(out: bytearray, value: int) -> None:
    """Append ``value`` as a LEB128-style varint."""
    out += _varint(value)


def _read_varint(payload: bytes, pos: int) -> tuple[int, int]:
    """Read a varint at ``pos``; return ``(value, new_pos)``.

    The one- and two-byte cases (every gap/length under 16 KB) are
    unrolled; the generic shift loop only runs for longer encodings.
    """
    n = len(payload)
    if pos >= n:
        raise CodecError("truncated varint in zero-RLE payload")
    byte = payload[pos]
    if not byte & 0x80:
        return byte, pos + 1
    if pos + 1 >= n:
        raise CodecError("truncated varint in zero-RLE payload")
    second = payload[pos + 1]
    if not second & 0x80:
        return (byte & 0x7F) | (second << 7), pos + 2
    value = (byte & 0x7F) | ((second & 0x7F) << 7)
    shift = 14
    pos += 2
    while True:
        if pos >= n:
            raise CodecError("truncated varint in zero-RLE payload")
        byte = payload[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7
        if shift > 63:
            raise CodecError("varint too long in zero-RLE payload")


class ZeroRleCodec(Codec):
    """Run-length encoding of zero gaps between literal (changed) segments.

    Wire format: repeated ``varint(zero_gap) varint(lit_len) lit_bytes``
    records.  The final zero tail is implicit — decoding pads with zeros to
    ``original_length``.  Literal segments separated by fewer than
    ``merge_gap`` zero bytes are coalesced (the stray zeros ship as
    literals), which keeps chance zeros inside a changed span from
    fragmenting it into hundreds of records.
    """

    codec_id = 1
    name = "zero-rle"

    def __init__(self, merge_gap: int = 8) -> None:
        if merge_gap < 0:
            raise ValueError(f"merge_gap must be non-negative, got {merge_gap}")
        self._merge_gap = merge_gap

    @property
    def merge_gap(self) -> int:
        """Zero gaps up to this length are encoded as literals."""
        return self._merge_gap

    def encode(self, data: Buffer) -> bytes:
        """Run-length encode the delta's zero gaps (Sec. 2's sparse P').

        One span-detection pass plus one gather: literal segments are
        sliced as zero-copy ``memoryview`` s and joined with their varint
        headers in a single ``b"".join`` (CPython's join accepts buffer
        objects), so no intermediate copy of any literal is made.
        """
        starts, ends = nonzero_spans(data, merge_gap=self._merge_gap)
        if starts.size == 0:
            return b""
        view = data if isinstance(data, memoryview) else memoryview(data)
        parts: list[Buffer] = []
        cursor = 0
        for s, e in zip(starts.tolist(), ends.tolist()):
            parts.append(_varint(s - cursor))  # zeros since last literal
            parts.append(_varint(e - s))
            parts.append(view[s:e])
            cursor = e
        return b"".join(parts)

    def decode(self, payload: bytes, original_length: int) -> bytes:
        """Expand zero runs and literals back into the original delta."""
        out = bytearray(original_length)
        self.decode_into(payload, out)
        return bytes(out)

    def decode_into(
        self, payload: bytes, out: Union[bytearray, memoryview]
    ) -> None:
        """Scatter literal segments into ``out``; zero the gaps in between.

        Unlike the base implementation this never materializes a full
        intermediate block — each literal lands in its final position and
        the zero gaps are sliced-assigned from a shared zero buffer only
        where the previous contents could be stale.
        """
        view = _writable_view(out)
        original_length = view.nbytes
        pos = 0
        cursor = 0
        while pos < len(payload):
            gap, pos = _read_varint(payload, pos)
            lit_len, pos = _read_varint(payload, pos)
            end = cursor + gap + lit_len
            if end > original_length or pos + lit_len > len(payload):
                raise CodecError("zero-RLE payload overruns declared length")
            if gap:
                view[cursor : cursor + gap] = bytes(gap)
            cursor += gap
            view[cursor:end] = payload[pos : pos + lit_len]
            pos += lit_len
            cursor = end
        if cursor < original_length:
            view[cursor:] = bytes(original_length - cursor)

    def decode_xor_into(
        self, payload: bytes, out: Union[bytearray, memoryview]
    ) -> None:
        """XOR only the literal segments into ``out`` (Eq. 2 fast path).

        Zero gaps of the delta are XOR identities, so with ``out`` holding
        ``A_old`` only the changed spans are ever read or written — the
        cost is proportional to the write's dirtiness, not the block size.
        """
        view = _writable_view(out)
        original_length = view.nbytes
        payload_length = len(payload)
        pos = 0
        cursor = 0
        if original_length >= _FUSED_XOR_MIN:
            # Hoist one numpy view of the target and one of the payload;
            # each literal is then a single in-place ufunc call on slices
            # of those views instead of two frombuffer dispatches plus a
            # payload bytes copy per literal (~2x cheaper per segment).
            tv = np.frombuffer(view, dtype=np.uint8)
            pv = np.frombuffer(payload, dtype=np.uint8)
            while pos < payload_length:
                gap, pos = _read_varint(payload, pos)
                lit_len, pos = _read_varint(payload, pos)
                cursor += gap
                end = cursor + lit_len
                if end > original_length or pos + lit_len > payload_length:
                    raise CodecError(
                        "zero-RLE payload overruns declared length"
                    )
                target = tv[cursor:end]
                np.bitwise_xor(target, pv[pos : pos + lit_len], out=target)
                pos += lit_len
                cursor = end
            return
        while pos < payload_length:
            gap, pos = _read_varint(payload, pos)
            lit_len, pos = _read_varint(payload, pos)
            cursor += gap
            end = cursor + lit_len
            if end > original_length or pos + lit_len > payload_length:
                raise CodecError("zero-RLE payload overruns declared length")
            xor_into(view[cursor:end], payload[pos : pos + lit_len])
            pos += lit_len
            cursor = end

    def encode_many(self, datas: "Sequence[Buffer]") -> list[bytes]:
        """Encode a flush window of deltas in one pass per delta.

        Span detection already amortizes well per call; the win here is
        reusing one memoryview per input and skipping per-call attribute
        lookups, which matters at batch sizes of 16–64 records.
        """
        merge_gap = self._merge_gap
        out: list[bytes] = []
        for data in datas:
            starts, ends = nonzero_spans(data, merge_gap=merge_gap)
            if starts.size == 0:
                out.append(b"")
                continue
            view = data if isinstance(data, memoryview) else memoryview(data)
            parts: list[Buffer] = []
            cursor = 0
            for s, e in zip(starts.tolist(), ends.tolist()):
                parts.append(_varint(s - cursor))
                parts.append(_varint(e - s))
                parts.append(view[s:e])
                cursor = e
            out.append(b"".join(parts))
        return out


ZERO_RLE = register_codec(ZeroRleCodec())
