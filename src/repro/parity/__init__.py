"""Parity computation and parity-delta encoding.

This package implements the core of PRINS:

* :mod:`repro.parity.delta` — the forward (``P' = A_new XOR A_old``) and
  backward (``A_new = P' XOR A_old``) parity computations of Eqs. (1)/(2).
* :mod:`repro.parity.codecs` — the codec interface and registry.  Because a
  parity delta is mostly zeros ("only 5 % to 20 % of a data block actually
  changes", Sec. 1), a simple encoding collapses it to a tiny payload.
* Concrete codecs: :class:`RawCodec`, :class:`ZeroRleCodec`,
  :class:`ZlibCodec`, :class:`SparseSegmentCodec`, and
  :class:`PipelineCodec` for compositions such as RLE-then-zlib.
* :mod:`repro.parity.frame` — the self-describing frame format
  (codec id + original length + payload) shipped over the wire.
"""

from repro.parity.codecs import Codec, available_codecs, get_codec, register_codec
from repro.parity.delta import backward_parity, forward_parity
from repro.parity.frame import (
    decode_frame,
    decode_frame_into,
    decode_frame_xor_into,
    encode_frame,
    encode_frames,
)
from repro.parity.pipeline import PipelineCodec
from repro.parity.raw import RawCodec
from repro.parity.sparse_codec import SparseSegmentCodec
from repro.parity.zero_rle import ZeroRleCodec
from repro.parity.zlibcodec import ZlibCodec

__all__ = [
    "Codec",
    "PipelineCodec",
    "RawCodec",
    "SparseSegmentCodec",
    "ZeroRleCodec",
    "ZlibCodec",
    "available_codecs",
    "backward_parity",
    "decode_frame",
    "decode_frame_into",
    "decode_frame_xor_into",
    "encode_frame",
    "encode_frames",
    "forward_parity",
    "get_codec",
    "register_codec",
]
