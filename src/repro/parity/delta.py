"""Forward and backward parity computations (paper Eqs. (1) and (2)).

The forward computation runs at the primary on every write; the backward
computation runs at each replica on receipt.  Both are the same XOR — the
two names exist because the paper distinguishes them architecturally
("forward parity computation" at the primary, "backward parity computation"
at the replica, Sec. 2) and because keeping them separate makes call sites
self-documenting.
"""

from __future__ import annotations

from repro.common.buffers import xor_bytes


def forward_parity(new_data: bytes, old_data: bytes) -> bytes:
    """Compute ``P' = A_new XOR A_old`` at the primary.

    ``P'`` is exactly the first term of the RAID-4/5 small-write parity
    update ``P_new = A_new XOR A_old XOR P_old`` (Eq. 1), so a primary
    running software RAID gets this value for free — see
    :meth:`repro.raid.raid5.Raid5Array.write_block_with_delta`.
    """
    return xor_bytes(new_data, old_data)


def backward_parity(parity_delta: bytes, old_data: bytes) -> bytes:
    """Recover ``A_new = P' XOR A_old`` at the replica (Eq. 2).

    Requires the replica to hold ``A_old``, which is "practically the case
    for all replication systems after the initial sync" (Sec. 2); see
    :mod:`repro.engine.sync`.
    """
    return xor_bytes(parity_delta, old_data)
