"""Identity codec — ships bytes unmodified.

This is what the paper's *traditional replication* uses: every changed data
block is transmitted whole.
"""

from __future__ import annotations

from repro.common.errors import CodecError
from repro.parity.codecs import Buffer, Codec, register_codec


class RawCodec(Codec):
    """No-op codec: payload is the input."""

    codec_id = 0
    name = "raw"

    def encode(self, data: Buffer) -> bytes:
        """Identity: return the delta unchanged (one copy only for views)."""
        return data if isinstance(data, bytes) else bytes(data)

    def decode(self, payload: bytes, original_length: int) -> bytes:
        """Identity: return the payload unchanged."""
        if len(payload) != original_length:
            raise CodecError(
                f"raw payload is {len(payload)} bytes, expected {original_length}"
            )
        return payload


RAW = register_codec(RawCodec())
