"""Codec interface and registry.

A codec turns a parity delta (or a raw data block, for the baseline
strategies) into an on-wire payload and back.  Codecs are identified by a
single byte so the frame format (:mod:`repro.parity.frame`) stays
self-describing: a replica can decode any frame without out-of-band
configuration.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence, Union

from repro.common.buffers import xor_into
from repro.common.errors import CodecError

#: any C-contiguous buffer-protocol object a codec accepts on its hot path
Buffer = Union[bytes, bytearray, memoryview]


def _writable_view(out: Union[bytearray, memoryview]) -> memoryview:
    """Normalize a decode target to a flat writable byte view."""
    view = out if isinstance(out, memoryview) else memoryview(out)
    return view.cast("B")


class Codec(ABC):
    """Reversible bytes→bytes encoding.

    Implementations must be lossless: ``decode(encode(b), len(b)) == b`` for
    every input.  ``decode`` receives the original length because several
    codecs (zero-RLE, sparse segments) do not store it themselves.

    ``encode`` accepts any buffer-protocol object (``bytes``, ``bytearray``,
    ``memoryview``) so the zero-copy write path can pass views straight
    through; the wire payload is byte-identical regardless of input type.
    """

    #: one-byte wire identifier; unique across registered codecs
    codec_id: int = -1
    #: short human-readable name used in reports and the CLI
    name: str = "abstract"

    @abstractmethod
    def encode(self, data: Buffer) -> bytes:
        """Encode ``data`` into an on-wire payload."""

    @abstractmethod
    def decode(self, payload: bytes, original_length: int) -> bytes:
        """Invert :meth:`encode`; must return exactly ``original_length`` bytes."""

    def encode_many(self, datas: "Sequence[Buffer]") -> list[bytes]:
        """Encode a batch of deltas; equivalent to mapping :meth:`encode`.

        The default loops; vectorized codecs override to amortize their
        per-call dispatch across the whole flush window (the batched path
        :class:`repro.engine.batch.ShipBatcher` drains through).
        """
        return [self.encode(d) for d in datas]

    def decode_into(
        self, payload: bytes, out: Union[bytearray, memoryview]
    ) -> None:
        """Decode ``payload`` directly into the writable buffer ``out``.

        ``out`` must be exactly ``original_length`` bytes and is fully
        overwritten.  The default materializes :meth:`decode` and copies;
        sparse codecs override to scatter segments without building the
        zero-filled intermediate.
        """
        view = _writable_view(out)
        view[:] = self.decode(payload, view.nbytes)

    def decode_xor_into(
        self, payload: bytes, out: Union[bytearray, memoryview]
    ) -> None:
        """XOR the decoded delta into ``out`` in place (``out ^= decode``).

        This is the replica's Eq. 2 fast path: with ``out`` holding
        ``A_old``, the result is ``A_new`` without materializing either the
        full delta or an intermediate copy of the block.  Sparse codecs
        override to XOR only the literal (changed) segments — the zero gaps
        of the delta are XOR no-ops and never touch memory.
        """
        view = _writable_view(out)
        xor_into(view, self.decode(payload, view.nbytes))

    def ratio(self, data: Buffer) -> float:
        """Convenience: encoded size / original size (lower is better)."""
        data = bytes(data)
        if not data:
            return 1.0
        return len(self.encode(data)) / len(data)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(id={self.codec_id}, name={self.name!r})"


_REGISTRY: dict[int, Codec] = {}
_BY_NAME: dict[str, Codec] = {}


def register_codec(codec: Codec) -> Codec:
    """Register ``codec`` under its ``codec_id`` and ``name``.

    Re-registering the same id with a different codec class is an error;
    registering the identical instance twice is a harmless no-op.
    """
    existing = _REGISTRY.get(codec.codec_id)
    if existing is not None:
        if existing is codec or type(existing) is type(codec):
            return existing
        raise CodecError(
            f"codec id {codec.codec_id} already registered to {existing!r}"
        )
    if not 0 <= codec.codec_id <= 255:
        raise CodecError(f"codec id must fit in one byte, got {codec.codec_id}")
    _REGISTRY[codec.codec_id] = codec
    _BY_NAME[codec.name] = codec
    return codec


def get_codec(key: int | str) -> Codec:
    """Look up a registered codec by numeric id or by name."""
    table: dict = _REGISTRY if isinstance(key, int) else _BY_NAME
    try:
        return table[key]
    except KeyError:
        raise CodecError(f"unknown codec: {key!r}") from None


def available_codecs() -> list[Codec]:
    """Return all registered codecs, ordered by id."""
    return [_REGISTRY[i] for i in sorted(_REGISTRY)]
