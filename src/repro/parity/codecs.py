"""Codec interface and registry.

A codec turns a parity delta (or a raw data block, for the baseline
strategies) into an on-wire payload and back.  Codecs are identified by a
single byte so the frame format (:mod:`repro.parity.frame`) stays
self-describing: a replica can decode any frame without out-of-band
configuration.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.common.errors import CodecError


class Codec(ABC):
    """Reversible bytes→bytes encoding.

    Implementations must be lossless: ``decode(encode(b), len(b)) == b`` for
    every input.  ``decode`` receives the original length because several
    codecs (zero-RLE, sparse segments) do not store it themselves.
    """

    #: one-byte wire identifier; unique across registered codecs
    codec_id: int = -1
    #: short human-readable name used in reports and the CLI
    name: str = "abstract"

    @abstractmethod
    def encode(self, data: bytes) -> bytes:
        """Encode ``data`` into an on-wire payload."""

    @abstractmethod
    def decode(self, payload: bytes, original_length: int) -> bytes:
        """Invert :meth:`encode`; must return exactly ``original_length`` bytes."""

    def ratio(self, data: bytes) -> float:
        """Convenience: encoded size / original size (lower is better)."""
        if not data:
            return 1.0
        return len(self.encode(data)) / len(data)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(id={self.codec_id}, name={self.name!r})"


_REGISTRY: dict[int, Codec] = {}
_BY_NAME: dict[str, Codec] = {}


def register_codec(codec: Codec) -> Codec:
    """Register ``codec`` under its ``codec_id`` and ``name``.

    Re-registering the same id with a different codec class is an error;
    registering the identical instance twice is a harmless no-op.
    """
    existing = _REGISTRY.get(codec.codec_id)
    if existing is not None:
        if existing is codec or type(existing) is type(codec):
            return existing
        raise CodecError(
            f"codec id {codec.codec_id} already registered to {existing!r}"
        )
    if not 0 <= codec.codec_id <= 255:
        raise CodecError(f"codec id must fit in one byte, got {codec.codec_id}")
    _REGISTRY[codec.codec_id] = codec
    _BY_NAME[codec.name] = codec
    return codec


def get_codec(key: int | str) -> Codec:
    """Look up a registered codec by numeric id or by name."""
    table: dict = _REGISTRY if isinstance(key, int) else _BY_NAME
    try:
        return table[key]
    except KeyError:
        raise CodecError(f"unknown codec: {key!r}") from None


def available_codecs() -> list[Codec]:
    """Return all registered codecs, ordered by id."""
    return [_REGISTRY[i] for i in sorted(_REGISTRY)]
