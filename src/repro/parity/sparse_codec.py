"""Sparse segment codec.

Ships the changed byte ranges of a parity delta as explicit
``(offset, length, bytes)`` segments with fixed 32-bit headers.  Compared to
zero-RLE this trades a slightly larger header per segment for O(1) random
access to segments — the representation the CDP/TRAP parity log stores,
because point-in-time recovery wants to fold deltas without decoding whole
blocks.

Like :mod:`repro.parity.zero_rle`, the encoder is one vectorized span
detection plus one ``b"".join`` gather of headers and zero-copy literal
views; the wire format is byte-identical to the historical loop encoder.
"""

from __future__ import annotations

import struct
from typing import Union

from repro.common.buffers import nonzero_spans, xor_into
from repro.common.errors import CodecError
from repro.parity.codecs import Buffer, Codec, _writable_view, register_codec

_HEADER = struct.Struct("<II")  # offset, length
_COUNT = struct.Struct("<I")


class SparseSegmentCodec(Codec):
    """Explicit segment-list encoding of nonzero ranges.

    Wire format: ``uint32 segment_count`` then ``segment_count`` records of
    ``uint32 offset, uint32 length, length bytes``.  Adjacent runs closer
    than :attr:`merge_gap` bytes are merged into one segment to amortize the
    8-byte header over near-contiguous edits.
    """

    codec_id = 3
    name = "sparse"

    def __init__(self, merge_gap: int = 8) -> None:
        if merge_gap < 0:
            raise ValueError(f"merge_gap must be non-negative, got {merge_gap}")
        self._merge_gap = merge_gap

    @property
    def merge_gap(self) -> int:
        """Runs separated by fewer than this many zero bytes are merged."""
        return self._merge_gap

    def segments(self, data: Buffer) -> list[tuple[int, int]]:
        """Return the merged ``(offset, length)`` segments for ``data``.

        The merge rule (coalesce spans separated by ``<= merge_gap`` zero
        bytes) is exactly :func:`repro.common.buffers.nonzero_spans`'s
        keep-mask, so this is now a single vectorized pass instead of a
        detect-then-merge Python loop.
        """
        starts, ends = nonzero_spans(data, merge_gap=self._merge_gap)
        return [(int(s), int(e - s)) for s, e in zip(starts, ends)]

    def encode(self, data: Buffer) -> bytes:
        """Emit (offset, length, bytes) segments for each nonzero run."""
        starts, ends = nonzero_spans(data, merge_gap=self._merge_gap)
        view = data if isinstance(data, memoryview) else memoryview(data)
        parts: list[Buffer] = [_COUNT.pack(starts.size)]
        header = _HEADER.pack
        for s, e in zip(starts.tolist(), ends.tolist()):
            parts.append(header(s, e - s))
            parts.append(view[s:e])
        return b"".join(parts)

    def decode(self, payload: bytes, original_length: int) -> bytes:
        """Rebuild the delta by writing each segment into a zero buffer."""
        out = bytearray(original_length)
        self._apply(payload, _writable_view(out), xor=False)
        return bytes(out)

    def decode_into(
        self, payload: bytes, out: Union[bytearray, memoryview]
    ) -> None:
        """Scatter segments directly into ``out``, zeroing the gaps."""
        view = _writable_view(out)
        # Segments are emitted in ascending offset order by encode, but the
        # format does not require it; zero the whole target first so any
        # stale bytes between segments are cleared.
        view[:] = bytes(view.nbytes)
        self._apply(payload, view, xor=False)

    def decode_xor_into(
        self, payload: bytes, out: Union[bytearray, memoryview]
    ) -> None:
        """XOR only the stored segments into ``out`` (Eq. 2 fast path)."""
        self._apply(payload, _writable_view(out), xor=True)

    def _apply(self, payload: bytes, view: memoryview, *, xor: bool) -> None:
        """Walk the segment list, copying or XORing each into ``view``."""
        original_length = view.nbytes
        if len(payload) < _COUNT.size:
            raise CodecError("sparse payload shorter than its count field")
        (count,) = _COUNT.unpack_from(payload, 0)
        pos = _COUNT.size
        for _ in range(count):
            if pos + _HEADER.size > len(payload):
                raise CodecError("truncated sparse segment header")
            offset, length = _HEADER.unpack_from(payload, pos)
            pos += _HEADER.size
            if offset + length > original_length or pos + length > len(payload):
                raise CodecError("sparse segment overruns declared length")
            if xor:
                xor_into(view[offset : offset + length], payload[pos : pos + length])
            else:
                view[offset : offset + length] = payload[pos : pos + length]
            pos += length


SPARSE = register_codec(SparseSegmentCodec())
