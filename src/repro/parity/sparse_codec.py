"""Sparse segment codec.

Ships the changed byte ranges of a parity delta as explicit
``(offset, length, bytes)`` segments with fixed 32-bit headers.  Compared to
zero-RLE this trades a slightly larger header per segment for O(1) random
access to segments — the representation the CDP/TRAP parity log stores,
because point-in-time recovery wants to fold deltas without decoding whole
blocks.
"""

from __future__ import annotations

import struct

from repro.common.buffers import nonzero_runs
from repro.common.errors import CodecError
from repro.parity.codecs import Codec, register_codec

_HEADER = struct.Struct("<II")  # offset, length


class SparseSegmentCodec(Codec):
    """Explicit segment-list encoding of nonzero ranges.

    Wire format: ``uint32 segment_count`` then ``segment_count`` records of
    ``uint32 offset, uint32 length, length bytes``.  Adjacent runs closer
    than :attr:`merge_gap` bytes are merged into one segment to amortize the
    8-byte header over near-contiguous edits.
    """

    codec_id = 3
    name = "sparse"

    def __init__(self, merge_gap: int = 8) -> None:
        if merge_gap < 0:
            raise ValueError(f"merge_gap must be non-negative, got {merge_gap}")
        self._merge_gap = merge_gap

    @property
    def merge_gap(self) -> int:
        """Runs separated by fewer than this many zero bytes are merged."""
        return self._merge_gap

    def segments(self, data: bytes) -> list[tuple[int, int]]:
        """Return the merged ``(offset, length)`` segments for ``data``."""
        merged: list[tuple[int, int]] = []
        for offset, length in nonzero_runs(data):
            if merged and offset - (merged[-1][0] + merged[-1][1]) <= self._merge_gap:
                prev_off, prev_len = merged[-1]
                merged[-1] = (prev_off, offset + length - prev_off)
            else:
                merged.append((offset, length))
        return merged

    def encode(self, data: bytes) -> bytes:
        """Emit (offset, length, bytes) segments for each nonzero run."""
        segs = self.segments(data)
        out = bytearray(struct.pack("<I", len(segs)))
        for offset, length in segs:
            out += _HEADER.pack(offset, length)
            out += data[offset : offset + length]
        return bytes(out)

    def decode(self, payload: bytes, original_length: int) -> bytes:
        """Rebuild the delta by writing each segment into a zero buffer."""
        if len(payload) < 4:
            raise CodecError("sparse payload shorter than its count field")
        (count,) = struct.unpack_from("<I", payload, 0)
        out = bytearray(original_length)
        pos = 4
        for _ in range(count):
            if pos + _HEADER.size > len(payload):
                raise CodecError("truncated sparse segment header")
            offset, length = _HEADER.unpack_from(payload, pos)
            pos += _HEADER.size
            if offset + length > original_length or pos + length > len(payload):
                raise CodecError("sparse segment overruns declared length")
            out[offset : offset + length] = payload[pos : pos + length]
            pos += length
        return bytes(out)


SPARSE = register_codec(SparseSegmentCodec())
