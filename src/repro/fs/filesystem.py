"""An Ext2-flavoured filesystem on a block device.

On-device layout (all sizes in blocks)::

    block 0                      superblock
    blocks 1 .. B                block allocation bitmap
    blocks B+1 .. B+I            inode table
    remaining                    data blocks

Inodes hold 12 direct block pointers plus one single-indirect block, like
classic Ext2.  Directories are ordinary files containing a sequence of
``(inode u32, name_len u8, name)`` entries.  All metadata writes go through
the device immediately (no journal — Ext2 had none either), so the
block-write stream a workload produces has the real mix of data-block
rewrites and tiny metadata updates.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.block.device import BlockDevice
from repro.common.errors import StorageError

_SUPER = struct.Struct("<IIIIII")  # magic, block_size, bitmap_blocks, inode_blocks, inode_count, root_inode
_MAGIC = 0xEF53_2006  # Ext2's magic crossed with the paper's year

_INODE = struct.Struct("<BxHIQ12I I")  # mode, links, reserved, size, 12 direct, indirect
INODE_SIZE = _INODE.size

MODE_FREE = 0
MODE_FILE = 1
MODE_DIR = 2

_DIRECT_POINTERS = 12


@dataclass(frozen=True)
class FileStat:
    """Result of :meth:`FileSystem.stat`."""

    inode: int
    mode: int
    size: int

    @property
    def is_dir(self) -> bool:
        """True for directories."""
        return self.mode == MODE_DIR

    @property
    def is_file(self) -> bool:
        """True for regular files."""
        return self.mode == MODE_FILE


@dataclass
class _Inode:
    mode: int
    links: int
    size: int
    direct: list[int]
    indirect: int

    def pack(self) -> bytes:
        return _INODE.pack(
            self.mode, self.links, 0, self.size, *self.direct, self.indirect
        )

    @classmethod
    def unpack(cls, raw: bytes) -> "_Inode":
        fields = _INODE.unpack(raw)
        return cls(
            mode=fields[0],
            links=fields[1],
            size=fields[3],
            direct=list(fields[4:16]),
            indirect=fields[16],
        )


class FileSystem:
    """A mounted miniext filesystem."""

    def __init__(self, device: BlockDevice) -> None:
        self._device = device
        raw = device.read_block(0)
        magic, block_size, bitmap_blocks, inode_blocks, inode_count, root = (
            _SUPER.unpack_from(raw, 0)
        )
        if magic != _MAGIC:
            raise StorageError("device does not contain a miniext filesystem")
        if block_size != device.block_size:
            raise StorageError(
                f"filesystem block size {block_size} != device {device.block_size}"
            )
        self._bitmap_blocks = bitmap_blocks
        self._inode_blocks = inode_blocks
        self._inode_count = inode_count
        self._root = root
        self._bitmap_start = 1
        self._inode_start = 1 + bitmap_blocks
        self._data_start = self._inode_start + inode_blocks

    # -- format -----------------------------------------------------------------

    @classmethod
    def format(cls, device: BlockDevice, inode_count: int = 1024) -> "FileSystem":
        """Write a fresh filesystem onto ``device`` and mount it."""
        block_size = device.block_size
        inodes_per_block = block_size // INODE_SIZE
        if inodes_per_block == 0:
            raise StorageError(f"block size {block_size} cannot hold an inode")
        inode_blocks = -(-inode_count // inodes_per_block)
        bits_per_block = block_size * 8
        bitmap_blocks = -(-device.num_blocks // bits_per_block)
        data_start = 1 + bitmap_blocks + inode_blocks
        if data_start >= device.num_blocks:
            raise StorageError("device too small for this inode count")
        super_raw = bytearray(block_size)
        _SUPER.pack_into(
            super_raw, 0, _MAGIC, block_size, bitmap_blocks, inode_blocks,
            inode_count, 0,
        )
        device.write_block(0, bytes(super_raw))
        zero = bytes(block_size)
        for b in range(1, data_start):
            device.write_block(b, zero)
        fs = cls(device)
        # Reserve the metadata region in the bitmap.
        for b in range(data_start):
            fs._bitmap_set(b, True)
        # Create the root directory at inode 0.
        fs._write_inode(0, _Inode(MODE_DIR, 1, 0, [0] * _DIRECT_POINTERS, 0))
        return fs

    @property
    def device(self) -> BlockDevice:
        """The underlying block device."""
        return self._device

    @property
    def block_size(self) -> int:
        """Filesystem block size (== device block size)."""
        return self._device.block_size

    # -- bitmap --------------------------------------------------------------------

    def _bitmap_set(self, block: int, used: bool) -> None:
        bits_per_block = self.block_size * 8
        bitmap_block = self._bitmap_start + block // bits_per_block
        bit = block % bits_per_block
        raw = bytearray(self._device.read_block(bitmap_block))
        byte_index, bit_index = divmod(bit, 8)
        if used:
            raw[byte_index] |= 1 << bit_index
        else:
            raw[byte_index] &= ~(1 << bit_index)
        self._device.write_block(bitmap_block, bytes(raw))

    def _bitmap_get(self, block: int) -> bool:
        bits_per_block = self.block_size * 8
        raw = self._device.read_block(self._bitmap_start + block // bits_per_block)
        bit = block % bits_per_block
        return bool(raw[bit // 8] >> (bit % 8) & 1)

    def _allocate_block(self) -> int:
        for block in range(self._data_start, self._device.num_blocks):
            if not self._bitmap_get(block):
                self._bitmap_set(block, True)
                return block
        raise StorageError("filesystem out of data blocks")

    def _free_block(self, block: int) -> None:
        self._bitmap_set(block, False)

    # -- inode table -------------------------------------------------------------------

    def _inode_location(self, inode: int) -> tuple[int, int]:
        if not 0 <= inode < self._inode_count:
            raise StorageError(f"inode {inode} out of range")
        per_block = self.block_size // INODE_SIZE
        return self._inode_start + inode // per_block, (inode % per_block) * INODE_SIZE

    def _read_inode(self, inode: int) -> _Inode:
        block, offset = self._inode_location(inode)
        raw = self._device.read_block(block)
        return _Inode.unpack(raw[offset : offset + INODE_SIZE])

    def _write_inode(self, inode: int, data: _Inode) -> None:
        block, offset = self._inode_location(inode)
        raw = bytearray(self._device.read_block(block))
        raw[offset : offset + INODE_SIZE] = data.pack()
        self._device.write_block(block, bytes(raw))

    def _allocate_inode(self, mode: int) -> int:
        for inode in range(self._inode_count):
            if self._read_inode(inode).mode == MODE_FREE:
                self._write_inode(
                    inode, _Inode(mode, 1, 0, [0] * _DIRECT_POINTERS, 0)
                )
                return inode
        raise StorageError("filesystem out of inodes")

    # -- file block mapping ------------------------------------------------------------

    def _block_of(self, node: _Inode, index: int, allocate: bool) -> int:
        """Device block holding file block ``index`` (0 if absent, unless allocating)."""
        if index < _DIRECT_POINTERS:
            if node.direct[index] == 0 and allocate:
                node.direct[index] = self._allocate_block()
            return node.direct[index]
        index -= _DIRECT_POINTERS
        pointers_per_block = self.block_size // 4
        if index >= pointers_per_block:
            raise StorageError("file exceeds maximum size (single indirect)")
        if node.indirect == 0:
            if not allocate:
                return 0
            node.indirect = self._allocate_block()
            self._device.write_block(node.indirect, bytes(self.block_size))
        table = bytearray(self._device.read_block(node.indirect))
        (pointer,) = struct.unpack_from("<I", table, index * 4)
        if pointer == 0 and allocate:
            pointer = self._allocate_block()
            struct.pack_into("<I", table, index * 4, pointer)
            self._device.write_block(node.indirect, bytes(table))
        return pointer

    def _file_blocks(self, node: _Inode) -> list[int]:
        """All allocated data blocks of a file, in order."""
        blocks = [b for b in node.direct if b]
        if node.indirect:
            table = self._device.read_block(node.indirect)
            count = self.block_size // 4
            for i in range(count):
                (pointer,) = struct.unpack_from("<I", table, i * 4)
                if pointer:
                    blocks.append(pointer)
        return blocks

    # -- directory entries -----------------------------------------------------------------

    def _dir_entries(self, inode: int) -> list[tuple[int, str]]:
        raw = self._read_contents(inode)
        entries: list[tuple[int, str]] = []
        pos = 0
        while pos < len(raw):
            child, name_len = struct.unpack_from("<IB", raw, pos)
            pos += 5
            name = raw[pos : pos + name_len].decode("utf-8")
            pos += name_len
            entries.append((child, name))
        return entries

    def _dir_add(self, inode: int, child: int, name: str) -> None:
        encoded = name.encode("utf-8")
        if len(encoded) > 255:
            raise StorageError(f"name too long: {name!r}")
        raw = self._read_contents(inode)
        raw += struct.pack("<IB", child, len(encoded)) + encoded
        self._write_contents(inode, raw)

    def _dir_remove(self, inode: int, name: str) -> int:
        entries = self._dir_entries(inode)
        kept = [(c, n) for c, n in entries if n != name]
        if len(kept) == len(entries):
            raise StorageError(f"no entry named {name!r}")
        removed = next(c for c, n in entries if n == name)
        out = bytearray()
        for child, entry_name in kept:
            encoded = entry_name.encode("utf-8")
            out += struct.pack("<IB", child, len(encoded)) + encoded
        self._write_contents(inode, bytes(out))
        return removed

    # -- raw contents I/O ---------------------------------------------------------------------

    def _read_contents(self, inode: int) -> bytes:
        node = self._read_inode(inode)
        out = bytearray()
        remaining = node.size
        index = 0
        while remaining > 0:
            block = self._block_of(node, index, allocate=False)
            chunk = (
                self._device.read_block(block)
                if block
                else bytes(self.block_size)
            )
            take = min(remaining, self.block_size)
            out += chunk[:take]
            remaining -= take
            index += 1
        return bytes(out)

    def _write_contents(self, inode: int, data: bytes) -> None:
        node = self._read_inode(inode)
        old_blocks = -(-node.size // self.block_size)
        new_blocks = -(-len(data) // self.block_size)
        for index in range(new_blocks):
            block = self._block_of(node, index, allocate=True)
            chunk = data[index * self.block_size : (index + 1) * self.block_size]
            if len(chunk) < self.block_size:
                # preserve trailing bytes of a partially overwritten block
                old = self._device.read_block(block)
                chunk = chunk + old[len(chunk) :]
            self._device.write_block(block, chunk)
        # free now-unused tail blocks
        for index in range(new_blocks, old_blocks):
            block = self._block_of(node, index, allocate=False)
            if block:
                self._free_block(block)
                if index < _DIRECT_POINTERS:
                    node.direct[index] = 0
                else:
                    table = bytearray(self._device.read_block(node.indirect))
                    struct.pack_into(
                        "<I", table, (index - _DIRECT_POINTERS) * 4, 0
                    )
                    self._device.write_block(node.indirect, bytes(table))
        node.size = len(data)
        self._write_inode(inode, node)

    # -- path resolution --------------------------------------------------------------------------

    @staticmethod
    def _split(path: str) -> list[str]:
        return [part for part in path.split("/") if part]

    def _resolve(self, path: str) -> int | None:
        inode = self._root
        for part in self._split(path):
            node = self._read_inode(inode)
            if node.mode != MODE_DIR:
                return None
            match = next(
                (c for c, n in self._dir_entries(inode) if n == part), None
            )
            if match is None:
                return None
            inode = match
        return inode

    def _resolve_parent(self, path: str) -> tuple[int, str]:
        parts = self._split(path)
        if not parts:
            raise StorageError("path refers to the root directory")
        parent = self._resolve("/".join(parts[:-1]))
        if parent is None or self._read_inode(parent).mode != MODE_DIR:
            raise StorageError(f"no such directory: {'/'.join(parts[:-1])!r}")
        return parent, parts[-1]

    # -- public API ----------------------------------------------------------------------------------

    def exists(self, path: str) -> bool:
        """True if ``path`` resolves to a file or directory."""
        return self._resolve(path) is not None

    def stat(self, path: str) -> FileStat:
        """Return inode / mode / size for ``path``."""
        inode = self._resolve(path)
        if inode is None:
            raise StorageError(f"no such path: {path!r}")
        node = self._read_inode(inode)
        return FileStat(inode=inode, mode=node.mode, size=node.size)

    def mkdir(self, path: str) -> None:
        """Create a directory (parent must exist)."""
        parent, name = self._resolve_parent(path)
        if any(n == name for _, n in self._dir_entries(parent)):
            raise StorageError(f"path already exists: {path!r}")
        inode = self._allocate_inode(MODE_DIR)
        self._dir_add(parent, inode, name)

    def makedirs(self, path: str) -> None:
        """Create a directory and any missing ancestors."""
        parts = self._split(path)
        for depth in range(1, len(parts) + 1):
            prefix = "/".join(parts[:depth])
            if not self.exists(prefix):
                self.mkdir(prefix)

    def write_file(self, path: str, data: bytes) -> None:
        """Create or replace the file at ``path`` with ``data``."""
        inode = self._resolve(path)
        if inode is None:
            parent, name = self._resolve_parent(path)
            inode = self._allocate_inode(MODE_FILE)
            self._dir_add(parent, inode, name)
        elif self._read_inode(inode).mode != MODE_FILE:
            raise StorageError(f"not a file: {path!r}")
        self._write_contents(inode, data)

    def read_file(self, path: str) -> bytes:
        """Return the full contents of the file at ``path``."""
        inode = self._resolve(path)
        if inode is None:
            raise StorageError(f"no such file: {path!r}")
        if self._read_inode(inode).mode != MODE_FILE:
            raise StorageError(f"not a file: {path!r}")
        return self._read_contents(inode)

    def listdir(self, path: str = "/") -> list[str]:
        """Names in the directory at ``path``, in creation order."""
        inode = self._resolve(path)
        if inode is None or self._read_inode(inode).mode != MODE_DIR:
            raise StorageError(f"no such directory: {path!r}")
        return [name for _, name in self._dir_entries(inode)]

    def walk(self, path: str = "/") -> list[str]:
        """All file paths under ``path`` (recursive, sorted)."""
        inode = self._resolve(path)
        if inode is None:
            raise StorageError(f"no such path: {path!r}")
        results: list[str] = []
        prefix = "/".join(self._split(path))

        def visit(inode: int, where: str) -> None:
            for child, name in self._dir_entries(inode):
                child_path = f"{where}/{name}" if where else name
                if self._read_inode(child).mode == MODE_DIR:
                    visit(child, child_path)
                else:
                    results.append(child_path)

        visit(inode, prefix)
        return sorted(results)

    def unlink(self, path: str) -> None:
        """Remove a file, freeing its blocks and inode."""
        inode = self._resolve(path)
        if inode is None:
            raise StorageError(f"no such file: {path!r}")
        node = self._read_inode(inode)
        if node.mode != MODE_FILE:
            raise StorageError(f"not a file: {path!r}")
        parent, name = self._resolve_parent(path)
        self._dir_remove(parent, name)
        for block in self._file_blocks(node):
            self._free_block(block)
        if node.indirect:
            self._free_block(node.indirect)
        self._write_inode(inode, _Inode(MODE_FREE, 0, 0, [0] * 12, 0))
