"""POSIX ustar archive writer over the mini filesystem.

Reproduces the paper's micro-benchmark action: "creates an archive file
using ``tar``" from a set of directories (Sec. 3.2).  The writer emits
standard 512-byte ustar headers and block padding, reading file contents
from a :class:`~repro.fs.filesystem.FileSystem` and writing the archive
back into the same filesystem — every byte of which becomes block-device
write traffic for the replication engines to ship.
"""

from __future__ import annotations

from repro.fs.filesystem import FileSystem

_BLOCK = 512


def _octal(value: int, width: int) -> bytes:
    """Render ``value`` as a NUL-terminated octal field of ``width`` bytes."""
    return f"{value:0{width - 1}o}".encode("ascii") + b"\0"


def _ustar_header(name: str, size: int, is_dir: bool) -> bytes:
    """Build one 512-byte ustar header."""
    if is_dir and not name.endswith("/"):
        name += "/"
    encoded_name = name.encode("utf-8")
    if len(encoded_name) > 100:
        raise ValueError(f"path too long for ustar: {name!r}")
    header = bytearray(_BLOCK)
    header[0:len(encoded_name)] = encoded_name
    header[100:108] = _octal(0o755 if is_dir else 0o644, 8)  # mode
    header[108:116] = _octal(0, 8)  # uid
    header[116:124] = _octal(0, 8)  # gid
    header[124:136] = _octal(0 if is_dir else size, 12)
    header[136:148] = _octal(0, 12)  # mtime (deterministic archives)
    header[148:156] = b" " * 8  # checksum placeholder
    header[156] = 0x35 if is_dir else 0x30  # typeflag '5' or '0'
    header[257:263] = b"ustar\0"
    header[263:265] = b"00"
    checksum = sum(header)
    header[148:156] = f"{checksum:06o}".encode("ascii") + b"\0 "
    return bytes(header)


def tar_paths(fs: FileSystem, paths: list[str], archive_path: str) -> int:
    """Archive ``paths`` (directories or files) into ``archive_path``.

    Returns the archive size in bytes.  The archive is written into ``fs``
    itself, like ``tar cf /archive.tar dir1 dir2 ...`` run on the mounted
    filesystem.
    """
    chunks: list[bytes] = []
    for path in paths:
        stat = fs.stat(path)
        if stat.is_dir:
            chunks.append(_ustar_header(path.strip("/"), 0, is_dir=True))
            for file_path in fs.walk(path):
                data = fs.read_file(file_path)
                chunks.append(_ustar_header(file_path, len(data), is_dir=False))
                chunks.append(data)
                if len(data) % _BLOCK:
                    chunks.append(bytes(_BLOCK - len(data) % _BLOCK))
        else:
            data = fs.read_file(path)
            chunks.append(_ustar_header(path.strip("/"), len(data), is_dir=False))
            chunks.append(data)
            if len(data) % _BLOCK:
                chunks.append(bytes(_BLOCK - len(data) % _BLOCK))
    chunks.append(bytes(2 * _BLOCK))  # end-of-archive marker
    archive = b"".join(chunks)
    fs.write_file(archive_path, archive)
    return len(archive)
