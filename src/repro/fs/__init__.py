"""miniext — an inode/bitmap filesystem substrate plus a tar archiver.

The paper's file-system micro-benchmark (Sec. 3.2, Fig. 7) runs on Ext2:
five directories of files are randomly edited and re-archived with ``tar``
five times, generating block-level writes.  This package supplies the same
stack on a :class:`~repro.block.device.BlockDevice`:

* :class:`~repro.fs.filesystem.FileSystem` — superblock, block bitmap,
  inode table with direct + single-indirect block pointers, directories as
  files of entries;
* :mod:`repro.fs.tar` — a POSIX ustar archive writer that reads from and
  writes into the filesystem.

Mounting the filesystem on a :class:`~repro.engine.primary.PrimaryEngine`
reproduces the paper's Ext2-over-PRINS configuration: metadata blocks
(bitmaps, inode table) receive tiny scattered updates, file data blocks are
rewritten with partial changes — both highly PRINS-friendly.
"""

from repro.fs.filesystem import FileStat, FileSystem
from repro.fs.tar import tar_paths

__all__ = ["FileStat", "FileSystem", "tar_paths"]
