"""Telemetry for the PRINS engine: metrics, tracing, exporters.

Every figure in the paper is a measurement; this package is where those
measurements live at runtime.  Three layers:

* :mod:`repro.obs.registry` — named counters, gauges, and log2-bucket
  histograms (O(1) record, bounded memory);
* :mod:`repro.obs.tracing` — nested, monotonic-clock spans covering the
  full replicated write path, with a bounded ring buffer of raw spans and
  exact per-stage aggregates;
* :mod:`repro.obs.export` — JSON snapshots, Prometheus text format,
  Chrome trace-event (Perfetto) export, and the ``prins metrics`` /
  ``prins trace report`` terminal reports;
* :mod:`repro.obs.dist` — the causal :class:`~repro.obs.dist.TraceContext`
  carried through ``ShipWork``, scheduler worker threads, and the iSCSI
  BHS so one write is one trace across threads and nodes;
* :mod:`repro.obs.critical` — stitches exported spans (from any number
  of nodes) into causal trees and attributes each write's latency to
  stages (queue/encode/transport/replica/drag) with streaming quantiles;
* :mod:`repro.obs.flightrec` — a bounded black-box event ring
  (health transitions, retries, journal/backlog, reconcile rounds,
  scheduler stalls) auto-dumped to JSON when the fault ladder fires.

:class:`~repro.obs.telemetry.Telemetry` fronts all of it; the
:data:`~repro.obs.telemetry.NULL_TELEMETRY` twin is the default
everywhere, so nothing pays for observability until it is switched on
(``PrimaryEngine(..., telemetry=Telemetry())`` or process-wide via
:func:`~repro.obs.telemetry.set_telemetry`).
"""

from repro.obs.critical import CriticalPathAnalyzer, WriteAttribution, stitch_spans
from repro.obs.dist import TraceContext, context_from_wire, context_to_wire
from repro.obs.export import (
    load_snapshot,
    render_metrics_report,
    render_trace_report,
    save_snapshot,
    to_chrome_trace,
    to_json,
    to_prometheus,
)
from repro.obs.flightrec import (
    NULL_FLIGHTREC,
    FlightRecorder,
    NullFlightRecorder,
    render_events,
)
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    get_telemetry,
    set_telemetry,
    use_telemetry,
)
from repro.obs.tracing import NULL_SPAN, NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "CriticalPathAnalyzer",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_FLIGHTREC",
    "NULL_SPAN",
    "NULL_TELEMETRY",
    "NullFlightRecorder",
    "NullTelemetry",
    "NullTracer",
    "Span",
    "Telemetry",
    "TraceContext",
    "Tracer",
    "WriteAttribution",
    "context_from_wire",
    "context_to_wire",
    "get_telemetry",
    "load_snapshot",
    "render_events",
    "render_metrics_report",
    "render_trace_report",
    "save_snapshot",
    "set_telemetry",
    "stitch_spans",
    "to_chrome_trace",
    "to_json",
    "to_prometheus",
    "use_telemetry",
]
