"""Telemetry for the PRINS engine: metrics, tracing, exporters.

Every figure in the paper is a measurement; this package is where those
measurements live at runtime.  Three layers:

* :mod:`repro.obs.registry` — named counters, gauges, and log2-bucket
  histograms (O(1) record, bounded memory);
* :mod:`repro.obs.tracing` — nested, monotonic-clock spans covering the
  full replicated write path, with a bounded ring buffer of raw spans and
  exact per-stage aggregates;
* :mod:`repro.obs.export` — JSON snapshots, Prometheus text format, and
  the ``prins metrics`` / ``prins trace report`` terminal reports.

:class:`~repro.obs.telemetry.Telemetry` fronts all of it; the
:data:`~repro.obs.telemetry.NULL_TELEMETRY` twin is the default
everywhere, so nothing pays for observability until it is switched on
(``PrimaryEngine(..., telemetry=Telemetry())`` or process-wide via
:func:`~repro.obs.telemetry.set_telemetry`).
"""

from repro.obs.export import (
    load_snapshot,
    render_metrics_report,
    render_trace_report,
    save_snapshot,
    to_json,
    to_prometheus,
)
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    get_telemetry,
    set_telemetry,
    use_telemetry,
)
from repro.obs.tracing import NULL_SPAN, NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "NullTracer",
    "Span",
    "Telemetry",
    "Tracer",
    "get_telemetry",
    "load_snapshot",
    "render_metrics_report",
    "render_trace_report",
    "save_snapshot",
    "set_telemetry",
    "to_json",
    "to_prometheus",
    "use_telemetry",
]
