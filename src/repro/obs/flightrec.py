"""Black-box flight recorder: a bounded ring of structured fault events.

Exceptions out of the fault ladder (``PartialReplicationError``, a
breaker tripping DOWN, ``ReconcileStalledError``) tell you *that*
something broke; the flight recorder keeps the last N structured events
leading up to it — health transitions, retries, journal/backlog
activity, reconcile rounds, scheduler stalls — so the dump answers
*why*.  It is the software equivalent of a crash-survivable black box:
always recording, bounded memory, read only after something goes wrong.

Event record shape (JSON-safe)::

    {"seq": 17, "t_ns": 123456789, "kind": "health.transition",
     "data": {"link": 0, "old": "healthy", "new": "down"}}

``seq`` is a monotonically increasing sequence number that survives ring
eviction, so gaps in a dump are detectable (``dropped`` counts them).
Timestamps are ``time.monotonic_ns`` — ordering-safe within a process,
not wall-clock.

Recorders register themselves in a class-level :class:`weakref.WeakSet`
so a test harness (see ``tests/conftest.py``) can sweep every live
recorder into artifact files when a test fails, without threading a
handle through every fixture.  :meth:`auto_dump` is the fault hook: the
engine calls it when a ladder exception fires, stamping the reason and —
when a ``dump_path`` was configured — writing the JSON artifact
immediately, before any handler can swallow the exception.
"""

from __future__ import annotations

import json
import os
import threading
import time
import weakref
from collections import deque

__all__ = ["FlightRecorder", "NULL_FLIGHTREC", "NullFlightRecorder", "render_events"]


class FlightRecorder:
    """Bounded structured-event ring with fault-triggered JSON dumps."""

    _instances: "weakref.WeakSet[FlightRecorder]" = weakref.WeakSet()

    def __init__(
        self,
        capacity: int = 1024,
        node: str = "",
        dump_path: str | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"flightrec capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.node = node
        self.dump_path = dump_path
        self.dropped = 0
        self.last_dump_reason: str | None = None
        self._events: deque[dict] = deque(maxlen=capacity)
        self._seq = 0
        self._lock = threading.Lock()
        FlightRecorder._instances.add(self)

    # -- recording -----------------------------------------------------------

    def record(self, kind: str, **data) -> None:
        """Append one event; O(1), safe from scheduler worker threads."""
        with self._lock:
            self._seq += 1
            if len(self._events) == self.capacity:
                self.dropped += 1
            self._events.append(
                {
                    "seq": self._seq,
                    "t_ns": time.monotonic_ns(),
                    "kind": kind,
                    "data": data,
                }
            )

    # -- reading / dumping ---------------------------------------------------

    def events(self) -> list[dict]:
        """The buffered events, oldest first."""
        with self._lock:
            return list(self._events)

    def dump(self) -> dict:
        """JSON-safe dump: events plus ring bookkeeping."""
        with self._lock:
            return {
                "node": self.node,
                "capacity": self.capacity,
                "recorded": self._seq,
                "dropped": self.dropped,
                "last_dump_reason": self.last_dump_reason,
                "events": list(self._events),
            }

    def save(self, path: str) -> str:
        """Write the dump as pretty JSON; returns the path written."""
        payload = json.dumps(self.dump(), indent=2, sort_keys=True)
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(payload + "\n")
        return path

    def auto_dump(self, reason: str) -> str | None:
        """Fault hook: stamp ``reason``, write ``dump_path`` if configured.

        Called by the engine when a fault-ladder exception fires
        (PartialReplicationError, DOWN transition, ReconcileStalledError).
        Recording the trigger as an event first means the dump itself
        documents why it exists.  Returns the path written, or ``None``
        when no ``dump_path`` was configured (the dump stays readable via
        :meth:`dump` / the telemetry snapshot either way).
        """
        self.record("flightrec.dump", reason=reason)
        self.last_dump_reason = reason
        if self.dump_path is None:
            return None
        return self.save(self.dump_path)

    def clear(self) -> None:
        """Drop buffered events (sequence numbering continues)."""
        with self._lock:
            self._events.clear()
            self.dropped = 0
            self.last_dump_reason = None

    # -- harness sweep -------------------------------------------------------

    @classmethod
    def live_recorders(cls) -> list["FlightRecorder"]:
        """Every recorder still alive in this process (GC-tracked)."""
        return list(cls._instances)

    @classmethod
    def dump_all(cls, directory: str, stem: str) -> list[str]:
        """Write every live non-empty recorder to ``directory``.

        Used by the pytest failure hook: ``stem`` (e.g. a sanitized test
        node id) names the files, one per recorder, so a CI artifact
        upload captures the black boxes of a failing test run.
        """
        paths = []
        for index, recorder in enumerate(cls.live_recorders()):
            if not recorder.events():
                continue
            label = recorder.node or f"rec{index}"
            safe = "".join(c if c.isalnum() or c in "-._" else "_" for c in label)
            path = os.path.join(directory, f"{stem}.{safe}.{index}.json")
            paths.append(recorder.save(path))
        return paths


class NullFlightRecorder:
    """Disabled twin: recording is a no-op, dumps are empty."""

    capacity = 0
    node = ""
    dump_path = None
    dropped = 0
    last_dump_reason = None

    def record(self, kind: str, **data) -> None:  # noqa: ARG002
        """Discard the event (disabled telemetry)."""
        pass

    def events(self) -> list:
        """Always empty (disabled telemetry)."""
        return []

    def dump(self) -> dict:
        """An empty, well-formed dump shell."""
        return {
            "node": "",
            "capacity": 0,
            "recorded": 0,
            "dropped": 0,
            "last_dump_reason": None,
            "events": [],
        }

    def auto_dump(self, reason: str) -> None:  # noqa: ARG002
        """No-op (disabled telemetry)."""
        return None

    def clear(self) -> None:
        """No-op (disabled telemetry)."""
        pass


#: shared disabled singleton used by :data:`~repro.obs.telemetry.NULL_TELEMETRY`
NULL_FLIGHTREC = NullFlightRecorder()


def render_events(dump: dict, max_events: int | None = None) -> str:
    """Human-readable flight-recorder dump for ``prins flightrec show``.

    ``dump`` is the JSON-safe mapping from :meth:`FlightRecorder.dump`.
    Events print oldest-first with timestamps relative to the first
    event, so the operator reads the run-up to the fault as a timeline.
    """
    events = dump.get("events", [])
    if max_events is not None and len(events) > max_events:
        events = events[-max_events:]
    header = (
        f"flight recorder: {len(events)} event(s) shown, "
        f"{dump.get('recorded', 0)} recorded, {dump.get('dropped', 0)} dropped"
    )
    if dump.get("node"):
        header += f" [node={dump['node']}]"
    if dump.get("last_dump_reason"):
        header += f" (last dump: {dump['last_dump_reason']})"
    lines = [header]
    base = events[0]["t_ns"] if events else 0
    for event in events:
        offset_ms = (event["t_ns"] - base) / 1e6
        data = event.get("data") or {}
        detail = " ".join(f"{k}={v}" for k, v in sorted(data.items()))
        lines.append(
            f"  +{offset_ms:10.3f}ms  #{event['seq']:<6d} {event['kind']:<24s} {detail}".rstrip()
        )
    return "\n".join(lines)
