"""Stitch exported spans into causal trees and attribute write latency.

The tracer exports flat span records; this module rebuilds them into one
tree per ``trace_id`` — merging records exported from *several*
telemetry instances (initiator, target, replicas on other nodes) into a
single causal view — and then answers the operator's question: *which
stage made this write slow?*

Attribution is **exclusive-time**: each span is charged its own duration
minus the duration of its children, and that exclusive time is mapped to
a stage bucket by span name (queue wait, delta, encode, transport,
replica apply, …).  Over a sequential tree the stage totals sum exactly
to the root write's latency; pipelined trees (threads mode) can overlap,
so the report also prints coverage.  *Slowest-replica drag* — the gap
between the fastest and slowest per-link send — is computed separately
from the fan-out send spans, since it is a property of the spread, not
of any single span.

Per-stage latency distributions stream into the existing log2
:class:`~repro.obs.registry.Histogram`, so p50/p95/p99 per stage stay
O(1)-memory no matter how many writes are analyzed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.registry import Histogram

__all__ = [
    "CriticalPathAnalyzer",
    "STAGE_OF",
    "WriteAttribution",
    "stitch_spans",
]

#: span name → attribution stage.  Unknown names fall into "other".
STAGE_OF = {
    "write.local": "local",
    "write.delta": "delta",
    "write.encode": "encode",
    "write.batch": "batch",
    "batch.flush": "batch",
    "sched.submit": "queue",
    "sched.send": "transport",
    "write.send": "transport",
    "transport.send": "transport",
    "link.retry": "transport",
    "replica.apply": "replica",
    "replica.apply_batch": "replica",
    "replica.decode": "replica",
    "worker.encode": "worker",
    "worker.decode": "worker",
    "transport.accept": "transport",
}

#: root span names that begin one logical write
ROOT_NAMES = frozenset({"write", "write.many", "batch.flush"})

#: per-link fan-out spans used to measure slowest-replica drag
_FANOUT_NAMES = frozenset({"write.send", "sched.send"})


def stitch_spans(spans) -> dict[int, list[dict]]:
    """Group flat span records into causal trees keyed by ``trace_id``.

    ``spans`` is any iterable of span dicts (possibly concatenated from
    several nodes' exports).  Each tree node is a *new* dict — the input
    records are not mutated — shaped ``{**span, "children": [...]}``
    with children ordered by ``start_ns``.  The value per trace is the
    list of roots: spans with no parent, or whose parent record was not
    exported (ring-buffer eviction or a foreign node not collected); a
    well-collected trace has exactly one root.
    """
    nodes: dict[int, dict] = {}
    by_trace: dict[int, list[dict]] = {}
    for span in spans:
        node = dict(span)
        node["children"] = []
        nodes[node["span_id"]] = node
    for node in nodes.values():
        parent_id = node.get("parent_id")
        parent = nodes.get(parent_id) if parent_id is not None else None
        if parent is not None and parent is not node:
            parent["children"].append(node)
        else:
            by_trace.setdefault(node["trace_id"], []).append(node)
    for tree in nodes.values():
        tree["children"].sort(key=lambda child: child.get("start_ns", 0))
    for roots in by_trace.values():
        roots.sort(key=lambda root: root.get("start_ns", 0))
    return dict(sorted(by_trace.items()))


@dataclass
class WriteAttribution:
    """Per-stage latency breakdown of one stitched write tree."""

    trace_id: int
    name: str
    lba: int | None
    total_ns: int
    stages: dict = field(default_factory=dict)
    drag_ns: int = 0
    span_count: int = 0
    nodes: tuple = ()

    @property
    def dominant(self) -> str:
        """The stage charged the most exclusive time ("none" when empty)."""
        if not self.stages:
            return "none"
        return max(self.stages.items(), key=lambda item: item[1])[0]

    @property
    def coverage(self) -> float:
        """Sum of stage times over root latency (1.0 = fully explained)."""
        if not self.total_ns:
            return 0.0
        return sum(self.stages.values()) / self.total_ns

    def to_dict(self) -> dict:
        """JSON-safe record for exporters and the CLI."""
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "lba": self.lba,
            "total_ns": self.total_ns,
            "stages": dict(self.stages),
            "dominant": self.dominant,
            "coverage": round(self.coverage, 4),
            "drag_ns": self.drag_ns,
            "span_count": self.span_count,
            "nodes": list(self.nodes),
        }


def _attribute_tree(root: dict) -> WriteAttribution:
    """Exclusive-time attribution of one root's subtree."""
    stages: dict[str, int] = {}
    fanout: dict[object, int] = {}
    seen_nodes: set[str] = set()
    count = 0
    stack = [root]
    while stack:
        node = stack.pop()
        count += 1
        if node.get("node"):
            seen_nodes.add(node["node"])
        children = node["children"]
        stack.extend(children)
        exclusive = node.get("duration_ns", 0) - sum(
            child.get("duration_ns", 0) for child in children
        )
        if exclusive > 0:
            stage = STAGE_OF.get(node["name"], "other")
            stages[stage] = stages.get(stage, 0) + exclusive
        if node["name"] in _FANOUT_NAMES:
            link = (node.get("attrs") or {}).get("link")
            duration = node.get("duration_ns", 0)
            if link not in fanout or duration > fanout[link]:
                fanout[link] = duration
    drag = max(fanout.values()) - min(fanout.values()) if len(fanout) > 1 else 0
    attrs = root.get("attrs") or {}
    return WriteAttribution(
        trace_id=root["trace_id"],
        name=root["name"],
        lba=attrs.get("lba"),
        total_ns=root.get("duration_ns", 0),
        stages=stages,
        drag_ns=drag,
        span_count=count,
        nodes=tuple(sorted(seen_nodes)),
    )


class CriticalPathAnalyzer:
    """Streaming critical-path attribution over exported spans.

    Feed it span records (:meth:`add_spans`) or whole telemetry snapshots
    (:meth:`add_snapshot`) from any number of nodes, then read
    :meth:`top_writes` / :meth:`stage_summary` / :meth:`render`.  Trees
    whose root is not a write (no :data:`ROOT_NAMES` match) are skipped,
    but their subtrees are searched — the outermost write span found on
    any path claims its whole subtree, so nested roots (``write`` inside
    ``write.many``) are never double-counted.
    """

    def __init__(self) -> None:
        self._spans: list[dict] = []
        self._writes: list[WriteAttribution] | None = None
        self._stage_hist: dict[str, Histogram] = {}

    # -- feeding -------------------------------------------------------------

    def add_spans(self, spans) -> None:
        """Accumulate raw span records (from any node)."""
        self._spans.extend(spans)
        self._writes = None

    def add_snapshot(self, snapshot: dict) -> None:
        """Accumulate the ``traces`` section of a telemetry snapshot."""
        self.add_spans(snapshot.get("traces", []))

    # -- analysis ------------------------------------------------------------

    def _stage_histogram(self, stage: str) -> Histogram:
        hist = self._stage_hist.get(stage)
        if hist is None:
            hist = self._stage_hist[stage] = Histogram(
                f"critical.{stage}.ns", max_exponent=48
            )
        return hist

    def attributions(self) -> list[WriteAttribution]:
        """One attribution per write tree (computed once, then cached)."""
        if self._writes is not None:
            return self._writes
        writes: list[WriteAttribution] = []
        for roots in stitch_spans(self._spans).values():
            stack = list(roots)
            while stack:
                node = stack.pop()
                if node["name"] in ROOT_NAMES:
                    attribution = _attribute_tree(node)
                    writes.append(attribution)
                    for stage, ns in attribution.stages.items():
                        self._stage_histogram(stage).record(ns)
                    if attribution.drag_ns:
                        self._stage_histogram("drag").record(attribution.drag_ns)
                else:
                    stack.extend(node["children"])
        writes.sort(key=lambda w: w.total_ns, reverse=True)
        self._writes = writes
        return writes

    def top_writes(self, n: int = 10) -> list[WriteAttribution]:
        """The ``n`` slowest writes, most expensive first."""
        return self.attributions()[:n]

    def stage_summary(self) -> dict:
        """Streaming per-stage stats: count / total / p50 / p95 / p99 ns."""
        self.attributions()
        out = {}
        for stage, hist in sorted(self._stage_hist.items()):
            out[stage] = {
                "count": hist.count,
                "total_ns": hist.sum,
                "p50_ns": hist.quantile(0.50),
                "p95_ns": hist.quantile(0.95),
                "p99_ns": hist.quantile(0.99),
            }
        return out

    def summary(self) -> dict:
        """JSON-safe overall view: write count, stages, slowest writes."""
        writes = self.attributions()
        return {
            "writes": len(writes),
            "stages": self.stage_summary(),
            "top": [w.to_dict() for w in self.top_writes(10)],
        }

    # -- rendering -----------------------------------------------------------

    def render(self, top: int = 10) -> str:
        """Operator-facing report for ``prins trace critical``."""
        writes = self.attributions()
        if not writes:
            return "no write traces found (is tracing enabled?)"
        lines = [f"critical path over {len(writes)} write(s)"]
        lines.append("")
        lines.append("per-stage latency (exclusive time, streamed):")
        for stage, stats in self.stage_summary().items():
            lines.append(
                f"  {stage:<10s} n={stats['count']:<6d} "
                f"p50={_fmt_ns(stats['p50_ns']):>9s} "
                f"p95={_fmt_ns(stats['p95_ns']):>9s} "
                f"p99={_fmt_ns(stats['p99_ns']):>9s} "
                f"total={_fmt_ns(stats['total_ns']):>9s}"
            )
        lines.append("")
        lines.append(f"top {min(top, len(writes))} writes by latency:")
        for w in self.top_writes(top):
            stages = " ".join(
                f"{stage}={_fmt_ns(ns)}"
                for stage, ns in sorted(
                    w.stages.items(), key=lambda item: item[1], reverse=True
                )
            )
            lba = "-" if w.lba is None else w.lba
            drag = f" drag={_fmt_ns(w.drag_ns)}" if w.drag_ns else ""
            lines.append(
                f"  trace {w.trace_id:<8d} {w.name:<11s} lba={lba!s:<6s} "
                f"total={_fmt_ns(w.total_ns):>9s} dominant={w.dominant}"
                f" cov={w.coverage:.0%}{drag}"
            )
            lines.append(f"      {stages}")
        return "\n".join(lines)


def _fmt_ns(ns) -> str:
    """Scale nanoseconds into a human unit."""
    ns = float(ns)
    if ns >= 1e9:
        return f"{ns / 1e9:.2f}s"
    if ns >= 1e6:
        return f"{ns / 1e6:.2f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.1f}us"
    return f"{int(ns)}ns"
