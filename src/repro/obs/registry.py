"""Metric primitives and the registry that names them.

Three metric kinds, mirroring the minimum a storage engine needs:

* :class:`Counter` — a monotonically increasing integer (``inc``);
* :class:`Gauge` — a settable point-in-time value, optionally backed by a
  callback evaluated lazily at snapshot time (``gauge_fn``), which is how
  the engine's existing accountants surface without double bookkeeping;
* :class:`Histogram` — fixed log2 buckets.  ``record`` is O(1) (one
  ``bit_length``, one list increment) and memory is bounded by the bucket
  count regardless of how many samples arrive, which is what lets the
  accountant drop its unbounded per-write payload list.

Every metric lives in a :class:`MetricsRegistry` under a unique dotted
name; ``snapshot()`` returns a JSON-safe dict (plain str/int/float/list/
dict only) so the exporters never need to special-case types.

The ``Null*`` twins at the bottom are shared, state-free singletons used
by disabled telemetry: recording into them is a no-op method call, so
instrumented hot paths cost ~nothing when observability is off.
"""

from __future__ import annotations

import math
from typing import Callable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NullMetricsRegistry",
]


class Counter:
    """Monotonic integer counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease: {amount}")
        self.value += amount

    def reset(self) -> None:
        """Zero the counter."""
        self.value = 0


class Gauge:
    """Point-in-time value; set directly or backed by a callback."""

    __slots__ = ("name", "_value", "_fn")

    def __init__(
        self, name: str, fn: Callable[[], float] | None = None
    ) -> None:
        self.name = name
        self._value: float = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        """Set the gauge (only for gauges without a callback)."""
        if self._fn is not None:
            raise ValueError(f"gauge {self.name!r} is callback-backed")
        self._value = value

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the gauge by ``amount`` (may be negative)."""
        if self._fn is not None:
            raise ValueError(f"gauge {self.name!r} is callback-backed")
        self._value += amount

    @property
    def value(self) -> float:
        """Current value (evaluates the callback if one is bound)."""
        if self._fn is not None:
            return float(self._fn())
        return self._value

    def reset(self) -> None:
        """Zero a settable gauge (callback gauges reset with their source)."""
        if self._fn is None:
            self._value = 0.0


class Histogram:
    """Fixed log2-bucket histogram: O(1) record, bounded memory.

    Bucket ``0`` counts the value ``0``; bucket ``i`` (1-based) counts
    values whose ``bit_length`` is ``i``, i.e. ``2**(i-1) <= v <= 2**i - 1``
    (upper bound ``2**i - 1``).  Values beyond ``2**max_exponent - 1`` land
    in a final overflow bucket.  Log2 buckets suit both byte sizes and
    nanosecond latencies: relative resolution is a constant 2x across ten
    orders of magnitude with ~40 ints of state.
    """

    __slots__ = ("name", "_counts", "_max_exponent", "count", "sum", "min", "max")

    def __init__(self, name: str, max_exponent: int = 40) -> None:
        if max_exponent < 1:
            raise ValueError(f"max_exponent must be >= 1, got {max_exponent}")
        self.name = name
        self._max_exponent = max_exponent
        # index 0: value 0; 1..max_exponent: bit_length buckets; -1: overflow
        self._counts = [0] * (max_exponent + 2)
        self.count = 0
        self.sum = 0
        self.min: int | None = None
        self.max: int | None = None

    def record(self, value: int | float) -> None:
        """Record one sample (floats are floored; must be >= 0)."""
        v = int(value)
        if v < 0:
            raise ValueError(f"histogram {self.name!r} takes values >= 0, got {v}")
        index = v.bit_length()
        if index > self._max_exponent:
            index = self._max_exponent + 1
        self._counts[index] += 1
        self.count += 1
        self.sum += v
        if self.min is None or v < self.min:
            self.min = v
        if self.max is None or v > self.max:
            self.max = v

    def record_batch(self, values: list[int]) -> None:
        """Record a batch of *trusted* non-negative ints in one pass.

        The bulk path for the tracer's span-ring folds: count/sum/min/max
        run at C speed over the whole list and the per-value work shrinks
        to one ``bit_length`` and one bucket increment — no casts or
        range checks, so callers must guarantee non-negative ints.
        """
        if not values:
            return
        counts = self._counts
        overflow = self._max_exponent + 1
        for v in values:
            index = v.bit_length()
            counts[index if index < overflow else overflow] += 1
        self.count += len(values)
        self.sum += sum(values)
        low = min(values)
        high = max(values)
        if self.min is None or low < self.min:
            self.min = low
        if self.max is None or high > self.max:
            self.max = high

    @property
    def mean(self) -> float:
        """Mean of all recorded samples (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def bucket_upper_bound(self, index: int) -> int | None:
        """Inclusive upper bound of bucket ``index`` (None = overflow)."""
        if index == 0:
            return 0
        if index > self._max_exponent:
            return None
        return (1 << index) - 1

    def quantile(self, q: float) -> int:
        """Approximate ``q``-quantile: the upper bound of the covering bucket.

        Exact up to bucket resolution (a factor of 2); the overflow bucket
        reports the largest recorded value.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return 0
        target = math.ceil(q * self.count)
        cumulative = 0
        for index, bucket_count in enumerate(self._counts):
            cumulative += bucket_count
            if cumulative >= target and bucket_count:
                bound = self.bucket_upper_bound(index)
                if bound is None:
                    return int(self.max or 0)
                return min(bound, int(self.max or bound))
        return int(self.max or 0)

    def snapshot(self) -> dict:
        """JSON-safe view: count/sum/min/max plus non-empty buckets."""
        buckets = []
        for index, bucket_count in enumerate(self._counts):
            if not bucket_count:
                continue
            bound = self.bucket_upper_bound(index)
            buckets.append(
                {"le": "inf" if bound is None else bound, "count": bucket_count}
            )
        return {
            "count": self.count,
            "sum": self.sum,
            "min": 0 if self.min is None else self.min,
            "max": 0 if self.max is None else self.max,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p99": self.quantile(0.99),
            "buckets": buckets,
        }

    def reset(self) -> None:
        """Forget every sample."""
        for index in range(len(self._counts)):
            self._counts[index] = 0
        self.count = 0
        self.sum = 0
        self.min = None
        self.max = None


class MetricsRegistry:
    """Named counters, gauges, and histograms behind get-or-create APIs.

    Names are dotted paths (``engine.prins.payload_bytes``); a name may be
    registered under exactly one kind.  ``adopt_histogram`` registers an
    externally owned :class:`Histogram` (e.g. the traffic accountant's
    per-write payload histogram) so one recording feeds both its owner and
    the registry.  Not thread-safe beyond CPython's int-increment atomicity
    — matching the single-threaded measurement harness.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- registration -------------------------------------------------------

    def _check_name(self, name: str, kind: dict) -> None:
        if not name or not isinstance(name, str):
            raise ValueError(f"metric name must be a non-empty str, got {name!r}")
        for other in (self._counters, self._gauges, self._histograms):
            if other is not kind and name in other:
                raise ValueError(
                    f"metric name {name!r} is already registered as another kind"
                )

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        existing = self._counters.get(name)
        if existing is None:
            self._check_name(name, self._counters)
            existing = self._counters[name] = Counter(name)
        return existing

    def gauge(self, name: str) -> Gauge:
        """Get or create the settable gauge ``name``."""
        existing = self._gauges.get(name)
        if existing is None:
            self._check_name(name, self._gauges)
            existing = self._gauges[name] = Gauge(name)
        return existing

    def gauge_fn(self, name: str, fn: Callable[[], float]) -> Gauge:
        """Register a callback-backed gauge (evaluated at snapshot time)."""
        self._check_name(name, self._gauges)
        if name in self._gauges:
            raise ValueError(f"gauge {name!r} already registered")
        gauge = self._gauges[name] = Gauge(name, fn=fn)
        return gauge

    def histogram(self, name: str, max_exponent: int = 40) -> Histogram:
        """Get or create the histogram ``name``."""
        existing = self._histograms.get(name)
        if existing is None:
            self._check_name(name, self._histograms)
            existing = self._histograms[name] = Histogram(name, max_exponent)
        return existing

    def adopt_histogram(self, name: str, histogram: Histogram) -> Histogram:
        """Register an externally owned histogram under ``name``."""
        self._check_name(name, self._histograms)
        if name in self._histograms and self._histograms[name] is not histogram:
            raise ValueError(f"histogram {name!r} already registered")
        self._histograms[name] = histogram
        return histogram

    def unique_name(self, base: str) -> str:
        """A name not yet used by any metric: ``base``, ``base#2``, ..."""
        taken = self._counters.keys() | self._gauges.keys() | self._histograms.keys()
        if base not in taken:
            return base
        n = 2
        while f"{base}#{n}" in taken:
            n += 1
        return f"{base}#{n}"

    # -- reading ------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-safe view of every metric, callbacks evaluated now."""
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: gauge.value for name, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                name: histogram.snapshot()
                for name, histogram in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        """Zero every metric (callback gauges reset with their sources)."""
        for counter in self._counters.values():
            counter.reset()
        for gauge in self._gauges.values():
            gauge.reset()
        for histogram in self._histograms.values():
            histogram.reset()


# ---------------------------------------------------------------------------
# Null twins: the disabled-telemetry fast path
# ---------------------------------------------------------------------------


class _NullCounter:
    """Shared no-op counter."""

    __slots__ = ()
    name = "null"
    value = 0

    def inc(self, amount: int = 1) -> None:  # noqa: ARG002 - interface parity
        """No-op (disabled telemetry)."""
        pass

    def reset(self) -> None:
        """No-op (disabled telemetry)."""
        pass


class _NullGauge:
    """Shared no-op gauge."""

    __slots__ = ()
    name = "null"
    value = 0.0

    def set(self, value: float) -> None:  # noqa: ARG002
        """No-op (disabled telemetry)."""
        pass

    def inc(self, amount: float = 1.0) -> None:  # noqa: ARG002
        """No-op (disabled telemetry)."""
        pass

    def reset(self) -> None:
        """No-op (disabled telemetry)."""
        pass


class _NullHistogram:
    """Shared no-op histogram."""

    __slots__ = ()
    name = "null"
    count = 0
    sum = 0
    min = None
    max = None
    mean = 0.0

    def record(self, value: int | float) -> None:  # noqa: ARG002
        """No-op (disabled telemetry)."""
        pass

    def quantile(self, q: float) -> int:  # noqa: ARG002
        """Always 0.0 (disabled telemetry)."""
        return 0

    def snapshot(self) -> dict:
        """Always empty (disabled telemetry)."""
        return {"count": 0, "sum": 0, "buckets": []}

    def reset(self) -> None:
        """No-op (disabled telemetry)."""
        pass


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class NullMetricsRegistry:
    """Registry twin that hands out shared no-op metrics."""

    def counter(self, name: str) -> _NullCounter:  # noqa: ARG002
        """Return the shared no-op counter."""
        return NULL_COUNTER

    def gauge(self, name: str) -> _NullGauge:  # noqa: ARG002
        """Return the shared no-op gauge."""
        return NULL_GAUGE

    def gauge_fn(self, name: str, fn: Callable[[], float]) -> _NullGauge:  # noqa: ARG002
        """Ignore the callable; return the shared no-op gauge."""
        return NULL_GAUGE

    def histogram(self, name: str, max_exponent: int = 40) -> _NullHistogram:  # noqa: ARG002
        """Return the shared no-op histogram."""
        return NULL_HISTOGRAM

    def adopt_histogram(self, name: str, histogram) -> _NullHistogram:  # noqa: ARG002
        """Return the histogram unregistered (disabled telemetry)."""
        return NULL_HISTOGRAM

    def unique_name(self, base: str) -> str:
        """Return the base name unchanged (no registry to collide in)."""
        return base

    def snapshot(self) -> dict:
        """Always empty (disabled telemetry)."""
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def reset(self) -> None:
        """No-op (disabled telemetry)."""
        pass
