"""The single telemetry front door: metrics + tracing + sources.

:class:`Telemetry` bundles a :class:`~repro.obs.registry.MetricsRegistry`
and a :class:`~repro.obs.tracing.Tracer` behind one object, plus named
*sources* — callbacks returning JSON-safe dicts that are evaluated lazily
at :meth:`Telemetry.snapshot` time.  Sources are how the repo's existing
accounting state (:class:`~repro.engine.accounting.TrafficAccountant`,
:class:`~repro.block.stats.IoCounters`, per-link resilience health)
surfaces through the telemetry API without duplicating any bookkeeping:
the engine registers ``engine.<strategy>`` → ``accountant.snapshot`` once
and every later snapshot reads live values.

:data:`NULL_TELEMETRY` is the disabled twin — the default everywhere —
whose spans, counters, and histograms are shared no-op singletons, so
instrumented code costs ~nothing until someone opts in.  A process-wide
default can be installed with :func:`set_telemetry` (or scoped with
:func:`use_telemetry`); components constructed with ``telemetry=None``
pick it up via :func:`get_telemetry`.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterator

from repro.obs.flightrec import NULL_FLIGHTREC, FlightRecorder
from repro.obs.registry import MetricsRegistry, NullMetricsRegistry
from repro.obs.tracing import NULL_SPAN, NullTracer, Tracer

__all__ = [
    "NULL_TELEMETRY",
    "NullTelemetry",
    "Telemetry",
    "get_telemetry",
    "set_telemetry",
    "use_telemetry",
]

#: JSON-safe dict producer evaluated at snapshot time
SourceFn = Callable[[], dict]


class Telemetry:
    """Enabled telemetry: live registry, tracer, and snapshot sources."""

    enabled = True

    def __init__(
        self,
        trace_capacity: int = 2048,
        node: str = "",
        flightrec_capacity: int = 1024,
        flightrec_dump: str | None = None,
        detail: bool = False,
    ) -> None:
        self.registry = MetricsRegistry()
        self.tracer = Tracer(capacity=trace_capacity, node=node, detail=detail)
        self.flightrec = FlightRecorder(
            capacity=flightrec_capacity, node=node, dump_path=flightrec_dump
        )
        self.node = node
        self._sources: dict[str, SourceFn] = {}
        # hot-path passthroughs: bound tracer methods as instance
        # attributes shadow the class methods below, saving a call frame
        # on every span open (the class methods remain for the API docs)
        self.span = self.tracer.span
        self.span_in = self.tracer.span_in
        self.fine_span = self.tracer.fine_span
        self.current_context = self.tracer.current_context

    # -- convenience passthroughs -------------------------------------------

    def span(self, name: str, **attrs):
        """Open a span (see :meth:`~repro.obs.tracing.Tracer.span`)."""
        return self.tracer.span(name, **attrs)

    def span_in(self, name: str, ctx, **attrs):
        """Open a span joining a carried :class:`~repro.obs.dist.TraceContext`."""
        return self.tracer.span_in(name, ctx, **attrs)

    def fine_span(self, name: str, ctx=None, **attrs):
        """Open a sub-stage span (real only when built with ``detail=True``)."""
        return self.tracer.fine_span(name, ctx, **attrs)

    def current_context(self):
        """Coordinates of this thread's innermost open span (or ``None``)."""
        return self.tracer.current_context()

    def event(self, kind: str, **data) -> None:
        """Record a flight-recorder event (see :mod:`repro.obs.flightrec`)."""
        self.flightrec.record(kind, **data)

    def fault(self, reason: str, **data) -> str | None:
        """Record a fault event and trigger the flight-recorder auto-dump.

        Returns the dump path written, or ``None`` when no dump path is
        configured (the recording stays readable via the snapshot).
        """
        self.flightrec.record(f"fault.{reason}", **data)
        return self.flightrec.auto_dump(reason)

    def counter(self, name: str):
        """Get or create a counter in the registry."""
        return self.registry.counter(name)

    def gauge(self, name: str):
        """Get or create a settable gauge in the registry."""
        return self.registry.gauge(name)

    def histogram(self, name: str, max_exponent: int = 40):
        """Get or create a histogram in the registry."""
        return self.registry.histogram(name, max_exponent)

    # -- sources -------------------------------------------------------------

    def register_source(self, name: str, fn: SourceFn) -> str:
        """Attach a snapshot source; returns the (unique-ified) name.

        A second registration under a taken name gets ``name#2`` etc., so
        several engines can coexist in one snapshot without clobbering.
        """
        if not name or not isinstance(name, str):
            raise ValueError(f"source name must be a non-empty str, got {name!r}")
        final = name
        n = 2
        while final in self._sources:
            final = f"{name}#{n}"
            n += 1
        self._sources[final] = fn
        return final

    def unregister_source(self, name: str) -> None:
        """Detach a source (missing names are ignored)."""
        self._sources.pop(name, None)

    @property
    def source_names(self) -> list[str]:
        """Registered source names, sorted."""
        return sorted(self._sources)

    # -- reading -------------------------------------------------------------

    def snapshot(self, max_spans: int = 512) -> dict:
        """One JSON-safe dict covering everything telemetry knows.

        Layout::

            {"enabled": true,
             "metrics": {"counters": ..., "gauges": ..., "histograms": ...},
             "spans":   {name: {count, total_ns, mean_ns, p50_ns, p99_ns, ...}},
             "traces":  [ {name, trace_id, span_id, parent_id, ...}, ... ],
             "tracer":  {capacity, spans_started, spans_finished, dropped_spans},
             "flightrec": {events: [...], recorded, dropped, ...},
             "sources": {name: <source dict>, ...}}
        """
        return {
            "enabled": True,
            "metrics": self.registry.snapshot(),
            "spans": self.tracer.summary(),
            "traces": self.tracer.export_spans(max_spans),
            "tracer": self.tracer.meta(),
            "flightrec": self.flightrec.dump(),
            "sources": {
                name: fn() for name, fn in sorted(self._sources.items())
            },
        }

    def reset(self) -> None:
        """Zero metrics and drop buffered spans/events (sources stay)."""
        self.registry.reset()
        self.tracer.reset()
        self.flightrec.clear()


class NullTelemetry:
    """Disabled telemetry: every operation is a shared no-op."""

    enabled = False
    node = ""

    def __init__(self) -> None:
        self.registry = NullMetricsRegistry()
        self.tracer = NullTracer()
        self.flightrec = NULL_FLIGHTREC

    def span(self, name: str, **attrs):  # noqa: ARG002
        """Return the shared no-op span (no timing recorded)."""
        return NULL_SPAN

    def span_in(self, name: str, ctx, **attrs):  # noqa: ARG002
        """Return the shared no-op span (context discarded)."""
        return NULL_SPAN

    def fine_span(self, name: str, ctx=None, **attrs):  # noqa: ARG002
        """Return the shared no-op span (disabled telemetry)."""
        return NULL_SPAN

    def current_context(self) -> None:
        """Always ``None`` (disabled telemetry propagates nothing)."""
        return None

    def event(self, kind: str, **data) -> None:  # noqa: ARG002
        """Discard the event (disabled telemetry)."""
        pass

    def fault(self, reason: str, **data) -> None:  # noqa: ARG002
        """Discard the fault; never dumps, so always returns ``None``."""
        return None

    def counter(self, name: str):
        """Return the shared no-op counter."""
        return self.registry.counter(name)

    def gauge(self, name: str):
        """Return the shared no-op gauge."""
        return self.registry.gauge(name)

    def histogram(self, name: str, max_exponent: int = 40):
        """Return the shared no-op histogram."""
        return self.registry.histogram(name, max_exponent)

    def register_source(self, name: str, fn: SourceFn) -> str:  # noqa: ARG002
        """Ignore the source; return its name unchanged."""
        return name

    def unregister_source(self, name: str) -> None:
        """No-op (disabled telemetry)."""
        pass

    @property
    def source_names(self) -> list[str]:
        """Always empty (disabled telemetry)."""
        return []

    def snapshot(self, max_spans: int = 512) -> dict:  # noqa: ARG002
        """Return an empty, well-formed snapshot shell."""
        return {
            "enabled": False,
            "metrics": self.registry.snapshot(),
            "spans": {},
            "traces": [],
            "tracer": {},
            "flightrec": self.flightrec.dump(),
            "sources": {},
        }

    def reset(self) -> None:
        """No-op (disabled telemetry)."""
        pass


#: the process-wide disabled singleton (identity-comparable)
NULL_TELEMETRY = NullTelemetry()

_default: Telemetry | NullTelemetry = NULL_TELEMETRY


def get_telemetry() -> Telemetry | NullTelemetry:
    """The process-wide default telemetry (NULL unless installed)."""
    return _default


def set_telemetry(telemetry: Telemetry | NullTelemetry | None) -> None:
    """Install (or, with ``None``, clear) the process-wide default."""
    global _default
    _default = telemetry if telemetry is not None else NULL_TELEMETRY


@contextlib.contextmanager
def use_telemetry(telemetry: Telemetry | NullTelemetry) -> Iterator:
    """Scope the process-wide default to a ``with`` block."""
    previous = _default
    set_telemetry(telemetry)
    try:
        yield telemetry
    finally:
        set_telemetry(previous)
