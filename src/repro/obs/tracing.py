"""Span-based tracing for the write path.

A :class:`Span` times one stage of work on the monotonic clock
(``time.perf_counter_ns``).  Spans are context managers and nest: the
:class:`Tracer` keeps a per-thread stack, so a span opened while another
is active becomes its child and shares its trace id.  The full PRINS
write path therefore shows up as one tree per write::

    write (lba=17)
    ├─ write.local
    ├─ write.delta
    ├─ write.encode
    └─ write.send (link=0)
       └─ replica.apply
          └─ replica.decode

Finished spans go two places:

* a bounded ring buffer (``capacity`` spans, oldest evicted) holding the
  raw records for the ``prins trace`` report and the JSON exporter;
* per-name aggregates (count / total / min / max plus a log2 latency
  histogram) that survive ring-buffer eviction, so summary timings are
  exact over the whole run even when only the last few traces are kept.

:data:`NULL_SPAN` / :class:`NullTracer` are the disabled twins: a single
shared span object whose enter/exit do nothing, so instrumentation left
in the hot path costs one method call and no allocation when tracing is
off.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.obs.registry import Histogram

__all__ = ["Span", "Tracer", "NULL_SPAN", "NullSpan", "NullTracer"]


class Span:
    """One timed stage; use as a context manager via :meth:`Tracer.span`."""

    __slots__ = (
        "name",
        "attrs",
        "trace_id",
        "span_id",
        "parent_id",
        "start_ns",
        "duration_ns",
        "_tracer",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.trace_id = 0
        self.span_id = 0
        self.parent_id: int | None = None
        self.start_ns = 0
        self.duration_ns = 0

    def set(self, key: str, value) -> None:
        """Attach one attribute (JSON-safe values only, by convention)."""
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        self._tracer._enter(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._exit(self)
        return False

    def to_dict(self) -> dict:
        """JSON-safe record of the finished span."""
        record = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
        }
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        return record


class _SpanStats:
    """Aggregate timing for one span name."""

    __slots__ = ("count", "total_ns", "min_ns", "max_ns", "histogram")

    def __init__(self, name: str) -> None:
        self.count = 0
        self.total_ns = 0
        self.min_ns: int | None = None
        self.max_ns = 0
        self.histogram = Histogram(f"span.{name}.ns", max_exponent=48)

    def record(self, duration_ns: int) -> None:
        """Fold one span duration into the running aggregate."""
        self.count += 1
        self.total_ns += duration_ns
        if self.min_ns is None or duration_ns < self.min_ns:
            self.min_ns = duration_ns
        if duration_ns > self.max_ns:
            self.max_ns = duration_ns
        self.histogram.record(duration_ns)

    def snapshot(self) -> dict:
        """JSON-safe aggregate: count plus total/min/max/mean millis."""
        return {
            "count": self.count,
            "total_ns": self.total_ns,
            "mean_ns": self.total_ns / self.count if self.count else 0.0,
            "min_ns": self.min_ns or 0,
            "max_ns": self.max_ns,
            "p50_ns": self.histogram.quantile(0.50),
            "p99_ns": self.histogram.quantile(0.99),
        }


class Tracer:
    """Creates spans, tracks nesting, buffers and aggregates them."""

    def __init__(self, capacity: int = 2048) -> None:
        if capacity < 1:
            raise ValueError(f"trace capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.finished: deque[dict] = deque(maxlen=capacity)
        self._stats: dict[str, _SpanStats] = {}
        self._local = threading.local()
        self._lock = threading.Lock()
        self._next_id = 0
        self.spans_started = 0
        self.spans_finished = 0

    # -- span lifecycle ------------------------------------------------------

    def span(self, name: str, **attrs) -> Span:
        """Open a new span; use ``with tracer.span("stage"): ...``."""
        return Span(self, name, attrs)

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _enter(self, span: Span) -> None:
        with self._lock:
            self._next_id += 1
            span.span_id = self._next_id
        stack = self._stack()
        if stack:
            span.parent_id = stack[-1].span_id
            span.trace_id = stack[-1].trace_id
        else:
            span.parent_id = None
            span.trace_id = span.span_id
        stack.append(span)
        self.spans_started += 1
        span.start_ns = time.perf_counter_ns()

    def _exit(self, span: Span) -> None:
        span.duration_ns = time.perf_counter_ns() - span.start_ns
        stack = self._stack()
        # normal case: LIFO discipline; tolerate misuse by searching back
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:
            stack.remove(span)
        self.spans_finished += 1
        self.finished.append(span.to_dict())
        stats = self._stats.get(span.name)
        if stats is None:
            stats = self._stats[span.name] = _SpanStats(span.name)
        stats.record(span.duration_ns)

    @property
    def current_span(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    # -- reading -------------------------------------------------------------

    def summary(self) -> dict:
        """Per-name aggregate timings (exact over the whole run)."""
        return {
            name: stats.snapshot() for name, stats in sorted(self._stats.items())
        }

    def export_spans(self, max_spans: int | None = None) -> list[dict]:
        """The most recent finished spans (oldest first), JSON-safe."""
        spans = list(self.finished)
        if max_spans is not None and len(spans) > max_spans:
            spans = spans[-max_spans:]
        return spans

    def reset(self) -> None:
        """Drop buffered spans and aggregates (open spans unaffected)."""
        self.finished.clear()
        self._stats.clear()
        self.spans_started = 0
        self.spans_finished = 0


# ---------------------------------------------------------------------------
# Null twins
# ---------------------------------------------------------------------------


class NullSpan:
    """Shared do-nothing span: enter/exit/set are no-ops."""

    __slots__ = ()
    name = "null"
    duration_ns = 0

    def set(self, key: str, value) -> None:  # noqa: ARG002
        """Discard the attribute (disabled tracing)."""
        pass

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:  # noqa: ARG002
        return False


NULL_SPAN = NullSpan()


class NullTracer:
    """Tracer twin whose spans are the shared :data:`NULL_SPAN`."""

    capacity = 0
    spans_started = 0
    spans_finished = 0

    def span(self, name: str, **attrs) -> NullSpan:  # noqa: ARG002
        """Return the shared no-op span context."""
        return NULL_SPAN

    @property
    def current_span(self) -> None:
        """Always the no-op span (disabled tracing)."""
        return None

    def summary(self) -> dict:
        """Always empty (disabled tracing)."""
        return {}

    def export_spans(self, max_spans: int | None = None) -> list:  # noqa: ARG002
        """Always empty (disabled tracing)."""
        return []

    def reset(self) -> None:
        """No-op (disabled tracing)."""
        pass
