"""Span-based tracing for the write path.

A :class:`Span` times one stage of work on the monotonic clock
(``time.perf_counter_ns``).  Spans are context managers and nest: the
:class:`Tracer` keeps a per-thread stack, so a span opened while another
is active becomes its child and shares its trace id.  The full PRINS
write path therefore shows up as one tree per write::

    write (lba=17)
    ├─ write.local
    ├─ write.delta
    ├─ write.encode
    └─ write.send (link=0)
       └─ replica.apply
          └─ replica.decode

A finished span goes one place on the hot path: it is appended to a
bounded ring of :class:`Span` objects.  Everything else is derived
lazily — spans are converted to JSON-safe records only when
:meth:`Tracer.export_spans` is called, and the per-name aggregates
(count / total / min / max plus a log2 latency histogram) are folded
from the ring in batches when spans are evicted past ``capacity`` or
when :meth:`Tracer.summary` reads them.  A fold watermark guarantees
each span is folded exactly once, so summary timings stay exact over
the whole run even though only the last ``capacity`` traces are kept.

Spans can also adopt a :class:`~repro.obs.dist.TraceContext` captured on
another thread or node (:meth:`Tracer.span_in`): when the local stack is
empty the context supplies the trace id and parent, so scheduler worker
threads and remote replicas join the originating write's tree instead of
starting orphan traces of their own.

The ring buffer evicts silently by design (aggregates stay exact), but
eviction is *counted*: :attr:`Tracer.dropped_spans` says how many span
records fell off the ring, and the trace report surfaces it so a
truncated trace never masquerades as a complete one.

Tracing has two detail levels.  The default records the *coarse* stage
spans — ``write``, ``write.encode``, ``write.send``, ``replica.apply``
(the stages critical-path attribution needs) — while sub-stage spans
(``write.local``, ``write.delta``, ``replica.decode``) are opened via
:meth:`Tracer.fine_span` and only materialize when the tracer was built
with ``detail=True``.  Like a DEBUG log level, fine detail is an opt-in
trade: prettier trees for roughly double the per-write tracing cost.

:data:`NULL_SPAN` / :class:`NullTracer` are the disabled twins: a single
shared span object whose enter/exit do nothing, so instrumentation left
in the hot path costs one method call and no allocation when tracing is
off.
"""

from __future__ import annotations

import functools
import itertools
import threading
import zlib
from time import perf_counter_ns

from repro.obs.dist import TraceContext
from repro.obs.registry import Histogram

__all__ = ["Span", "Tracer", "NULL_SPAN", "NullSpan", "NullTracer"]


class Span:
    """One timed stage; use as a context manager via :meth:`Tracer.span`.

    The enter/exit bodies are deliberately inlined here (rather than
    delegating to tracer methods) — a PRINS write opens seven spans, so
    every saved call frame is visible on the hot path.  Ids, trace
    linkage, and timestamps are only assigned inside the ``with`` block;
    a span that was never entered has no ``span_id``/``start_ns``.
    """

    __slots__ = (
        "name",
        "attrs",
        "trace_id",
        "span_id",
        "parent_id",
        "start_ns",
        "duration_ns",
        "_tracer",
        "_ctx",
        "_stack",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        ctx: TraceContext | None = None,
        **attrs,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self._ctx = ctx

    @property
    def context(self) -> TraceContext:
        """This span's coordinates, for handing to another thread or node."""
        return TraceContext(self.trace_id, self.span_id)

    def set(self, key: str, value) -> None:
        """Attach one attribute (JSON-safe values only, by convention)."""
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        tracer = self._tracer
        self.span_id = sid = next(tracer._ids)
        try:
            stack = tracer._local.stack
        except AttributeError:
            stack = tracer._local.stack = []
        self._stack = stack
        if stack:
            top = stack[-1]
            self.parent_id = top.span_id
            self.trace_id = top.trace_id
        else:
            ctx = self._ctx
            if ctx is not None:
                self.parent_id = ctx.span_id
                self.trace_id = ctx.trace_id
            else:
                self.parent_id = None
                self.trace_id = sid
        stack.append(self)
        self.start_ns = perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration_ns = perf_counter_ns() - self.start_ns
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        tracer = self._tracer
        stack = self._stack  # the stack this span was pushed onto at enter
        # normal case: LIFO discipline; tolerate misuse by searching back
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:
            stack.remove(self)
        finished = tracer.finished
        finished.append(self)
        if len(finished) > tracer._high_water:
            tracer._evict()
        return False

    def to_dict(self) -> dict:
        """JSON-safe record of the finished span."""
        record = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
        }
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        return record


class _SpanStats:
    """Aggregate timing for one span name.

    A thin wrapper over the log2 :class:`~repro.obs.registry.Histogram`
    (count / sum / min / max plus quantile buckets).  Nothing records
    into it on the span hot path — the :class:`Tracer` folds finished
    spans out of its ring in batches (at eviction and at read time), so
    :meth:`record` only ever runs amortized and cache-warm.
    """

    __slots__ = ("histogram",)

    def __init__(self, name: str) -> None:
        self.histogram = Histogram(f"span.{name}.ns", max_exponent=48)

    def snapshot(self) -> dict:
        """JSON-safe aggregate: count, total/min/max/mean, quantiles, buckets."""
        histogram = self.histogram
        count = histogram.count
        return {
            "count": count,
            "total_ns": histogram.sum,
            "mean_ns": histogram.sum / count if count else 0.0,
            "min_ns": histogram.min or 0,
            "max_ns": histogram.max or 0,
            "p50_ns": histogram.quantile(0.50),
            "p95_ns": histogram.quantile(0.95),
            "p99_ns": histogram.quantile(0.99),
            "buckets": histogram.snapshot()["buckets"],
        }


def _fine_span_off(name: str, ctx=None, **attrs) -> "NullSpan":  # noqa: ARG001
    """Stand-in for :meth:`Tracer.fine_span` when ``detail`` is off."""
    return NULL_SPAN


class Tracer:
    """Creates spans, tracks nesting, buffers and aggregates them."""

    def __init__(
        self, capacity: int = 2048, node: str = "", detail: bool = False
    ) -> None:
        if capacity < 1:
            raise ValueError(f"trace capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.node = node
        self.detail = detail
        # The ring is a plain list trimmed in batches: a span exit only
        # appends, and once the list grows past ``_high_water`` the
        # oldest spans are folded into the per-name aggregates and cut
        # off in one amortized sweep (see :meth:`_evict`).
        self.finished: list[Span] = []
        self._high_water = capacity + max(64, capacity // 4)
        self._evicted = 0  # spans cut from the front of the ring, ever
        self._folded = 0  # absolute count of spans folded into _stats
        self._folding = False
        self._stats: dict[str, _SpanStats] = {}
        self._local = threading.local()
        # next(counter) is atomic in CPython — no lock on the span hot path.
        # A labelled node offsets its id space by crc32(node) so spans
        # stitched across nodes keep distinct ids (deterministic per label).
        base = (zlib.crc32(node.encode()) << 20) if node else 0
        self._ids = itertools.count(base + 1)
        # hot-path shortcut: span creation IS Span construction.  One
        # partial covers both entry points because Span's signature is
        # ``(tracer, name, ctx=None, **attrs)`` — span(name, **attrs)
        # and span_in(name, ctx, **attrs) both map onto it directly.
        # The instance attributes shadow the documented methods below.
        self.span = self.span_in = functools.partial(Span, self)
        self.fine_span = self.span if detail else _fine_span_off

    # -- span lifecycle ------------------------------------------------------

    def span(self, name: str, **attrs) -> Span:
        """Open a new span; use ``with tracer.span("stage"): ...``."""
        return Span(self, name, **attrs)

    def span_in(self, name: str, ctx: TraceContext | None, **attrs) -> Span:
        """Open a span that joins ``ctx`` when no local span is active.

        The per-thread stack still wins — a span opened while another is
        active on this thread nests under it as usual.  Only a stack-empty
        open (scheduler worker thread, remote replica) adopts the carried
        context, becoming a child of the originating write span.  With
        ``ctx=None`` this is exactly :meth:`span`.
        """
        return Span(self, name, ctx, **attrs)

    def fine_span(self, name: str, ctx: TraceContext | None = None, **attrs):
        """Open a sub-stage span; a real span only with ``detail=True``.

        The coarse stage spans cover critical-path attribution; fine
        spans (``write.local``, ``write.delta``, ``replica.decode``)
        refine them and cost a real span each, so without ``detail``
        this returns :data:`NULL_SPAN` and the call is ~free.
        """
        return NULL_SPAN

    @property
    def current_span(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def current_context(self) -> TraceContext | None:
        """Coordinates of the innermost open span, for cross-gap handoff."""
        stack = getattr(self._local, "stack", None)
        if not stack:
            return None
        top = stack[-1]
        return TraceContext(top.trace_id, top.span_id)

    @property
    def spans_finished(self) -> int:
        """Spans that have exited, ever (ring survivors plus evicted).

        Derived rather than counted — every exit appends to the ring and
        eviction counts what it cuts, so the total is exactly
        ``_evicted + len(finished)`` with no increment on the hot path.
        """
        return self._evicted + len(self.finished)

    @property
    def spans_started(self) -> int:
        """Finished spans plus those still open on the calling thread.

        Spans left open on *other* threads are not visible here (the
        open-span stacks are thread-local); the difference only matters
        while a cross-thread write is mid-flight.
        """
        return self.spans_finished + len(getattr(self._local, "stack", ()))

    @property
    def dropped_spans(self) -> int:
        """Span records no longer exportable (aggregates remain exact).

        The ring trims lazily in batches, so spans past ``capacity`` may
        physically linger until the next sweep — they still count as
        dropped here because :meth:`export_spans` will never return them.
        """
        return self.spans_finished - min(len(self.finished), self.capacity)

    # -- ring maintenance ----------------------------------------------------

    def _evict(self) -> None:
        """Cut the ring back to ``capacity``, folding what falls off.

        Runs every ``_high_water - capacity`` span exits, so the fold is
        amortized and cache-warm instead of a per-exit cost.  The
        ``_folding`` flag keeps concurrent exits from double-cutting —
        the same pragmatic lock-free stance the histograms take.
        """
        if self._folding:
            return
        self._folding = True
        try:
            cut = len(self.finished) - self.capacity
            if cut > 0:
                self._fold_upto(self._evicted + cut)
                del self.finished[:cut]
                self._evicted += cut
        finally:
            self._folding = False

    def _fold_upto(self, upto: int) -> None:
        """Fold spans with absolute index below ``upto`` into the stats.

        ``_folded`` is the watermark: spans below it are already in the
        per-name histograms, so each span is folded exactly once no
        matter whether eviction or a summary read gets to it first.
        Durations are grouped by name first so each histogram takes one
        :meth:`~repro.obs.registry.Histogram.record_batch` bulk update.
        """
        start = self._folded - self._evicted
        stop = upto - self._evicted
        finished = self.finished
        groups: dict[str, list[int]] = {}
        for i in range(start, stop):
            span = finished[i]
            values = groups.get(span.name)
            if values is None:
                values = groups[span.name] = []
            values.append(span.duration_ns)
        stats = self._stats
        for name, values in groups.items():
            per_name = stats.get(name)
            if per_name is None:
                per_name = stats[name] = _SpanStats(name)
            per_name.histogram.record_batch(values)
        self._folded = upto

    # -- reading -------------------------------------------------------------

    def summary(self) -> dict:
        """Per-name aggregate timings (exact over the whole run).

        When the ring buffer has evicted spans the reserved ``"_tracer"``
        entry reports ``dropped_spans`` so truncation is visible next to
        the (still exact) aggregates.
        """
        if not self._folding:
            self._folding = True
            try:
                self._fold_upto(self._evicted + len(self.finished))
            finally:
                self._folding = False
        out = {
            name: stats.snapshot() for name, stats in sorted(self._stats.items())
        }
        if self.dropped_spans:
            out["_tracer"] = {"dropped_spans": self.dropped_spans}
        return out

    def meta(self) -> dict:
        """Ring-buffer bookkeeping: capacity, started/finished/dropped."""
        return {
            "capacity": self.capacity,
            "node": self.node,
            "detail": self.detail,
            "spans_started": self.spans_started,
            "spans_finished": self.spans_finished,
            "dropped_spans": self.dropped_spans,
        }

    def export_spans(self, max_spans: int | None = None) -> list[dict]:
        """The most recent finished spans (oldest first), JSON-safe.

        Conversion from :class:`Span` objects to dict records (including
        the ``node`` label) happens here, at read time, not on the span
        hot path.
        """
        # the ring trims lazily; never expose more than capacity
        spans = self.finished[-self.capacity :]
        if max_spans is not None and len(spans) > max_spans:
            spans = spans[-max_spans:]
        node = self.node
        records = []
        for span in spans:
            record = span.to_dict()
            if node:
                record["node"] = node
            records.append(record)
        return records

    def reset(self) -> None:
        """Drop buffered spans and aggregates (open spans unaffected)."""
        self.finished.clear()
        self._stats.clear()
        self._evicted = 0
        self._folded = 0


# ---------------------------------------------------------------------------
# Null twins
# ---------------------------------------------------------------------------


class NullSpan:
    """Shared do-nothing span: enter/exit/set are no-ops."""

    __slots__ = ()
    name = "null"
    duration_ns = 0
    #: no coordinates to hand off — mirrors :attr:`Span.context` being a
    #: real :class:`~repro.obs.dist.TraceContext` on enabled spans
    context = None

    def set(self, key: str, value) -> None:  # noqa: ARG002
        """Discard the attribute (disabled tracing)."""
        pass

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:  # noqa: ARG002
        return False


NULL_SPAN = NullSpan()


class NullTracer:
    """Tracer twin whose spans are the shared :data:`NULL_SPAN`."""

    capacity = 0
    node = ""
    detail = False
    spans_started = 0
    spans_finished = 0
    dropped_spans = 0

    def span(self, name: str, **attrs) -> NullSpan:  # noqa: ARG002
        """Return the shared no-op span context."""
        return NULL_SPAN

    def span_in(self, name: str, ctx, **attrs) -> NullSpan:  # noqa: ARG002
        """Return the shared no-op span context (context discarded)."""
        return NULL_SPAN

    def fine_span(self, name: str, ctx=None, **attrs) -> NullSpan:  # noqa: ARG002
        """Return the shared no-op span context (disabled tracing)."""
        return NULL_SPAN

    @property
    def current_span(self) -> None:
        """Always the no-op span (disabled tracing)."""
        return None

    def current_context(self) -> None:
        """Always ``None`` (disabled tracing propagates nothing)."""
        return None

    def meta(self) -> dict:
        """Always empty (disabled tracing)."""
        return {}

    def summary(self) -> dict:
        """Always empty (disabled tracing)."""
        return {}

    def export_spans(self, max_spans: int | None = None) -> list:  # noqa: ARG002
        """Always empty (disabled tracing)."""
        return []

    def reset(self) -> None:
        """No-op (disabled tracing)."""
        pass
