"""Causal trace context for cross-thread and cross-wire propagation.

PR 2's tracer ties spans together with a per-thread stack, which is
enough while one write runs start-to-finish on one thread.  The
pipelined scheduler and the iSCSI wire break that assumption: the send
happens on a channel worker thread, and the replica apply happens in a
different *process* behind a TCP socket.  :class:`TraceContext` is the
value that crosses those gaps — a frozen ``(trace_id, span_id)`` pair
snapshotted from the initiating write span and re-adopted on the far
side, so every span of one logical write lands in one causal tree no
matter which thread or node recorded it.

Propagation paths (all default OFF — a ``None`` context everywhere):

* **in-process, cross-thread** — :class:`~repro.engine.work.ShipWork`
  carries ``ctx``; the scheduler's channel worker opens its send span
  with :meth:`~repro.obs.tracing.Tracer.span_in` so the worker-thread
  span joins the write's trace instead of starting its own;
* **cross-wire** — the iSCSI BHS reserves 16 bytes at offset 32; when a
  context rides along they hold ``trace_id`` / ``span_id`` as two
  little-endian u64s (zero otherwise, so wire bytes with tracing off
  are identical to a build without this feature);
* **stitching** — spans exported from several
  :class:`~repro.obs.telemetry.Telemetry` instances (one per node) are
  merged by ``trace_id`` in :mod:`repro.obs.critical`.

A context with ``trace_id == 0`` is "absent" by convention — the wire
encodes no-context as zeros, and :func:`context_from_wire` maps zeros
back to ``None``.
"""

from __future__ import annotations

from typing import NamedTuple

__all__ = ["TraceContext", "context_from_wire", "context_to_wire"]


class TraceContext(NamedTuple):
    """Immutable causal coordinates of one in-flight span.

    ``trace_id`` names the causal tree (the root write span's id);
    ``span_id`` is the specific span that spawned the remote/async work,
    i.e. the parent for whatever span is opened on the far side.

    A ``NamedTuple`` rather than a dataclass on purpose: one context is
    minted per traced write (and another per cross-wire hop), so cheap
    construction matters.  Both ids are positive by construction — span
    ids start at 1 and the wire decoder maps zeros to ``None`` — so no
    validation runs here.
    """

    trace_id: int
    span_id: int


def context_to_wire(ctx: TraceContext | None) -> tuple[int, int]:
    """``(trace_id, span_id)`` u64 pair for the PDU header; zeros if absent."""
    if ctx is None:
        return (0, 0)
    return (ctx.trace_id, ctx.span_id)


def context_from_wire(trace_id: int, span_id: int) -> TraceContext | None:
    """Rebuild a context from PDU header fields; zeros mean "no context"."""
    if trace_id == 0 or span_id == 0:
        return None
    return TraceContext(trace_id=trace_id, span_id=span_id)
