"""Exporters: JSON, Prometheus text format, and terminal reports.

All three read the same :meth:`~repro.obs.telemetry.Telemetry.snapshot`
dict, so a snapshot can be captured once (``prins demo --json out.json``)
and rendered later in any format (``prins metrics out.json``, ``prins
trace report out.json``) — the snapshot is the interchange format, not
the live objects.
"""

from __future__ import annotations

import json
import re

__all__ = [
    "load_snapshot",
    "render_metrics_report",
    "render_trace_report",
    "save_snapshot",
    "to_chrome_trace",
    "to_json",
    "to_prometheus",
]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def to_json(snapshot: dict, indent: int | None = 2) -> str:
    """Serialize a snapshot to JSON (stable key order)."""
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def save_snapshot(snapshot: dict, path) -> None:
    """Write :func:`to_json` output to ``path``."""
    from pathlib import Path

    Path(path).write_text(to_json(snapshot) + "\n", encoding="utf-8")


def load_snapshot(path) -> dict:
    """Read a snapshot previously written by :func:`save_snapshot`."""
    from pathlib import Path

    return json.loads(Path(path).read_text(encoding="utf-8"))


# ---------------------------------------------------------------------------
# Prometheus text format
# ---------------------------------------------------------------------------


def _prom_name(*parts: str) -> str:
    return _NAME_RE.sub("_", "_".join(p for p in parts if p)).strip("_")


def _flatten_numeric(
    prefix: str,
    value,
    out: list[tuple[str, float]],
    hists: list[tuple[str, dict]] | None = None,
) -> None:
    """Collect numeric leaves of a nested source dict as (name, value).

    Histogram-shaped sub-dicts (``count`` + ``buckets`` keys) are routed
    to ``hists`` for proper histogram exposition instead of being
    flattened into a pile of gauges that lose the bucket counts.
    """
    if isinstance(value, bool):
        out.append((prefix, 1.0 if value else 0.0))
    elif isinstance(value, (int, float)):
        out.append((prefix, float(value)))
    elif isinstance(value, dict):
        if hists is not None and set(value) >= {"count", "buckets"}:
            hists.append((prefix, value))
            return
        for key, sub in value.items():
            _flatten_numeric(
                f"{prefix}_{key}" if prefix else str(key), sub, out, hists
            )
    # strings and lists are skipped: Prometheus carries numbers only


def _emit_histogram(name: str, hist: dict, lines: list[str]) -> None:
    lines.append(f"# TYPE {name} histogram")
    cumulative = 0
    for bucket in hist.get("buckets", []):
        cumulative += bucket["count"]
        le = bucket["le"]
        le_text = "+Inf" if le == "inf" else str(le)
        lines.append(f'{name}_bucket{{le="{le_text}"}} {cumulative}')
    if not hist.get("buckets") or hist["buckets"][-1]["le"] != "inf":
        lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
    lines.append(f"{name}_sum {hist.get('sum', 0)}")
    lines.append(f"{name}_count {hist.get('count', 0)}")


def to_prometheus(snapshot: dict, prefix: str = "prins") -> str:
    """Render a snapshot in the Prometheus exposition text format.

    Registry counters/gauges/histograms map to their native types; span
    aggregates become ``<prefix>_span_<name>_ns`` summaries *plus* full
    ``<prefix>_span_<name>_duration_ns`` histograms (cumulative
    ``_bucket``/``+Inf``/``_sum``/``_count`` lines) so downstream
    ``histogram_quantile`` works; numeric leaves of every snapshot source
    become gauges, except histogram-shaped sub-dicts which also get
    proper histogram exposition.
    """
    lines: list[str] = []
    metrics = snapshot.get("metrics", {})
    for name, value in metrics.get("counters", {}).items():
        prom = _prom_name(prefix, name, "total")
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {value}")
    for name, value in metrics.get("gauges", {}).items():
        prom = _prom_name(prefix, name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {value}")
    for name, hist in metrics.get("histograms", {}).items():
        _emit_histogram(_prom_name(prefix, name), hist, lines)
    for name, stats in snapshot.get("spans", {}).items():
        if name == "_tracer":  # reserved bookkeeping entry, not a span name
            continue
        prom = _prom_name(prefix, "span", name, "ns")
        lines.append(f"# TYPE {prom} summary")
        quantiles = (("0.5", "p50_ns"), ("0.95", "p95_ns"), ("0.99", "p99_ns"))
        for quantile, key in quantiles:
            lines.append(f'{prom}{{quantile="{quantile}"}} {stats.get(key, 0)}')
        lines.append(f"{prom}_sum {stats.get('total_ns', 0)}")
        lines.append(f"{prom}_count {stats.get('count', 0)}")
        if stats.get("buckets"):
            _emit_histogram(
                _prom_name(prefix, "span", name, "duration_ns"),
                {
                    "buckets": stats["buckets"],
                    "sum": stats.get("total_ns", 0),
                    "count": stats.get("count", 0),
                },
                lines,
            )
    tracer_meta = snapshot.get("tracer") or {}
    if tracer_meta:
        prom = _prom_name(prefix, "tracer_dropped_spans", "total")
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {tracer_meta.get('dropped_spans', 0)}")
    flat: list[tuple[str, float]] = []
    hists: list[tuple[str, dict]] = []
    for source, data in snapshot.get("sources", {}).items():
        _flatten_numeric(_prom_name(prefix, "source", source), data, flat, hists)
    for name, value in flat:
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {value:g}")
    for name, hist in hists:
        _emit_histogram(name, hist, lines)
    return "\n".join(lines) + "\n" if lines else ""


# ---------------------------------------------------------------------------
# Chrome trace-event format (Perfetto / about://tracing)
# ---------------------------------------------------------------------------


def to_chrome_trace(*snapshots: dict, indent: int | None = None) -> str:
    """Render snapshots as Chrome trace-event JSON (Perfetto-loadable).

    Accepts one snapshot per node; their buffered spans merge into one
    timeline.  Each span becomes a complete ("ph": "X") event: ``pid``
    is the node label (or ``prins``), ``tid`` is the trace id — so in the
    Perfetto UI each causal write tree renders as its own track and the
    per-stage nesting is visible at a glance.  Timestamps are the
    tracer's monotonic nanoseconds scaled to microseconds; only relative
    placement is meaningful.
    """
    events = []
    for snapshot in snapshots:
        for span in snapshot.get("traces", []):
            event = {
                "name": span["name"],
                "cat": "prins",
                "ph": "X",
                "ts": span["start_ns"] / 1e3,
                "dur": span["duration_ns"] / 1e3,
                "pid": span.get("node") or "prins",
                "tid": span["trace_id"],
            }
            args = dict(span.get("attrs") or {})
            args["span_id"] = span["span_id"]
            if span.get("parent_id") is not None:
                args["parent_id"] = span["parent_id"]
            event["args"] = args
            events.append(event)
    events.sort(key=lambda e: e["ts"])
    return json.dumps(
        {"traceEvents": events, "displayTimeUnit": "ns"}, indent=indent
    )


# ---------------------------------------------------------------------------
# Terminal reports
# ---------------------------------------------------------------------------


def _fmt_ns(ns: float) -> str:
    if ns >= 1e9:
        return f"{ns / 1e9:.2f}s"
    if ns >= 1e6:
        return f"{ns / 1e6:.2f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.1f}us"
    return f"{ns:.0f}ns"


def render_metrics_report(snapshot: dict) -> str:
    """Human-readable ``prins metrics`` report of one snapshot."""
    lines: list[str] = []
    if not snapshot.get("enabled", False):
        lines.append("telemetry: disabled (null telemetry; nothing recorded)")
        return "\n".join(lines)
    metrics = snapshot.get("metrics", {})
    counters = metrics.get("counters", {})
    if counters:
        lines.append("counters:")
        for name, value in counters.items():
            lines.append(f"  {name:44s} {value}")
    gauges = metrics.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        for name, value in gauges.items():
            lines.append(f"  {name:44s} {value:g}")
    histograms = metrics.get("histograms", {})
    if histograms:
        lines.append("histograms:")
        for name, hist in histograms.items():
            lines.append(
                f"  {name:44s} n={hist.get('count', 0)} "
                f"mean={hist.get('mean', 0.0):.1f} "
                f"p50={hist.get('p50', 0)} p99={hist.get('p99', 0)} "
                f"max={hist.get('max', 0)}"
            )
    spans = snapshot.get("spans", {})
    if spans:
        lines.append("write-path spans (per stage):")
        lines.append(
            f"  {'stage':32s} {'count':>8s} {'mean':>10s} {'p50':>10s} "
            f"{'p99':>10s} {'total':>10s}"
        )
        for name, stats in spans.items():
            if name == "_tracer":
                continue
            lines.append(
                f"  {name:32s} {stats.get('count', 0):>8d} "
                f"{_fmt_ns(stats.get('mean_ns', 0.0)):>10s} "
                f"{_fmt_ns(stats.get('p50_ns', 0)):>10s} "
                f"{_fmt_ns(stats.get('p99_ns', 0)):>10s} "
                f"{_fmt_ns(stats.get('total_ns', 0)):>10s}"
            )
        dropped = (snapshot.get("tracer") or {}).get("dropped_spans", 0)
        if dropped:
            lines.append(
                f"  (ring buffer dropped {dropped} span record(s); "
                "aggregates above remain exact)"
            )
    sources = snapshot.get("sources", {})
    if sources:
        lines.append("sources:")
        for name, data in sources.items():
            lines.append(f"  {name}:")
            lines.extend(_render_source(data, indent=4))
    if not lines:
        lines.append("telemetry: enabled but empty (no activity recorded)")
    return "\n".join(lines)


def _render_source(data, indent: int) -> list[str]:
    pad = " " * indent
    lines: list[str] = []
    if not isinstance(data, dict):
        return [f"{pad}{data}"]
    for key, value in data.items():
        if isinstance(value, dict):
            if set(value) >= {"count", "buckets"}:  # histogram snapshot
                lines.append(
                    f"{pad}{key}: n={value.get('count', 0)} "
                    f"mean={value.get('mean', 0.0):.1f} "
                    f"p50={value.get('p50', 0)} p99={value.get('p99', 0)}"
                )
            else:
                lines.append(f"{pad}{key}:")
                lines.extend(_render_source(value, indent + 2))
        elif isinstance(value, list):
            lines.append(f"{pad}{key}: {value}")
        else:
            lines.append(f"{pad}{key}: {value}")
    return lines


def render_trace_report(
    snapshot: dict, max_traces: int = 10, trace_id: int | None = None
) -> str:
    """Human-readable ``prins trace report``: the most recent span trees.

    Spans whose parents were evicted from the ring buffer render as roots
    of their own subtree (marked ``…``), so a partially retained trace is
    still readable — and the header says how many span records the ring
    dropped, so truncation is never silent.  With ``trace_id`` set, only
    that causal tree renders (``prins trace tree <id>``).
    """
    spans = snapshot.get("traces", [])
    if not spans:
        return "no spans recorded (telemetry disabled or nothing traced)"
    by_trace: dict[int, list[dict]] = {}
    for span in spans:
        by_trace.setdefault(span["trace_id"], []).append(span)
    trace_ids = list(by_trace)
    if trace_id is not None:
        if trace_id not in by_trace:
            known = ", ".join(str(t) for t in trace_ids[-10:])
            return (
                f"trace {trace_id} not in the buffered spans "
                f"(most recent trace ids: {known})"
            )
        shown_ids = [trace_id]
    else:
        shown_ids = trace_ids[-max_traces:]
    lines = [
        f"{len(spans)} buffered spans in {len(trace_ids)} traces "
        f"(showing last {len(shown_ids)}):"
    ]
    dropped = (snapshot.get("tracer") or {}).get("dropped_spans", 0)
    if dropped:
        lines.append(
            f"warning: ring buffer dropped {dropped} span record(s); "
            "older traces may be truncated"
        )
    for trace_id in shown_ids:
        members = sorted(by_trace[trace_id], key=lambda s: s["start_ns"])
        present = {span["span_id"] for span in members}
        children: dict[int | None, list[dict]] = {}
        roots: list[dict] = []
        for span in members:
            parent = span.get("parent_id")
            if parent is None or parent not in present:
                roots.append(span)
            else:
                children.setdefault(parent, []).append(span)
        lines.append(f"trace {trace_id}:")
        for root in roots:
            truncated = root.get("parent_id") is not None
            _render_span(root, children, lines, depth=1, truncated=truncated)
    return "\n".join(lines)


def _render_span(
    span: dict,
    children: dict,
    lines: list[str],
    depth: int,
    truncated: bool = False,
) -> None:
    attrs = dict(span.get("attrs") or {})
    if span.get("node"):
        attrs["node"] = span["node"]
    attr_text = (
        " (" + ", ".join(f"{k}={v}" for k, v in attrs.items()) + ")"
        if attrs
        else ""
    )
    marker = "… " if truncated else ""
    pad = "  " * depth
    lines.append(
        f"{pad}{marker}{span['name']}{attr_text}  "
        f"{_fmt_ns(span['duration_ns'])}"
    )
    for child in children.get(span["span_id"], []):
        _render_span(child, children, lines, depth + 1)
