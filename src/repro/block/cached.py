"""Write-through LRU read cache wrapper.

The PRINS forward parity computation reads ``A_old`` before every write
(Sec. 2).  On a real array that read is usually served by the controller
cache; :class:`CachedDevice` models the same effect so overhead benchmarks
can separate "extra read I/O" from "extra XOR compute".
"""

from __future__ import annotations

from collections import OrderedDict

from repro.block.device import BlockDevice


class CachedDevice(BlockDevice):
    """Pass-through wrapper with a write-through LRU cache of whole blocks."""

    def __init__(self, inner: BlockDevice, capacity_blocks: int = 1024) -> None:
        if capacity_blocks <= 0:
            raise ValueError(f"capacity_blocks must be positive, got {capacity_blocks}")
        super().__init__(inner.block_size, inner.num_blocks)
        self._inner = inner
        self._capacity = capacity_blocks
        self._cache: OrderedDict[int, bytes] = OrderedDict()
        self.hits = 0
        self.misses = 0

    @property
    def inner(self) -> BlockDevice:
        """The wrapped device."""
        return self._inner

    @property
    def hit_rate(self) -> float:
        """Fraction of reads served from cache (0.0 if no reads yet)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def _read(self, lba: int) -> bytes:
        cached = self._cache.get(lba)
        if cached is not None:
            self._cache.move_to_end(lba)
            self.hits += 1
            return cached
        self.misses += 1
        data = self._inner.read_block(lba)
        self._insert(lba, data)
        return data

    def _write(self, lba: int, data: bytes) -> None:
        self._inner.write_block(lba, data)  # write-through: inner is truth
        self._insert(lba, data)

    def _insert(self, lba: int, data: bytes) -> None:
        self._cache[lba] = data
        self._cache.move_to_end(lba)
        while len(self._cache) > self._capacity:
            self._cache.popitem(last=False)

    def invalidate(self) -> None:
        """Drop all cached blocks (inner device is unaffected)."""
        self._cache.clear()

    def close(self) -> None:
        if not self.closed:
            self._inner.close()
        super().close()
