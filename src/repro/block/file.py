"""File-backed block device."""

from __future__ import annotations

import os
from pathlib import Path

from repro.block.device import BlockDevice


class FileBlockDevice(BlockDevice):
    """A block device stored in a regular file.

    The file is created (sparse, where the OS supports it) at full capacity
    on open.  This device backs long-running experiments whose images should
    survive the process, and the examples that demonstrate failover.
    """

    def __init__(self, path: str | Path, block_size: int, num_blocks: int) -> None:
        super().__init__(block_size, num_blocks)
        self._path = Path(path)
        exists = self._path.exists()
        self._file = open(self._path, "r+b" if exists else "w+b")
        if not exists or os.fstat(self._file.fileno()).st_size != self.capacity_bytes:
            self._file.truncate(self.capacity_bytes)

    @property
    def path(self) -> Path:
        """Path of the backing file."""
        return self._path

    def _read(self, lba: int) -> bytes:
        self._file.seek(lba * self._block_size)
        data = self._file.read(self._block_size)
        if len(data) < self._block_size:  # hole past EOF on some platforms
            data += bytes(self._block_size - len(data))
        return data

    def _write(self, lba: int, data: bytes) -> None:
        self._file.seek(lba * self._block_size)
        self._file.write(data)

    def flush(self) -> None:
        """Flush buffered writes to the OS."""
        self._file.flush()

    def close(self) -> None:
        if not self.closed:
            self._file.flush()
            self._file.close()
        super().close()
