"""Virtual block devices.

This package is the storage substrate underneath everything else: the RAID
arrays, the iSCSI targets, the PRINS engines, the mini-DBMS, and the mini
filesystem all read and write fixed-size blocks through the
:class:`~repro.block.device.BlockDevice` interface.

Concrete devices:

* :class:`~repro.block.memory.MemoryBlockDevice` — one contiguous bytearray.
* :class:`~repro.block.sparse.SparseBlockDevice` — dict-backed, unwritten
  blocks read as zeros; cheap for huge address spaces.
* :class:`~repro.block.file.FileBlockDevice` — backed by a file on disk.

Wrappers (each is itself a :class:`BlockDevice`):

* :class:`~repro.block.stats.CountingDevice` — I/O accounting.
* :class:`~repro.block.verify.ChecksumDevice` — end-to-end CRC verification.
* :class:`~repro.block.cached.CachedDevice` — write-through LRU read cache.

Plus one passive container: :class:`~repro.block.lru.BlockCache`, the
bounded LRU of block contents the PRINS primary consults for ``A_old``
before paying a device read (not itself a device).
"""

from repro.block.cached import CachedDevice
from repro.block.device import BlockDevice
from repro.block.faulty import FaultyDevice, InjectedIoError
from repro.block.file import FileBlockDevice
from repro.block.lru import BlockCache
from repro.block.memory import MemoryBlockDevice
from repro.block.sparse import SparseBlockDevice
from repro.block.stats import CountingDevice, IoCounters
from repro.block.verify import ChecksumDevice

__all__ = [
    "BlockCache",
    "BlockDevice",
    "CachedDevice",
    "ChecksumDevice",
    "CountingDevice",
    "FaultyDevice",
    "FileBlockDevice",
    "InjectedIoError",
    "IoCounters",
    "MemoryBlockDevice",
    "SparseBlockDevice",
]
