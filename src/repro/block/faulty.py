"""Fault-injection device wrapper.

Wraps any device and injects failures on command: hard I/O errors on
chosen LBAs, probabilistic transient errors, silent bit corruption, or a
full device failure.  Used by the failure-injection test suite to verify
that RAID reconstruction, replication retries, checksum detection, and
journal escalation all behave under storage faults — behaviours the paper
asserts ("extensive testing and experiments … show that our implementation
is fairly robust", Sec. 6) but cannot be trusted without injection.
"""

from __future__ import annotations

import numpy as np

from repro.block.device import BlockDevice
from repro.common.errors import StorageError


class InjectedIoError(StorageError):
    """The error raised for injected I/O failures."""

    def __init__(self, operation: str, lba: int) -> None:
        super().__init__(f"injected {operation} error at LBA {lba}")
        self.operation = operation
        self.lba = lba


class FaultyDevice(BlockDevice):
    """Pass-through wrapper with controllable fault injection."""

    def __init__(
        self,
        inner: BlockDevice,
        error_probability: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if not 0.0 <= error_probability <= 1.0:
            raise ValueError(
                f"error_probability must be in [0, 1], got {error_probability}"
            )
        super().__init__(inner.block_size, inner.num_blocks)
        self._inner = inner
        self._probability = error_probability
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._bad_reads: set[int] = set()
        self._bad_writes: set[int] = set()
        self._corrupt_next: set[int] = set()
        self._dead = False
        self.errors_injected = 0
        self.corruptions_injected = 0

    @property
    def inner(self) -> BlockDevice:
        """The wrapped device."""
        return self._inner

    # -- fault controls -------------------------------------------------------

    def fail_reads(self, *lbas: int) -> None:
        """Every read of these LBAs raises until :meth:`heal`."""
        self._bad_reads.update(lbas)

    def fail_writes(self, *lbas: int) -> None:
        """Every write to these LBAs raises until :meth:`heal`."""
        self._bad_writes.update(lbas)

    @staticmethod
    def _flip_bits(data: bytes) -> bytes:
        flipped = bytearray(data)
        flipped[0] ^= 0xFF
        flipped[len(flipped) // 2] ^= 0xFF
        return bytes(flipped)

    def corrupt_block(self, lba: int) -> None:
        """Silently flip bits in the stored block (latent corruption).

        Detected only by an integrity layer above (ChecksumDevice, RAID
        scrub, replication CRC) — exactly the failure mode parity exists
        to catch.
        """
        self._inner.write_block(
            lba, self._flip_bits(self._inner.read_block(lba))
        )
        self.corruptions_injected += 1

    def corrupt_next_write(self, *lbas: int) -> None:
        """Silently corrupt the *next* write to each of ``lbas``.

        Models a firmware/DMA bug that mangles data in flight: the write
        "succeeds" but the stored bits differ from what was written.  The
        fault is one-shot per LBA; later writes store cleanly.  Pending
        (not-yet-fired) corruptions are cleared by :meth:`heal`.
        """
        self._corrupt_next.update(lbas)

    def kill(self) -> None:
        """Simulate whole-device failure: every I/O raises."""
        self._dead = True

    def heal(self) -> None:
        """Clear all *pending* fault injections (device 'replaced/repaired').

        This cancels targeted read/write errors, pending
        :meth:`corrupt_next_write` faults, and :meth:`kill`.  It does
        **not** undo latent corruption already stored by
        :meth:`corrupt_block` (or by a fired :meth:`corrupt_next_write`):
        those bits are already rotten on the medium, intentionally — only a
        scrub/resync layer above can repair them.
        """
        self._bad_reads.clear()
        self._bad_writes.clear()
        self._corrupt_next.clear()
        self._dead = False

    # -- I/O with injection ------------------------------------------------------

    def _maybe_fail(self, operation: str, lba: int, targeted: set[int]) -> None:
        if self._dead or lba in targeted:
            self.errors_injected += 1
            raise InjectedIoError(operation, lba)
        if self._probability and self._rng.random() < self._probability:
            self.errors_injected += 1
            raise InjectedIoError(operation, lba)

    def _read(self, lba: int) -> bytes:
        self._maybe_fail("read", lba, self._bad_reads)
        return self._inner.read_block(lba)

    def _write(self, lba: int, data: bytes) -> None:
        self._maybe_fail("write", lba, self._bad_writes)
        if lba in self._corrupt_next:
            self._corrupt_next.discard(lba)
            self.corruptions_injected += 1
            data = self._flip_bits(data)
        self._inner.write_block(lba, data)

    def close(self) -> None:
        if not self.closed:
            self._inner.close()
        super().close()
