"""The block-device interface.

A block device is an array of ``num_blocks`` fixed-size blocks addressed by
logical block address (LBA), exactly the abstraction the paper's PRINS-engine
sits on: "PRINS-engine sits below the file system or database system as a
block device" (Sec. 2).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterator

from repro.common.errors import BlockRangeError, BlockSizeError, DeviceClosedError


class BlockDevice(ABC):
    """Abstract fixed-block-size random-access device.

    Subclasses implement :meth:`_read` and :meth:`_write`; this base class
    owns argument validation, the closed-state check, and convenience
    multi-block helpers so every device validates identically.
    """

    def __init__(self, block_size: int, num_blocks: int) -> None:
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        if num_blocks <= 0:
            raise ValueError(f"num_blocks must be positive, got {num_blocks}")
        self._block_size = block_size
        self._num_blocks = num_blocks
        self._closed = False

    # -- geometry ---------------------------------------------------------

    @property
    def block_size(self) -> int:
        """Size of one block in bytes."""
        return self._block_size

    @property
    def num_blocks(self) -> int:
        """Number of addressable blocks."""
        return self._num_blocks

    @property
    def capacity_bytes(self) -> int:
        """Total device capacity in bytes."""
        return self._block_size * self._num_blocks

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has been called."""
        return self._closed

    # -- core I/O ---------------------------------------------------------

    def read_block(self, lba: int) -> bytes:
        """Return the contents of block ``lba`` (always ``block_size`` bytes)."""
        self._check_lba(lba)
        data = self._read(lba)
        assert len(data) == self._block_size
        return data

    def read_block_into(self, lba: int, out) -> None:
        """Read block ``lba`` directly into the writable buffer ``out``.

        ``out`` (a ``bytearray`` or writable ``memoryview``) must be exactly
        ``block_size`` bytes.  The default copies through :meth:`_read`;
        contiguous devices override to copy straight from their backing
        store without materializing an intermediate ``bytes``.  This is the
        replica-side Eq. 2 fast path's way of loading ``A_old`` into the
        scratch block it will XOR in place.
        """
        self._check_lba(lba)
        view = out if isinstance(out, memoryview) else memoryview(out)
        if view.nbytes != self._block_size:
            raise BlockSizeError(self._block_size, view.nbytes)
        view[:] = self._read(lba)

    def write_block(self, lba: int, data: bytes) -> None:
        """Overwrite block ``lba`` with ``data`` (must be ``block_size`` bytes).

        ``data`` may be any buffer-protocol object; it is snapshotted to
        immutable ``bytes`` before reaching :meth:`_write` (a no-op when it
        already is ``bytes``), so devices that retain references — caches,
        sparse stores — never alias a caller-owned mutable buffer.
        """
        self._check_lba(lba)
        if len(data) != self._block_size:
            raise BlockSizeError(self._block_size, len(data))
        self._write(lba, bytes(data))

    def write_block_from(self, lba: int, buf) -> None:
        """Write block ``lba`` from a caller-owned scratch buffer.

        Like :meth:`write_block` but documented for reuse of a mutable
        scratch buffer (``bytearray`` / ``memoryview``): the device must
        copy the contents during the call and must NOT retain a reference.
        The default snapshots to ``bytes`` exactly like :meth:`write_block`;
        contiguous devices override it to copy straight from the buffer,
        skipping the intermediate snapshot — the replica-side apply loop
        uses this to write its scratch block without a second 64 KB copy.
        """
        self._check_lba(lba)
        view = buf if isinstance(buf, memoryview) else memoryview(buf)
        if view.nbytes != self._block_size:
            raise BlockSizeError(self._block_size, view.nbytes)
        self._write(lba, view.tobytes())

    def read_blocks(self, lba: int, count: int) -> bytes:
        """Read ``count`` consecutive blocks starting at ``lba``."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return b"".join(self.read_block(lba + i) for i in range(count))

    def write_blocks(self, lba: int, data: bytes) -> None:
        """Write ``data`` (a whole number of blocks) starting at ``lba``."""
        if len(data) % self._block_size:
            raise BlockSizeError(self._block_size, len(data))
        for i in range(len(data) // self._block_size):
            offset = i * self._block_size
            self.write_block(lba + i, data[offset : offset + self._block_size])

    def iter_blocks(self) -> Iterator[tuple[int, bytes]]:
        """Yield ``(lba, contents)`` for every block, in LBA order."""
        for lba in range(self._num_blocks):
            yield lba, self.read_block(lba)

    def zero_block(self) -> bytes:
        """Return an all-zero buffer of exactly one block."""
        return bytes(self._block_size)

    def close(self) -> None:
        """Release underlying resources; subsequent I/O raises."""
        self._closed = True

    def __enter__(self) -> "BlockDevice":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(block_size={self._block_size}, "
            f"num_blocks={self._num_blocks})"
        )

    # -- subclass contract --------------------------------------------------

    @abstractmethod
    def _read(self, lba: int) -> bytes:
        """Return the raw contents of block ``lba``; lba is pre-validated."""

    @abstractmethod
    def _write(self, lba: int, data: bytes) -> None:
        """Store ``data`` at block ``lba``; arguments are pre-validated."""

    # -- internals ----------------------------------------------------------

    def _check_lba(self, lba: int) -> None:
        if self._closed:
            raise DeviceClosedError(f"{type(self).__name__} is closed")
        if not 0 <= lba < self._num_blocks:
            raise BlockRangeError(lba, self._num_blocks)
