"""Sparse block device: unwritten blocks read as zeros."""

from __future__ import annotations

from repro.block.device import BlockDevice
from repro.common.buffers import is_zero


class SparseBlockDevice(BlockDevice):
    """Dict-backed device where only written blocks consume memory.

    Useful for modeling large LUNs (the paper's 80–200 GB disks) of which a
    workload only touches a small working set.  Writing an all-zero block
    reclaims its slot, so memory use tracks the *nonzero* footprint.
    """

    def __init__(self, block_size: int, num_blocks: int) -> None:
        super().__init__(block_size, num_blocks)
        self._blocks: dict[int, bytes] = {}

    def _read(self, lba: int) -> bytes:
        data = self._blocks.get(lba)
        if data is None:
            return bytes(self._block_size)
        return data

    def _write(self, lba: int, data: bytes) -> None:
        if is_zero(data):
            self._blocks.pop(lba, None)
        else:
            self._blocks[lba] = data

    @property
    def allocated_blocks(self) -> int:
        """Number of blocks currently holding nonzero data."""
        return len(self._blocks)

    def written_lbas(self) -> list[int]:
        """Return the sorted LBAs that currently hold nonzero data."""
        return sorted(self._blocks)
