"""End-to-end checksum verification wrapper.

Replication correctness experiments want a loud failure if a block is ever
corrupted between write and read (e.g. by a buggy codec or a mis-applied
parity delta).  :class:`ChecksumDevice` keeps a CRC32 per written block and
verifies it on every read.
"""

from __future__ import annotations

import zlib

from repro.block.device import BlockDevice
from repro.common.errors import StorageError


class ChecksumMismatchError(StorageError):
    """Raised when a block's contents no longer match its recorded CRC."""

    def __init__(self, lba: int, expected: int, actual: int) -> None:
        super().__init__(
            f"checksum mismatch at LBA {lba}: expected {expected:#010x}, "
            f"got {actual:#010x}"
        )
        self.lba = lba


class ChecksumDevice(BlockDevice):
    """Pass-through wrapper that CRC-checks every read against the last write.

    Blocks never written through this wrapper are not checked (their baseline
    content is unknown — the inner device may have been pre-populated).
    """

    def __init__(self, inner: BlockDevice) -> None:
        super().__init__(inner.block_size, inner.num_blocks)
        self._inner = inner
        self._crcs: dict[int, int] = {}

    @property
    def inner(self) -> BlockDevice:
        """The wrapped device."""
        return self._inner

    def _read(self, lba: int) -> bytes:
        data = self._inner.read_block(lba)
        expected = self._crcs.get(lba)
        if expected is not None:
            actual = zlib.crc32(data)
            if actual != expected:
                raise ChecksumMismatchError(lba, expected, actual)
        return data

    def _write(self, lba: int, data: bytes) -> None:
        self._inner.write_block(lba, data)
        self._crcs[lba] = zlib.crc32(data)

    def verify_all(self) -> int:
        """Re-read every tracked block, raising on any mismatch.

        Returns the number of blocks verified.
        """
        for lba in sorted(self._crcs):
            self.read_block(lba)
        return len(self._crcs)

    def close(self) -> None:
        if not self.closed:
            self._inner.close()
        super().close()
