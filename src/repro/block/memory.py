"""In-memory block device backed by one contiguous bytearray."""

from __future__ import annotations

from repro.block.device import BlockDevice


class MemoryBlockDevice(BlockDevice):
    """A block device whose entire contents live in a single bytearray.

    This is the default substrate for tests and traffic experiments: reads
    and writes are exact and instantaneous, and the full image can be
    snapshotted with :meth:`snapshot` for consistency checks.
    """

    def __init__(self, block_size: int, num_blocks: int) -> None:
        super().__init__(block_size, num_blocks)
        self._data = bytearray(block_size * num_blocks)

    def _read(self, lba: int) -> bytes:
        offset = lba * self._block_size
        return bytes(self._data[offset : offset + self._block_size])

    def _write(self, lba: int, data: bytes) -> None:
        offset = lba * self._block_size
        self._data[offset : offset + self._block_size] = data

    def snapshot(self) -> bytes:
        """Return an immutable copy of the whole device image."""
        return bytes(self._data)

    def load(self, image: bytes) -> None:
        """Replace the whole device image (must match capacity exactly)."""
        if len(image) != self.capacity_bytes:
            raise ValueError(
                f"image is {len(image)} bytes, device holds {self.capacity_bytes}"
            )
        self._data[:] = image
