"""In-memory block device backed by one contiguous bytearray."""

from __future__ import annotations

from repro.block.device import BlockDevice
from repro.common.errors import BlockSizeError


class MemoryBlockDevice(BlockDevice):
    """A block device whose entire contents live in a single bytearray.

    This is the default substrate for tests and traffic experiments: reads
    and writes are exact and instantaneous, and the full image can be
    snapshotted with :meth:`snapshot` for consistency checks.
    """

    def __init__(self, block_size: int, num_blocks: int) -> None:
        super().__init__(block_size, num_blocks)
        self._data = bytearray(block_size * num_blocks)

    def _read(self, lba: int) -> bytes:
        offset = lba * self._block_size
        return bytes(self._data[offset : offset + self._block_size])

    def read_block_into(self, lba: int, out) -> None:
        """Copy block ``lba`` straight from the backing bytearray into ``out``.

        Overrides the base implementation to skip the intermediate
        ``bytes`` object — one slice-assign from the contiguous image.
        """
        self._check_lba(lba)
        view = out if isinstance(out, memoryview) else memoryview(out)
        if view.nbytes != self._block_size:
            raise BlockSizeError(self._block_size, view.nbytes)
        offset = lba * self._block_size
        view[:] = memoryview(self._data)[offset : offset + self._block_size]

    def _write(self, lba: int, data: bytes) -> None:
        offset = lba * self._block_size
        self._data[offset : offset + self._block_size] = data

    def write_block_from(self, lba: int, buf) -> None:
        """Copy a scratch buffer straight into the backing bytearray.

        Overrides the base implementation to skip the intermediate
        ``bytes`` snapshot — the contiguous image copies from any buffer
        in one slice-assign, and nothing retains a reference to ``buf``.
        """
        self._check_lba(lba)
        view = buf if isinstance(buf, memoryview) else memoryview(buf)
        if view.nbytes != self._block_size:
            raise BlockSizeError(self._block_size, view.nbytes)
        offset = lba * self._block_size
        self._data[offset : offset + self._block_size] = view

    def snapshot(self) -> bytes:
        """Return an immutable copy of the whole device image."""
        return bytes(self._data)

    def load(self, image: bytes) -> None:
        """Replace the whole device image (must match capacity exactly)."""
        if len(image) != self.capacity_bytes:
            raise ValueError(
                f"image is {len(image)} bytes, device holds {self.capacity_bytes}"
            )
        self._data[:] = image
