"""Bounded LRU cache of block contents, keyed by LBA.

:class:`BlockCache` is the ``A_old`` cache the primary engine puts in
front of its device: PRINS' Eq. 1 needs the *previous* contents of every
written block, and on a non-RAID primary that read-before-write is the
hidden half of the parity cost (the RAID small-write path gets ``P'`` for
free, Sec. 1).  Caching the last image of hot LBAs turns the read into a
dictionary hit — and because the engine refreshes the entry with the block
it just wrote, steady-state overwrite workloads never touch the device for
``A_old`` at all.

Unlike :class:`repro.block.cached.CachedDevice` (a device *wrapper* that
caches reads transparently), this is a plain passive container owned and
consulted explicitly by the engine, with hit/miss/eviction counters that
surface through the engine's telemetry snapshot.
"""

from __future__ import annotations

from collections import OrderedDict


class BlockCache:
    """Bounded LRU mapping of LBA → last known block contents.

    Purely passive: ``get``/``put``/``invalidate`` plus counters.  The
    owner decides what to insert and when; the cache only enforces the
    capacity bound (evicting least-recently-used entries) and counts
    hits, misses, and evictions.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._entries: "OrderedDict[int, bytes]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def capacity(self) -> int:
        """Maximum number of blocks retained."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, lba: int) -> bool:
        return lba in self._entries

    def get(self, lba: int) -> bytes | None:
        """Return the cached contents of ``lba`` (refreshing recency), or None."""
        data = self._entries.get(lba)
        if data is None:
            self.misses += 1
            return None
        self._entries.move_to_end(lba)
        self.hits += 1
        return data

    def put(self, lba: int, data: bytes) -> None:
        """Remember ``data`` as the current contents of ``lba``.

        The caller passes the exact ``bytes`` it wrote (no copy is made);
        the least-recently-used entry is evicted once the capacity bound
        is exceeded.
        """
        entries = self._entries
        if lba in entries:
            entries[lba] = data
            entries.move_to_end(lba)
            return
        entries[lba] = data
        if len(entries) > self._capacity:
            entries.popitem(last=False)
            self.evictions += 1

    def invalidate(self, lba: int | None = None) -> None:
        """Drop one entry (or all entries when ``lba`` is None)."""
        if lba is None:
            self._entries.clear()
        else:
            self._entries.pop(lba, None)

    def snapshot(self) -> dict:
        """JSON-safe counters: capacity, size, hits, misses, evictions."""
        total = self.hits + self.misses
        return {
            "capacity": self._capacity,
            "size": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": (self.hits / total) if total else 0.0,
        }

    def __repr__(self) -> str:
        return (
            f"BlockCache(capacity={self._capacity}, size={len(self._entries)}, "
            f"hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions})"
        )
