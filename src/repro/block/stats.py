"""I/O accounting wrapper.

Every traffic experiment in the paper is ultimately a byte count; the
:class:`CountingDevice` wrapper records reads/writes flowing through any
device so the benchmark harness can report exact I/O volumes alongside the
on-wire replication volumes from :mod:`repro.engine.accounting`.

Counters can surface through the telemetry subsystem: pass a
:class:`~repro.obs.telemetry.Telemetry` (or rely on the process default)
and the device registers itself as a snapshot source, so device-level I/O
appears in the same ``Telemetry.snapshot()`` as engine wire traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.block.device import BlockDevice
from repro.obs.telemetry import get_telemetry


@dataclass
class IoCounters:
    """Mutable counters for one device's traffic.

    ``unique_lbas_written`` tracks write-footprint cardinality with an
    optional cap (``max_unique_lbas``): once the set holds that many LBAs,
    new LBAs are no longer added and ``unique_lbas_overflowed`` flips, so
    a long-running simulation's memory stays bounded.  ``unique_lbas`` is
    then a lower bound on the true cardinality.
    """

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    unique_lbas_written: set[int] = field(default_factory=set)
    #: cardinality cap for ``unique_lbas_written`` (None = unbounded)
    max_unique_lbas: int | None = None
    #: True once the cap stopped a new LBA from being recorded
    unique_lbas_overflowed: bool = False

    def __post_init__(self) -> None:
        if self.max_unique_lbas is not None and self.max_unique_lbas < 1:
            raise ValueError(
                f"max_unique_lbas must be >= 1, got {self.max_unique_lbas}"
            )

    @property
    def total_ops(self) -> int:
        """Total number of block operations observed."""
        return self.reads + self.writes

    @property
    def unique_lbas(self) -> int:
        """Distinct LBAs written (a lower bound once overflowed)."""
        return len(self.unique_lbas_written)

    def note_lba_written(self, lba: int) -> None:
        """Record one written LBA, respecting the cardinality cap."""
        if lba in self.unique_lbas_written:
            return
        if (
            self.max_unique_lbas is not None
            and len(self.unique_lbas_written) >= self.max_unique_lbas
        ):
            self.unique_lbas_overflowed = True
            return
        self.unique_lbas_written.add(lba)

    def snapshot(self) -> dict:
        """JSON-safe view for the telemetry registry."""
        return {
            "reads": self.reads,
            "writes": self.writes,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "unique_lbas": self.unique_lbas,
            "unique_lbas_overflowed": self.unique_lbas_overflowed,
        }

    def reset(self) -> None:
        """Zero all counters."""
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.unique_lbas_written.clear()
        self.unique_lbas_overflowed = False


class CountingDevice(BlockDevice):
    """Pass-through wrapper that counts every read and write."""

    def __init__(
        self,
        inner: BlockDevice,
        max_unique_lbas: int | None = None,
        telemetry=None,
        name: str = "device",
    ) -> None:
        super().__init__(inner.block_size, inner.num_blocks)
        self._inner = inner
        self.counters = IoCounters(max_unique_lbas=max_unique_lbas)
        tel = telemetry if telemetry is not None else get_telemetry()
        if tel.enabled:
            tel.register_source(f"io.{name}", self.counters.snapshot)

    @property
    def inner(self) -> BlockDevice:
        """The wrapped device."""
        return self._inner

    def _read(self, lba: int) -> bytes:
        data = self._inner.read_block(lba)
        self.counters.reads += 1
        self.counters.bytes_read += len(data)
        return data

    def _write(self, lba: int, data: bytes) -> None:
        self._inner.write_block(lba, data)
        self.counters.writes += 1
        self.counters.bytes_written += len(data)
        self.counters.note_lba_written(lba)

    def close(self) -> None:
        if not self.closed:
            self._inner.close()
        super().close()
