"""I/O accounting wrapper.

Every traffic experiment in the paper is ultimately a byte count; the
:class:`CountingDevice` wrapper records reads/writes flowing through any
device so the benchmark harness can report exact I/O volumes alongside the
on-wire replication volumes from :mod:`repro.engine.accounting`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.block.device import BlockDevice


@dataclass
class IoCounters:
    """Mutable counters for one device's traffic."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    unique_lbas_written: set[int] = field(default_factory=set)

    @property
    def total_ops(self) -> int:
        """Total number of block operations observed."""
        return self.reads + self.writes

    def reset(self) -> None:
        """Zero all counters."""
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.unique_lbas_written.clear()


class CountingDevice(BlockDevice):
    """Pass-through wrapper that counts every read and write."""

    def __init__(self, inner: BlockDevice) -> None:
        super().__init__(inner.block_size, inner.num_blocks)
        self._inner = inner
        self.counters = IoCounters()

    @property
    def inner(self) -> BlockDevice:
        """The wrapped device."""
        return self._inner

    def _read(self, lba: int) -> bytes:
        data = self._inner.read_block(lba)
        self.counters.reads += 1
        self.counters.bytes_read += len(data)
        return data

    def _write(self, lba: int, data: bytes) -> None:
        self._inner.write_block(lba, data)
        self.counters.writes += 1
        self.counters.bytes_written += len(data)
        self.counters.unique_lbas_written.add(lba)

    def close(self) -> None:
        if not self.closed:
            self._inner.close()
        super().close()
