"""PRINS: Parity Replication in IP-Network Storages — full reproduction.

Reproduces Yang, Xiao & Ren, *PRINS: Optimizing Performance of Reliable
Internet Storages* (ICDCS 2006): a block-level replication scheme that
ships the encoded parity delta ``P' = A_new XOR A_old`` instead of the
block itself, recovering ``A_new = P' XOR A_old`` at each replica.

Quick start::

    from repro import (
        MemoryBlockDevice, PrimaryEngine, ReplicaEngine, DirectLink,
        make_strategy, full_sync,
    )

    primary_disk = MemoryBlockDevice(block_size=8192, num_blocks=1024)
    replica_disk = MemoryBlockDevice(block_size=8192, num_blocks=1024)
    strategy = make_strategy("prins")
    replica = ReplicaEngine(replica_disk, strategy)
    engine = PrimaryEngine(primary_disk, strategy, [DirectLink(replica)])
    engine.write_block(0, b"x" * 8192)      # replicated as a tiny delta
    print(engine.accountant.payload_bytes)  # bytes that crossed the wire

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure.
"""

from repro.block import (
    BlockDevice,
    CachedDevice,
    ChecksumDevice,
    CountingDevice,
    FileBlockDevice,
    MemoryBlockDevice,
    SparseBlockDevice,
)
from repro.cdp import ParityLog, RecoveryPoint, recover_block, recover_image
from repro.engine import (
    CompressedBlockStrategy,
    DirectLink,
    FullBlockStrategy,
    InitiatorLink,
    PrimaryEngine,
    PrinsStrategy,
    ReplicaEngine,
    TrafficAccountant,
    digest_sync,
    full_sync,
    make_strategy,
    verify_consistency,
)
from repro.fs import FileSystem
from repro.iscsi import Initiator, Target, TargetServer, TcpTransport, transport_pair
from repro.minidb import Column, ColumnType, Database, Schema
from repro.parity import backward_parity, forward_parity, get_codec
from repro.queueing import ReplicationNetworkModel, StrategyTraffic, T1, T3
from repro.raid import Raid0Array, Raid1Array, Raid4Array, Raid5Array

__version__ = "1.0.0"

__all__ = [
    "BlockDevice",
    "CachedDevice",
    "ChecksumDevice",
    "Column",
    "ColumnType",
    "CompressedBlockStrategy",
    "CountingDevice",
    "Database",
    "DirectLink",
    "FileBlockDevice",
    "FileSystem",
    "FullBlockStrategy",
    "Initiator",
    "InitiatorLink",
    "MemoryBlockDevice",
    "ParityLog",
    "PrimaryEngine",
    "PrinsStrategy",
    "Raid0Array",
    "Raid1Array",
    "Raid4Array",
    "Raid5Array",
    "RecoveryPoint",
    "ReplicaEngine",
    "ReplicationNetworkModel",
    "Schema",
    "SparseBlockDevice",
    "StrategyTraffic",
    "T1",
    "T3",
    "Target",
    "TargetServer",
    "TcpTransport",
    "TrafficAccountant",
    "backward_parity",
    "digest_sync",
    "forward_parity",
    "full_sync",
    "get_codec",
    "make_strategy",
    "recover_block",
    "recover_image",
    "transport_pair",
    "verify_consistency",
    "__version__",
]
