"""PRINS: Parity Replication in IP-Network Storages — full reproduction.

Reproduces Yang, Xiao & Ren, *PRINS: Optimizing Performance of Reliable
Internet Storages* (ICDCS 2006): a block-level replication scheme that
ships the encoded parity delta ``P' = A_new XOR A_old`` instead of the
block itself, recovering ``A_new = P' XOR A_old`` at each replica.

Quick start (the :mod:`repro.api` front door)::

    from repro import ReplicationConfig, open_primary

    config = ReplicationConfig(strategy="prins", block_size=8192)
    with open_primary(config) as stack:
        stack.engine.write_block(0, b"x" * 8192)   # ships a tiny delta
        print(stack.engine.accountant.payload_bytes)

The pieces the factory wires (``MemoryBlockDevice``, ``PrimaryEngine``,
``ReplicaEngine``, ``DirectLink``, ``make_strategy``, …) stay public for
hand-assembly when an experiment needs a custom topology.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure.
"""

from repro.api import (
    ObservabilityConfig,
    PrimaryStack,
    ReplicationConfig,
    open_cluster,
    open_primary,
)
from repro.block import (
    BlockDevice,
    CachedDevice,
    ChecksumDevice,
    CountingDevice,
    FileBlockDevice,
    MemoryBlockDevice,
    SparseBlockDevice,
)
from repro.cdp import ParityLog, RecoveryPoint, recover_block, recover_image
from repro.engine import (
    CompressedBlockStrategy,
    DirectLink,
    FullBlockStrategy,
    InitiatorLink,
    PrimaryEngine,
    PrinsStrategy,
    ReplicaEngine,
    TrafficAccountant,
    digest_sync,
    full_sync,
    make_strategy,
    verify_consistency,
)
from repro.fs import FileSystem
from repro.iscsi import Initiator, Target, TargetServer, TcpTransport, transport_pair
from repro.minidb import Column, ColumnType, Database, Schema
from repro.parity import backward_parity, forward_parity, get_codec
from repro.queueing import ReplicationNetworkModel, StrategyTraffic, T1, T3
from repro.raid import Raid0Array, Raid1Array, Raid4Array, Raid5Array

__version__ = "1.0.0"

__all__ = [
    "BlockDevice",
    "CachedDevice",
    "ChecksumDevice",
    "Column",
    "ColumnType",
    "CompressedBlockStrategy",
    "CountingDevice",
    "Database",
    "DirectLink",
    "FileBlockDevice",
    "FileSystem",
    "FullBlockStrategy",
    "Initiator",
    "InitiatorLink",
    "MemoryBlockDevice",
    "ObservabilityConfig",
    "ParityLog",
    "PrimaryEngine",
    "PrimaryStack",
    "PrinsStrategy",
    "Raid0Array",
    "Raid1Array",
    "Raid4Array",
    "Raid5Array",
    "RecoveryPoint",
    "ReplicaEngine",
    "ReplicationConfig",
    "ReplicationNetworkModel",
    "Schema",
    "SparseBlockDevice",
    "StrategyTraffic",
    "T1",
    "T3",
    "Target",
    "TargetServer",
    "TcpTransport",
    "TrafficAccountant",
    "backward_parity",
    "digest_sync",
    "forward_parity",
    "full_sync",
    "get_codec",
    "make_strategy",
    "open_cluster",
    "open_primary",
    "recover_block",
    "recover_image",
    "transport_pair",
    "verify_consistency",
    "__version__",
]
