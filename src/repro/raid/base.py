"""Shared machinery for multi-disk arrays: member checks, failure state."""

from __future__ import annotations

from repro.block.device import BlockDevice
from repro.common.errors import ConfigurationError, RaidDegradedError


class ArrayBase(BlockDevice):
    """Base class for all RAID levels.

    Owns the member-disk list, uniform-geometry validation, and the
    fail/replace lifecycle.  Subclasses implement the address mapping and
    redundancy logic.
    """

    #: minimum member count for the level; subclasses override
    min_disks = 1

    def __init__(self, disks: list[BlockDevice], logical_blocks: int) -> None:
        if len(disks) < self.min_disks:
            raise ConfigurationError(
                f"{type(self).__name__} needs at least {self.min_disks} disks, "
                f"got {len(disks)}"
            )
        block_size = disks[0].block_size
        blocks_per_disk = disks[0].num_blocks
        for i, disk in enumerate(disks):
            if disk.block_size != block_size or disk.num_blocks != blocks_per_disk:
                raise ConfigurationError(
                    f"disk {i} geometry ({disk.block_size} x {disk.num_blocks}) "
                    f"differs from disk 0 ({block_size} x {blocks_per_disk})"
                )
        super().__init__(block_size, logical_blocks)
        self._disks = list(disks)
        self._failed: set[int] = set()

    # -- failure lifecycle --------------------------------------------------

    @property
    def num_disks(self) -> int:
        """Number of member disks (data + parity)."""
        return len(self._disks)

    @property
    def failed_disks(self) -> frozenset[int]:
        """Indices of currently failed members."""
        return frozenset(self._failed)

    @property
    def degraded(self) -> bool:
        """True if any member has failed."""
        return bool(self._failed)

    def fail_disk(self, index: int) -> None:
        """Mark member ``index`` failed; subsequent I/O must work around it."""
        self._check_disk_index(index)
        if len(self._failed) >= self.fault_tolerance():
            raise RaidDegradedError(
                f"{type(self).__name__} cannot survive another failure "
                f"(already failed: {sorted(self._failed)})"
            )
        self._failed.add(index)

    def replace_disk(self, index: int, new_disk: BlockDevice) -> None:
        """Swap in a fresh member at ``index`` and rebuild its contents."""
        self._check_disk_index(index)
        if index not in self._failed:
            raise ConfigurationError(f"disk {index} has not failed")
        if (
            new_disk.block_size != self.block_size
            or new_disk.num_blocks != self._disks[0].num_blocks
        ):
            raise ConfigurationError("replacement disk geometry mismatch")
        self._disks[index] = new_disk
        self._rebuild_disk(index)
        self._failed.discard(index)

    def fault_tolerance(self) -> int:
        """How many concurrent member failures the level survives."""
        return 0

    # -- subclass contract --------------------------------------------------

    def _rebuild_disk(self, index: int) -> None:
        """Regenerate the full contents of member ``index``.

        Levels with no redundancy cannot rebuild and raise.
        """
        raise RaidDegradedError(f"{type(self).__name__} cannot rebuild a disk")

    # -- helpers --------------------------------------------------------------

    def _disk(self, index: int, *, for_read: bool) -> BlockDevice:
        """Return member ``index``, raising if it has failed."""
        if index in self._failed:
            verb = "read from" if for_read else "write to"
            raise RaidDegradedError(f"cannot {verb} failed disk {index}")
        return self._disks[index]

    def _check_disk_index(self, index: int) -> None:
        if not 0 <= index < len(self._disks):
            raise ConfigurationError(
                f"disk index {index} out of range ({len(self._disks)} disks)"
            )

    def close(self) -> None:
        if not self.closed:
            for disk in self._disks:
                disk.close()
        super().close()
