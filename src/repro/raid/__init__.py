"""Software RAID arrays.

The paper leverages the parity computation that "exists in common storage
systems (RAID)" — specifically the RAID-4/5 small-write path
``P_new = A_new XOR A_old XOR P_old`` (Eq. 1), whose first term is exactly
the parity delta PRINS replicates.  This package implements:

* :class:`~repro.raid.raid0.Raid0Array` — striping (no redundancy),
* :class:`~repro.raid.raid1.Raid1Array` — mirroring,
* :class:`~repro.raid.raid4.Raid4Array` — dedicated parity disk,
* :class:`~repro.raid.raid5.Raid5Array` — rotating parity,

all exposing the :class:`~repro.block.device.BlockDevice` interface plus,
for the parity arrays, ``write_block_with_delta`` which returns ``P'`` as a
free by-product of the write — the PRINS hook.  Degraded reads, disk
failure, and rebuild live in the shared parity base class.
"""

from repro.raid.parity import stripe_parity, verify_stripe
from repro.raid.raid0 import Raid0Array
from repro.raid.raid1 import Raid1Array
from repro.raid.raid4 import Raid4Array
from repro.raid.raid5 import Raid5Array
from repro.raid.stripe import StripeGeometry

__all__ = [
    "Raid0Array",
    "Raid1Array",
    "Raid4Array",
    "Raid5Array",
    "StripeGeometry",
    "stripe_parity",
    "verify_stripe",
]
