"""Stripe geometry: mapping logical blocks to (disk, offset) pairs."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class StripeGeometry:
    """Geometry of a striped array.

    ``num_data_disks`` data blocks form one stripe row; logical block ``L``
    lives in stripe ``L // num_data_disks`` at data-column
    ``L % num_data_disks``.  Parity placement (none / fixed disk / rotating)
    is the RAID level's concern, not the geometry's.
    """

    num_data_disks: int
    blocks_per_disk: int

    def __post_init__(self) -> None:
        if self.num_data_disks <= 0:
            raise ValueError(f"need at least one data disk, got {self.num_data_disks}")
        if self.blocks_per_disk <= 0:
            raise ValueError(
                f"blocks_per_disk must be positive, got {self.blocks_per_disk}"
            )

    @property
    def logical_blocks(self) -> int:
        """Total logical (data) blocks exposed by the array."""
        return self.num_data_disks * self.blocks_per_disk

    def locate(self, lba: int) -> tuple[int, int]:
        """Return ``(stripe_index, data_column)`` for logical block ``lba``."""
        if not 0 <= lba < self.logical_blocks:
            raise ValueError(f"LBA {lba} out of range ({self.logical_blocks} blocks)")
        return divmod(lba, self.num_data_disks)[0], lba % self.num_data_disks

    def lba_of(self, stripe: int, data_column: int) -> int:
        """Inverse of :meth:`locate`."""
        if not 0 <= stripe < self.blocks_per_disk:
            raise ValueError(f"stripe {stripe} out of range")
        if not 0 <= data_column < self.num_data_disks:
            raise ValueError(f"data column {data_column} out of range")
        return stripe * self.num_data_disks + data_column

    def stripe_lbas(self, stripe: int) -> list[int]:
        """All logical block addresses that share stripe row ``stripe``."""
        base = stripe * self.num_data_disks
        return list(range(base, base + self.num_data_disks))
