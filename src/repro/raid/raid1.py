"""RAID-1: mirroring."""

from __future__ import annotations

from repro.block.device import BlockDevice
from repro.common.errors import RaidDegradedError
from repro.raid.base import ArrayBase


class Raid1Array(ArrayBase):
    """Every write goes to all members; reads come from the first live one.

    Mirroring is the degenerate "replicate the whole block" scheme — what
    traditional replication does over the network, done locally.  It
    survives ``n - 1`` member failures.
    """

    min_disks = 2

    def __init__(self, disks: list[BlockDevice]) -> None:
        super().__init__(disks, disks[0].num_blocks)

    def fault_tolerance(self) -> int:
        return self.num_disks - 1

    def _read(self, lba: int) -> bytes:
        for index in range(self.num_disks):
            if index not in self._failed:
                return self._disks[index].read_block(lba)
        raise RaidDegradedError("all mirrors have failed")

    def _write(self, lba: int, data: bytes) -> None:
        for index in range(self.num_disks):
            if index not in self._failed:
                self._disks[index].write_block(lba, data)

    def _rebuild_disk(self, index: int) -> None:
        source = next(i for i in range(self.num_disks) if i not in self._failed)
        for lba in range(self._disks[source].num_blocks):
            self._disks[index].write_block(lba, self._disks[source].read_block(lba))
