"""RAID-0: pure striping, no redundancy."""

from __future__ import annotations

from repro.block.device import BlockDevice
from repro.raid.base import ArrayBase
from repro.raid.stripe import StripeGeometry


class Raid0Array(ArrayBase):
    """Stripes logical blocks round-robin across all members.

    Included as the no-redundancy point of comparison: a primary on RAID-0
    gets no free parity term, so PRINS must compute ``P'`` itself — the
    configuration under which the paper measured its "<10 % overhead".
    """

    min_disks = 2

    def __init__(self, disks: list[BlockDevice]) -> None:
        geometry = StripeGeometry(len(disks), disks[0].num_blocks)
        super().__init__(disks, geometry.logical_blocks)
        self._geometry = geometry

    @property
    def geometry(self) -> StripeGeometry:
        """The array's stripe geometry."""
        return self._geometry

    def _read(self, lba: int) -> bytes:
        stripe, column = self._geometry.locate(lba)
        return self._disk(column, for_read=True).read_block(stripe)

    def _write(self, lba: int, data: bytes) -> None:
        stripe, column = self._geometry.locate(lba)
        self._disk(column, for_read=False).write_block(stripe, data)
