"""Shared implementation of XOR-parity arrays (RAID-4 and RAID-5).

The two levels differ only in parity placement, so everything else — the
small-write read-modify-write path, degraded reads via reconstruction,
rebuild, and scrubbing — lives here.  The small-write path is the load-
bearing piece for this reproduction: ``write_block_with_delta`` returns the
``P' = A_new XOR A_old`` term that Eq. (1) computes anyway, which is exactly
what the PRINS engine replicates at zero extra cost.
"""

from __future__ import annotations

from repro.block.device import BlockDevice
from repro.common.buffers import xor_bytes
from repro.raid.base import ArrayBase
from repro.raid.parity import reconstruct_block, verify_stripe
from repro.raid.stripe import StripeGeometry


class ParityArrayBase(ArrayBase):
    """An ``n``-disk array storing ``n - 1`` data columns plus XOR parity."""

    min_disks = 3

    def __init__(self, disks: list[BlockDevice]) -> None:
        geometry = StripeGeometry(len(disks) - 1, disks[0].num_blocks)
        super().__init__(disks, geometry.logical_blocks)
        self._geometry = geometry

    @property
    def geometry(self) -> StripeGeometry:
        """The array's stripe geometry (data columns only)."""
        return self._geometry

    def fault_tolerance(self) -> int:
        return 1

    # -- placement (the only thing RAID-4 vs RAID-5 changes) ----------------

    def parity_disk(self, stripe: int) -> int:
        """Physical member index holding parity for ``stripe``."""
        raise NotImplementedError

    def data_disk(self, stripe: int, column: int) -> int:
        """Physical member index holding data column ``column`` of ``stripe``."""
        raise NotImplementedError

    # -- reads ----------------------------------------------------------------

    def _read(self, lba: int) -> bytes:
        stripe, column = self._geometry.locate(lba)
        disk_index = self.data_disk(stripe, column)
        if disk_index in self._failed:
            return self._reconstruct(stripe, disk_index)
        return self._disks[disk_index].read_block(stripe)

    def _reconstruct(self, stripe: int, missing_disk: int) -> bytes:
        """Rebuild the block of ``missing_disk`` in ``stripe`` from survivors."""
        survivors = [
            self._disks[i].read_block(stripe)
            for i in range(self.num_disks)
            if i != missing_disk
        ]
        return reconstruct_block(survivors)

    # -- writes ---------------------------------------------------------------

    def _write(self, lba: int, data: bytes) -> None:
        self.write_block_with_delta(lba, data)

    def write_block_with_delta(self, lba: int, data: bytes) -> bytes:
        """Small-write path: update data + parity, return ``P'``.

        Implements Eq. (1): reads ``A_old`` and ``P_old``, computes
        ``P' = A_new XOR A_old`` and ``P_new = P' XOR P_old``, writes both
        members, and hands ``P'`` back to the caller — the PRINS hook.
        Degraded cases fall back to reconstruction where needed.
        """
        self._check_lba(lba)
        if len(data) != self.block_size:
            from repro.common.errors import BlockSizeError

            raise BlockSizeError(self.block_size, len(data))
        stripe, column = self._geometry.locate(lba)
        data_index = self.data_disk(stripe, column)
        parity_index = self.parity_disk(stripe)

        data_failed = data_index in self._failed
        parity_failed = parity_index in self._failed

        old_data = (
            self._reconstruct(stripe, data_index)
            if data_failed
            else self._disks[data_index].read_block(stripe)
        )
        delta = xor_bytes(data, old_data)

        if not data_failed:
            self._disks[data_index].write_block(stripe, data)
        if not parity_failed:
            old_parity = self._disks[parity_index].read_block(stripe)
            self._disks[parity_index].write_block(stripe, xor_bytes(delta, old_parity))
        return delta

    # -- maintenance ------------------------------------------------------------

    def _rebuild_disk(self, index: int) -> None:
        for stripe in range(self._geometry.blocks_per_disk):
            self._disks[index].write_block(stripe, self._reconstruct(stripe, index))

    def scrub(self) -> list[int]:
        """Verify parity of every stripe; return the stripes that fail.

        Only meaningful on a non-degraded array (raises otherwise).
        """
        if self.degraded:
            from repro.common.errors import RaidDegradedError

            raise RaidDegradedError("cannot scrub a degraded array")
        bad: list[int] = []
        for stripe in range(self._geometry.blocks_per_disk):
            parity_index = self.parity_disk(stripe)
            data_blocks = [
                self._disks[self.data_disk(stripe, col)].read_block(stripe)
                for col in range(self._geometry.num_data_disks)
            ]
            parity = self._disks[parity_index].read_block(stripe)
            if not verify_stripe(data_blocks, parity):
                bad.append(stripe)
        return bad
