"""RAID-4: dedicated parity disk (the last member)."""

from __future__ import annotations

from repro.raid.parity_base import ParityArrayBase


class Raid4Array(ParityArrayBase):
    """All parity on the last member; data columns map straight through.

    The simplest stripe layout named by the paper ("RAID 3, RAID 4 or
    RAID 5", Sec. 1).  The dedicated parity disk is the well-known
    small-write bottleneck; RAID-5 fixes that by rotating.
    """

    def parity_disk(self, stripe: int) -> int:
        return self.num_disks - 1

    def data_disk(self, stripe: int, column: int) -> int:
        return column
