"""RAID-5: rotating (distributed) parity, left-asymmetric layout."""

from __future__ import annotations

from repro.raid.parity_base import ParityArrayBase


class Raid5Array(ParityArrayBase):
    """Parity rotates right-to-left across stripes (left-asymmetric).

    Stripe ``s`` places parity on member ``n - 1 - (s mod n)``; data columns
    fill the remaining members in ascending physical order.  This is the
    classic ``md``/controller default and spreads the parity-update load
    that RAID-4 concentrates.
    """

    def parity_disk(self, stripe: int) -> int:
        return self.num_disks - 1 - (stripe % self.num_disks)

    def data_disk(self, stripe: int, column: int) -> int:
        parity = self.parity_disk(stripe)
        return column if column < parity else column + 1
