"""Whole-stripe parity helpers."""

from __future__ import annotations

from collections.abc import Iterable

from repro.common.buffers import is_zero, xor_into


def stripe_parity(blocks: Iterable[bytes]) -> bytes:
    """XOR a set of equal-length blocks into their parity block."""
    accumulator: bytearray | None = None
    for block in blocks:
        if accumulator is None:
            accumulator = bytearray(block)
        else:
            xor_into(accumulator, block)
    if accumulator is None:
        raise ValueError("stripe_parity needs at least one block")
    return bytes(accumulator)


def verify_stripe(data_blocks: Iterable[bytes], parity_block: bytes) -> bool:
    """Return True if ``parity_block`` is the XOR of ``data_blocks``."""
    accumulator = bytearray(parity_block)
    for block in data_blocks:
        xor_into(accumulator, block)
    return is_zero(bytes(accumulator))


def reconstruct_block(surviving_blocks: Iterable[bytes]) -> bytes:
    """Rebuild a lost block from all other blocks in its stripe plus parity.

    In an XOR-parity stripe every block — data or parity — equals the XOR
    of all the others, so reconstruction and parity computation are the
    same fold.
    """
    return stripe_parity(surviving_blocks)
