"""Shared experiment machinery: capture one trace, measure every strategy.

The measurement protocol mirrors the paper's (Sec. 3.1): run the workload,
replicate the resulting block-write stream to a replica node, count bytes
on the wire.  Concretely:

1. mount the substrate (minidb or miniext) on a trace-recording device with
   the figure's block size, populate it, discard the population writes
   (the paper measures steady-state benchmark traffic, not initial sync);
2. snapshot the post-population image;
3. for each strategy: load primary and replica devices from the snapshot
   (the replica is "after the initial sync"), replay the identical trace
   through a :class:`~repro.engine.primary.PrimaryEngine`, verify the
   replica is byte-identical, and read the traffic accountant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import ReplicationConfig, open_primary
from repro.block.memory import MemoryBlockDevice
from repro.common.errors import ReplicationError
from repro.engine.accounting import TrafficAccountant
from repro.engine.strategy import strategy_names
from repro.engine.sync import verify_consistency
from repro.fs.filesystem import FileSystem
from repro.minidb.db import Database
from repro.workloads.fsmicro import FsMicroBenchmark, FsMicroConfig
from repro.workloads.tpcc import TpccConfig, TpccWorkload
from repro.workloads.tpcw import TpcwConfig, TpcwWorkload
from repro.workloads.trace import BlockWriteTrace, TraceDevice, replay_trace

#: the paper's five block sizes (Figs. 4-7 sweep 4 KB ... 64 KB)
PAPER_BLOCK_SIZES = (4096, 8192, 16384, 32768, 65536)

#: default device capacity; blocks = capacity // block_size
DEVICE_CAPACITY = 64 * 1024 * 1024


@dataclass
class TraceCapture:
    """A captured workload write stream plus the starting image."""

    trace: BlockWriteTrace
    base_image: bytes
    workload_name: str

    @property
    def block_size(self) -> int:
        """Block size the trace was captured at."""
        return self.trace.block_size


@dataclass
class StrategyMeasurement:
    """Traffic measured for one strategy over one trace."""

    strategy: str
    accountant: TrafficAccountant
    consistent: bool

    @property
    def payload_bytes(self) -> int:
        """Total replicated payload bytes (the paper's y-axis)."""
        return self.accountant.payload_bytes

    @property
    def mean_payload(self) -> float:
        """Mean payload per replicated write (feeds the queueing model)."""
        return self.accountant.mean_payload


def _make_device(block_size: int, capacity: int = DEVICE_CAPACITY) -> TraceDevice:
    return TraceDevice(MemoryBlockDevice(block_size, capacity // block_size))


def capture_tpcc_trace(
    block_size: int,
    config: TpccConfig | None = None,
    transactions: int = 200,
    pool_capacity: int = 512,
) -> TraceCapture:
    """Run the TPC-C mix and capture its block-write trace."""
    device = _make_device(block_size)
    database = Database(device, pool_capacity=pool_capacity)
    workload = TpccWorkload(database, config)
    workload.populate()
    device.trace.writes.clear()  # measure the benchmark, not the load phase
    base_image = device.inner.snapshot()  # type: ignore[attr-defined]
    workload.run(transactions)
    return TraceCapture(device.trace, base_image, "tpcc")


def capture_tpcw_trace(
    block_size: int,
    config: TpcwConfig | None = None,
    interactions: int = 400,
    pool_capacity: int = 512,
) -> TraceCapture:
    """Run the TPC-W mix and capture its block-write trace."""
    device = _make_device(block_size)
    database = Database(device, pool_capacity=pool_capacity)
    workload = TpcwWorkload(database, config)
    workload.populate()
    device.trace.writes.clear()
    base_image = device.inner.snapshot()  # type: ignore[attr-defined]
    workload.run(interactions)
    return TraceCapture(device.trace, base_image, "tpcw")


def capture_fsmicro_trace(
    block_size: int,
    config: FsMicroConfig | None = None,
) -> TraceCapture:
    """Run the tar micro-benchmark and capture its block-write trace."""
    device = _make_device(block_size)
    filesystem = FileSystem.format(device, inode_count=512)
    benchmark = FsMicroBenchmark(filesystem, config)
    benchmark.populate()
    device.trace.writes.clear()
    base_image = device.inner.snapshot()  # type: ignore[attr-defined]
    benchmark.run()
    return TraceCapture(device.trace, base_image, "fsmicro")


def measure_strategies(
    capture: TraceCapture,
    strategies: list[str] | None = None,
    prins_codec: str = "zero-rle",
) -> dict[str, StrategyMeasurement]:
    """Replay the captured trace through each strategy; return traffic.

    Raises :class:`ReplicationError` if any strategy leaves the replica
    inconsistent — a traffic number from a broken replication would be
    meaningless.
    """
    results: dict[str, StrategyMeasurement] = {}
    for name in strategies or strategy_names():
        config = ReplicationConfig(
            strategy=name,
            codec=prins_codec if name == "prins" else None,
            block_size=capture.trace.block_size,
            num_blocks=capture.trace.num_blocks,
        )
        # keep_raw: the paper-figure benchmarks need the exact per-write
        # payload sample (tail-latency sim, empirical queueing); everyone
        # else gets the accountant's bounded histogram only.
        stack = open_primary(
            config,
            initial_image=capture.base_image,  # replica after initial sync
            telemetry_name=f"harness.{capture.workload_name}.{name}",
            accountant=TrafficAccountant(keep_raw=True),
        )
        replay_trace(capture.trace, stack.engine)
        mismatches = verify_consistency(stack.device, stack.replica_devices[0])
        if mismatches:
            raise ReplicationError(
                f"strategy {name!r} left {len(mismatches)} inconsistent blocks "
                f"(first: {mismatches[:5]})"
            )
        results[name] = StrategyMeasurement(
            strategy=name, accountant=stack.engine.accountant, consistent=True
        )
    return results
