"""Runners for every reproduced table and figure.

Each ``run_figN`` returns an :class:`~repro.analysis.report.ExperimentResult`
with the same rows/series the paper reports, plus paper-vs-measured ratio
checks from :mod:`repro.experiments.paper_data`.  ``scale`` selects between
a seconds-long smoke configuration and the paper-faithful one (minutes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.analysis.report import ExperimentResult
from repro.experiments import paper_data
from repro.experiments.harness import (
    PAPER_BLOCK_SIZES,
    StrategyMeasurement,
    TraceCapture,
    capture_fsmicro_trace,
    capture_tpcc_trace,
    capture_tpcw_trace,
    measure_strategies,
)
from repro.queueing.model import ReplicationNetworkModel, StrategyTraffic
from repro.queueing.params import T1, T3, LineRate
from repro.workloads.fsmicro import FsMicroConfig
from repro.workloads.tpcc import TpccConfig
from repro.workloads.tpcw import TpcwConfig


@dataclass(frozen=True)
class Scale:
    """Run-size preset for the traffic experiments."""

    name: str
    block_sizes: tuple[int, ...]
    tpcc_transactions: int
    tpcc_oracle: TpccConfig
    tpcc_postgres: TpccConfig
    tpcw_interactions: int
    tpcw: TpcwConfig
    fsmicro: FsMicroConfig


SMALL = Scale(
    name="small",
    block_sizes=(4096, 8192, 65536),
    tpcc_transactions=120,
    tpcc_oracle=TpccConfig(warehouses=2, customers_per_district=10, items=200),
    tpcc_postgres=TpccConfig(
        warehouses=3, customers_per_district=10, items=200, seed=2007
    ),
    tpcw_interactions=250,
    tpcw=TpcwConfig(items=1000, initial_customers=50),
    fsmicro=FsMicroConfig(files_per_directory=4, file_size=8 * 1024),
)

PAPER = Scale(
    name="paper",
    block_sizes=PAPER_BLOCK_SIZES,
    tpcc_transactions=400,
    tpcc_oracle=TpccConfig.oracle_profile(),
    tpcc_postgres=TpccConfig.postgres_profile(),
    tpcw_interactions=1000,
    tpcw=TpcwConfig(),
    fsmicro=FsMicroConfig(),
)

_SCALES = {"small": SMALL, "paper": PAPER}


def get_scale(scale: str | Scale) -> Scale:
    """Resolve a scale preset by name."""
    if isinstance(scale, Scale):
        return scale
    try:
        return _SCALES[scale]
    except KeyError:
        raise ValueError(
            f"unknown scale {scale!r}; choose from {sorted(_SCALES)}"
        ) from None


# -- the generic traffic figure (Figs. 4-7 share a shape) ----------------------


def _run_traffic_figure(
    experiment_id: str,
    title: str,
    capture_for_block_size: Callable[[int], TraceCapture],
    block_sizes: tuple[int, ...],
    paper_ratios: dict[tuple[int, str], float],
    tolerance_factor: float = 3.0,
) -> ExperimentResult:
    """Sweep block sizes, measure the three strategies, compare ratios."""
    result = ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        headers=[
            "block KB",
            "writes",
            "traditional KB",
            "compressed KB",
            "prins KB",
            "trad/prins",
            "comp/prins",
        ],
    )
    measurements_by_size: dict[int, dict[str, StrategyMeasurement]] = {}
    for block_size in block_sizes:
        capture = capture_for_block_size(block_size)
        measured = measure_strategies(capture)
        measurements_by_size[block_size] = measured
        trad = measured["traditional"].payload_bytes
        comp = measured["compressed"].payload_bytes
        prins = measured["prins"].payload_bytes or 1
        result.add_row(
            block_size // 1024,
            capture.trace.write_count,
            trad / 1024.0,
            comp / 1024.0,
            prins / 1024.0,
            trad / prins,
            comp / prins,
        )
    for (block_size, baseline), paper_ratio in sorted(paper_ratios.items()):
        if block_size not in measurements_by_size:
            continue
        measured = measurements_by_size[block_size]
        prins = measured["prins"].payload_bytes or 1
        measured_ratio = measured[baseline].payload_bytes / prins
        result.add_comparison(
            f"{baseline}/prins at {block_size // 1024}KB",
            paper_ratio,
            measured_ratio,
            tolerance_factor=tolerance_factor,
        )
    result.notes.append(
        "payload bytes on the replication wire; paper comparison is the "
        "traffic-reduction ratio (shape, not absolute bytes)"
    )
    return result


def run_fig4(scale: str | Scale = "small") -> ExperimentResult:
    """Fig. 4: TPC-C (Oracle profile) replication traffic vs block size."""
    s = get_scale(scale)
    return _run_traffic_figure(
        "fig4",
        "TPC-C on minidb (Oracle profile: 5 warehouses / 25 users)",
        lambda bs: capture_tpcc_trace(
            bs, config=s.tpcc_oracle, transactions=s.tpcc_transactions
        ),
        s.block_sizes,
        paper_data.FIG4_RATIOS,
    )


def run_fig5(scale: str | Scale = "small") -> ExperimentResult:
    """Fig. 5: TPC-C (Postgres profile) replication traffic vs block size."""
    s = get_scale(scale)
    return _run_traffic_figure(
        "fig5",
        "TPC-C on minidb (Postgres profile: 10 warehouses / 50 users)",
        lambda bs: capture_tpcc_trace(
            bs, config=s.tpcc_postgres, transactions=s.tpcc_transactions
        ),
        s.block_sizes,
        paper_data.FIG5_RATIOS,
    )


def run_fig6(scale: str | Scale = "small") -> ExperimentResult:
    """Fig. 6: TPC-W replication traffic vs block size."""
    s = get_scale(scale)
    return _run_traffic_figure(
        "fig6",
        "TPC-W on minidb (30 emulated browsers, 10,000 items)",
        lambda bs: capture_tpcw_trace(
            bs, config=s.tpcw, interactions=s.tpcw_interactions
        ),
        s.block_sizes,
        paper_data.FIG6_RATIOS,
        # TPC-W write density depends on MySQL 5.0 storage-engine and
        # checkpoint details the paper does not specify; our substrate
        # produces sparser item-page writes, so PRINS wins by more than
        # the paper's 9.2x (and the gap compounds at 64 KB, where the
        # paper's MySQL coalesced writes harder than minidb does).
        # Ordering and block-size trends still hold; see EXPERIMENTS.md.
        tolerance_factor=12.0,
    )


def run_fig7(scale: str | Scale = "small") -> ExperimentResult:
    """Fig. 7: Ext2 tar micro-benchmark traffic vs block size."""
    s = get_scale(scale)
    return _run_traffic_figure(
        "fig7",
        "miniext tar micro-benchmark (5 dirs, 5 edit+tar rounds)",
        lambda bs: capture_fsmicro_trace(bs, config=s.fsmicro),
        s.block_sizes,
        paper_data.FIG7_RATIOS,
    )


# -- queueing figures -------------------------------------------------------------


def measured_payloads_at_8k(
    scale: str | Scale = "small",
) -> dict[str, float]:
    """Mean replicated payload per write at 8 KB blocks, per strategy.

    This is the measured quantity that parameterizes the queueing model —
    the paper does the same, deriving service times "using Equation (4) and
    measured values in our experiments" (Sec. 4).
    """
    s = get_scale(scale)
    capture = capture_tpcc_trace(
        8192, config=s.tpcc_oracle, transactions=s.tpcc_transactions
    )
    measured = measure_strategies(capture)
    return {name: m.mean_payload for name, m in measured.items()}


def _run_response_figure(
    experiment_id: str,
    title: str,
    line: LineRate,
    payloads: dict[str, float],
    paper_at_100: dict[str, float],
) -> ExperimentResult:
    populations = list(paper_data.FIG8_POPULATIONS)
    result = ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        headers=["population"] + [f"{n} s" for n in payloads],
    )
    curves = {
        name: ReplicationNetworkModel(
            StrategyTraffic(name, payload), line
        ).response_time_curve(populations)
        for name, payload in payloads.items()
    }
    for i, population in enumerate(populations):
        result.add_row(
            population, *[curves[name][i] for name in payloads]
        )
    for name, paper_value in paper_at_100.items():
        if name in curves:
            result.add_comparison(
                f"{name} response at pop=100 ({line.name})",
                paper_value,
                curves[name][-1],
                tolerance_factor=4.0,
            )
    result.notes.append(
        f"exact MVA, {line.name} line, 2 routers, think time "
        f"{paper_data.THINK_TIME_SECONDS}s; payloads measured at 8KB blocks"
    )
    return result


def run_fig8(
    scale: str | Scale = "small", payloads: dict[str, float] | None = None
) -> ExperimentResult:
    """Fig. 8: response time vs population over T1 lines (8 KB blocks)."""
    payloads = payloads or measured_payloads_at_8k(scale)
    return _run_response_figure(
        "fig8",
        "Response time vs population, T1, 2 routers, 8KB blocks",
        T1,
        payloads,
        paper_data.FIG8_T1_AT_POP100,
    )


def run_fig9(
    scale: str | Scale = "small", payloads: dict[str, float] | None = None
) -> ExperimentResult:
    """Fig. 9: response time vs population over T3 lines (8 KB blocks)."""
    payloads = payloads or measured_payloads_at_8k(scale)
    return _run_response_figure(
        "fig9",
        "Response time vs population, T3, 2 routers, 8KB blocks",
        T3,
        payloads,
        paper_data.FIG9_T3_AT_POP100,
    )


def run_fig10(
    scale: str | Scale = "small", payloads: dict[str, float] | None = None
) -> ExperimentResult:
    """Fig. 10: single-router M/M/1 queueing time vs write rate (T1)."""
    payloads = payloads or measured_payloads_at_8k(scale)
    rates = list(paper_data.FIG10_WRITE_RATES)
    result = ExperimentResult(
        experiment_id="fig10",
        title="Router queueing time vs write rate, M/M/1, T1, 8KB blocks",
        headers=["rate /s"] + [f"{n} s" for n in payloads],
    )
    models = {
        name: ReplicationNetworkModel(StrategyTraffic(name, payload), T1)
        for name, payload in payloads.items()
    }
    for rate in rates:
        result.add_row(
            rate,
            *[
                models[name].router_mm1(rate).queueing_time
                for name in payloads
            ],
        )
    for name, paper_rate in paper_data.FIG10_SATURATION.items():
        if name in models:
            result.add_comparison(
                f"{name} saturation rate (T1)",
                paper_rate,
                models[name].saturation_write_rate,
                tolerance_factor=3.0,
            )
    result.notes.append(
        "inf marks a saturated router; PRINS should remain stable far "
        "beyond the plotted range"
    )
    return result


# -- the Sec. 4 overhead experiment ---------------------------------------------------


def run_overhead(scale: str | Scale = "small") -> ExperimentResult:
    """Sec. 4: PRINS write-path overhead vs traditional replication.

    Times the primary-side write path (local write + encode + ship) over
    one identical trace for each strategy, and separately for PRINS on a
    RAID-5 primary where the parity delta is a free by-product.  The paper
    reports <10 % without RAID and "completely negligible" with; absolute
    Python timings are unrepresentative (see DESIGN.md), so the comparison
    tolerance is wide.
    """
    import time

    from repro.block.memory import MemoryBlockDevice
    from repro.engine.links import DirectLink
    from repro.engine.primary import PrimaryEngine
    from repro.engine.replica import ReplicaEngine
    from repro.engine.strategy import make_strategy
    from repro.raid.raid5 import Raid5Array
    from repro.workloads.trace import replay_trace

    s = get_scale(scale)
    capture = capture_tpcc_trace(
        8192, config=s.tpcc_oracle, transactions=s.tpcc_transactions
    )

    def timed_replay(device_factory: Callable[[], object], name: str) -> float:
        device = device_factory()
        strategy = make_strategy(name)
        replica = ReplicaEngine(
            MemoryBlockDevice(capture.trace.block_size, capture.trace.num_blocks),
            strategy,
        )
        replica.device.load(capture.base_image)  # type: ignore[attr-defined]
        engine = PrimaryEngine(device, strategy, [DirectLink(replica)])
        start = time.perf_counter()
        replay_trace(capture.trace, engine)
        return time.perf_counter() - start

    def flat_device() -> MemoryBlockDevice:
        device = MemoryBlockDevice(capture.trace.block_size, capture.trace.num_blocks)
        device.load(capture.base_image)
        return device

    def raid_device() -> Raid5Array:
        disks = [
            MemoryBlockDevice(capture.trace.block_size, capture.trace.num_blocks)
            for _ in range(5)
        ]
        array = Raid5Array(disks)
        for lba in range(capture.trace.num_blocks):
            offset = lba * capture.trace.block_size
            array.write_block(
                lba, capture.base_image[offset : offset + capture.trace.block_size]
            )
        return array

    time_traditional = timed_replay(flat_device, "traditional")
    time_prins = timed_replay(flat_device, "prins")
    time_traditional_raid = timed_replay(raid_device, "traditional")
    time_prins_raid = timed_replay(raid_device, "prins")

    overhead_flat = (time_prins - time_traditional) / time_traditional
    overhead_raid = (time_prins_raid - time_traditional_raid) / time_traditional_raid
    result = ExperimentResult(
        experiment_id="ovh",
        title="PRINS write-path overhead vs traditional (Sec. 4)",
        headers=["configuration", "traditional s", "prins s", "overhead"],
    )
    result.add_row("flat device", time_traditional, time_prins, overhead_flat)
    result.add_row(
        "RAID-5 primary (P' free)",
        time_traditional_raid,
        time_prins_raid,
        overhead_raid,
    )
    result.notes.append(
        "paper: <10% overhead without RAID, negligible with RAID; Python "
        "wall-clock ratios are indicative only (simulator substrate)"
    )
    result.notes.append(
        "on RAID both strategies pay the same small-write parity cost, so "
        "the marginal cost of PRINS is encoding alone"
    )
    return result


EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "fig10": run_fig10,
    "overhead": run_overhead,
}


def run_experiment(experiment_id: str, scale: str | Scale = "small") -> ExperimentResult:
    """Run one registered experiment by id."""
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ValueError(
            f"unknown experiment {experiment_id!r}; "
            f"choose from {sorted(EXPERIMENTS)}"
        ) from None
    return runner(scale)
