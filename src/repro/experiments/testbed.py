"""The Fig. 2 environment inventory, mapped to this reproduction.

The paper's Fig. 2 is a hardware/software table (four PCs, two OSes, three
DBMSes, two iSCSI stacks, three benchmarks).  :func:`testbed_table` renders
the equivalent inventory for this reproduction: what each paper component
is and which module stands in for it.
"""

from __future__ import annotations

from repro.analysis.tables import format_table

_ROWS = [
    ["PC 1,2,3 (P4 2.8GHz, WinXP)", "storage node", "repro.block.MemoryBlockDevice / FileBlockDevice"],
    ["PC 4 (P4 2.4GHz, Fedora 2)", "storage node", "repro.block.MemoryBlockDevice / FileBlockDevice"],
    ["Intel 470T switch + PRO/1000 NIC", "network", "repro.iscsi.TcpTransport (loopback) / InProcessTransport"],
    ["UNH iSCSI initiator/target 1.6", "iSCSI stack", "repro.iscsi.Initiator / Target"],
    ["Microsoft iSCSI initiator 2.0", "iSCSI stack", "repro.iscsi.Initiator"],
    ["PRINS-engine (in iSCSI target)", "contribution", "repro.engine.PrimaryEngine / ReplicaEngine"],
    ["Oracle 10g", "DBMS", "repro.minidb.Database (TpccConfig.oracle_profile)"],
    ["Postgres 7.1.3", "DBMS", "repro.minidb.Database (TpccConfig.postgres_profile)"],
    ["MySQL 5.0 + Tomcat 4.1", "DBMS + app server", "repro.minidb.Database (TPC-W driver)"],
    ["Ext2 file system", "filesystem", "repro.fs.FileSystem"],
    ["TPC-C (Hammerora / TPCC-UVA)", "benchmark", "repro.workloads.TpccWorkload"],
    ["TPC-W (UW-Madison Java)", "benchmark", "repro.workloads.TpcwWorkload"],
    ["tar micro-benchmark", "benchmark", "repro.workloads.FsMicroBenchmark"],
    ["zlib library [22]", "compression", "repro.parity.ZlibCodec (stdlib zlib)"],
    ["T1/T3 WAN lines", "modeled network", "repro.queueing.params.T1 / T3"],
]


def testbed_table() -> str:
    """Render the testbed inventory (the reproduction's Fig. 2)."""
    return format_table(
        ["paper component", "role", "this reproduction"],
        [list(row) for row in _ROWS],
        title="[fig2] Hardware and software environments (paper -> reproduction)",
    )
