"""Experiment definitions: one entry per paper table/figure.

* :mod:`repro.experiments.harness` — trace capture and strategy
  measurement machinery shared by all traffic figures;
* :mod:`repro.experiments.figures` — ``run_fig4`` … ``run_fig10`` plus the
  overhead experiment, each returning an
  :class:`~repro.analysis.report.ExperimentResult`;
* :mod:`repro.experiments.paper_data` — the paper's reported numbers,
  digitized from the text, for shape comparison;
* :mod:`repro.experiments.testbed` — the Fig. 2 environment inventory
  (paper testbed → this reproduction's substitutes).
"""

from repro.experiments.figures import (
    EXPERIMENTS,
    run_experiment,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_overhead,
)
from repro.experiments.harness import (
    StrategyMeasurement,
    TraceCapture,
    capture_fsmicro_trace,
    capture_tpcc_trace,
    capture_tpcw_trace,
    measure_strategies,
)
from repro.experiments.testbed import testbed_table

__all__ = [
    "EXPERIMENTS",
    "StrategyMeasurement",
    "TraceCapture",
    "capture_fsmicro_trace",
    "capture_tpcc_trace",
    "capture_tpcw_trace",
    "measure_strategies",
    "run_experiment",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "run_overhead",
    "testbed_table",
]
