"""The paper's reported numbers, digitized from the text of Sec. 4.

Absolute byte counts depend on the authors' one-hour runs and exact
database builds, so the primary comparison targets are the *ratios* the
paper states explicitly.  Where the text gives absolute values (Fig. 5 and
Fig. 6) they are recorded too, normalized per hour of run.
"""

from __future__ import annotations

# -- Fig. 4: TPC-C on Oracle, traffic vs block size --------------------------
# "PRINS reduces amount of data ... by an order of magnitude" (8 KB);
# "over 2 orders of magnitudes" (64 KB); "factor of 5" and "factor of 23"
# vs compression.
FIG4_RATIOS = {
    (8192, "traditional"): 10.0,  # traditional / prins at 8 KB
    (8192, "compressed"): 5.0,
    (65536, "traditional"): 100.0,
    (65536, "compressed"): 23.0,
}

# -- Fig. 5: TPC-C on Postgres ------------------------------------------------
# 8 KB: traditional 3.5 GB vs PRINS 0.33 GB vs compressed 1.6 GB (one hour);
# 64 KB: savings 64x and 32x.
FIG5_RATIOS = {
    (8192, "traditional"): 3.5 / 0.33,  # ~10.6
    (8192, "compressed"): 1.6 / 0.33,  # ~4.8
    (65536, "traditional"): 64.0,
    (65536, "compressed"): 32.0,
}
FIG5_ABSOLUTE_GB = {
    (8192, "traditional"): 3.5,
    (8192, "compressed"): 1.6,
    (8192, "prins"): 0.33,
}

# -- Fig. 6: TPC-W on MySQL ----------------------------------------------------
# 8 KB: PRINS ~6 MB vs traditional ~55 MB; 64 KB: ~6 MB vs ~183 MB.
FIG6_RATIOS = {
    (8192, "traditional"): 55.0 / 6.0,  # ~9.2
    (65536, "traditional"): 183.0 / 6.0,  # ~30.5
}
FIG6_ABSOLUTE_MB = {
    (8192, "traditional"): 55.0,
    (8192, "prins"): 6.0,
    (65536, "traditional"): 183.0,
    (65536, "prins"): 6.0,
}

# -- Fig. 7: Ext2 tar micro-benchmark --------------------------------------------
# 8 KB: 51.5x vs traditional, 10.4x vs compressed; 64 KB: 166x and 33x.
FIG7_RATIOS = {
    (8192, "traditional"): 51.5,
    (8192, "compressed"): 10.4,
    (65536, "traditional"): 166.0,
    (65536, "compressed"): 33.0,
}

# -- Figs. 8/9: closed-network response time (T1/T3, 2 routers, 8 KB) -------------
# Read off the curves: at population 100 on T1, traditional ~6 s, compressed
# ~2 s, PRINS well under 0.5 s.  On T3 everything is under ~0.7 s with the
# same ordering.
FIG8_T1_AT_POP100 = {
    "traditional": 6.0,
    "compressed": 2.0,
    "prins": 0.3,
}
FIG9_T3_AT_POP100 = {
    "traditional": 0.20,
    "compressed": 0.07,
    "prins": 0.02,
}

# -- Fig. 10: single-router M/M/1 saturation (T1, 8 KB) -----------------------------
# Traditional saturates first, then compressed; PRINS sustains "much
# greater write request rates".  Approximate saturation rates read off the
# curve's asymptotes (requests/second).
FIG10_SATURATION = {
    "traditional": 17.0,
    "compressed": 50.0,
}

# -- Sec. 4 overhead claim ------------------------------------------------------------
# "the overhead is less than 10% of traditional replications" without RAID;
# "completely negligible" with RAID.
OVERHEAD_LIMIT_FRACTION = 0.10

#: think time used throughout the queueing analysis (measured 10.22 wr/s)
THINK_TIME_SECONDS = 0.1
#: populations plotted in Figs. 8/9
FIG8_POPULATIONS = (1, 10, 20, 30, 40, 50, 60, 70, 80, 100)
#: write rates plotted in Fig. 10
FIG10_WRITE_RATES = tuple(range(1, 57, 5))
