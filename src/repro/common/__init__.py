"""Shared utilities for the PRINS reproduction.

This package collects the small building blocks every subsystem needs:
an exception hierarchy (:mod:`repro.common.errors`), byte-level helpers for
XOR/zero tests (:mod:`repro.common.buffers`), size-unit parsing
(:mod:`repro.common.units`), and deterministic RNG construction
(:mod:`repro.common.rng`).
"""

from repro.common.buffers import (
    count_nonzero,
    is_zero,
    nonzero_fraction,
    xor_blocks_pairwise,
    xor_bytes,
    xor_into,
    xor_reduce_blocks,
)
from repro.common.errors import (
    BlockRangeError,
    BlockSizeError,
    CodecError,
    ConfigurationError,
    ProtocolError,
    ReplicationError,
    ReproError,
    StorageError,
)
from repro.common.rng import make_rng
from repro.common.units import GiB, KiB, MiB, format_bytes, parse_size

__all__ = [
    "BlockRangeError",
    "BlockSizeError",
    "CodecError",
    "ConfigurationError",
    "GiB",
    "KiB",
    "MiB",
    "ProtocolError",
    "ReplicationError",
    "ReproError",
    "StorageError",
    "count_nonzero",
    "format_bytes",
    "is_zero",
    "make_rng",
    "nonzero_fraction",
    "parse_size",
    "xor_blocks_pairwise",
    "xor_bytes",
    "xor_into",
    "xor_reduce_blocks",
]
