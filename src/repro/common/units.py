"""Size units and human-readable byte formatting.

The paper mixes decimal-flavoured networking units (a T1 line is 1.544 Mbps
~= 154.4 KB/s at 10 bits/byte) with binary storage units (8 KB blocks).  The
storage side of this codebase uses binary units exclusively; the networking
constants live in :mod:`repro.queueing.params` with the paper's exact values.
"""

from __future__ import annotations

import re

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

_SIZE_RE = re.compile(r"^\s*(\d+(?:\.\d+)?)\s*([KMGT]i?B?|B)?\s*$", re.IGNORECASE)

_MULTIPLIERS = {
    None: 1,
    "B": 1,
    "K": KiB,
    "KB": KiB,
    "KIB": KiB,
    "M": MiB,
    "MB": MiB,
    "MIB": MiB,
    "G": GiB,
    "GB": GiB,
    "GIB": GiB,
    "T": 1024 * GiB,
    "TB": 1024 * GiB,
    "TIB": 1024 * GiB,
}


def parse_size(text: str | int) -> int:
    """Parse a human size string like ``"8KB"`` or ``"1.5MiB"`` into bytes.

    Integers pass through unchanged.  All suffixes are binary (KB == KiB ==
    1024 bytes), matching the storage-side convention above.
    """
    if isinstance(text, int):
        return text
    match = _SIZE_RE.match(text)
    if not match:
        raise ValueError(f"unparseable size: {text!r}")
    value = float(match.group(1))
    suffix = match.group(2)
    key = suffix.upper() if suffix else None
    result = value * _MULTIPLIERS[key]
    if result != int(result):
        raise ValueError(f"size {text!r} is not a whole number of bytes")
    return int(result)


def format_bytes(n: int | float) -> str:
    """Format a byte count for humans: ``format_bytes(51200) == '50.0 KiB'``."""
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            if unit == "B":
                return f"{int(value)} B"
            return f"{value:.1f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")
