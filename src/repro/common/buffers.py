"""Byte-buffer helpers: XOR, zero tests, and change-density measurement.

The whole point of PRINS is that ``P' = A_new XOR A_old`` is mostly zeros.
These helpers implement the XOR and the "how sparse is it" measurements used
throughout the parity codecs, the RAID small-write path, and the traffic
accounting.  They are numpy-backed so that 64 KB blocks cost microseconds,
with an ``int.from_bytes`` big-integer fallback for tiny buffers where numpy
dispatch overhead dominates.

Every helper accepts any C-contiguous buffer-protocol object (``bytes``,
``bytearray``, ``memoryview``, numpy arrays) so callers on the zero-copy hot
path can pass views without materializing intermediate ``bytes`` copies.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

Buffer = Union[bytes, bytearray, memoryview]

#: Crossover between the big-integer XOR path and numpy, in bytes.
#:
#: Re-tuned from ``scripts/bench_hotpath.py`` measurements (2026-08, CPython
#: 3.12 / numpy 2.x): the ``int.from_bytes``-XOR path costs ~0.4 µs at 16 B
#: and ~0.6 µs at 128 B while numpy's dispatch floor is ~1.6 µs regardless of
#: size; numpy overtakes between 512 B and 4 KB (1.7 µs vs 2.1 µs at 4 KB,
#: then scales ~50x better).  512 is the last power of two where the integer
#: path still wins outright.  The previous value (128) predated the integer
#: fast path — it guarded a per-byte generator that was slower than numpy
#: everywhere above ~32 B.
_NUMPY_CUTOFF = 512

#: Largest per-block size for which :func:`xor_blocks_pairwise` stacks the
#: two input sequences into matrices.  Stacking pays two ``b"".join`` copies
#: of the whole window; above ~8 KB per block that copy cost exceeds the
#: dispatch savings and a per-pair :func:`xor_bytes` loop wins (measured:
#: 32x64 KB window is 332 µs per-pair vs 3.9 ms stacked on the reference
#: box; the crossover sits near 8 KB).
_PAIRWISE_STACK_MAX = 8192

#: Shared ``[0]`` index array prepended when a buffer starts nonzero; kept
#: module-level so :func:`nonzero_spans` never allocates it per call.
_ZERO_INDEX = np.zeros(1, dtype=np.intp)


def _nbytes(buf: Buffer) -> int:
    """Length in bytes of any buffer-protocol object."""
    if isinstance(buf, (bytes, bytearray)):
        return len(buf)
    return memoryview(buf).nbytes


def xor_bytes(a: Buffer, b: Buffer) -> bytes:
    """Return ``a XOR b``.

    Both buffers must be the same length.  This single function implements
    both the paper's forward parity computation (Eq. 1 fragment,
    ``P' = A_new XOR A_old``) and the backward computation (Eq. 2,
    ``A_new = P' XOR A_old``), because XOR is its own inverse.

    Accepts any buffer-protocol object; always returns ``bytes``.
    """
    n = _nbytes(a)
    nb = _nbytes(b)
    if n != nb:
        raise ValueError(f"xor_bytes: length mismatch ({n} != {nb})")
    if n < _NUMPY_CUTOFF:
        # One C-level big-integer XOR beats both a Python byte loop and
        # numpy's dispatch overhead for small buffers.
        return (
            int.from_bytes(a, "little") ^ int.from_bytes(b, "little")
        ).to_bytes(n, "little")
    av = np.frombuffer(a, dtype=np.uint8)
    bv = np.frombuffer(b, dtype=np.uint8)
    return np.bitwise_xor(av, bv).tobytes()


def xor_into(target: Union[bytearray, memoryview], source: Buffer) -> None:
    """XOR ``source`` into ``target`` in place (``target ^= source``).

    Used by the RAID parity scrubber and the CDP recovery path, where a
    running XOR accumulator over many blocks avoids allocating one
    intermediate buffer per block.  ``target`` must be writable
    (``bytearray`` or a writable ``memoryview``).
    """
    n = _nbytes(target)
    ns = _nbytes(source)
    if n != ns:
        raise ValueError(f"xor_into: length mismatch ({n} != {ns})")
    if n == 0:
        return
    if n < _NUMPY_CUTOFF:
        target[:n] = (
            int.from_bytes(target, "little") ^ int.from_bytes(source, "little")
        ).to_bytes(n, "little")
        return
    tv = np.frombuffer(target, dtype=np.uint8)
    sv = np.frombuffer(source, dtype=np.uint8)
    np.bitwise_xor(tv, sv, out=tv)


def xor_reduce_blocks(blocks: "Sequence[Buffer]") -> bytes:
    """XOR-fold many equal-length buffers into one, in a single numpy kernel.

    This is the batch form of :func:`xor_bytes`: stacking the buffers into
    one ``(n, block_size)`` matrix and reducing along axis 0 replaces
    ``n - 1`` Python-level XOR calls with one vectorized pass.  It is the
    kernel behind same-LBA delta merging in
    :class:`repro.engine.batch.ShipBatcher` — XOR is associative, so the
    fold of parity deltas ``P'₁ ⊕ P'₂ ⊕ …`` is itself a valid parity delta
    against the replica's original block (paper Eqs. 1–2 compose).
    """
    if not blocks:
        raise ValueError("xor_reduce_blocks needs at least one buffer")
    size = _nbytes(blocks[0])
    for i, b in enumerate(blocks[1:], start=1):
        if _nbytes(b) != size:
            raise ValueError(
                f"xor_reduce_blocks: length mismatch at index {i} "
                f"({_nbytes(b)} != {size})"
            )
    if len(blocks) == 1:
        return bytes(blocks[0])
    if size == 0:
        return b""
    if size * len(blocks) < _NUMPY_CUTOFF:
        acc = int.from_bytes(blocks[0], "little")
        for b in blocks[1:]:
            acc ^= int.from_bytes(b, "little")
        return acc.to_bytes(size, "little")
    mat = np.frombuffer(b"".join(blocks), dtype=np.uint8).reshape(
        len(blocks), size
    )
    return np.bitwise_xor.reduce(mat, axis=0).tobytes()


def xor_blocks_pairwise(
    lhs: "Sequence[Buffer]",
    rhs: "Sequence[Buffer]",
    skip_zero: bool = False,
) -> "list[bytes | None]":
    """XOR many equal-length pairs ``lhs[i] ^ rhs[i]`` in one 2-D numpy op.

    The vectorized form of mapping :func:`xor_bytes` over two equal-length
    sequences: both sides are stacked into ``(n, block_size)`` matrices and
    XORed in a single kernel, amortizing numpy dispatch over the whole
    batch (many small forward-parity computations per call instead of one).

    The result matrix is serialized **once** (one contiguous ``tobytes``)
    and sliced per row, instead of a per-row ``tobytes`` Python loop — the
    slices share the row boundaries so no per-row numpy call remains.

    With ``skip_zero=True``, all-zero results come back as ``None`` instead
    of a zero-filled buffer — the no-op test runs on the XOR result while
    it is still a hot numpy array, which is cheaper than a separate
    :func:`is_zero` rescan of the materialized bytes per pair.
    """
    if len(lhs) != len(rhs):
        raise ValueError(
            f"xor_blocks_pairwise: {len(lhs)} lhs buffers vs {len(rhs)} rhs"
        )
    if not lhs:
        return []
    size = _nbytes(lhs[0])
    for seq_name, seq in (("lhs", lhs), ("rhs", rhs)):
        for i, b in enumerate(seq):
            if _nbytes(b) != size:
                raise ValueError(
                    f"xor_blocks_pairwise: {seq_name}[{i}] is {_nbytes(b)} "
                    f"bytes, expected {size}"
                )
    if size == 0:
        return [b""] * len(lhs)
    if size > _PAIRWISE_STACK_MAX:
        # For large blocks the two b"".join copies needed to stack the
        # inputs dominate (~12x slower than per-pair XOR at 64 KB on the
        # reference box); per-pair numpy XOR is already bandwidth-bound.
        out: "list[bytes | None]" = []
        for a, b in zip(lhs, rhs):
            av = np.frombuffer(a, dtype=np.uint8)
            bv = np.frombuffer(b, dtype=np.uint8)
            d = np.bitwise_xor(av, bv)
            if skip_zero and not d.any():
                out.append(None)
            else:
                out.append(d.tobytes())
        return out
    if size * len(lhs) < _NUMPY_CUTOFF:
        results = [xor_bytes(a, b) for a, b in zip(lhs, rhs)]
        if skip_zero:
            return [None if is_zero(d) else d for d in results]
        return results
    a = np.frombuffer(b"".join(lhs), dtype=np.uint8).reshape(len(lhs), size)
    b = np.frombuffer(b"".join(rhs), dtype=np.uint8).reshape(len(rhs), size)
    # One contiguous serialization, then zero-copy-ish row slices (each
    # slice is a cheap bytes-of-bytes copy of exactly one row; the old code
    # paid a numpy attribute lookup + tobytes dispatch per row).
    mat = np.bitwise_xor(a, b)
    flat = mat.tobytes()
    if skip_zero:
        nonzero_rows = np.any(mat, axis=1)
        return [
            flat[i * size:(i + 1) * size] if nonzero_rows[i] else None
            for i in range(len(lhs))
        ]
    return [flat[i * size:(i + 1) * size] for i in range(len(lhs))]


def _zero_count(buf: Buffer) -> int:
    """Number of zero bytes in any buffer-protocol object."""
    n = _nbytes(buf)
    if n < _NUMPY_CUTOFF:
        if isinstance(buf, (bytes, bytearray)):
            return buf.count(0)
        return bytes(memoryview(buf).cast("B")).count(0)
    # numpy's SIMD nonzero count beats bytes.count(0)'s byte-at-a-time scan
    # by ~6x at 64 KB (4.8 µs vs 29 µs measured).
    arr = np.frombuffer(buf, dtype=np.uint8)
    return n - int(np.count_nonzero(arr))


def is_zero(buf: Buffer) -> bool:
    """Return True if every byte of ``buf`` is zero.

    An all-zero parity delta means the write did not actually change the
    block; the PRINS engine can then skip replication entirely.
    """
    n = _nbytes(buf)
    if n == 0:
        return True
    if n < _NUMPY_CUTOFF:
        # bytes.count is a C-level scan; cheaper than numpy dispatch here.
        return _zero_count(buf) == n
    # np.any short-circuits on the first nonzero chunk, so the common
    # "delta is not a no-op" case costs far less than a full count.
    return not np.any(np.frombuffer(buf, dtype=np.uint8))


def count_nonzero(buf: Buffer) -> int:
    """Return the number of nonzero bytes in ``buf``."""
    return _nbytes(buf) - _zero_count(buf)


def nonzero_fraction(buf: Buffer) -> float:
    """Return the fraction of bytes in ``buf`` that are nonzero.

    This is the paper's "5 % to 20 % of a data block actually changes"
    metric, measured on a parity delta.  Returns 0.0 for an empty buffer.
    """
    n = _nbytes(buf)
    if n == 0:
        return 0.0
    return count_nonzero(buf) / n


def nonzero_spans(
    buf: Buffer, merge_gap: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Return nonzero spans as numpy ``(starts, ends)`` arrays (end exclusive).

    This is the vectorized kernel behind :func:`nonzero_runs` and the
    single-pass codec encoders: a boolean diff finds every run boundary in
    one O(n) pass whose cost does not depend on the number of runs, and the
    ``merge_gap`` coalescing is a single keep-mask over the inter-span gaps
    rather than a Python loop.  Both returned arrays are ``intp`` and ready
    for direct fancy-indexed gathers.
    """
    if merge_gap < 0:
        raise ValueError(f"merge_gap must be non-negative, got {merge_gap}")
    arr = np.frombuffer(buf, dtype=np.uint8)
    if arr.size == 0:
        empty = np.empty(0, dtype=np.intp)
        return empty, empty
    nz = arr != 0
    # Run boundaries are exactly the indices where the nonzero mask flips;
    # comparing the mask against itself shifted by one finds them in a
    # single pass with no int8 cast or diff temporary (2-3x faster than the
    # np.diff formulation at 64 KB).  Boundaries alternate start, end,
    # start, end, … once the edges are patched in.
    boundary = np.flatnonzero(nz[1:] != nz[:-1]) + 1
    head: tuple = (boundary,)
    if nz[0]:
        head = (_ZERO_INDEX, boundary)
    if nz[-1]:
        boundary = np.concatenate(head + (np.array([arr.size], dtype=np.intp),))
    elif len(head) > 1:
        boundary = np.concatenate(head)
    starts = boundary[0::2]
    ends = boundary[1::2]
    if merge_gap and starts.size > 1:
        # Gap of zeros between consecutive spans; keep the boundary only
        # where the gap exceeds the merge threshold.
        keep = (starts[1:] - ends[:-1]) > merge_gap
        starts = np.concatenate((starts[:1], starts[1:][keep]))
        ends = np.concatenate((ends[:-1][keep], ends[-1:]))
    return starts, ends


def nonzero_runs(buf: Buffer, merge_gap: int = 0) -> list[tuple[int, int]]:
    """Return runs of nonzero bytes as ``(offset, length)`` pairs.

    With ``merge_gap == 0`` the runs are maximal and never touch (a zero
    byte separates any two).  With ``merge_gap > 0``, runs separated by at
    most that many zero bytes are coalesced into one (the zeros become part
    of the run).  Codecs use a small merge gap because a changed span of
    high-entropy data contains chance zero bytes (1 in 256) that would
    otherwise fragment it into hundreds of tiny runs — coalescing costs a
    few literal zero bytes but saves a per-run header and a Python-level
    loop iteration each.

    Thin list-of-tuples wrapper over :func:`nonzero_spans`.
    """
    starts, ends = nonzero_spans(buf, merge_gap)
    return [(int(s), int(e - s)) for s, e in zip(starts, ends)]
