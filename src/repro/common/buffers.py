"""Byte-buffer helpers: XOR, zero tests, and change-density measurement.

The whole point of PRINS is that ``P' = A_new XOR A_old`` is mostly zeros.
These helpers implement the XOR and the "how sparse is it" measurements used
throughout the parity codecs, the RAID small-write path, and the traffic
accounting.  They are numpy-backed so that 64 KB blocks cost microseconds,
with a pure-bytes fallback for tiny buffers where numpy overhead dominates.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

_NUMPY_CUTOFF = 128  # below this many bytes, plain Python wins


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """Return ``a XOR b``.

    Both buffers must be the same length.  This single function implements
    both the paper's forward parity computation (Eq. 1 fragment,
    ``P' = A_new XOR A_old``) and the backward computation (Eq. 2,
    ``A_new = P' XOR A_old``), because XOR is its own inverse.
    """
    if len(a) != len(b):
        raise ValueError(f"xor_bytes: length mismatch ({len(a)} != {len(b)})")
    if len(a) < _NUMPY_CUTOFF:
        return bytes(x ^ y for x, y in zip(a, b))
    av = np.frombuffer(a, dtype=np.uint8)
    bv = np.frombuffer(b, dtype=np.uint8)
    return np.bitwise_xor(av, bv).tobytes()


def xor_into(target: bytearray, source: bytes) -> None:
    """XOR ``source`` into ``target`` in place (``target ^= source``).

    Used by the RAID parity scrubber and the CDP recovery path, where a
    running XOR accumulator over many blocks avoids allocating one
    intermediate buffer per block.
    """
    if len(target) != len(source):
        raise ValueError(f"xor_into: length mismatch ({len(target)} != {len(source)})")
    if len(target) < _NUMPY_CUTOFF:
        for i, byte in enumerate(source):
            target[i] ^= byte
        return
    tv = np.frombuffer(target, dtype=np.uint8)
    sv = np.frombuffer(source, dtype=np.uint8)
    np.bitwise_xor(tv, sv, out=tv)


def xor_reduce_blocks(blocks: "Sequence[bytes]") -> bytes:
    """XOR-fold many equal-length buffers into one, in a single numpy kernel.

    This is the batch form of :func:`xor_bytes`: stacking the buffers into
    one ``(n, block_size)`` matrix and reducing along axis 0 replaces
    ``n - 1`` Python-level XOR calls with one vectorized pass.  It is the
    kernel behind same-LBA delta merging in
    :class:`repro.engine.batch.ShipBatcher` — XOR is associative, so the
    fold of parity deltas ``P'₁ ⊕ P'₂ ⊕ …`` is itself a valid parity delta
    against the replica's original block (paper Eqs. 1–2 compose).
    """
    if not blocks:
        raise ValueError("xor_reduce_blocks needs at least one buffer")
    size = len(blocks[0])
    for i, b in enumerate(blocks[1:], start=1):
        if len(b) != size:
            raise ValueError(
                f"xor_reduce_blocks: length mismatch at index {i} "
                f"({len(b)} != {size})"
            )
    if len(blocks) == 1:
        return bytes(blocks[0])
    if size == 0:
        return b""
    if size * len(blocks) < _NUMPY_CUTOFF:
        acc = bytearray(blocks[0])
        for b in blocks[1:]:
            for i, byte in enumerate(b):
                acc[i] ^= byte
        return bytes(acc)
    mat = np.frombuffer(b"".join(blocks), dtype=np.uint8).reshape(
        len(blocks), size
    )
    return np.bitwise_xor.reduce(mat, axis=0).tobytes()


def xor_blocks_pairwise(
    lhs: "Sequence[bytes]", rhs: "Sequence[bytes]"
) -> list[bytes]:
    """XOR many equal-length pairs ``lhs[i] ^ rhs[i]`` in one 2-D numpy op.

    The vectorized form of mapping :func:`xor_bytes` over two equal-length
    sequences: both sides are stacked into ``(n, block_size)`` matrices and
    XORed in a single kernel, amortizing numpy dispatch over the whole
    batch (many small forward-parity computations per call instead of one).
    """
    if len(lhs) != len(rhs):
        raise ValueError(
            f"xor_blocks_pairwise: {len(lhs)} lhs buffers vs {len(rhs)} rhs"
        )
    if not lhs:
        return []
    size = len(lhs[0])
    for seq_name, seq in (("lhs", lhs), ("rhs", rhs)):
        for i, b in enumerate(seq):
            if len(b) != size:
                raise ValueError(
                    f"xor_blocks_pairwise: {seq_name}[{i}] is {len(b)} bytes, "
                    f"expected {size}"
                )
    if size == 0:
        return [b""] * len(lhs)
    if size * len(lhs) < _NUMPY_CUTOFF:
        return [xor_bytes(a, b) for a, b in zip(lhs, rhs)]
    a = np.frombuffer(b"".join(lhs), dtype=np.uint8).reshape(len(lhs), size)
    b = np.frombuffer(b"".join(rhs), dtype=np.uint8).reshape(len(rhs), size)
    out = np.bitwise_xor(a, b)
    return [out[i].tobytes() for i in range(out.shape[0])]


def is_zero(buf: bytes) -> bool:
    """Return True if every byte of ``buf`` is zero.

    An all-zero parity delta means the write did not actually change the
    block; the PRINS engine can then skip replication entirely.
    """
    if not buf:
        return True
    # bytes.count is a C-level scan; faster than numpy for this predicate.
    return buf.count(0) == len(buf)


def count_nonzero(buf: bytes) -> int:
    """Return the number of nonzero bytes in ``buf``."""
    return len(buf) - buf.count(0)


def nonzero_fraction(buf: bytes) -> float:
    """Return the fraction of bytes in ``buf`` that are nonzero.

    This is the paper's "5 % to 20 % of a data block actually changes"
    metric, measured on a parity delta.  Returns 0.0 for an empty buffer.
    """
    if not buf:
        return 0.0
    return count_nonzero(buf) / len(buf)


def nonzero_runs(buf: bytes, merge_gap: int = 0) -> list[tuple[int, int]]:
    """Return runs of nonzero bytes as ``(offset, length)`` pairs.

    With ``merge_gap == 0`` the runs are maximal and never touch (a zero
    byte separates any two).  With ``merge_gap > 0``, runs separated by at
    most that many zero bytes are coalesced into one (the zeros become part
    of the run).  Codecs use a small merge gap because a changed span of
    high-entropy data contains chance zero bytes (1 in 256) that would
    otherwise fragment it into hundreds of tiny runs — coalescing costs a
    few literal zero bytes but saves a per-run header and a Python-level
    loop iteration each.
    """
    if merge_gap < 0:
        raise ValueError(f"merge_gap must be non-negative, got {merge_gap}")
    runs: list[tuple[int, int]] = []
    arr = np.frombuffer(buf, dtype=np.uint8)
    nz = np.flatnonzero(arr)
    if nz.size == 0:
        return runs
    # Split the sorted nonzero indices wherever consecutive indices gap by
    # more than the merge threshold.
    breaks = np.flatnonzero(np.diff(nz) > 1 + merge_gap)
    starts = np.concatenate(([0], breaks + 1))
    ends = np.concatenate((breaks, [nz.size - 1]))
    for s, e in zip(starts, ends):
        start = int(nz[s])
        runs.append((start, int(nz[e]) - start + 1))
    return runs
