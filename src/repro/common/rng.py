"""Deterministic random-number-generator construction.

Every stochastic component (workload generators, content mutators, the
discrete-event simulator) takes a seed and builds its generator through
:func:`make_rng`, so experiments are exactly reproducible run-to-run and
independent sub-streams can be derived from one experiment seed.
"""

from __future__ import annotations

import numpy as np


def make_rng(seed: int | None = None, *streams: int | str) -> np.random.Generator:
    """Build a :class:`numpy.random.Generator` for ``seed`` and a sub-stream.

    ``streams`` name independent children of the root seed: two calls with
    the same seed and the same stream path return identically-behaving
    generators, while different stream paths are statistically independent.
    String stream keys are hashed stably (not with built-in ``hash``, which
    is salted per process).
    """
    keys: list[int] = []
    for stream in streams:
        if isinstance(stream, str):
            keys.append(_stable_hash(stream))
        else:
            keys.append(int(stream))
    seq = np.random.SeedSequence(entropy=seed, spawn_key=tuple(keys))
    return np.random.default_rng(seq)


def _stable_hash(text: str) -> int:
    """FNV-1a over UTF-8, reduced to 32 bits — stable across processes."""
    value = 0x811C9DC5
    for byte in text.encode("utf-8"):
        value ^= byte
        value = (value * 0x01000193) & 0xFFFFFFFF
    return value
