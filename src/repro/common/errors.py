"""Exception hierarchy for the PRINS reproduction.

All library exceptions derive from :class:`ReproError`, so callers can catch
one base class at the public-API boundary.  Each subsystem narrows it:
storage errors, codec errors, protocol (iSCSI) errors, replication errors,
and configuration errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """Raised when a component is constructed with invalid parameters."""


class StorageError(ReproError):
    """Base class for block-device and RAID failures."""


class BlockSizeError(StorageError):
    """Raised when a buffer length does not match the device block size."""

    def __init__(self, expected: int, actual: int) -> None:
        super().__init__(f"expected a buffer of {expected} bytes, got {actual}")
        self.expected = expected
        self.actual = actual


class BlockRangeError(StorageError):
    """Raised when an LBA falls outside the device."""

    def __init__(self, lba: int, num_blocks: int) -> None:
        super().__init__(f"LBA {lba} out of range for device with {num_blocks} blocks")
        self.lba = lba
        self.num_blocks = num_blocks


class DeviceClosedError(StorageError):
    """Raised when an I/O is issued against a closed device."""


class RaidDegradedError(StorageError):
    """Raised when an operation needs a disk that has failed."""


class CodecError(ReproError):
    """Raised when encoding or decoding a parity frame fails."""


class ProtocolError(ReproError):
    """Raised on malformed PDUs or protocol state violations (iSCSI layer)."""


class LoginError(ProtocolError):
    """Raised when an iSCSI login handshake is rejected."""


class ReplicationError(ReproError):
    """Raised when the replication engine cannot apply or ship an update."""


class PartialReplicationError(ReplicationError):
    """Raised when a fan-out failed after some replicas already applied.

    Carries exactly which links succeeded so a caller (or operator) can
    reason about the divergence instead of guessing: ``succeeded`` holds the
    link indices that acked this write, ``failed_index`` the link whose
    :meth:`~repro.engine.links.ReplicaLink.ship` raised, and ``cause`` the
    original exception.  The local write and all successful shipments have
    already been charged to the engine's accountant when this is raised.
    """

    def __init__(
        self,
        lba: int,
        seq: int,
        succeeded: tuple[int, ...],
        failed_index: int,
        total_links: int,
        cause: BaseException,
    ) -> None:
        super().__init__(
            f"write at LBA {lba} (seq {seq}) replicated to "
            f"{len(succeeded)}/{total_links} links before link "
            f"{failed_index} failed: {cause}"
        )
        self.lba = lba
        self.seq = seq
        self.succeeded = succeeded
        self.failed_index = failed_index
        self.total_links = total_links
        self.cause = cause


class RetriesExhaustedError(ReplicationError):
    """Raised when a resilient link gives up after its retry budget."""

    def __init__(self, lba: int, attempts: int, cause: BaseException) -> None:
        super().__init__(
            f"ship to replica failed after {attempts} attempts "
            f"(LBA {lba}): {cause}"
        )
        self.lba = lba
        self.attempts = attempts
        self.cause = cause


class SyncError(ReplicationError):
    """Raised when initial synchronization between primary and replica fails."""


class RecoveryError(ReproError):
    """Raised when CDP/TRAP point-in-time recovery cannot be satisfied."""
